"""Traceable workloads written against the :mod:`repro.mpisim` API.

``token_ring`` is the paper's §6.1 evaluation program; the others cover
the messaging patterns the methodology must handle (nonblocking halo
exchange, wildcard task farm, collective-heavy iteration, explicit
butterfly, pipeline, irregular sparse exchange).
"""

from repro.apps.allreduce_iter import AllreduceIterParams, allreduce_iter
from repro.apps.butterfly_allreduce import ButterflyParams, butterfly_allreduce
from repro.apps.fft_transpose import FFTTransposeParams, fft_transpose
from repro.apps.master_worker import MasterWorkerParams, master_worker
from repro.apps.pipeline import PipelineParams, pipeline
from repro.apps.random_sparse import RandomSparseParams, neighbor_sets, random_sparse
from repro.apps.stencil1d import StencilParams, stencil1d
from repro.apps.stencil2d import Stencil2DParams, grid_shape, stencil2d
from repro.apps.token_ring import TokenRingParams, token_ring

__all__ = [
    "AllreduceIterParams",
    "allreduce_iter",
    "ButterflyParams",
    "butterfly_allreduce",
    "FFTTransposeParams",
    "fft_transpose",
    "MasterWorkerParams",
    "master_worker",
    "PipelineParams",
    "pipeline",
    "RandomSparseParams",
    "neighbor_sets",
    "random_sparse",
    "StencilParams",
    "stencil1d",
    "Stencil2DParams",
    "grid_shape",
    "stencil2d",
    "TokenRingParams",
    "token_ring",
]

ALL_APPS = {
    "token_ring": (token_ring, TokenRingParams),
    "stencil1d": (stencil1d, StencilParams),
    "stencil2d": (stencil2d, Stencil2DParams),
    "master_worker": (master_worker, MasterWorkerParams),
    "allreduce_iter": (allreduce_iter, AllreduceIterParams),
    "fft_transpose": (fft_transpose, FFTTransposeParams),
    "butterfly_allreduce": (butterfly_allreduce, ButterflyParams),
    "pipeline": (pipeline, PipelineParams),
    "random_sparse": (random_sparse, RandomSparseParams),
}
