"""PERF — parallel Monte-Carlo replicate execution.

Measures the serial-vs-parallel speedup of ``monte_carlo(..., jobs=N)``
(:mod:`repro.core.parallel`) on one built graph, and verifies the
backend's determinism contract: the parallel distribution must be
**bit-for-bit identical** to the serial one for the same base seed.

Environment knobs (used by the CI smoke job to keep runtime tiny):

``REPRO_BENCH_MC_REPLICATES``
    Replicate count per run (default 1000 — the headline configuration).
``REPRO_BENCH_MC_JOBS``
    Comma-separated worker counts to ladder over (default ``2,4``).

Speedup depends on the machine (a single-core runner shows ~1x and
pays fork overhead); equality must hold everywhere, so only equality is
asserted and the measured speedups are recorded for EXPERIMENTS.md.
"""

import os
import time

import numpy as np

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, monte_carlo
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature

REPLICATES = int(os.environ.get("REPRO_BENCH_MC_REPLICATES", "1000"))
JOBS_LADDER = [
    int(j) for j in os.environ.get("REPRO_BENCH_MC_JOBS", "2,4").split(",") if j.strip()
]


def mc_build():
    trace = run(token_ring(TokenRingParams(traversals=8)), nprocs=8, seed=0).trace
    return build_graph(trace)


def mc_spec():
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(120.0), latency=Exponential(50.0)), seed=17
    )


def test_parallel_mc_speedup(benchmark):
    build = mc_build()
    spec = mc_spec()

    t0 = time.perf_counter()
    serial = monte_carlo(build, spec, replicates=REPLICATES, jobs=0)
    t_serial = time.perf_counter() - t0

    rows = [["serial", REPLICATES, f"{t_serial * 1e3:.0f}", "1.00"]]
    timings = {"serial_s": t_serial}
    speedups = {}
    for jobs in JOBS_LADDER:
        t0 = time.perf_counter()
        dist = monte_carlo(build, spec, replicates=REPLICATES, jobs=jobs)
        dt = time.perf_counter() - t0
        # The determinism contract: identical samples for any backend.
        assert np.array_equal(serial.samples, dist.samples)
        assert serial.seeds == dist.seeds
        timings[f"jobs{jobs}_s"] = dt
        speedups[str(jobs)] = t_serial / dt
        rows.append([f"jobs={jobs}", REPLICATES, f"{dt * 1e3:.0f}", f"{t_serial / dt:.2f}"])

    rows.append(["cores", os.cpu_count() or 1, "", ""])
    emit(
        "perf_parallel_mc",
        table(["backend", "replicates", "time ms", "speedup"], rows, widths=[10, 10, 9, 8]),
        params={
            "replicates": REPLICATES,
            "jobs_ladder": JOBS_LADDER,
            "cores": os.cpu_count() or 1,
        },
        timings=timings,
        metrics={"speedup_by_jobs": speedups, "mc_mean_delay": serial.mean()},
    )

    # Time the steady-state parallel op at the widest requested pool.
    bench_n = max(1, REPLICATES // 10)
    jobs = JOBS_LADDER[-1] if JOBS_LADDER else 2
    benchmark(lambda: monte_carlo(build, spec, replicates=bench_n, jobs=jobs))


def test_parallel_mc_chunking_equivalence():
    """Chunk-size choice must never change results, only performance."""
    build = mc_build()
    spec = mc_spec()
    n = min(REPLICATES, 24)
    reference = monte_carlo(build, spec, replicates=n, jobs=0)
    for chunk_size in (1, 5, n):
        dist = monte_carlo(build, spec, replicates=n, jobs=2, chunk_size=chunk_size)
        assert np.array_equal(reference.samples, dist.samples)
