"""Tests for the message-passing graph data structure."""

import math

import pytest

from repro.core.graph import (
    DeltaKind,
    DeltaSpec,
    EdgeKind,
    MessagePassingGraph,
    NO_DELTA,
    Phase,
)
from repro.trace.events import EventKind


def small_graph():
    g = MessagePassingGraph(2)
    s0 = g.add_node(0, 0, Phase.START, EventKind.SEND, 0.0)
    e0 = g.add_node(0, 0, Phase.END, EventKind.SEND, 5.0)
    s1 = g.add_node(1, 0, Phase.START, EventKind.RECV, 100.0)
    e1 = g.add_node(1, 0, Phase.END, EventKind.RECV, 110.0)
    g.add_edge(s0, e0, EdgeKind.LOCAL, 5.0)
    g.add_edge(s1, e1, EdgeKind.LOCAL, 10.0)
    g.add_edge(s0, e1, EdgeKind.MESSAGE, 0.0, DeltaSpec(DeltaKind.TRANSFER_OS, uid=(1,)))
    g.add_edge(e1, e0, EdgeKind.MESSAGE, 0.0, DeltaSpec(DeltaKind.LATENCY, uid=(2,)))
    return g, (s0, e0, s1, e1)


class TestConstruction:
    def test_node_lookup(self):
        g, (s0, e0, s1, e1) = small_graph()
        assert g.node_of(0, 0, Phase.START) == s0
        assert g.node_of(1, 0, Phase.END) == e1
        assert g.has_node(0, 0, Phase.END)
        assert not g.has_node(0, 1, Phase.START)

    def test_duplicate_subevent_rejected(self):
        g, _ = small_graph()
        with pytest.raises(ValueError, match="duplicate"):
            g.add_node(0, 0, Phase.START, EventKind.SEND, 0.0)

    def test_virtual_nodes_not_unique_keyed(self):
        g, _ = small_graph()
        a = g.add_node(-1, 5, Phase.VIRTUAL, EventKind.BARRIER, math.nan)
        b = g.add_node(-1, 5, Phase.VIRTUAL, EventKind.BARRIER, math.nan)
        assert a != b
        assert g.nodes[a].is_virtual

    def test_edge_validation(self):
        g, (s0, e0, *_ ) = small_graph()
        with pytest.raises(ValueError, match="out of range"):
            g.add_edge(s0, 999, EdgeKind.LOCAL, 1.0)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(s0, s0, EdgeKind.LOCAL, 1.0)
        with pytest.raises(ValueError, match="negative local"):
            g.add_edge(s0, e0, EdgeKind.LOCAL, -1.0)

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            MessagePassingGraph(0)


class TestTopology:
    def test_adjacency(self):
        g, (s0, e0, s1, e1) = small_graph()
        assert g.out_degree(s0) == 2
        assert g.in_degree(e0) == 2
        assert {e.dst for e in g.out_edges(s0)} == {e0, e1}
        assert {e.src for e in g.in_edges(e1)} == {s1, s0}

    def test_topological_order(self):
        g, (s0, e0, s1, e1) = small_graph()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in g.edges:
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detected(self):
        g, (s0, e0, s1, e1) = small_graph()
        g.add_edge(e0, s0, EdgeKind.MESSAGE, 0.0)  # closes a cycle
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_rank_chain_ordered(self):
        g, (s0, e0, s1, e1) = small_graph()
        assert g.rank_chain(0) == [s0, e0]
        assert g.rank_chain(1) == [s1, e1]

    def test_edge_kind_iterators(self):
        g, _ = small_graph()
        assert sum(1 for _ in g.local_edges()) == 2
        assert sum(1 for _ in g.message_edges()) == 2


class TestStats:
    def test_counts(self):
        g, _ = small_graph()
        s = g.stats()
        assert s == {
            "nprocs": 2,
            "nodes": 4,
            "virtual_nodes": 0,
            "edges": 4,
            "local_edges": 2,
            "message_edges": 2,
        }


class TestDeltaSpec:
    def test_defaults(self):
        assert NO_DELTA.kind == DeltaKind.NONE
        assert NO_DELTA.uid == ()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NO_DELTA.kind = DeltaKind.OS


class TestNetworkxExport:
    def test_structure_preserved(self):
        import networkx as nx

        g, _ = small_graph()
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == len(g.nodes)
        assert nxg.number_of_edges() == len(g.edges)
        assert nx.is_directed_acyclic_graph(nxg)

    def test_attributes(self):
        g, (s0, e0, s1, e1) = small_graph()
        nxg = g.to_networkx()
        assert nxg.nodes[s0]["kind"] == "SEND"
        assert nxg.nodes[s0]["phase"] == "START"
        assert nxg.nodes[e1]["rank"] == 1
        data = list(nxg.get_edge_data(s0, e1).values())[0]
        assert data["kind"] == "MESSAGE"
        assert data["delta_kind"] == "TRANSFER_OS"

    def test_topological_orders_agree(self, ring_trace):
        import networkx as nx
        from repro.core import build_graph

        g = build_graph(ring_trace).graph
        nxg = g.to_networkx()
        # The same precedence structure: both orders satisfy all edges.
        pos = {n: i for i, n in enumerate(nx.topological_sort(nxg))}
        for e in g.edges:
            assert pos[e.src] < pos[e.dst]

    def test_longest_path_vs_runtimes(self, ring_trace):
        """On the local-edges-only subgraph, networkx's weighted longest
        path equals the slowest rank's runtime (each rank's chain sums to
        exactly its runtime).  On the full graph it can only be larger:
        zero-weight message edges — notably the conservative ack edges,
        which for eager sends point 'backwards' in wall-clock time — let
        paths splice local chains of several ranks."""
        import networkx as nx
        from repro.core import build_graph

        build = build_graph(ring_trace)
        nxg = build.graph.to_networkx()
        runtimes = [evs[-1].t_end - evs[0].t_start for evs in build.events]

        local_only = nx.MultiDiGraph()
        local_only.add_nodes_from(nxg.nodes(data=True))
        for u, v, data in nxg.edges(data=True):
            if data["kind"] == "LOCAL":
                local_only.add_edge(u, v, **data)
        assert nx.dag_longest_path_length(local_only, weight="weight") == pytest.approx(
            max(runtimes)
        )
        assert nx.dag_longest_path_length(nxg, weight="weight") >= max(runtimes)
