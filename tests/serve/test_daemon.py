"""End-to-end daemon tests over real HTTP on an ephemeral port.

One module-scoped daemon (fault injection enabled) serves every test;
a background thread runs its event loop.  The heart of the file is the
bit-identity block: for **every** endpoint, the daemon's response must
equal the direct library call — and for the endpoints with a CLI JSON
twin, the client's rendering must equal the CLI's output file
byte-for-byte.
"""

import asyncio
import json
import threading

import pytest

from repro.cli import main_diagnose, main_metrics, main_verify
from repro.core import BuildConfig, PerturbationSpec, build_graph, monte_carlo, sweep_scales
from repro.machines import PRESETS
from repro.microbench import measure_machine
from repro.mpisim import run_to_files
from repro.noise import MachineSignature
from repro.serve import ReproServer, ServeClient, ServeConfig, ServeError
from repro.serve.client import (
    render_analyze,
    render_diagnose,
    render_metrics,
    render_sweep,
    render_verify,
    request_json,
)
from repro.trace import TraceSet
from tests.conftest import _ring_program


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    d = tmp_path_factory.mktemp("serve-e2e")
    run_to_files(_ring_program, d / "traces", "ring", nprocs=4, seed=3, program_name="ring")
    sig = measure_machine(PRESETS["quiet"](4, seed=1), seed=1).to_signature()
    sig.save(d / "sig.json")
    return d


@pytest.fixture(scope="module")
def daemon(workdir):
    """A live daemon in a background thread; yields (server, base_url)."""
    config = ServeConfig(port=0, allow_fault_injection=True)
    server = ReproServer(config)
    started = threading.Event()
    loop_holder = {}

    def run_loop():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)

        async def main():
            await server.start()
            started.set()
            try:
                await asyncio.Event().wait()  # park until cancelled
            finally:
                await server.stop()

        try:
            loop.run_until_complete(main())
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    assert started.wait(10), "daemon failed to start"
    yield server, f"http://127.0.0.1:{server.port}"
    loop = loop_holder["loop"]
    for task in asyncio.all_tasks(loop):
        loop.call_soon_threadsafe(task.cancel)
    thread.join(10)


@pytest.fixture(scope="module")
def client(daemon):
    _, url = daemon
    return ServeClient(url, timeout=120)


@pytest.fixture(scope="module")
def signature_dict(workdir):
    return MachineSignature.load(workdir / "sig.json").to_dict()


class TestProbesAndRouting:
    def test_healthz(self, client):
        h = client.healthz()
        assert h["schema"] == "repro-serve-health/1"
        assert h["ok"] is True
        assert h["cache"]["capacity"] == 8

    def test_unknown_route_404(self, daemon):
        _, url = daemon
        env = request_json(f"{url}/nope")
        assert env["ok"] is False
        assert env["error"]["code"] == "not-found"

    def test_unknown_endpoint_404(self, daemon):
        _, url = daemon
        env = request_json(f"{url}/v1/transmogrify", {"schema": "x"})
        assert env["error"]["code"] == "not-found"

    def test_get_on_job_endpoint_405(self, daemon):
        _, url = daemon
        env = request_json(f"{url}/v1/analyze")
        assert env["error"]["code"] == "method-not-allowed"

    def test_post_on_healthz_405(self, daemon):
        _, url = daemon
        env = request_json(f"{url}/healthz", {"x": 1})
        assert env["error"]["code"] == "method-not-allowed"

    def test_non_json_body_400(self, daemon):
        import urllib.error
        import urllib.request

        _, url = daemon
        req = urllib.request.Request(f"{url}/v1/analyze", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req)
        assert exc_info.value.code == 400
        assert json.loads(exc_info.value.read())["error"]["code"] == "bad-request"

    def test_schema_violation_400(self, client, workdir):
        with pytest.raises(ServeError, match="bogus_param") as exc_info:
            client.job("analyze", traces=str(workdir / "traces"), stem="ring",
                       params={"bogus_param": 1})
        assert exc_info.value.code == "bad-request"

    def test_missing_signature_400(self, client, workdir):
        with pytest.raises(ServeError) as exc_info:
            client.job("analyze", traces=str(workdir / "traces"), stem="ring",
                       params={"replicates": 2})
        assert exc_info.value.code == "bad-request"


class TestBitIdentity:
    """Daemon responses == direct library calls, rendered == CLI bytes."""

    def test_analyze_equals_monte_carlo(self, client, workdir, signature_dict):
        env = client.job(
            "analyze", traces=str(workdir / "traces"), stem="ring",
            signature=signature_dict, params={"replicates": 7, "seed": 5, "scale": 2.0},
        )
        traces = TraceSet.open(workdir / "traces", "ring")
        build = build_graph(traces, BuildConfig())
        spec = PerturbationSpec(
            MachineSignature.load(workdir / "sig.json"), seed=5, scale=2.0
        )
        dist = monte_carlo(build, spec, replicates=7)
        want = {
            "replicates": dist.replicates,
            "nprocs": dist.nprocs,
            "seeds": [int(s) for s in dist.seeds],
            "samples": [[float(v) for v in row] for row in dist.samples],
        }
        got = env["result"]
        for key, value in want.items():
            assert got[key] == value, key
        assert render_analyze(got) == render_analyze(json.loads(json.dumps(got)))

    def test_sweep_equals_sweep_scales(self, client, workdir, signature_dict):
        scales = [0.0, 0.5, 2.0]
        env = client.job(
            "sweep", traces=str(workdir / "traces"), stem="ring",
            signature=signature_dict, params={"scales": scales, "seed": 3},
        )
        traces = TraceSet.open(workdir / "traces", "ring")
        spec = PerturbationSpec(MachineSignature.load(workdir / "sig.json"), seed=3)
        result = sweep_scales(traces, spec, scales)
        want = [
            {"label": p.label, "x": float(p.x),
             "delays": [float(d) for d in p.delays], "mode": p.mode}
            for p in result.points
        ]
        assert env["result"]["points"] == want
        assert render_sweep(env["result"]).endswith("\n")

    def test_diagnose_renders_cli_bytes(self, client, workdir, tmp_path):
        traces = str(workdir / "traces")
        env = client.job("diagnose", traces=traces, stem="ring", params={})
        cli_out = tmp_path / "cli.json"
        main_diagnose(["--traces", traces, "--stem", "ring",
                       "--format", "json", "--out", str(cli_out), "--quiet"])
        assert render_diagnose(env["result"]) == cli_out.read_text()

    def test_verify_renders_cli_bytes(self, client, workdir, tmp_path):
        traces = str(workdir / "traces")
        env = client.job("verify", traces=traces, stem="ring", params={})
        cli_out = tmp_path / "cli.json"
        main_verify(["--traces", traces, "--stem", "ring",
                     "--format", "json", "--out", str(cli_out), "--quiet"])
        assert render_verify(env["result"]) == cli_out.read_text()

    def test_metrics_renders_cli_bytes(self, client, workdir, tmp_path):
        traces = str(workdir / "traces")
        env = client.job("metrics", traces=traces, stem="ring", params={"windows": 4})
        cli_out = tmp_path / "cli.json"
        main_metrics(["--traces", traces, "--stem", "ring", "--windows", "4",
                      "--format", "json", "--out", str(cli_out), "--quiet"])
        assert render_metrics(env["result"]) == cli_out.read_text()

    def test_upload_mode_equals_dir_mode(self, client, workdir):
        traces = workdir / "traces"
        upload = {p.name: p.read_text() for p in traces.iterdir()}
        from_dir = client.job("diagnose", traces=str(traces), stem="ring", params={})
        from_upload = client.job("diagnose", upload=upload, stem="ring", params={})
        assert from_upload["result"]["report"] == from_dir["result"]["report"]
        # identical bytes -> identical build key -> served from one entry
        assert from_upload["build"]["key"] == from_dir["build"]["key"]


class TestFaultContainment:
    def test_injected_error_is_contained(self, client, workdir, signature_dict):
        with pytest.raises(ServeError) as exc_info:
            client.job("analyze", traces=str(workdir / "traces"), stem="ring",
                       signature=signature_dict, params={"replicates": 2}, inject="error")
        assert exc_info.value.code == "fault-injected"
        assert client.healthz()["ok"] is True

    def test_killed_worker_is_contained(self, client, workdir, signature_dict):
        with pytest.raises(ServeError) as exc_info:
            client.job("analyze", traces=str(workdir / "traces"), stem="ring",
                       signature=signature_dict, params={"replicates": 2},
                       inject="kill-worker")
        assert exc_info.value.code == "worker-lost"
        # the pool died; the daemon did not
        assert client.healthz()["ok"] is True
        env = client.job("metrics", traces=str(workdir / "traces"), stem="ring",
                         params={"windows": 2})
        assert env["ok"] is True

    def test_injection_forbidden_by_default(self, workdir):
        async def main():
            server = ReproServer(ServeConfig(port=0))
            await server.start()
            url = f"http://127.0.0.1:{server.port}"

            def call():
                c = ServeClient(url, timeout=30)
                with pytest.raises(ServeError) as exc_info:
                    c.job("metrics", traces=str(workdir / "traces"), stem="ring",
                          inject="error")
                assert exc_info.value.code == "forbidden"

            await asyncio.to_thread(call)
            await server.stop()

        asyncio.run(main())


class TestAdmissionAndTimeouts:
    def test_backpressure_429(self, workdir):
        async def main():
            server = ReproServer(ServeConfig(port=0, max_pending=1))
            server.stats.active = 1  # a job is (virtually) in flight
            status, env = await server._run_job(
                "metrics",
                {"schema": "repro-serve-request/1",
                 "traces": str(workdir / "traces"), "stem": "ring"},
            )
            assert status == 429
            assert env["error"]["code"] == "overloaded"
            assert server.stats.rejected == 1

        asyncio.run(main())

    def test_job_timeout_504(self, workdir):
        async def main():
            server = ReproServer(ServeConfig(port=0, job_timeout=1e-6))
            status, env = await server._run_job(
                "metrics",
                {"schema": "repro-serve-request/1",
                 "traces": str(workdir / "traces"), "stem": "ring"},
            )
            assert status == 504
            assert env["error"]["code"] == "timeout"
            assert server.stats.timeouts == 1

        asyncio.run(main())


class TestConcurrentCoalescing:
    def test_concurrent_requests_one_build_one_compile(self, workdir, signature_dict):
        """The acceptance criterion: concurrent requests sharing a trace
        set and signature pay for exactly one graph build and one plan
        compile — proven by the daemon's own span histogram."""
        from repro.mpisim import run_to_files as _rtf

        fresh = workdir / "fresh-traces"
        if not fresh.exists():
            _rtf(_ring_program, fresh, "ring", nprocs=4, seed=11, program_name="ring")

        async def main():
            server = ReproServer(ServeConfig(port=0))
            await server.start()
            url = f"http://127.0.0.1:{server.port}"

            def one(seed):
                c = ServeClient(url, timeout=120)
                return c.job("analyze", traces=str(fresh), stem="ring",
                             signature=signature_dict,
                             params={"replicates": 3, "seed": seed})

            def fan_out():
                import concurrent.futures as cf
                with cf.ThreadPoolExecutor(4) as ex:
                    return list(ex.map(one, [0, 0, 1, 2]))

            envs = await asyncio.to_thread(fan_out)
            metrics = await asyncio.to_thread(
                lambda: ServeClient(url, timeout=30).metricsz()
            )
            await server.stop()
            return envs, metrics

        envs, metrics = asyncio.run(main())
        assert len(envs) == 4 and all(e["ok"] for e in envs)
        assert len({e["build"]["key"] for e in envs}) == 1
        assert metrics["spans"]["build_graph"] == 1
        assert metrics["spans"]["compiled.compile"] == 1
        assert metrics["cache"]["builds"] == 1
        assert metrics["cache"]["coalesced"] + metrics["cache"]["hits"] == 3
        # identical-seed requests got bit-identical answers
        same_seed = [e for e in envs if e["result"]["seeds"][0] == 0]
        assert len(same_seed) >= 2
        assert same_seed[0]["result"] == same_seed[1]["result"]


class TestMetricsz:
    def test_span_histogram_proves_one_build(self, client):
        """Runs after the whole module hammered one trace set: every
        request above shared a single graph build and plan compile."""
        m = client.metricsz()
        assert m["schema"] == "repro-serve-metrics/1"
        spans = m["spans"]
        assert spans.get("serve.request", 0) >= 10
        assert spans.get("build_graph", 0) == 1
        assert spans.get("compiled.compile", 0) == 1
        assert m["cache"]["builds"] == 1
        assert m["cache"]["hits"] >= 5
        assert m["metrics"]["serve.requests"] >= 10
