"""Perturbation sampling for graph edges (§5, §6).

A :class:`PerturbationSpec` binds a machine signature (the distributions
measured by microbenchmarks) to the edge-delta classes of the graph
(:class:`repro.core.graph.DeltaKind`) and samples concrete δ values.

Sampling is **deterministic per edge identity**: every edge carries a
``uid`` (assigned by the subgraph templates) and its delta is drawn from
``default_rng((seed, kind, *uid))``.  Two consequences:

* the in-core traversal and the windowed streaming traversal sample the
  *same* value for the same edge regardless of visit order, so their
  results are bit-for-bit identical (the ABL2 experiment's invariant);
* re-running an analysis with the same seed reproduces it exactly, which
  the experiment history (§7 future work) relies on.

``scale`` multiplies every sampled delta — the "varying degrees of
noise" ladders of §6 are driven by one measured signature plus a scale
sweep.  Negative scales model the paper's future-work question of
*reduced* noise (§7); the traversal clamps effective edge weights at
zero to preserve ordering (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import DeltaKind, DeltaSpec
from repro.noise.signature import MachineSignature

__all__ = ["PerturbationSpec"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    """One splitmix64 step — a well-mixed 64-bit permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _mix(ints) -> int:
    """Stable 64-bit hash of an int tuple (the edge-identity key)."""
    h = 0x811C9DC5
    for v in ints:
        h = _splitmix64(h ^ (v & _MASK64))
    return h


@dataclass(frozen=True)
class PerturbationSpec:
    """Sampling policy: signature + seed + global scale.

    Parameters
    ----------
    signature:
        The platform's distributions (δ_os, δ_λ, per-byte δ_t).
    seed:
        Base seed for deterministic per-edge draws.
    scale:
        Multiplier applied to every sampled delta (may be negative for
        speedup exploration; see module docstring).
    """

    signature: MachineSignature
    seed: int = 0
    scale: float = 1.0

    def __post_init__(self) -> None:
        # One reusable PCG64 whose state is re-keyed per edge: profiling
        # showed SeedSequence construction dominating the whole traversal,
        # and direct 128-bit state injection is ~3x cheaper while keeping
        # the properties that matter — per-uid determinism and stream
        # independence.  The shared bit generator makes a spec NOT thread-
        # safe; every engine here is single-threaded.
        bg = np.random.PCG64(0)
        template = bg.state
        object.__setattr__(self, "_bg", bg)
        object.__setattr__(self, "_template", template)
        object.__setattr__(self, "_gen", np.random.Generator(bg))

    def _rng(self, delta: DeltaSpec) -> np.random.Generator:
        uid = delta.uid
        if not uid:
            raise ValueError(f"DeltaSpec {delta} has no uid; cannot sample deterministically")
        k = _mix((self.seed, int(delta.kind)) + tuple(uid))
        s1 = _splitmix64(k)
        s2 = _splitmix64(s1)
        s3 = _splitmix64(s2)
        state = dict(self._template)
        inc = ((((s2 << 64) | s3) << 1) | 1) & ((1 << 128) - 1)  # odd, 128-bit
        state["state"] = {"state": (k << 64) | s1, "inc": inc}
        state["has_uint32"] = 0
        state["uinteger"] = 0
        self._bg.state = state
        return self._gen

    def sample(self, delta: DeltaSpec, weight: float = 0.0) -> float:
        """Draw the δ for one edge (0.0 for ``DeltaKind.NONE``).

        ``weight`` is the edge's observed duration; it matters only for
        OS edges under the interval-scaled extension (one draw per
        ``signature.os_quantum`` of duration, DESIGN.md §4) and is
        ignored in the paper's per-edge model.
        """
        kind = delta.kind
        if kind == DeltaKind.NONE:
            return 0.0
        sig = self.signature
        rng = self._rng(delta)
        if kind == DeltaKind.OS:
            value = sig.sample_os_interval(rng, delta.rank, weight)
        elif kind == DeltaKind.LATENCY:
            value = sig.sample_latency(rng, delta.src, delta.dst)
        elif kind == DeltaKind.TRANSFER:
            value = sig.sample_latency(rng, delta.src, delta.dst) + sig.sample_transfer(
                rng, delta.nbytes
            )
        elif kind == DeltaKind.TRANSFER_OS:
            # Fig. 2 data path: δ_λ1 + δ_t(d) + δ_os2 (Eq. 1, second line).
            value = (
                sig.sample_latency(rng, delta.src, delta.dst)
                + sig.sample_transfer(rng, delta.nbytes)
                + sig.sample_os(rng, delta.rank)
            )
        elif kind == DeltaKind.ROUNDTRIP:
            # Rendezvous completion against a posted nonblocking receive:
            # λ(src→dst) + δ_t(d) + δ_os(dst) + λ(dst→src).
            value = (
                sig.sample_latency(rng, delta.src, delta.dst)
                + sig.sample_transfer(rng, delta.nbytes)
                + sig.sample_os(rng, delta.rank)
                + sig.sample_latency(rng, delta.dst, delta.src)
            )
        elif kind == DeltaKind.COLL_FANIN:
            # Fig. 4's l_δ: `rounds` independent (δ_os + δ_λ [+ δ_t]) samples.
            value = 0.0
            for _ in range(delta.rounds):
                value += sig.sample_os(rng, delta.rank)
                value += sig.sample_latency(rng, delta.src, delta.dst)
                if delta.nbytes:
                    value += sig.sample_transfer(rng, delta.nbytes)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown delta kind {kind!r}")
        return value * self.scale

    def scaled(self, scale: float) -> "PerturbationSpec":
        """Same signature/seed with a different global scale (sweeps)."""
        return PerturbationSpec(self.signature, self.seed, scale)

    def expected(self, delta: DeltaSpec, weight: float = 0.0) -> float:
        """Analytic expectation of the edge's delta (for model checks)."""
        kind = delta.kind
        sig = self.signature
        if kind == DeltaKind.NONE:
            return 0.0
        if kind == DeltaKind.OS:
            base = sig.os_noise_for(delta.rank).mean() * sig.os_draws(weight)
        elif kind == DeltaKind.LATENCY:
            base = sig.latency_for(delta.src, delta.dst).mean()
        elif kind == DeltaKind.TRANSFER:
            base = sig.latency_for(delta.src, delta.dst).mean() + sig.per_byte.mean() * delta.nbytes
        elif kind == DeltaKind.TRANSFER_OS:
            base = (
                sig.latency_for(delta.src, delta.dst).mean()
                + sig.per_byte.mean() * delta.nbytes
                + sig.os_noise_for(delta.rank).mean()
            )
        elif kind == DeltaKind.ROUNDTRIP:
            base = (
                sig.latency_for(delta.src, delta.dst).mean()
                + sig.per_byte.mean() * delta.nbytes
                + sig.os_noise_for(delta.rank).mean()
                + sig.latency_for(delta.dst, delta.src).mean()
            )
        elif kind == DeltaKind.COLL_FANIN:
            per_round = (
                sig.os_noise_for(delta.rank).mean()
                + sig.latency_for(delta.src, delta.dst).mean()
                + (sig.per_byte.mean() * delta.nbytes if delta.nbytes else 0.0)
            )
            base = per_round * delta.rounds
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown delta kind {kind!r}")
        return base * self.scale
