"""Simulated MPI runtime: the substrate replacing real MPI + PMPI tracing.

See DESIGN.md §2 for the substitution rationale.  Programs are
generators yielding :mod:`repro.mpisim.api` ops; :func:`run` executes
them on a :class:`Machine` and returns finish times plus a trace.
"""

from repro.mpisim.api import (
    ANY_SOURCE,
    ANY_TAG,
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Irecv,
    Isend,
    Op,
    RankInfo,
    Recv,
    Reduce,
    ReduceScatter,
    Scan,
    Scatter,
    Send,
    Sendrecv,
    Test,
    Wait,
    Waitall,
    Waitsome,
)
from repro.mpisim.clock import LocalClock, perfect_clocks, random_clocks
from repro.mpisim.engine import Engine, SimDeadlock, SimError
from repro.mpisim.network import NetworkModel
from repro.mpisim.request import Request, Status
from repro.mpisim.runtime import Machine, RunResult, run, run_to_files
from repro.mpisim.tracing import FileCollector, MemoryCollector

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Allgather",
    "Allreduce",
    "Alltoall",
    "Barrier",
    "Bcast",
    "Compute",
    "Gather",
    "Irecv",
    "Isend",
    "Op",
    "RankInfo",
    "Recv",
    "Reduce",
    "ReduceScatter",
    "Scan",
    "Scatter",
    "Send",
    "Sendrecv",
    "Test",
    "Wait",
    "Waitall",
    "Waitsome",
    "LocalClock",
    "perfect_clocks",
    "random_clocks",
    "Engine",
    "SimDeadlock",
    "SimError",
    "NetworkModel",
    "Request",
    "Status",
    "Machine",
    "RunResult",
    "run",
    "run_to_files",
    "FileCollector",
    "MemoryCollector",
]
