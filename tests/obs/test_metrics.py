"""Counter/gauge/timer semantics and the snapshot/merge round trip."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, Timer


def test_counter_sums():
    c = Counter()
    c.inc()
    c.inc(4)
    c.inc(0.5)
    assert c.value == 5.5


def test_gauge_modes():
    last = Gauge("last")
    for v in (3.0, 1.0, 2.0):
        last.set(v)
    assert last.value == 2.0

    hwm = Gauge("max")
    for v in (3.0, 1.0, 2.0):
        hwm.set(v)
    assert hwm.value == 3.0

    low = Gauge("min")
    for v in (3.0, 1.0, 2.0):
        low.set(v)
    assert low.value == 1.0

    with pytest.raises(ValueError):
        Gauge("median")


def test_timer_accumulates():
    t = Timer()
    assert t.mean == 0.0
    t.observe(0.2)
    t.observe(0.6)
    assert t.total == pytest.approx(0.8)
    assert t.count == 2
    assert t.max == pytest.approx(0.6)
    assert t.mean == pytest.approx(0.4)


def test_registry_fetch_or_create():
    reg = MetricsRegistry()
    assert len(reg) == 0
    c = reg.counter("events")
    assert reg.counter("events") is c
    assert "events" in reg
    assert len(reg) == 1

    with pytest.raises(TypeError):
        reg.gauge("events")
    with pytest.raises(TypeError):
        reg.timer("events")

    g = reg.gauge("hwm", "max")
    assert reg.gauge("hwm", "max") is g
    with pytest.raises(ValueError):
        reg.gauge("hwm", "last")


def test_snapshot_merge_equals_serial():
    """Merging N partial snapshots reproduces the serial totals exactly."""
    serial = MetricsRegistry()
    parts = [MetricsRegistry() for _ in range(3)]
    for i, part in enumerate(parts):
        for reg in (serial, part):
            reg.counter("replicates").inc(10 + i)
            reg.gauge("hwm", "max").set(float(i))
            reg.timer("phase").observe(0.1 * (i + 1))

    merged = MetricsRegistry()
    for part in parts:
        merged.merge(part.snapshot())

    assert merged.as_dict() == serial.as_dict()
    assert merged.counter("replicates").value == 10 + 11 + 12
    assert merged.gauge("hwm", "max").value == 2.0
    assert merged.timer("phase").count == 3


def test_merge_empty_gauge_and_unknown_kind():
    reg = MetricsRegistry()
    reg.merge({"empty": {"kind": "gauge", "mode": "last", "value": None}})
    assert "empty" not in reg
    with pytest.raises(ValueError):
        reg.merge({"x": {"kind": "histogram", "value": 1}})


def test_as_dict_shapes():
    reg = MetricsRegistry()
    reg.counter("n").inc(3)
    reg.gauge("g").set(1.5)
    reg.timer("t").observe(0.25)
    d = reg.as_dict()
    assert d["n"] == 3
    assert d["g"] == 1.5
    assert d["t"] == {
        "kind": "timer",
        "total": 0.25,
        "count": 1,
        "max": 0.25,
        "p50": 0.25,
        "p95": 0.25,
    }
    # the sample reservoir rides snapshots (for merge), never as_dict
    assert "samples" in reg.snapshot()["t"]
    assert "samples" not in d["t"]

    reg.clear()
    assert len(reg) == 0


def test_timer_percentiles_exact_when_unthinned():
    t = Timer()
    for ms in range(1, 101):  # 0.001 .. 0.100, well under the reservoir cap
        t.observe(ms / 1000.0)
    assert t.percentile(50) == pytest.approx(0.0505)
    assert t.percentile(95) == pytest.approx(0.09505)
    assert t.percentile(0) == pytest.approx(0.001)
    assert t.percentile(100) == pytest.approx(0.100)
    d = t.to_dict()
    assert d["p50"] == pytest.approx(0.0505)
    assert d["p95"] == pytest.approx(0.09505)


def test_timer_reservoir_bounded_and_total_exact():
    t = Timer()
    n = 20_000
    for i in range(n):
        t.observe(float(i))
    assert t.count == n
    assert t.total == pytest.approx(sum(range(n)))
    assert len(t.samples) < Timer._CAP
    # thinned tails are approximate but must stay in the observed range
    # and ordered sensibly
    assert 0.0 <= t.percentile(50) <= t.percentile(95) <= t.max == n - 1


def test_timer_merge_carries_samples():
    parts = [MetricsRegistry() for _ in range(2)]
    for i, part in enumerate(parts):
        for j in range(10):
            part.timer("phase").observe(float(10 * i + j))
    merged = MetricsRegistry()
    for part in parts:
        merged.merge(part.snapshot())
    t = merged.timer("phase")
    assert t.count == 20
    assert sorted(t.samples) == [float(x) for x in range(20)]
    assert t.percentile(50) == pytest.approx(9.5)

    # a legacy snapshot without samples still merges its totals
    merged.merge({"phase": {"kind": "timer", "total": 1.0, "count": 1, "max": 1.0}})
    assert merged.timer("phase").count == 21
