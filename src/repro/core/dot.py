"""Graphviz DOT export of message-passing graphs (Fig. 5, Appendix A).

The paper visualizes graphs "generated using our framework and
visualized using Graphviz"; :func:`to_dot` emits the DOT source.  Ranks
become clusters laid out as the familiar per-processor swim lanes;
local edges are solid, message edges dashed; optional delay annotations
show the propagated D values after a traversal.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.graph import EdgeKind, MessagePassingGraph, Phase

__all__ = ["to_dot"]


def _esc(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_label(node, delay: float | None) -> str:
    if node.is_virtual:
        base = node.label or f"virtual {node.node_id}"
    else:
        phase = "s" if node.phase == Phase.START else "e"
        base = f"{node.kind.name.lower()}.{phase}\\n#{node.seq} t={node.t_local:.0f}"
    if delay is not None:
        base += f"\\nD={delay:.1f}"
    return base


def to_dot(
    graph: MessagePassingGraph,
    name: str = "mpg",
    node_delay: Sequence[float] | None = None,
    max_nodes: int = 4000,
    rankdir: str = "LR",
) -> str:
    """Render the graph as DOT source.

    ``node_delay`` (from an in-core traversal) annotates nodes with
    their propagated delays.  Refuses graphs beyond ``max_nodes`` —
    Graphviz output at that scale is unreadable; take a window first.
    """
    if len(graph.nodes) > max_nodes:
        raise ValueError(
            f"graph has {len(graph.nodes)} nodes > max_nodes={max_nodes}; "
            f"export a smaller window instead"
        )
    if node_delay is not None and len(node_delay) != len(graph.nodes):
        raise ValueError("node_delay length does not match node count")

    lines = [f'digraph "{_esc(name)}" {{']
    lines.append(f"  rankdir={rankdir};")
    lines.append('  node [shape=box, fontsize=9, fontname="Helvetica"];')
    lines.append("  edge [fontsize=8];")

    for rank in range(graph.nprocs):
        members = [n for n in graph.nodes if n.rank == rank and not n.is_virtual]
        if not members:
            continue
        lines.append(f"  subgraph cluster_rank{rank} {{")
        lines.append(f'    label="rank {rank}";')
        lines.append("    style=dashed;")
        for node in sorted(members, key=lambda n: (n.seq, n.phase)):
            d = node_delay[node.node_id] if node_delay is not None else None
            lines.append(f'    n{node.node_id} [label="{_esc(_node_label(node, d))}"];')
        lines.append("  }")

    virtuals = [n for n in graph.nodes if n.is_virtual]
    for node in virtuals:
        d = node_delay[node.node_id] if node_delay is not None else None
        lines.append(
            f'  n{node.node_id} [label="{_esc(_node_label(node, d))}", '
            f"shape=ellipse, style=filled, fillcolor=lightgray];"
        )

    for edge in graph.edges:
        attrs = []
        label_bits = []
        if edge.label:
            label_bits.append(edge.label)
        if edge.kind == EdgeKind.LOCAL:
            if edge.weight:
                label_bits.append(f"w={edge.weight:.0f}")
        else:
            attrs.append("style=dashed")
        if label_bits:
            attrs.append(f'label="{_esc(" ".join(label_bits))}"')
        attr_str = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{attr_str};")

    lines.append("}")
    return "\n".join(lines) + "\n"
