"""Tests for trace → graph construction."""

import math

import pytest

from repro.core.builder import build_graph
from repro.core.graph import DeltaKind, Phase
from repro.core.primitives import BuildConfig
from repro.mpisim import Compute, Machine, Recv, Send, run
from repro.trace.events import EventKind


class TestStructure:
    def test_two_nodes_per_event(self, ring_trace):
        build = build_graph(ring_trace)
        per_rank = build.events
        real_nodes = sum(1 for n in build.graph.nodes if not n.is_virtual)
        assert real_nodes == 2 * sum(len(evs) for evs in per_rank)

    def test_straight_line_chains(self, ring_trace):
        build = build_graph(ring_trace)
        g = build.graph
        for rank in range(g.nprocs):
            chain = g.rank_chain(rank)
            # S/E alternation in seq order.
            phases = [g.nodes[n].phase for n in chain]
            assert phases[::2] == [Phase.START] * (len(chain) // 2)
            assert phases[1::2] == [Phase.END] * (len(chain) // 2)

    def test_final_nodes_are_finalize_ends(self, ring_trace):
        build = build_graph(ring_trace)
        g = build.graph
        for rank in range(g.nprocs):
            node = g.nodes[g.final_nodes[rank]]
            assert node.kind == EventKind.FINALIZE
            assert node.phase == Phase.END

    def test_local_edge_weights_are_observed_intervals(self, ring_trace):
        build = build_graph(ring_trace)
        g = build.graph
        for edge in g.local_edges():
            src, dst = g.nodes[edge.src], g.nodes[edge.dst]
            if src.is_virtual or dst.is_virtual:
                continue
            assert edge.weight == pytest.approx(dst.t_local - src.t_local)

    def test_message_edges_weight_zero(self, ring_trace):
        build = build_graph(ring_trace)
        for edge in build.graph.message_edges():
            assert edge.weight == 0.0  # §6

    def test_graph_is_dag(self, ring_trace, stencil_trace):
        for trace in (ring_trace, stencil_trace):
            build = build_graph(trace)
            order = build.graph.topological_order()
            assert len(order) == len(build.graph.nodes)

    def test_hub_virtual_node_per_unrooted_collective(self, ring_trace):
        build = build_graph(ring_trace)  # ends with one allreduce
        virtuals = [n for n in build.graph.nodes if n.is_virtual]
        assert len(virtuals) == 1
        assert virtuals[0].label.startswith("hub#")

    def test_butterfly_adds_round_nodes(self, ring_trace):
        build = build_graph(ring_trace, BuildConfig(collective_mode="butterfly"))
        virtuals = [n for n in build.graph.nodes if n.is_virtual]
        p = ring_trace.nprocs
        rounds = math.ceil(math.log2(p))
        assert len(virtuals) == p * (rounds + 1)

    def test_butterfly_larger_than_hub(self, ring_trace):
        hub = build_graph(ring_trace).graph.stats()
        bfly = build_graph(ring_trace, BuildConfig(collective_mode="butterfly")).graph.stats()
        assert bfly["edges"] > hub["edges"]
        assert bfly["nodes"] > hub["nodes"]


class TestTransfersInGraph:
    def test_every_transfer_has_data_edge(self, ring_trace):
        build = build_graph(ring_trace)
        data_edges = [
            e for e in build.graph.message_edges() if e.delta.kind == DeltaKind.TRANSFER_OS
        ]
        assert len(data_edges) == build.match.link_count()

    def test_eager_threshold_removes_acks(self, ring_trace):
        full = build_graph(ring_trace)
        eager = build_graph(ring_trace, BuildConfig(eager_threshold=10**6))
        full_acks = sum(
            1
            for e in full.graph.message_edges()
            if e.delta.kind in (DeltaKind.LATENCY, DeltaKind.ROUNDTRIP)
        )
        eager_acks = sum(
            1
            for e in eager.graph.message_edges()
            if e.delta.kind in (DeltaKind.LATENCY, DeltaKind.ROUNDTRIP)
        )
        assert full_acks > 0
        assert eager_acks == 0


class TestAbsoluteWeights:
    def test_absolute_mode_uses_time_differences(self):
        # Perfect clocks => cross-rank times comparable.
        def prog(me):
            if me.rank == 0:
                yield Compute(1000.0)
                yield Send(dest=1, nbytes=32)
            else:
                yield Recv(source=0)

        trace = run(prog, nprocs=2, seed=0).trace
        build = build_graph(trace, BuildConfig(absolute_weights=True))
        data = [
            e for e in build.graph.message_edges() if e.delta.kind == DeltaKind.TRANSFER_OS
        ][0]
        src, dst = build.graph.nodes[data.src], build.graph.nodes[data.dst]
        assert data.weight == pytest.approx(dst.t_local - src.t_local)
        assert data.weight > 0

    def test_default_mode_ignores_clock_differences(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=32)
            else:
                yield Recv(source=0)

        machine = Machine(nprocs=2).with_skewed_clocks(seed=1)
        trace = run(prog, machine=machine, seed=0).trace
        build = build_graph(trace)
        for e in build.graph.message_edges():
            assert e.weight == 0.0
