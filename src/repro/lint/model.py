"""Data model of the static analyzer: rules, findings, configuration.

A :class:`Rule` is one check with a stable id (``MPG001``), a
diagnostic ``code`` shared with the runtime error vocabulary
(:mod:`repro.core.diagnostics`), a default :class:`Severity`, and a
``category`` saying which layer it inspects (``trace`` = raw per-rank
event streams, ``graph`` = the built message-passing graph).  A
:class:`Finding` is one concrete defect a rule located, carrying the
rank/event/edge coordinates the reporters render.

Per-run behaviour is a :class:`LintConfig`: rules can be disabled,
their severity overridden, and the numeric thresholds of heuristic
rules tuned — all without touching the rule implementations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext

__all__ = ["Severity", "Rule", "Finding", "LintConfig"]


class Severity(enum.IntEnum):
    """Finding severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``result.level`` value."""
        return {Severity.INFO: "note", Severity.WARNING: "warning", Severity.ERROR: "error"}[self]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from error, warning, info"
            ) from None


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis check.

    ``check`` receives the :class:`~repro.lint.engine.LintContext` and
    the active :class:`LintConfig` and yields findings; it must not
    mutate either.  ``code`` ties the rule to the runtime diagnostic
    vocabulary so a crash deep in the builder and a lint finding name
    the same defect.
    """

    id: str  # "MPG001"
    code: str  # diagnostics code, e.g. "overlapping-events"
    severity: Severity
    category: str  # "trace" | "graph" | "diagnosis"
    summary: str  # one-line description (SARIF shortDescription)
    rationale: str  # why this defect matters (SARIF fullDescription)
    # Diagnosis rules receive a DiagnoseContext instead of a LintContext,
    # so the callable is typed loosely; both context types share the
    # finding-coordinate surface the reporters need.
    check: Callable[..., Iterator["Finding"]]

    def finding(
        self,
        message: str,
        rank: int | None = None,
        seq: int | None = None,
        node: int | None = None,
        edge: tuple[int, int] | None = None,
    ) -> "Finding":
        """A finding of this rule at its default severity."""
        return Finding(
            rule_id=self.id,
            code=self.code,
            severity=self.severity,
            message=message,
            rank=rank,
            seq=seq,
            node=node,
            edge=edge,
        )


@dataclass(frozen=True)
class Finding:
    """One defect located by a rule.

    ``rank``/``seq`` locate trace-level findings (the offending event);
    ``node``/``edge`` locate graph-level findings (node id, or
    ``(src, dst)`` node ids).  ``path`` is the trace file the event came
    from, when the linted trace set is file-backed.
    """

    rule_id: str
    code: str
    severity: Severity
    message: str
    rank: int | None = None
    seq: int | None = None
    node: int | None = None
    edge: tuple[int, int] | None = None
    path: str | None = None

    @property
    def location(self) -> str:
        """Compact human-readable location for the text reporter."""
        bits = []
        if self.rank is not None:
            bits.append(f"rank {self.rank}")
        if self.seq is not None:
            bits.append(f"event #{self.seq}")
        if self.node is not None:
            bits.append(f"node {self.node}")
        if self.edge is not None:
            bits.append(f"edge {self.edge[0]}->{self.edge[1]}")
        return ", ".join(bits) if bits else "run"

    def with_severity(self, severity: Severity) -> "Finding":
        return replace(self, severity=severity)

    def with_path(self, path: str | None) -> "Finding":
        return replace(self, path=path) if path is not None else self

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "code": self.code,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "rank": self.rank,
            "seq": self.seq,
            "node": self.node,
            "edge": list(self.edge) if self.edge is not None else None,
            "path": self.path,
        }


def _sorted_tuple(items: Iterable[str]) -> tuple[str, ...]:
    return tuple(sorted(items))


@dataclass(frozen=True)
class LintConfig:
    """Per-run rule configuration.

    disabled:
        Rule ids to skip entirely.
    severity_overrides:
        ``rule id -> Severity`` replacing the rule's default (e.g.
        promote ``MPG007`` to ERROR in a strict deployment).
    skew_tolerance:
        MPG007: flag a rank whose trace span deviates from the
        cross-rank median by more than this fraction.
    max_findings_per_rule:
        Emission cap so a systematically corrupt trace produces a
        readable report instead of one finding per event.
    """

    disabled: tuple[str, ...] = ()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    skew_tolerance: float = 0.5
    max_findings_per_rule: int = 100

    def __post_init__(self) -> None:
        object.__setattr__(self, "disabled", _sorted_tuple(self.disabled))
        if self.skew_tolerance <= 0:
            raise ValueError("skew_tolerance must be positive")
        if self.max_findings_per_rule < 1:
            raise ValueError("max_findings_per_rule must be >= 1")

    def enabled(self, rule: Rule) -> bool:
        return rule.id not in self.disabled

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        return self.severity_overrides.get(rule_id, default)
