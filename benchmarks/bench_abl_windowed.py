"""ABL2 — windowed streaming traversal vs in-core propagation.

The paper's scalability claim (§1 diff (3), §6, §7): the analyzer
streams arbitrarily large traces through a bounded window.  This
ablation verifies (a) bit-identical results, (b) bounded in-flight
state (the mailbox high-water mark stays flat as the trace grows), and
times both engines on a long token-ring trace.
"""

import time

import pytest

from benchmarks._common import bench_timings, emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, StreamingTraversal, build_graph, propagate
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature

P = 16


@pytest.fixture(scope="module")
def spec():
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(120.0), latency=Exponential(50.0)), seed=2
    )


def test_abl_windowed_equivalence_and_memory(spec, benchmark):
    rows = []
    long_trace = None
    t0 = time.perf_counter()
    for traversals in (5, 20, 80):
        trace = run(
            token_ring(TokenRingParams(traversals=traversals)), nprocs=P, seed=0
        ).trace
        events = sum(len(evs) for evs in trace.load_all())
        incore = propagate(build_graph(trace), spec)
        streaming_engine = StreamingTraversal(spec)
        streaming = streaming_engine.run(trace)
        for a, b in zip(incore.final_delay, streaming.final_delay):
            assert a == pytest.approx(b, abs=1e-6)
        rows.append([traversals, events, streaming_engine.max_mailbox])
        long_trace = trace

    out = table(
        ["ring traversals", "trace events", "mailbox high-water"],
        rows,
        widths=[16, 14, 20],
    )
    emit(
        "abl_windowed",
        out,
        params={"nprocs": P, "traversal_ladder": [5, 20, 80]},
        timings={"equivalence_s": time.perf_counter() - t0},
        metrics={"mailbox_hwm_by_traversals": {str(r[0]): r[2] for r in rows}},
    )

    # Bounded-memory claim: in-flight contributions do NOT grow with trace
    # length (a token ring keeps O(1) messages in flight per rank pair).
    highs = [r[2] for r in rows]
    assert highs[-1] <= highs[0] * 2 + P

    benchmark(lambda: StreamingTraversal(spec).run(long_trace))


def test_abl_windowed_throughput(spec, benchmark):
    """Events/second of the streaming engine on the long trace — the
    number the §7 scalability story depends on."""
    trace = run(token_ring(TokenRingParams(traversals=80)), nprocs=P, seed=0).trace
    events = sum(len(evs) for evs in trace.load_all())

    result = benchmark(lambda: StreamingTraversal(spec).run(trace))
    assert max(result.final_delay) > 0
    timings = bench_timings(benchmark)
    if timings:
        print(
            f"streaming throughput ≈ {events / timings['mean_s']:,.0f} events/s "
            f"({events} events)"
        )
