"""Tests for runtime impact, critical path, and absorption analyses."""

import pytest

from repro.apps import (
    MasterWorkerParams,
    TokenRingParams,
    master_worker,
    token_ring,
)
from repro.core import (
    PerturbationSpec,
    StreamingTraversal,
    absorption_map,
    build_graph,
    critical_path,
    propagate,
    runtime_impact,
)
from repro.mpisim import run
from repro.noise import Constant, MachineSignature


def spec(os=0.0, lat=0.0, per_byte=0.0, seed=0, by_rank=None):
    return PerturbationSpec(
        MachineSignature(
            os_noise=Constant(os),
            latency=Constant(lat),
            per_byte=Constant(per_byte),
            os_noise_by_rank=by_rank or {},
        ),
        seed=seed,
    )


class TestRuntimeImpact:
    def test_delays_and_slowdowns(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=100.0, lat=50.0))
        impact = runtime_impact(build, res)
        assert impact.delays == tuple(res.final_delay)
        assert len(impact.slowdowns) == ring_trace.nprocs
        for d, t, s in zip(impact.delays, impact.original_runtimes, impact.slowdowns):
            assert s == pytest.approx(d / t)
        assert impact.max_delay == max(impact.delays)

    def test_table_renders(self, ring_trace):
        build = build_graph(ring_trace)
        impact = runtime_impact(build, propagate(build, spec(os=10.0)))
        table = impact.table()
        assert "rank" in table
        assert len(table.splitlines()) == ring_trace.nprocs + 1


class TestCriticalPath:
    def test_pure_latency_ring_path_crosses_ranks(self):
        trace = run(token_ring(TokenRingParams(traversals=2)), nprocs=4, seed=0).trace
        build = build_graph(trace)
        res = propagate(build, spec(lat=100.0))
        cp = critical_path(build, res)
        assert cp.total_delay > 0
        assert len(cp.ranks_visited) > 1  # token delay chains across ranks
        assert cp.dominant_class() in ("TRANSFER_OS", "LATENCY")

    def test_attribution_sums_to_total(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=100.0, lat=25.0))
        cp = critical_path(build, res)
        assert sum(cp.by_delta_kind.values()) == pytest.approx(cp.total_delay)
        assert sum(cp.by_edge_kind.values()) == pytest.approx(cp.total_delay)

    def test_os_only_attribution(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=100.0))
        cp = critical_path(build, res)
        assert cp.dominant_class() == "OS"
        assert set(cp.by_delta_kind) <= {"OS", "TRANSFER_OS", "COLL_FANIN"}

    def test_explicit_rank_selection(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=50.0))
        cp = critical_path(build, res, rank=2)
        assert cp.rank == 2
        assert cp.total_delay == pytest.approx(res.final_delay[2])

    def test_zero_noise_empty_path(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec())
        cp = critical_path(build, res)
        assert cp.total_delay == 0.0
        assert cp.by_delta_kind == {}

    def test_requires_incore(self, ring_trace, const_spec):
        streaming = StreamingTraversal(const_spec).run(ring_trace)
        build = build_graph(ring_trace)
        with pytest.raises(ValueError):
            critical_path(build, streaming)


class TestAbsorption:
    def test_token_ring_mostly_propagates(self):
        """The fully synchronous ring (§6.1) propagates message delays."""
        trace = run(token_ring(TokenRingParams(traversals=3)), nprocs=4, seed=0).trace
        build = build_graph(trace)
        res = propagate(build, spec(lat=500.0))
        am = absorption_map(build, res)
        assert am.overall_ratio() < 0.5  # mostly binding (sensitive code)

    def test_master_worker_absorbs_more_than_ring(self):
        """§4.2's tolerant-vs-sensitive distinction: a task farm hides
        single-worker slowness better than a lockstep ring."""
        farm = run(
            master_worker(MasterWorkerParams(tasks=24, base_cycles=50_000.0)), nprocs=5, seed=0
        ).trace
        ring = run(token_ring(TokenRingParams(traversals=3)), nprocs=5, seed=0).trace
        s = spec(os=0.0, lat=0.0, by_rank={2: Constant(20_000.0)})
        farm_res = propagate(build_graph(farm), s)
        ring_res = propagate(build_graph(ring), s)
        am_farm = absorption_map(build_graph(farm), farm_res)
        am_ring = absorption_map(build_graph(ring), ring_res)
        assert am_farm.overall_ratio() > am_ring.overall_ratio()

    def test_counts_partition_events(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=100.0, lat=10.0))
        am = absorption_map(build, res)
        for rank in range(ring_trace.nprocs):
            listed = len(am.events[rank])
            assert listed == am.propagated_counts[rank] + am.absorbed_counts[rank]

    def test_absorbed_slack_nonnegative(self, stencil_trace):
        build = build_graph(stencil_trace)
        res = propagate(build, spec(os=200.0, lat=30.0))
        am = absorption_map(build, res)
        assert all(s >= 0.0 for s in am.slack.values())


class TestCriticalPathDescribe:
    def test_describe_lists_top_edges(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(os=100.0, lat=25.0))
        cp = critical_path(build, res)
        text = cp.describe(build, limit=5)
        assert "critical path of rank" in text
        assert "cy" in text
        # At most header + 5 contributor rows.
        assert len(text.splitlines()) <= 6
        assert "OS" in text or "TRANSFER_OS" in text

    def test_describe_zero_noise(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec())
        cp = critical_path(build, res)
        text = cp.describe(build)
        assert "0 cy over 0 edges" in text
