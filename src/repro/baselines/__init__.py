"""Baseline trace-analysis systems the paper compares against (§1.1)."""

from repro.baselines.dimemas import ReplayParams, ReplayResult, replay

__all__ = ["ReplayParams", "ReplayResult", "replay"]
