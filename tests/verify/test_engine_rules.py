"""The verification engine and the MPG3xx rule pack: configuration
validation, rule outcomes on known-verdict builds, severity policy, the
report renderings, and the Monte-Carlo bounds hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PerturbationSpec, build_graph, monte_carlo
from repro.core.diagnostics import DiagnosticError
from repro.lint import LintConfig, Severity, all_rules
from repro.lint.report import render_sarif
from repro.mpisim import run
from repro.testing.racegen import NPROCS, deadlock_program, race_program
from repro.verify import (
    VerifyConfig,
    VerifyReport,
    makespan_bounds,
    render_verify_text,
    verify_build,
    verify_run,
    verify_to_dict,
)
from repro.core.compiled import compiled_plan


def finding_ids(report):
    return [f.rule_id for f in report.findings]


class TestConfigValidation:
    def test_defaults_valid(self):
        VerifyConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"quantile": 0.2},
            {"quantile": 1.0},
            {"mode": "bogus"},
            {"coarsen": "sometimes"},
            {"engine": "gpu"},
            {"replicates": -1},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            VerifyConfig(**kw)


class TestRulePack:
    def test_catalog_registered(self):
        rules = all_rules("verify")
        assert [r.id for r in rules] == [
            "MPG300", "MPG301", "MPG302", "MPG303", "MPG310", "MPG311", "MPG312",
        ]
        assert all(r.category == "verify" for r in rules)

    def test_clean_run_with_signature(self, ring_trace, mixed_signature):
        report = verify_run(ring_trace, signature=mixed_signature)
        assert isinstance(report, VerifyReport)
        assert "MPG300" in finding_ids(report)  # certificate always stated
        assert "MPG301" in finding_ids(report)  # Exponential noise -> q-bounded
        assert report.errors == [] and report.warnings == []
        assert report.rules_run == tuple(r.id for r in all_rules("verify"))

    def test_absolute_certificate_skips_mpg301(self, ring_trace, const_signature):
        report = verify_run(ring_trace, signature=const_signature)
        assert "MPG300" in finding_ids(report)
        assert "MPG301" not in finding_ids(report)

    def test_no_signature_means_no_bounds_findings(self, ring_trace):
        report = verify_run(ring_trace)
        assert report.bounds is None
        assert not any(f.rule_id.startswith("MPG30") for f in report.findings)

    def test_containment_pass_fires_mpg302(self, ring_trace, mixed_signature):
        report = verify_run(
            ring_trace,
            VerifyConfig(replicates=10),
            signature=mixed_signature,
        )
        assert "MPG302" in finding_ids(report)
        assert report.replicates == 10
        assert report.containment_violations == ()

    def test_race_build_fires_mpg311_as_warning(self):
        build = build_graph(run(race_program, nprocs=NPROCS, seed=1).trace)
        report = verify_build(build)
        hits = [f for f in report.findings if f.rule_id == "MPG311"]
        assert len(hits) == 2
        assert all(f.severity == Severity.WARNING for f in hits)
        assert all(f.rank == 0 for f in hits)
        assert "match order" in hits[0].message

    def test_deadlock_build_fires_mpg312(self):
        build = build_graph(run(deadlock_program, nprocs=NPROCS, seed=1).trace)
        report = verify_build(build)
        assert "MPG312" in finding_ids(report)
        hit = next(f for f in report.findings if f.rule_id == "MPG312")
        assert hit.severity == Severity.WARNING
        assert "deadlock" in hit.message

    def test_matches_toggle_off(self):
        build = build_graph(run(race_program, nprocs=NPROCS, seed=1).trace)
        report = verify_build(build, VerifyConfig(matches=False))
        assert report.matches is None
        assert not any(f.rule_id.startswith("MPG31") for f in report.findings)

    def test_replicates_without_signature_rejected(self, ring_trace):
        with pytest.raises(ValueError, match="signature"):
            verify_run(ring_trace, VerifyConfig(replicates=5))


class TestLintMechanics:
    def test_disable_rule(self, ring_trace, mixed_signature):
        config = VerifyConfig(lint=LintConfig(disabled=("MPG301",)))
        report = verify_run(ring_trace, config, signature=mixed_signature)
        assert "MPG301" not in finding_ids(report)
        assert "MPG301" not in report.rules_run

    def test_severity_override_promotes_race_to_error(self):
        build = build_graph(run(race_program, nprocs=NPROCS, seed=1).trace)
        config = VerifyConfig(
            lint=LintConfig(severity_overrides={"MPG311": Severity.ERROR})
        )
        report = verify_build(build, config)
        assert report.errors and not report.ok


class TestMonteCarloHook:
    def test_narrowed_bounds_raise_containment_violation(self, ring_trace, mixed_signature):
        """Mutation check end-to-end: monte_carlo(bounds=...) must
        refuse replicates that escape a (deliberately wrong) bound."""
        build = build_graph(ring_trace)
        bounds = makespan_bounds(compiled_plan(build), mixed_signature)
        spec = PerturbationSpec(mixed_signature, seed=3)
        dist = monte_carlo(build, spec, replicates=10)
        narrowed = type(bounds)(
            rank_lo=bounds.rank_lo,
            rank_hi=np.median(dist.samples, axis=0),
            quantile=bounds.quantile,
            q_bounded_edges=bounds.q_bounded_edges,
            sampled_edges=bounds.sampled_edges,
            scale=bounds.scale,
            mode=bounds.mode,
            coarse=bounds.coarse,
        )
        with pytest.raises(DiagnosticError, match="escaped the certified") as exc:
            monte_carlo(build, spec, replicates=10, bounds=narrowed)
        assert exc.value.code == "containment-violation"

    def test_correct_bounds_pass_through(self, ring_trace, mixed_signature):
        build = build_graph(ring_trace)
        bounds = makespan_bounds(compiled_plan(build), mixed_signature)
        spec = PerturbationSpec(mixed_signature, seed=3)
        dist = monte_carlo(build, spec, replicates=10, bounds=bounds)
        assert dist.samples.shape[0] == 10


class TestRenderings:
    def test_text_certificate_and_match_lines(self, ring_trace, mixed_signature):
        report = verify_run(
            ring_trace, VerifyConfig(replicates=5), signature=mixed_signature
        )
        out = render_verify_text(report)
        assert "certified makespan delay in [" in out
        assert "sound up to q=" in out
        assert "containment cross-check over 5 replicates: all contained" in out
        assert "match analysis:" in out

    def test_verbose_lists_per_rank_intervals(self, ring_trace, mixed_signature):
        report = verify_run(ring_trace, signature=mixed_signature)
        out = render_verify_text(report, verbose=True)
        assert "rank 0:" in out and "rank 3:" in out

    def test_json_document_schema(self, ring_trace, mixed_signature):
        report = verify_run(
            ring_trace, VerifyConfig(replicates=5), signature=mixed_signature
        )
        doc = verify_to_dict(report)
        assert doc["schema"] == "repro-verify-report/1"
        v = doc["verification"]
        assert v["bounds"]["makespan_hi"] >= v["bounds"]["makespan_lo"]
        assert v["replicates"] == 5
        assert v["containment_violations"] == []
        # Ring receives use the default ANY_TAG, so they count as
        # (benign) wildcards: 4 ranks x 3 traversals.
        assert v["matches"]["wildcard_receives"] == 12
        assert v["matches"]["races"] == []

    def test_sarif_reuses_lint_reporter(self):
        build = build_graph(run(race_program, nprocs=NPROCS, seed=1).trace)
        report = verify_build(build)
        sarif = render_sarif(report)
        assert '"ruleId": "MPG311"' in sarif or '"MPG311"' in sarif
