"""Mraz-style point-to-point noise probe (§5.1; Mraz 1994).

Mraz measured the *variance* of point-to-point transfer times under OS
interference: a steady stream of identical small messages whose
inter-arrival jitter exposes preemptions on either endpoint.  Unlike
FTQ (which probes one node's noise in isolation), this probe sees the
combined effect of sender noise, receiver noise and network jitter —
closer to what a message-passing application experiences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpisim.api import Compute, RankInfo, Recv, Send
from repro.mpisim.runtime import Machine, run
from repro.noise.empirical import Empirical
from repro.trace.events import EventKind

__all__ = ["MrazResult", "run_mraz"]

_STREAM_TAG = 91


@dataclass(frozen=True)
class MrazResult:
    """Receiver-side message completion intervals."""

    intervals: tuple  # between consecutive recv completions, receiver's clock
    send_gap: float
    nbytes: int

    def jitter_samples(self) -> np.ndarray:
        """Deviation of each interval from the minimum (>= 0)."""
        iv = np.asarray(self.intervals)
        return iv - iv.min()

    def jitter_distribution(self, interpolate: bool = False) -> Empirical:
        return Empirical(self.jitter_samples(), interpolate=interpolate)

    def variance(self) -> float:
        """The statistic Mraz reported: transfer-interval variance."""
        return float(np.var(self.intervals))


def _mraz_program(messages: int, nbytes: int, send_gap: float):
    def program(me: RankInfo):
        if me.rank == 0:
            for _ in range(messages):
                yield Compute(send_gap)
                yield Send(dest=1, nbytes=nbytes, tag=_STREAM_TAG)
        elif me.rank == 1:
            for _ in range(messages):
                yield Recv(source=0, tag=_STREAM_TAG)

    return program


def run_mraz(
    machine: Machine,
    messages: int = 512,
    nbytes: int = 64,
    send_gap: float = 5_000.0,
    seed: int = 0,
    ranks: tuple[int, int] = (0, 1),
) -> MrazResult:
    """Stream ``messages`` fixed-size messages; intervals from the trace."""
    if machine.nprocs < 2:
        raise ValueError("mraz probe needs a machine with >= 2 ranks")
    if messages < 2:
        raise ValueError("need at least 2 messages for intervals")
    noise = machine.noise
    if isinstance(noise, tuple):
        noise = (noise[ranks[0]], noise[ranks[1]])
    bench_machine = Machine(nprocs=2, network=machine.network, noise=noise, name="mraz")
    result = run(
        _mraz_program(messages, nbytes, send_gap),
        machine=bench_machine,
        seed=seed,
        program_name="mraz",
    )
    ends = [
        ev.t_end
        for ev in result.trace.events_of(1)
        if ev.kind == EventKind.RECV and ev.tag == _STREAM_TAG
    ]
    if len(ends) != messages:
        raise RuntimeError(f"expected {messages} receives, extracted {len(ends)}")
    intervals = tuple(b - a for a, b in zip(ends, ends[1:]))
    return MrazResult(intervals=intervals, send_gap=send_gap, nbytes=nbytes)
