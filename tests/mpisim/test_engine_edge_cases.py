"""Edge-case behaviour of the simulation engine."""


from repro.mpisim import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Recv,
    ReduceScatter,
    Scan,
    Send,
    Waitall,
    run,
)
from repro.trace.events import EventKind
from repro.trace.validate import validate_traces


class TestDegenerate:
    def test_empty_program(self):
        def prog(me):
            return
            yield  # pragma: no cover

        res = run(prog, nprocs=3, seed=0)
        for rank in range(3):
            kinds = [e.kind for e in res.trace.events_of(rank)]
            assert kinds == [EventKind.INIT, EventKind.FINALIZE]

    def test_zero_cycle_compute(self):
        def prog(me):
            yield Compute(0.0)
            yield Compute(0.0)

        res = run(prog, nprocs=1, seed=0)
        assert res.makespan > 0  # just the init/finalize overheads

    def test_single_rank_collectives(self):
        def prog(me):
            yield Barrier()
            yield Allreduce(nbytes=64)
            yield Bcast(root=0, nbytes=8)
            yield Scan(nbytes=8)
            yield ReduceScatter(nbytes=8)

        res = run(prog, nprocs=1, seed=0)
        assert validate_traces(res.trace).ok
        colls = [e for e in res.trace.events_of(0) if e.kind.is_collective]
        assert len(colls) == 5

    def test_zero_byte_messages(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=0)
                yield Recv(source=1)
            else:
                yield Recv(source=0)
                yield Send(dest=0, nbytes=0)

        res = run(prog, nprocs=2, seed=0)
        assert validate_traces(res.trace).ok

    def test_empty_waitall(self):
        def prog(me):
            statuses = yield Waitall([])
            assert statuses == []

        res = run(prog, nprocs=1, seed=0)
        wa = [e for e in res.trace.events_of(0) if e.kind == EventKind.WAITALL]
        assert len(wa) == 1
        assert wa[0].reqs == ()


class TestManyMessagesOneChannel:
    def test_heavy_channel_fifo(self):
        """Hundreds of same-channel messages keep strict FIFO pairing."""
        n = 300

        def prog(me):
            if me.rank == 0:
                for i in range(n):
                    yield Send(dest=1, nbytes=i % 97)
            else:
                for i in range(n):
                    st = yield Recv(source=0)
                    assert st.nbytes == i % 97  # order preserved

        res = run(prog, nprocs=2, seed=0)
        assert validate_traces(res.trace).ok


class TestManyRanks:
    def test_wide_barrier(self):
        def prog(me):
            yield Compute(10.0 * me.rank)
            yield Barrier()

        res = run(prog, nprocs=200, seed=0)
        entries = []
        exits = []
        for rank in range(200):
            ev = next(e for e in res.trace.events_of(rank) if e.kind == EventKind.BARRIER)
            entries.append(ev.t_start)
            exits.append(ev.t_end)
        assert min(exits) > max(entries)

    def test_trace_validates_at_scale(self):
        def prog(me):
            p = me.size
            yield Send(dest=(me.rank + 1) % p, nbytes=8) if me.rank % 2 == 0 else Compute(1.0)
            if me.rank % 2 == 0:
                yield Recv(source=(me.rank - 1) % p)
            else:
                yield Recv(source=(me.rank - 1) % p)
                yield Send(dest=(me.rank + 1) % p, nbytes=8)

        # Even p so the alternating pattern closes the ring.
        res = run(prog, nprocs=64, seed=0)
        assert validate_traces(res.trace).ok
