"""Build-cache tests: content addressing, LRU, coalescing, containment.

Everything here drives :class:`~repro.serve.scheduler.BuildCache`
directly on a private event loop (``asyncio.run`` inside sync tests —
the suite carries no async test plugin).
"""

import asyncio
import shutil

import pytest

from repro.core.primitives import BuildConfig
from repro.mpisim import run_to_files
from repro.serve.scheduler import BuildCache, _dir_key, _upload_key
from repro.serve.wire import ServeError
from tests.conftest import _ring_program


@pytest.fixture(scope="module")
def traces_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("serve-traces")
    run_to_files(_ring_program, d, "ring", nprocs=4, seed=3, program_name="ring")
    return d


def _request(traces=None, stem="ring", upload=None):
    return {"traces": traces, "stem": stem, "upload": upload, "signature": None,
            "params": {}, "inject": None}


class TestContentAddressing:
    def test_same_dir_twice_hits_cache(self, traces_dir):
        async def main():
            cache = BuildCache(4)
            e1, cached1 = await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            e2, cached2 = await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            assert (cached1, cached2) == (False, True)
            assert e1 is e2
            assert cache.stats()["builds"] == 1
            assert cache.stats()["hits"] == 1
            cache.clear()
        asyncio.run(main())

    def test_renamed_dir_with_same_bytes_hits_cache(self, traces_dir, tmp_path):
        copy = tmp_path / "elsewhere"
        shutil.copytree(traces_dir, copy)
        async def main():
            cache = BuildCache(4)
            _, cached1 = await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            _, cached2 = await cache.entry_for(_request(str(copy)), BuildConfig())
            assert (cached1, cached2) == (False, True)
            assert cache.stats()["builds"] == 1
            cache.clear()
        asyncio.run(main())

    def test_upload_of_identical_bytes_shares_the_entry(self, traces_dir):
        upload = {p.name: p.read_text() for p in sorted(traces_dir.iterdir())}
        async def main():
            cache = BuildCache(4)
            _, cached1 = await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            entry, cached2 = await cache.entry_for(_request(upload=upload), BuildConfig())
            assert (cached1, cached2) == (False, True)
            assert entry.tempdir is None  # served from the dir-built entry
            cache.clear()
        asyncio.run(main())

    def test_different_config_is_a_different_key(self, traces_dir):
        async def main():
            cache = BuildCache(4)
            await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            await cache.entry_for(
                _request(str(traces_dir)), BuildConfig(collective_mode="butterfly")
            )
            assert cache.stats()["builds"] == 2
            cache.clear()
        asyncio.run(main())

    def test_dir_and_upload_key_agree_on_content(self, traces_dir):
        upload = {p.name: p.read_text() for p in traces_dir.iterdir()}
        config = BuildConfig()
        assert _dir_key(traces_dir, "ring", config) == _upload_key(upload, config)

    def test_missing_stem_is_input_error(self, traces_dir):
        async def main():
            cache = BuildCache(4)
            with pytest.raises(ServeError, match="no trace files"):
                await cache.entry_for(_request(str(traces_dir), stem="ghost"), BuildConfig())
        asyncio.run(main())


class TestCoalescing:
    def test_concurrent_requests_share_one_build(self, traces_dir):
        async def main():
            cache = BuildCache(4)
            results = await asyncio.gather(
                *(cache.entry_for(_request(str(traces_dir)), BuildConfig()) for _ in range(6))
            )
            entries = {id(e) for e, _ in results}
            assert len(entries) == 1
            assert cache.stats()["builds"] == 1
            # one requester paid, the rest coalesced onto its task
            assert sum(1 for _, cached in results if not cached) == 1
            assert cache.stats()["coalesced"] == 5
            cache.clear()
        asyncio.run(main())

    def test_build_survives_requester_cancellation(self, traces_dir):
        async def main():
            cache = BuildCache(4)
            task = asyncio.ensure_future(
                cache.entry_for(_request(str(traces_dir)), BuildConfig())
            )
            # let the build get registered in flight, then abandon it
            while not cache._inflight:
                await asyncio.sleep(0.001)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # the shielded build completes and lands in the cache anyway
            await asyncio.gather(*cache._inflight.values())
            await asyncio.sleep(0)  # let done-callbacks run
            assert cache.stats()["builds"] == 1
            _, cached = await cache.entry_for(_request(str(traces_dir)), BuildConfig())
            assert cached is True
            cache.clear()
        asyncio.run(main())

    def test_failed_build_is_not_cached_and_retries(self, traces_dir, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "ring.rank0000.trace.jsonl").write_text("this is not a trace\n")
        async def main():
            cache = BuildCache(4)
            with pytest.raises(ServeError):
                await cache.entry_for(_request(str(bad)), BuildConfig())
            assert cache.stats()["builds"] == 0
            assert len(cache) == 0
            assert not cache._inflight
        asyncio.run(main())


class TestLRU:
    def test_eviction_keeps_capacity_and_cleans_up(self, traces_dir):
        upload = {p.name: p.read_text() for p in traces_dir.iterdir()}
        async def main():
            cache = BuildCache(1)
            e1, _ = await cache.entry_for(_request(upload=upload), BuildConfig())
            tempdir = e1.tempdir
            assert tempdir is not None
            await cache.entry_for(
                _request(str(traces_dir)), BuildConfig(collective_mode="butterfly")
            )
            assert len(cache) == 1
            assert e1.tempdir is None  # evicted entry's upload dir cleaned up
            cache.clear()
        asyncio.run(main())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BuildCache(0)


class TestTraceRootConfinement:
    def test_outside_path_is_forbidden(self, traces_dir, tmp_path):
        async def main():
            cache = BuildCache(2, trace_root=str(tmp_path))
            with pytest.raises(ServeError, match="outside"):
                await cache.entry_for(_request(str(traces_dir)), BuildConfig())
        asyncio.run(main())

    def test_relative_path_resolves_under_root(self, traces_dir, tmp_path):
        shutil.copytree(traces_dir, tmp_path / "inside")
        async def main():
            cache = BuildCache(2, trace_root=str(tmp_path))
            _, cached = await cache.entry_for(_request("inside"), BuildConfig())
            assert cached is False
            cache.clear()
        asyncio.run(main())

    def test_dotdot_escape_is_forbidden(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        async def main():
            cache = BuildCache(2, trace_root=str(root))
            with pytest.raises(ServeError, match="outside"):
                await cache.entry_for(_request("../"), BuildConfig())
        asyncio.run(main())
