"""Text rendering of per-rank delay timelines (§4.2 sensitivity view).

Turns :func:`repro.core.analysis.delay_timeline` output into a compact
bar chart: one row per event, bar length ∝ accumulated delay, with the
per-event increment called out — flat stretches are tolerant code,
jumps are where perturbation was injected or arrived from remote ranks.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_delay_timeline"]


def render_delay_timeline(
    points: Sequence, width: int = 50, min_increment: float = 0.0
) -> str:
    """ASCII chart of one rank's accumulated delay per event.

    ``points`` is the list of :class:`~repro.core.analysis.DelayPoint`
    from :func:`delay_timeline`; events whose increment is below
    ``min_increment`` are collapsed into ``...`` runs to keep long
    tolerant stretches readable.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not points:
        return "(no events)"
    peak = max(p.delay for p in points)
    scale = (width - 1) / peak if peak > 0 else 0.0
    lines = []
    skipped = 0
    for p in points:
        if p.increment < min_increment and p.delay < peak:
            skipped += 1
            continue
        if skipped:
            lines.append(f"       ... {skipped} event(s) with no delay growth ...")
            skipped = 0
        bar = "#" * max(int(p.delay * scale), 1 if p.delay > 0 else 0)
        marker = f" (+{p.increment:,.0f})" if p.increment > 0 else ""
        lines.append(f"#{p.seq:>4} {p.kind:<10} |{bar:<{width}}| {p.delay:>10,.0f}{marker}")
    if skipped:
        lines.append(f"       ... {skipped} event(s) with no delay growth ...")
    return "\n".join(lines)
