"""repro — message-passing graph traversal performance analysis.

Reproduction of Sottile, Chandu & Bader, *Performance analysis of
parallel programs via message-passing graph traversal* (IPPS 2006).

Layers (bottom-up):

* :mod:`repro.noise` — perturbation distributions, fitting, machine signatures (§5)
* :mod:`repro.trace` — event model, trace files, streaming readers (§4)
* :mod:`repro.mpisim` — simulated MPI runtime producing traces (DESIGN.md §2)
* :mod:`repro.microbench` — FTQ / ping-pong / bandwidth / Mraz probes (§5)
* :mod:`repro.core` — the paper's contribution: message-passing graph
  construction, perturbation propagation, analysis (§2–§4, §6)
* :mod:`repro.apps` — traceable workloads (token ring of §6.1 and others)
* :mod:`repro.machines` — preset platforms
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
