"""Engine behaviour: configuration, emission caps, guarded builds,
and the registry's catalog invariants.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_graph
from repro.core.diagnostics import CODES, DiagnosticError
from repro.lint import (
    LintConfig,
    Severity,
    all_rules,
    get_rule,
    lint_build,
    lint_run,
    lint_traces,
    rule_for_code,
)
from repro.trace.events import EventKind
from tests.lint.helpers import ev, memory_trace, wrap


def overlap_trace(n_overlaps=5):
    """One rank whose events all start inside the long INIT event."""
    events = [ev(0, 0, EventKind.INIT, 0.0, 100.0)]
    for i in range(1, n_overlaps):
        events.append(ev(0, i, EventKind.SEND, float(i), float(i + 1), peer=0, tag=0, nbytes=8))
    events.append(ev(0, n_overlaps, EventKind.FINALIZE, float(n_overlaps), float(n_overlaps + 1)))
    return memory_trace(events)


def matched_trace():
    t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=64))])
    t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=64))])
    return memory_trace(t0, t1)


class TestRegistry:
    def test_catalog_shape(self):
        rules = all_rules()
        assert len(rules) == 25  # 12 trace/graph + 6 diagnosis + 7 verify
        assert [r.id for r in rules] == sorted({r.id for r in rules})
        assert all(r.code in CODES for r in rules)
        assert all(r.category in ("trace", "graph", "diagnosis", "verify") for r in rules)
        assert all(r.summary and r.rationale for r in rules)

    def test_categories_split(self):
        assert [r.id for r in all_rules("trace")] == [f"MPG00{i}" for i in range(1, 8)]
        assert [r.id for r in all_rules("graph")] == [f"MPG10{i}" for i in range(1, 6)]
        assert [r.id for r in all_rules("diagnosis")] == [
            "MPG200", "MPG201", "MPG202", "MPG210", "MPG211", "MPG212",
        ]
        assert [r.id for r in all_rules("verify")] == [
            "MPG300", "MPG301", "MPG302", "MPG303", "MPG310", "MPG311", "MPG312",
        ]

    def test_lookup(self):
        assert get_rule("MPG001").code == "overlapping-events"
        assert rule_for_code("graph-cycle").id == "MPG101"
        assert rule_for_code("invalid-gap") is None  # runtime-only code
        with pytest.raises(KeyError):
            get_rule("MPG999")


class TestConfig:
    def test_disable_rule(self):
        report = lint_traces(overlap_trace(), LintConfig(disabled=("MPG001",)))
        assert report.findings == []
        assert "MPG001" not in report.rules_run
        assert "MPG002" in report.rules_run

    def test_severity_override_promotes(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 1, EventKind.SEND, 1.0, 2.0, peer=0, tag=0, nbytes=8),
        ]
        config = LintConfig(severity_overrides={"MPG004": Severity.ERROR})
        report = lint_traces(memory_trace(events), config)
        assert [f.rule_id for f in report.findings] == ["MPG004"]
        assert report.findings[0].severity == Severity.ERROR
        assert not report.ok

    def test_severity_override_demotes(self):
        config = LintConfig(severity_overrides={"MPG001": Severity.INFO})
        report = lint_traces(overlap_trace(), config)
        assert report.findings
        assert all(f.severity == Severity.INFO for f in report.findings)
        assert report.ok

    def test_emission_cap_and_suppression_notice(self):
        report = lint_traces(overlap_trace(6), LintConfig(max_findings_per_rule=3))
        mpg1 = [f for f in report.findings if f.rule_id == "MPG001"]
        assert len(mpg1) == 4  # 3 findings + 1 suppression notice
        assert sum("suppressed" in f.message for f in mpg1) == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LintConfig(skew_tolerance=0.0)
        with pytest.raises(ValueError):
            LintConfig(max_findings_per_rule=0)


class TestGuardedBuild:
    def test_build_error_covered_by_rule_finding_not_duplicated(self):
        # Unmatched send: MPG102 reports it AND the build fails with the
        # same diagnostics code -- the report must carry it once.
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8))])
        report = lint_run(memory_trace(t0, wrap(1, [])))
        assert [f.rule_id for f in report.findings] == ["MPG102"]
        assert not report.graph_checked

    def test_build_error_becomes_owner_rule_finding(self, monkeypatch):
        def boom(source, config=None):
            raise DiagnosticError("synthetic cycle", code="graph-cycle", rank=1, seq=4)

        monkeypatch.setattr("repro.lint.engine.build_graph", boom)
        report = lint_run(matched_trace())
        (f,) = report.findings
        assert f.rule_id == "MPG101" and f.code == "graph-cycle"
        assert f.rank == 1 and f.seq == 4
        assert "graph build failed" in f.message

    def test_unowned_build_error_becomes_mpg000(self, monkeypatch):
        def boom(source, config=None):
            raise DiagnosticError("bad gap", code="invalid-gap", rank=0, seq=2)

        monkeypatch.setattr("repro.lint.engine.build_graph", boom)
        report = lint_run(matched_trace())
        (f,) = report.findings
        assert f.rule_id == "MPG000" and f.code == "invalid-gap"
        assert f.severity == Severity.ERROR

    def test_lint_build_accepts_build_result(self):
        result = build_graph(matched_trace())
        report = lint_build(result)
        assert report.findings == []
        assert report.graph_checked
        assert report.nprocs == 2


class TestReportShape:
    def test_summary_and_counts(self):
        report = lint_run(matched_trace())
        assert report.counts() == {}
        assert "2 ranks" in report.summary()
        assert "graph checked" in report.summary()

    def test_findings_sorted_errors_first(self):
        # missing FINALIZE (warning) + overlap (error) in one trace
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 10.0),
            ev(0, 1, EventKind.SEND, 1.0, 2.0, peer=0, tag=0, nbytes=8),
        ]
        report = lint_traces(memory_trace(events))
        severities = [f.severity for f in report.findings]
        assert severities == sorted(severities, reverse=True)
        assert {f.rule_id for f in report.findings} == {"MPG001", "MPG004"}
