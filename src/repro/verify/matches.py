"""Match-nondeterminism and deadlock-potential analysis.

A trace records *one* completed run, including which sender each
wildcard receive (``ANY_SOURCE``/``ANY_TAG``) actually matched.  The
MPI standard permits other matchings; this module asks, statically,
whether any alternative was genuinely feasible — and whether some
alternative would have left a receive with no sender (a would-block
chain, i.e. deadlock potential under reordered matches).

The feasibility test is conservative in the sound direction.  It builds
a happens-before (HB) order over all events via vector clocks:

* per-rank program order;
* matched send -> receive *completion point* (the RECV/SENDRECV event
  itself, or the completion op that retired an IRECV's request);
* collectives as synchronization points: everything before any member's
  call happens-before everything after every member's call.

``hb(a, b)`` is then an O(1) clock lookup.  HB derived this way
under-approximates the true ordering (it only uses orderings every
legal execution must respect), so "no HB edge" over-approximates
concurrency: a reported race can at worst be infeasible for a subtler
reason, but no feasible race is missed.

A sender ``s`` is a *swap-closable alternative* for wildcard receive
``r1`` (matched to ``m1``) when:

* ``s`` is destined to ``r1``'s rank and compatible with ``r1``'s
  posted (wildcard) signature;
* ``s`` comes from a different rank than ``m1`` — same-source messages
  to one destination cannot overtake each other under MPI's
  non-overtaking rule, so they are never genuine alternatives;
* ``r1``'s completion does not happen-before ``s`` (otherwise ``s``
  was provably posted too late to race);
* the receive ``r2`` that actually took ``s`` could accept ``m1``
  instead (signature-compatible, and ``r2``'s completion does not
  happen-before ``m1``) — the swapped matching must be closable.

When instead ``r1`` could steal ``s`` but ``s``'s actual receive ``r2``
cannot accept ``m1`` and has no other feasible sender, the swapped
execution blocks ``r2`` forever: a deadlock-potential chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.trace.events import EventKind, EventRecord

__all__ = ["DeadlockChain", "MatchAnalysis", "MatchRace", "analyze_matches"]

Key = tuple[int, int]


@dataclass(frozen=True)
class MatchRace:
    """One wildcard receive with at least one swap-closable alternative."""

    recv: Key
    matched: Key
    alternatives: tuple[Key, ...]
    divergent: tuple[Key, ...]
    """Alternatives whose tag or payload size differs from the matched
    send — swapping them is observable by the program."""

    def as_dict(self) -> dict[str, Any]:
        return {
            "recv": list(self.recv),
            "matched": list(self.matched),
            "alternatives": [list(k) for k in self.alternatives],
            "divergent": [list(k) for k in self.divergent],
        }


@dataclass(frozen=True)
class DeadlockChain:
    """A would-block chain: if ``recv`` stole ``stolen`` from ``starved``,
    ``starved`` would have no remaining feasible sender."""

    recv: Key
    matched: Key
    stolen: Key
    starved: Key

    def as_dict(self) -> dict[str, Any]:
        return {
            "recv": list(self.recv),
            "matched": list(self.matched),
            "stolen": list(self.stolen),
            "starved": list(self.starved),
        }


@dataclass(frozen=True)
class MatchAnalysis:
    """Everything the MPG31x rules report on."""

    events: int
    wildcard_receives: int
    races: tuple[MatchRace, ...]
    deadlocks: tuple[DeadlockChain, ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "events": self.events,
            "wildcard_receives": self.wildcard_receives,
            "races": [r.as_dict() for r in self.races],
            "deadlocks": [d.as_dict() for d in self.deadlocks],
        }


_RECV_KINDS = frozenset({EventKind.RECV, EventKind.IRECV, EventKind.SENDRECV})


def _recv_signature(ev: EventRecord) -> tuple[int | None, int | None]:
    """The *posted* (source, tag) of a receive; None = wildcard."""
    if ev.kind == EventKind.SENDRECV:
        return (
            None if ev.src_any else ev.recv_peer,
            None if ev.tag_any else ev.recv_tag,
        )
    return (None if ev.src_any else ev.peer, None if ev.tag_any else ev.tag)


def _send_meta(ev: EventRecord) -> tuple[int, int, int]:
    """(dest, tag, nbytes) of a send-side event (send half of SENDRECV)."""
    return ev.peer, ev.tag, ev.nbytes


def _compat(recv_ev: EventRecord, send_ev: EventRecord) -> bool:
    src, tag = _recv_signature(recv_ev)
    _, s_tag, _ = _send_meta(send_ev)
    return (src is None or src == send_ev.rank) and (tag is None or tag == s_tag)


class _HappensBefore:
    """Vector clocks over all events; ``hb(a, b)`` in O(1).

    ``VC[e][k]`` is the number of rank-``k`` events in ``e``'s causal
    past (including ``e`` itself for ``k == e.rank``), so
    ``hb(a, b) == VC[b][a.rank] > a.seq`` for ``a != b``.
    """

    def __init__(
        self, events: list[list[EventRecord]], preds: dict[Key, list[Key]]
    ) -> None:
        self.nprocs = len(events)
        self._base = [0] * (self.nprocs + 1)
        for r, evs in enumerate(events):
            self._base[r + 1] = self._base[r] + len(evs)
        n = self._base[-1]
        self.vc = np.zeros((n, self.nprocs), dtype=np.int64)
        # Kahn over program order + cross edges.
        indeg = np.zeros(n, dtype=np.int64)
        succs: dict[int, list[int]] = {}
        for r, evs in enumerate(events):
            for ev in evs:
                i = self.index(ev.key)
                if ev.seq > 0:
                    indeg[i] += 1
                    succs.setdefault(self.index((r, ev.seq - 1)), []).append(i)
                for p in preds.get(ev.key, ()):
                    indeg[i] += 1
                    succs.setdefault(self.index(p), []).append(i)
        ready = [i for i in range(n) if indeg[i] == 0]
        done = 0
        flat = [ev for evs in events for ev in evs]
        while ready:
            i = ready.pop()
            done += 1
            ev = flat[i]
            vc = self.vc[i]
            if ev.seq > 0:
                np.maximum(vc, self.vc[self.index((ev.rank, ev.seq - 1))], out=vc)
            for p in preds.get(ev.key, ()):
                np.maximum(vc, self.vc[self.index(p)], out=vc)
            vc[ev.rank] = ev.seq + 1
            for j in succs.get(i, ()):
                indeg[j] -= 1
                if indeg[j] == 0:
                    ready.append(j)
        if done != n:
            raise ValueError(
                "happens-before graph has a cycle — trace and matching are inconsistent"
            )

    def index(self, key: Key) -> int:
        return self._base[key[0]] + key[1]

    def hb(self, a: Key, b: Key) -> bool:
        """Strict happens-before: ``a`` precedes ``b`` in every legal
        execution consistent with the recorded orderings."""
        if a == b:
            return False
        return bool(self.vc[self.index(b)][a[0]] > a[1])


def _completion_key(ev: EventRecord, completion_of: dict) -> Key:
    """Where a receive's value becomes available on its rank."""
    if ev.kind == EventKind.IRECV:
        got = completion_of.get(ev.key)
        return (got[0], got[1]) if got is not None else ev.key
    return ev.key


def _collective_preds(
    build: BuildResult, preds: dict[Key, list[Key]]
) -> None:
    """Synchronization-point HB edges for every matched collective.

    For members ``a != b``: (entry) ``a``'s predecessor -> ``b``'s
    collective event, and (exit) ``a``'s collective event -> ``b``'s
    successor.  Both edge families point strictly forward in per-rank
    sequence, so they cannot create cycles.
    """
    events = build.events
    for group in build.match.collectives:
        members = [k for k in group.members if k is not None]
        for a in members:
            a_rank, a_seq = a
            for b in members:
                if b == a:
                    continue
                if a_seq > 0:
                    preds.setdefault(b, []).append((a_rank, a_seq - 1))
                nxt = (b[0], b[1] + 1)
                if nxt[1] < len(events[nxt[0]]):
                    preds.setdefault(nxt, []).append(a)


def analyze_matches(build: BuildResult) -> MatchAnalysis:
    """Run the full analysis over a build's trace + match results."""
    events = build.events
    match = build.match
    with obs.span("verify.matches", events=sum(len(e) for e in events)):
        preds: dict[Key, list[Key]] = {}
        # Matched send -> receive completion point.  A SENDRECV event is
        # both a send posting and a receive completion; treating it as
        # atomic would turn two mutually exchanging SENDRECVs into a
        # false HB cycle, so a SENDRECV sender's edge originates from
        # its program predecessor (the posting happens on entry, after
        # everything the rank did before — but not after the event's own
        # receive half completes).
        for skey, rkey in match.transfer_of.items():
            rev = events[rkey[0]][rkey[1]]
            sev = events[skey[0]][skey[1]]
            if sev.kind == EventKind.SENDRECV:
                if skey[1] == 0:
                    continue
                src = (skey[0], skey[1] - 1)
            else:
                src = skey
            preds.setdefault(_completion_key(rev, match.completion_of), []).append(src)
        _collective_preds(build, preds)
        hb = _HappensBefore(events, preds)

        # Send events grouped by destination rank.
        sends_to: dict[int, list[Key]] = {}
        for skey in match.transfer_of:
            dest, _, _ = _send_meta(events[skey[0]][skey[1]])
            sends_to.setdefault(dest, []).append(skey)

        def recv_completion(key: Key) -> Key:
            return _completion_key(events[key[0]][key[1]], match.completion_of)

        def feasible_senders(rkey: Key) -> list[Key]:
            """Senders ``r`` could legally have matched (HB-pruned)."""
            rev = events[rkey[0]][rkey[1]]
            r_c = recv_completion(rkey)
            out = []
            for skey in sends_to.get(rkey[0], ()):
                sev = events[skey[0]][skey[1]]
                if _compat(rev, sev) and not hb.hb(r_c, skey):
                    out.append(skey)
            return out

        races: list[MatchRace] = []
        deadlocks: list[DeadlockChain] = []
        n_wild = 0
        for rank_events in events:
            for r1 in rank_events:
                if r1.kind not in _RECV_KINDS or not (r1.src_any or r1.tag_any):
                    continue
                n_wild += 1
                m1key = match.reverse_transfer_of.get(r1.key)
                if m1key is None:
                    continue  # never resolved; nothing to compare against
                m1 = events[m1key[0]][m1key[1]]
                r1_c = recv_completion(r1.key)
                alternatives: list[Key] = []
                divergent: list[Key] = []
                for skey in sends_to.get(r1.rank, ()):
                    if skey == m1key:
                        continue
                    sev = events[skey[0]][skey[1]]
                    if sev.rank == m1.rank:
                        continue  # non-overtaking: same-source order is fixed
                    if not _compat(r1, sev) or hb.hb(r1_c, skey):
                        continue
                    r2key = match.transfer_of[skey]
                    r2 = events[r2key[0]][r2key[1]]
                    if _compat(r2, m1) and not hb.hb(recv_completion(r2key), m1key):
                        # Swap-closable: r1 takes s, r2 takes m1.
                        alternatives.append(skey)
                        _, s_tag, s_nbytes = _send_meta(sev)
                        _, m_tag, m_nbytes = _send_meta(m1)
                        if s_tag != m_tag or s_nbytes != m_nbytes:
                            divergent.append(skey)
                    elif not _compat(r2, m1):
                        # r1 could steal s, but s's receive cannot take m1:
                        # does r2 have any other feasible sender left?
                        others = [k for k in feasible_senders(r2key) if k != skey]
                        if not others:
                            deadlocks.append(
                                DeadlockChain(
                                    recv=r1.key, matched=m1key, stolen=skey, starved=r2key
                                )
                            )
                if alternatives:
                    races.append(
                        MatchRace(
                            recv=r1.key,
                            matched=m1key,
                            alternatives=tuple(alternatives),
                            divergent=tuple(divergent),
                        )
                    )
        analysis = MatchAnalysis(
            events=sum(len(e) for e in events),
            wildcard_receives=n_wild,
            races=tuple(races),
            deadlocks=tuple(deadlocks),
        )
        obs.span_add("verify.wildcards", n_wild)
        if races:
            obs.span_add("verify.races", len(races))
        if deadlocks:
            obs.span_add("verify.deadlocks", len(deadlocks))
        return analysis
