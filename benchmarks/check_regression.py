"""Benchmark regression guard: fresh results vs committed baselines.

Compares freshly emitted ``repro-bench-result/1`` JSON artifacts (see
:mod:`benchmarks._common`) against the committed baselines under
``benchmarks/results/``.  A fresh timing is a **regression** when it
exceeds ``tolerance x baseline`` — the tolerance is generous (2x by
default) because CI runners differ from the machines that recorded the
baselines; the guard exists to catch order-of-magnitude slowdowns (an
accidentally de-vectorized kernel, a quadratic chunk assembly), not 10%
jitter.

Only comparable entries are compared: a fresh result whose ``params``
disagree with the baseline's (ignoring volatile keys like ``cores``)
is skipped and reported as such, so smoke runs with tiny replicate
counts never produce false alarms.  The full comparison is written as a
JSON diff for CI artifact upload.

Usage (what the CI benchmark-smoke job runs)::

    python benchmarks/check_regression.py \
        --baseline /tmp/bench-baseline --fresh benchmarks/results \
        --out regression-diff.json

Exit status 1 iff at least one regression was found.  The tolerance can
also be set via ``REPRO_BENCH_REGRESSION_TOL``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

SCHEMA = "repro-bench-result/1"

#: Params that legitimately differ across machines without making the
#: timings incomparable under a generous tolerance.
VOLATILE_PARAMS = frozenset({"cores", "jobs_ladder"})


def load_results(directory: Path) -> dict[str, dict]:
    """All ``repro-bench-result/1`` records in ``directory``, by name."""
    out = {}
    for path in sorted(directory.glob("*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict) and record.get("schema") == SCHEMA:
            out[record.get("name", path.stem)] = record
    return out


def comparable_params(baseline: dict, fresh: dict, ignore=VOLATILE_PARAMS) -> bool:
    strip = lambda p: {k: v for k, v in p.items() if k not in ignore}  # noqa: E731
    return strip(baseline.get("params", {})) == strip(fresh.get("params", {}))


def compare(
    baseline: dict[str, dict], fresh: dict[str, dict], tolerance: float
) -> dict:
    """Build the diff: per-benchmark timing ratios and verdicts."""
    diff: dict = {"tolerance": tolerance, "benchmarks": {}, "regressions": []}
    for name, fresh_rec in sorted(fresh.items()):
        base_rec = baseline.get(name)
        if base_rec is None:
            diff["benchmarks"][name] = {"status": "no-baseline"}
            continue
        if not comparable_params(base_rec, fresh_rec):
            diff["benchmarks"][name] = {
                "status": "skipped-params-differ",
                "baseline_params": base_rec.get("params", {}),
                "fresh_params": fresh_rec.get("params", {}),
            }
            continue
        timings = {}
        worst = 0.0
        for key, base_val in sorted(base_rec.get("timings", {}).items()):
            fresh_val = fresh_rec.get("timings", {}).get(key)
            if (
                not key.endswith("_s")
                or not isinstance(base_val, (int, float))
                or not isinstance(fresh_val, (int, float))
                or base_val <= 0
            ):
                continue
            ratio = fresh_val / base_val
            worst = max(worst, ratio)
            timings[key] = {
                "baseline_s": base_val,
                "fresh_s": fresh_val,
                "ratio": round(ratio, 3),
                "regressed": ratio > tolerance,
            }
            if ratio > tolerance:
                diff["regressions"].append(
                    f"{name}.{key}: {fresh_val:.3f}s vs baseline "
                    f"{base_val:.3f}s ({ratio:.2f}x > {tolerance:g}x)"
                )
        diff["benchmarks"][name] = {
            "status": "compared",
            "worst_ratio": round(worst, 3),
            "timings": timings,
        }
    return diff


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path, required=True, help="committed results dir")
    ap.add_argument("--fresh", type=Path, required=True, help="freshly emitted results dir")
    ap.add_argument(
        "--tol",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_REGRESSION_TOL", "2.0")),
        help="slowdown ratio above which a timing regresses (default 2.0)",
    )
    ap.add_argument("--out", type=Path, help="write the JSON diff here")
    args = ap.parse_args(argv)

    diff = compare(load_results(args.baseline), load_results(args.fresh), args.tol)
    if args.out:
        args.out.write_text(json.dumps(diff, indent=2, sort_keys=True) + "\n")

    compared = skipped = 0
    for name, entry in diff["benchmarks"].items():
        if entry["status"] == "compared":
            compared += 1
            print(f"{name}: worst ratio {entry['worst_ratio']:.2f}x (tol {args.tol:g}x)")
        else:
            skipped += 1
            print(f"{name}: {entry['status']}")
    print(f"{compared} compared, {skipped} skipped, {len(diff['regressions'])} regression(s)")
    for line in diff["regressions"]:
        print(f"REGRESSION: {line}", file=sys.stderr)
    return 1 if diff["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
