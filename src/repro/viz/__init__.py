"""Text visualizations: Fig. 1 phase timelines, delay-growth charts."""

from repro.viz.delays import render_delay_timeline
from repro.viz.timeline import PhaseSegment, phases, render_ascii

__all__ = ["PhaseSegment", "phases", "render_ascii", "render_delay_timeline"]
