"""PERF — columnar metrics layer cost: frame build vs vectorized math.

Builds the event frame for a scaled-up token-ring trace (the single
O(events) Python pass in the metrics layer) and times the analytics on
top of it: whole-run POP metrics, the windowed efficiency timeline, and
the frame-based trace statistics.  The point being guarded: everything
downstream of ``trace_frame`` is vectorized numpy, so metric time per
event must stay far below frame-build time per event — a Python loop
creeping into the hot path shows up here as an immediate regression.

``REPRO_BENCH_METRICS_TRAVERSALS`` scales the trace (default 96).
"""

import os
import time

from benchmarks._common import bench_timings, emit, table
from repro.apps import TokenRingParams, token_ring
from repro.metrics import pop_metrics, pop_timeline, trace_frame
from repro.mpisim import run
from repro.trace.stats import stats_from_frame

TRAVERSALS = int(os.environ.get("REPRO_BENCH_METRICS_TRAVERSALS", "96"))
NPROCS = 8
WINDOWS = 16


def metrics_trace():
    return run(
        token_ring(TokenRingParams(traversals=TRAVERSALS)), nprocs=NPROCS, seed=0
    ).trace


def test_pop_metrics_columnar(benchmark):
    trace = metrics_trace()

    t0 = time.perf_counter()
    frame = trace_frame(trace)
    frame_build_s = time.perf_counter() - t0
    n_events = len(frame)

    # the benchmarked unit: whole-run POP analytics on the prebuilt frame
    pop = benchmark(lambda: pop_metrics(frame))

    t0 = time.perf_counter()
    pop_metrics(frame)
    pop_manual_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    timeline = pop_timeline(frame, WINDOWS)
    timeline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    stats = stats_from_frame(frame)
    stats_s = time.perf_counter() - t0

    assert pop.parallel_efficiency > 0
    assert timeline.n_windows == WINDOWS
    assert stats.total_events == n_events

    stats_dict = bench_timings(benchmark)
    pop_s = stats_dict.get("mean_s", pop_manual_s)
    rows = [
        ("trace_frame (O(events) pass)", f"{frame_build_s * 1e3:.2f} ms"),
        ("pop_metrics (vectorized)", f"{pop_s * 1e3:.2f} ms"),
        (f"pop_timeline ({WINDOWS} windows)", f"{timeline_s * 1e3:.2f} ms"),
        ("stats_from_frame", f"{stats_s * 1e3:.2f} ms"),
    ]
    body = table(["stage", "time"], rows, widths=[30, 14])
    summary = (
        f"{n_events:,} events, p={NPROCS}: PE {pop.parallel_efficiency:.3f}, "
        f"{n_events / max(pop_s, 1e-9):,.0f} events/s through pop_metrics"
    )
    emit(
        "perf_metrics",
        body + "\n" + summary,
        params={"traversals": TRAVERSALS, "nprocs": NPROCS, "windows": WINDOWS},
        timings=stats_dict
        | {
            "frame_build_s": frame_build_s,
            "pop_metrics_s": pop_manual_s,
            "pop_timeline_s": timeline_s,
            "stats_from_frame_s": stats_s,
        },
        metrics={
            "events": n_events,
            "events_per_s": n_events / max(pop_s, 1e-9),
            "parallel_efficiency": pop.parallel_efficiency,
            "load_balance": pop.load_balance,
            "comm_efficiency": pop.comm_efficiency,
        },
    )
