"""The paper's contribution: message-passing graph construction,
perturbation propagation, and sensitivity analysis (§2–§4, §6)."""

from repro.core.analysis import (
    AbsorptionMap,
    CriticalPath,
    DelayPoint,
    RuntimeImpact,
    absorption_map,
    critical_path,
    delay_timeline,
    runtime_impact,
)
from repro.core.builder import BuildResult, build_graph
from repro.core.checkpoint import (
    CheckpointStore,
    ShardKey,
    build_digest,
    resolve_rows,
    signature_digest,
    trace_digest,
)
from repro.core.compiled import CompiledBatch, CompiledPlan, compiled_plan
from repro.core.correctness import CorrectnessReport, check_correctness
from repro.core.diagnostics import AnalysisWarning, DiagnosticError
from repro.core.dot import to_dot
from repro.core.graph import (
    DeltaKind,
    DeltaSpec,
    Edge,
    EdgeKind,
    MessagePassingGraph,
    Node,
    Phase,
)
from repro.core.history import ExperimentHistory, ExperimentRecord
from repro.core.influence import InfluenceMatrix, rank_influence
from repro.core.matching import CollectiveGroup, MatchError, MatchResult, match_events
from repro.core.montecarlo import DelayDistribution, monte_carlo
from repro.core.parallel import (
    ChunkTimeoutError,
    ExecutionBackend,
    FaultPolicy,
    ProcessPoolBackend,
    SerialBackend,
    available_cpus,
    map_replicate_batches,
    map_replicates,
    replicate_items,
    resolve_backend,
)
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.sweep import SweepPoint, SweepResult, fit_slope, sweep_scales, sweep_signatures
from repro.core.traversal import (
    StreamingTraversal,
    TraversalResult,
    longest_weighted_path,
    propagate,
    propagate_absolute,
    propagate_presampled,
    sample_edge_deltas,
)
from repro.core.window import WindowedGraph, extract_window

__all__ = [
    "AbsorptionMap",
    "AnalysisWarning",
    "DiagnosticError",
    "CriticalPath",
    "RuntimeImpact",
    "absorption_map",
    "critical_path",
    "delay_timeline",
    "DelayPoint",
    "runtime_impact",
    "InfluenceMatrix",
    "rank_influence",
    "DelayDistribution",
    "monte_carlo",
    "BuildResult",
    "build_graph",
    "CompiledBatch",
    "CompiledPlan",
    "compiled_plan",
    "CorrectnessReport",
    "check_correctness",
    "to_dot",
    "DeltaKind",
    "DeltaSpec",
    "Edge",
    "EdgeKind",
    "MessagePassingGraph",
    "Node",
    "Phase",
    "ExperimentHistory",
    "ExperimentRecord",
    "CollectiveGroup",
    "MatchError",
    "MatchResult",
    "match_events",
    "PerturbationSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "FaultPolicy",
    "ChunkTimeoutError",
    "available_cpus",
    "resolve_backend",
    "map_replicate_batches",
    "map_replicates",
    "replicate_items",
    "CheckpointStore",
    "ShardKey",
    "build_digest",
    "signature_digest",
    "trace_digest",
    "resolve_rows",
    "BuildConfig",
    "SweepPoint",
    "SweepResult",
    "fit_slope",
    "sweep_scales",
    "sweep_signatures",
    "WindowedGraph",
    "extract_window",
    "StreamingTraversal",
    "TraversalResult",
    "longest_weighted_path",
    "propagate",
    "propagate_absolute",
    "propagate_presampled",
    "sample_edge_deltas",
]
