"""Tests for the §4.3 correctness checks."""

import pytest

from repro.core import PerturbationSpec, build_graph, check_correctness, propagate
from repro.core.correctness import async_warnings, check_order_preserved
from repro.mpisim import Compute, Irecv, Isend, Recv, Send, Wait, run
from repro.noise import Constant, Exponential, MachineSignature


def spec(os=100.0, lat=50.0, scale=1.0, seed=0):
    return PerturbationSpec(
        MachineSignature(os_noise=Constant(os), latency=Constant(lat)), seed=seed, scale=scale
    )


class TestCleanRuns:
    def test_synchronous_run_clean(self, ring_trace, const_spec):
        build = build_graph(ring_trace)
        res = propagate(build, const_spec)
        report = check_correctness(build, res)
        assert report.ok
        assert not report.warnings
        assert "0 order violation(s)" in report.summary()

    def test_random_noise_run_clean(self, stencil_trace):
        random_spec = PerturbationSpec(
            MachineSignature(os_noise=Exponential(300.0), latency=Exponential(100.0)), seed=5
        )
        build = build_graph(stencil_trace)
        res = propagate(build, random_spec)
        assert check_correctness(build, res).ok


class TestAsyncWarnings:
    def test_uncompleted_isend_warned(self):
        def prog(me):
            if me.rank == 0:
                yield Isend(dest=1, nbytes=8)  # never waited (§4.3 worst case)
                yield Compute(1000.0)
            else:
                yield Recv(source=0)

        trace = run(prog, nprocs=2, seed=0).trace
        build = build_graph(trace)
        warnings = async_warnings(build)
        assert len(warnings) == 1
        assert "ISEND" in warnings[0]
        assert "cannot be guaranteed" in warnings[0]

    def test_uncompleted_irecv_warned(self):
        def prog(me):
            if me.rank == 0:
                yield Irecv(source=1, tag=0)
                yield Compute(200_000.0)  # long enough for the message to land
            else:
                yield Send(dest=0, nbytes=8, tag=0)

        trace = run(prog, nprocs=2, seed=0).trace
        build = build_graph(trace)
        warnings = async_warnings(build)
        assert len(warnings) == 1
        assert "IRECV" in warnings[0]
        assert "dropped" in warnings[0]

    def test_completed_requests_no_warning(self):
        def prog(me):
            if me.rank == 0:
                r = yield Isend(dest=1, nbytes=8)
                yield Wait(r)
            else:
                r = yield Irecv(source=0)
                yield Wait(r)

        trace = run(prog, nprocs=2, seed=0).trace
        build = build_graph(trace)
        assert async_warnings(build) == []


class TestClampWarnings:
    def test_negative_scale_produces_clamp_warning(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec(scale=-5.0))
        report = check_correctness(build, res)
        assert report.clamp_warnings
        assert "clamped" in report.clamp_warnings[0]

    def test_positive_scale_no_clamps(self, ring_trace):
        build = build_graph(ring_trace)
        res = propagate(build, spec())
        assert check_correctness(build, res).clamp_warnings == []


class TestOrderCheck:
    def test_requires_incore_result(self, ring_trace, const_spec):
        from repro.core import StreamingTraversal

        build = build_graph(ring_trace)
        streaming = StreamingTraversal(const_spec).run(ring_trace)
        with pytest.raises(ValueError, match="in-core"):
            check_order_preserved(build, streaming)

    def test_detects_fabricated_violation(self, ring_trace, const_spec):
        build = build_graph(ring_trace)
        res = propagate(build, const_spec)
        # Corrupt a node delay to simulate a traversal bug: pick an END
        # node and push it before its START.
        g = build.graph
        from repro.core.graph import Phase

        victim = g.node_of(0, 1, Phase.END)
        res.node_delay[victim] = -1e9
        violations = check_order_preserved(build, res)
        assert violations
