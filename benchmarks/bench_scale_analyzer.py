"""SCALE — analyzer throughput vs process count and trace size.

Backs the paper's scalability positioning ("windowed graph generation
... makes it fully scalable", §7): build/propagate/stream times as p
and events-per-rank grow, with the streaming engine's events/second as
the headline number.
"""

import time


from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, StreamingTraversal, build_graph, propagate
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature


def test_scale_with_processes(benchmark):
    spec = PerturbationSpec(
        MachineSignature(os_noise=Exponential(100.0), latency=Exponential(40.0)), seed=0
    )
    rows = []
    biggest = None
    timings = {}
    throughput = {}
    for p in (8, 32, 128):
        trace = run(token_ring(TokenRingParams(traversals=8)), nprocs=p, seed=0).trace
        events = sum(len(evs) for evs in trace.load_all())

        t0 = time.perf_counter()
        build = build_graph(trace)
        t_build = time.perf_counter() - t0

        t0 = time.perf_counter()
        propagate(build, spec)
        t_prop = time.perf_counter() - t0

        t0 = time.perf_counter()
        StreamingTraversal(spec).run(trace)
        t_stream = time.perf_counter() - t0

        timings[f"build_p{p}_s"] = t_build
        timings[f"propagate_p{p}_s"] = t_prop
        timings[f"stream_p{p}_s"] = t_stream
        throughput[str(p)] = events / t_stream
        rows.append(
            [
                p,
                events,
                f"{t_build * 1e3:.0f}",
                f"{t_prop * 1e3:.0f}",
                f"{t_stream * 1e3:.0f}",
                f"{events / t_stream:,.0f}",
            ]
        )
        biggest = trace

    emit(
        "scale_analyzer",
        table(
            ["p", "events", "build ms", "propagate ms", "stream ms", "stream ev/s"],
            rows,
            widths=[5, 9, 9, 13, 10, 13],
        ),
        params={"procs": [8, 32, 128], "traversals": 8},
        timings=timings,
        metrics={"stream_events_per_s": throughput},
    )

    benchmark(lambda: StreamingTraversal(spec).run(biggest))


def test_scale_with_trace_length(benchmark):
    """Per-event cost must stay ~constant as the trace grows (linear
    scaling — the property that makes arbitrarily long traces feasible)."""
    spec = PerturbationSpec(MachineSignature(os_noise=Exponential(100.0)), seed=0)
    p = 8
    costs = []
    rows = []
    for traversals in (10, 40, 160):
        trace = run(token_ring(TokenRingParams(traversals=traversals)), nprocs=p, seed=0).trace
        events = sum(len(evs) for evs in trace.load_all())
        t0 = time.perf_counter()
        StreamingTraversal(spec).run(trace)
        dt = time.perf_counter() - t0
        costs.append(dt / events)
        rows.append([traversals, events, f"{dt * 1e3:.0f}", f"{dt / events * 1e6:.1f}"])
    emit(
        "scale_trace_length",
        table(
            ["traversals", "events", "total ms", "us/event"],
            rows,
            widths=[10, 9, 9, 9],
        ),
        params={"nprocs": p, "traversal_ladder": [10, 40, 160]},
        timings={f"stream_t{r[0]}_s": c * r[1] for r, c in zip(rows, costs)},
        metrics={"per_event_cost_s": {str(r[0]): c for r, c in zip(rows, costs)}},
    )
    # Linear scaling: per-event cost within 3x across a 16x trace growth.
    assert max(costs) / min(costs) < 3.0

    trace = run(token_ring(TokenRingParams(traversals=40)), nprocs=p, seed=0).trace
    benchmark(lambda: StreamingTraversal(spec).run(trace))
