"""FIG2 — blocking send/receive subgraph and Eq. (1).

Regenerates Fig. 2's subgraph for a d-byte blocking pair, lists the
edges with their δ annotations, and verifies the traversal reproduces
Eq. (1)'s end-times exactly for hand-chosen constant deltas:

    t'_se = max(t_se, t_ss + δ_os1, t_ss + δ_λ1 + δ_t(d) + δ_os2 + δ_λ2)
    t'_re = t_rs + δ_os2 + δ_λ1 + δ_t(d)
"""

import pytest

from benchmarks._common import bench_timings, emit, table
from repro.core import PerturbationSpec, build_graph, propagate
from repro.core.graph import DeltaKind, EdgeKind, Phase
from repro.noise import Constant, MachineSignature
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace

D_BYTES = 2048
OS, LAT, PER_BYTE = 150.0, 60.0, 0.02


def pair_trace():
    r0 = [
        EventRecord(rank=0, seq=0, kind=EventKind.INIT, t_start=0.0, t_end=10.0),
        EventRecord(
            rank=0, seq=1, kind=EventKind.SEND, t_start=100.0, t_end=400.0,
            peer=1, tag=0, nbytes=D_BYTES,
        ),
        EventRecord(rank=0, seq=2, kind=EventKind.FINALIZE, t_start=500.0, t_end=510.0),
    ]
    r1 = [
        EventRecord(rank=1, seq=0, kind=EventKind.INIT, t_start=0.0, t_end=10.0),
        EventRecord(
            rank=1, seq=1, kind=EventKind.RECV, t_start=80.0, t_end=420.0,
            peer=0, tag=0, nbytes=D_BYTES,
        ),
        EventRecord(rank=1, seq=2, kind=EventKind.FINALIZE, t_start=500.0, t_end=510.0),
    ]
    return MemoryTrace([r0, r1])


def test_fig2_blocking_pair(benchmark):
    trace = pair_trace()
    spec = PerturbationSpec(
        MachineSignature(
            os_noise=Constant(OS), latency=Constant(LAT), per_byte=Constant(PER_BYTE)
        ),
        seed=0,
    )

    def build_and_propagate():
        build = build_graph(trace)
        return build, propagate(build, spec)

    build, res = benchmark(build_and_propagate)
    g = build.graph

    # --- regenerate the subgraph listing (the Fig. 2 artifact) -------------
    rows = []
    for e in g.edges:
        src, dst = g.nodes[e.src], g.nodes[e.dst]
        rows.append(
            [
                f"r{src.rank}#{src.seq}.{Phase(src.phase).name[0]}",
                f"r{dst.rank}#{dst.seq}.{Phase(dst.phase).name[0]}",
                "local" if e.kind == EdgeKind.LOCAL else "message",
                f"{e.weight:.0f}",
                DeltaKind(e.delta.kind).name,
            ]
        )
    listing = table(["src", "dst", "kind", "weight", "delta"], rows, widths=[10, 10, 8, 8, 12])

    # --- verify Eq. (1) -----------------------------------------------------
    transfer = LAT + D_BYTES * PER_BYTE
    d_ss = res.node_delay[g.node_of(0, 1, Phase.START)]  # δ_os on the gap
    t_ss, t_se = 100.0 + d_ss, 400.0

    t_re_model = 420.0 + d_ss + OS + transfer  # Eq. 1 line 2 (+ sender chain delay)
    t_re_measured = 420.0 + res.node_delay[g.node_of(1, 1, Phase.END)]
    assert t_re_measured == pytest.approx(t_re_model)

    t_se_model = max(
        t_se + d_ss,  # original completion carried by the sender's chain
        t_ss + (t_se - 100.0) + OS,  # local δ_os1 path
        400.0 + d_ss + transfer + OS + LAT,  # remote round trip
    )
    t_se_measured = 400.0 + res.node_delay[g.node_of(0, 1, Phase.END)]
    assert t_se_measured == pytest.approx(t_se_model)

    verdict = table(
        ["quantity", "Eq. (1) model", "traversal"],
        [
            ["t'_re", f"{t_re_model:.1f}", f"{t_re_measured:.1f}"],
            ["t'_se", f"{t_se_model:.1f}", f"{t_se_measured:.1f}"],
        ],
        widths=[10, 16, 12],
    )
    emit(
        "fig2_blocking",
        listing + "\n\n" + verdict,
        params={"d_bytes": D_BYTES, "os": OS, "latency": LAT, "per_byte": PER_BYTE},
        timings=bench_timings(benchmark),
        metrics={
            "t_re_model": t_re_model,
            "t_re_measured": t_re_measured,
            "t_se_model": t_se_model,
            "t_se_measured": t_se_measured,
            "edges": len(g.edges),
        },
    )
