"""Verification engine: static bounds + match analysis → a lint-shaped report.

:func:`verify_build` runs the two static analyses over an existing
:class:`~repro.core.builder.BuildResult` — certified makespan bounds
(:mod:`repro.verify.bounds`, needs a machine signature) and the
match-nondeterminism / deadlock-potential analysis
(:mod:`repro.verify.matches`) — hands the results to the MPG3xx rule
pack, and finalizes a :class:`VerifyReport`: a
:class:`~repro.lint.engine.LintReport` subclass the existing text /
JSON / SARIF reporters render unchanged, with the structured artifacts
riding along for programmatic consumers.  :func:`verify_run` is the
traces-in convenience wrapper.

With ``config.replicates > 0`` the engine additionally runs the actual
Monte-Carlo propagation and cross-checks that every replicate's
per-rank delay falls inside the static enclosure — the runtime assert
tying the interval abstract interpretation to the execution engines.
Everything here is deterministic (intervals are symbolic, the HB
analysis is pure, replicates reuse the exact ``seed + i`` schedule),
so CI can gate on the SARIF output without flakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro import obs
from repro.core.builder import BuildResult, build_graph
from repro.core.coarsen import COARSEN_CHOICES
from repro.core.compiled import compiled_plan
from repro.core.montecarlo import ENGINES, monte_carlo
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.traversal import MODES
from repro.lint.engine import LintReport
from repro.lint.model import Finding, LintConfig
from repro.lint.registry import all_rules, run_rule
from repro.lint.report import render_text, report_to_dict
from repro.noise.signature import MachineSignature
from repro.trace.reader import TraceSource
from repro.verify.bounds import MakespanBounds, makespan_bounds
from repro.verify.intervals import DEFAULT_QUANTILE
from repro.verify.matches import MatchAnalysis, analyze_matches

__all__ = [
    "VerifyConfig",
    "VerifyContext",
    "VerifyReport",
    "render_verify_text",
    "verify_build",
    "verify_run",
    "verify_to_dict",
]


@dataclass(frozen=True)
class VerifyConfig:
    """Tuning knobs of one verification pass.

    ``quantile`` is the finite-support cut for unbounded distribution
    families (see :mod:`repro.verify.intervals`); ``scale``/``mode``
    select the perturbation regime the bounds certify, and must match
    the Monte-Carlo run they are checked against.  ``replicates`` > 0
    adds the runtime containment cross-check (propagating that many
    actual replicates through ``engine``).  ``matches`` toggles the
    match-nondeterminism analysis.  ``lint`` carries the shared rule
    mechanics (disables, severity overrides, emission caps) for the
    MPG3xx pack.
    """

    quantile: float = DEFAULT_QUANTILE
    scale: float = 1.0
    mode: str = "additive"
    coarsen: str = "auto"
    engine: str = "auto"
    replicates: int = 0
    seed: int = 0
    matches: bool = True
    lint: LintConfig = field(default_factory=LintConfig)

    def __post_init__(self) -> None:
        if not 0.5 <= self.quantile < 1.0:
            raise ValueError(f"quantile must be in [0.5, 1), got {self.quantile!r}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.coarsen not in COARSEN_CHOICES:
            raise ValueError(
                f"coarsen must be one of {COARSEN_CHOICES}, got {self.coarsen!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.replicates < 0:
            raise ValueError("replicates must be >= 0")


class VerifyContext:
    """What an MPG3xx rule may inspect: the build plus the analysis
    artifacts, and the active :class:`VerifyConfig`.

    ``containment`` is ``(replicates_checked, violating_indices)`` when
    the runtime cross-check ran, else None.
    """

    def __init__(
        self,
        build: BuildResult,
        bounds: MakespanBounds | None,
        matches: MatchAnalysis | None,
        containment: tuple[int, list[int]] | None,
        config: VerifyConfig,
        trace_set: TraceSource | None = None,
    ) -> None:
        self.build = build
        self.bounds = bounds
        self.matches = matches
        self.containment = containment
        self.config = config
        self.trace_set = trace_set

    @cached_property
    def paths(self) -> list:
        """Per-rank trace file paths (None for in-memory traces)."""
        readers = getattr(self.trace_set, "readers", None)
        if readers:
            return [str(r.path) for r in readers]
        return [None] * self.build.graph.nprocs

    def path_of(self, rank: int | None) -> str | None:
        if rank is None or not 0 <= rank < len(self.paths):
            return None
        return self.paths[rank]


@dataclass
class VerifyReport(LintReport):
    """A lint report plus the structured verification artifacts."""

    bounds: MakespanBounds | None = None
    matches: MatchAnalysis | None = None
    replicates: int = 0
    containment_violations: tuple[int, ...] = ()


def verify_build(
    build: BuildResult,
    config: VerifyConfig | None = None,
    signature: MachineSignature | None = None,
    trace_set: TraceSource | None = None,
) -> VerifyReport:
    """Verify an existing build: certified bounds, match analysis,
    optional runtime containment cross-check, then the MPG3xx rules.

    ``signature`` enables the bounds analysis (and is required when
    ``config.replicates`` > 0); without it only the match analysis
    runs.
    """
    config = config or VerifyConfig()
    with obs.span("verify", replicates=config.replicates):
        bounds: MakespanBounds | None = None
        containment: tuple[int, list[int]] | None = None
        if signature is not None:
            plan = compiled_plan(build, coarsen=config.coarsen)
            bounds = makespan_bounds(
                plan,
                signature,
                scale=config.scale,
                mode=config.mode,
                quantile=config.quantile,
            )
        if config.replicates > 0:
            if bounds is None:
                raise ValueError(
                    "containment cross-check needs a machine signature "
                    "(replicates > 0 without one)"
                )
            spec = PerturbationSpec(signature, seed=config.seed, scale=config.scale)
            dist = monte_carlo(
                build,
                spec,
                replicates=config.replicates,
                mode=config.mode,
                engine=config.engine,
                coarsen=config.coarsen,
            )
            containment = (config.replicates, bounds.violations(dist.samples))
        analysis = analyze_matches(build) if config.matches else None
        ctx = VerifyContext(build, bounds, analysis, containment, config, trace_set)

        findings: list[Finding] = []
        rules_run: list[str] = []
        for r in all_rules("verify"):
            if not config.lint.enabled(r):
                continue
            rules_run.append(r.id)
            findings.extend(run_rule(r, ctx, config.lint))

        ordered = sorted(
            (f.with_path(ctx.path_of(f.rank)) for f in findings),
            key=lambda f: (
                -int(f.severity),
                f.rule_id,
                f.rank if f.rank is not None else -1,
                f.seq if f.seq is not None else -1,
                f.node if f.node is not None else -1,
            ),
        )
        for f in ordered:
            obs.add(f"verify.findings.{f.severity.name.lower()}")
        return VerifyReport(
            findings=ordered,
            nprocs=build.graph.nprocs,
            event_count=sum(len(evs) for evs in build.events),
            rules_run=tuple(rules_run),
            graph_checked=True,
            bounds=bounds,
            matches=analysis,
            replicates=config.replicates,
            containment_violations=tuple(containment[1]) if containment else (),
        )


def verify_run(
    trace_set: TraceSource,
    config: VerifyConfig | None = None,
    build_config: BuildConfig | None = None,
    signature: MachineSignature | None = None,
) -> VerifyReport:
    """Traces in, verification report out.

    Like :func:`repro.diagnose.diagnose_run` this does *not* guard the
    graph build: verification interprets a well-formed run, so a build
    failure propagates as its :class:`~repro.core.diagnostics.
    DiagnosticError` (run ``repro-lint`` first for malformed-trace
    triage).
    """
    build = build_graph(trace_set, build_config)
    return verify_build(build, config, signature=signature, trace_set=trace_set)


def render_verify_text(report: VerifyReport, verbose: bool = False) -> str:
    """Certificate summary + the standard findings rendering."""
    lines = []
    b = report.bounds
    if b is not None:
        cert = "absolute" if b.absolute else f"sound up to q={b.quantile:.12g}"
        lines.append(
            f"certified makespan delay in [{b.makespan_lo:,.0f}, {b.makespan_hi:,.0f}] cy "
            f"({cert}, scale {b.scale:g}, mode {b.mode})"
        )
        if verbose:
            for rank, (lo, hi) in enumerate(zip(b.rank_lo, b.rank_hi)):
                lines.append(f"  rank {rank}: [{lo:>14,.1f}, {hi:>14,.1f}] cy")
    if report.replicates:
        n_bad = len(report.containment_violations)
        status = "all contained" if n_bad == 0 else f"{n_bad} VIOLATED"
        lines.append(f"containment cross-check over {report.replicates} replicates: {status}")
    m = report.matches
    if m is not None:
        lines.append(
            f"match analysis: {m.wildcard_receives} wildcard receives, "
            f"{len(m.races)} with alternatives, {len(m.deadlocks)} deadlock chains"
        )
    lines.append(render_text(report, verbose=verbose))
    return "\n".join(lines)


def verify_to_dict(report: VerifyReport) -> dict:
    """The lint JSON document plus a ``verification`` block."""
    out = report_to_dict(report)
    out["schema"] = "repro-verify-report/1"
    out["verification"] = {
        "bounds": report.bounds.as_dict() if report.bounds else None,
        "matches": report.matches.as_dict() if report.matches else None,
        "replicates": report.replicates,
        "containment_violations": list(report.containment_violations),
    }
    return out
