"""Critical-path extraction: engine agreement, determinism, and the
replicate-batch invariant.

The acceptance-critical property: the extracted path — edges, nodes,
per-edge costs, AND total — is *bit-identical* whichever engine
computes it (``compiled`` / ``incore`` / ``graph``), for any
simulator-producible run, and batching extra replicate rows through the
compiled kernel never changes row 0.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_graph
from repro.core.compiled import compiled_plan
from repro.diagnose import extract_critical_path
from repro.diagnose.path import ENGINES, path_costs
from repro.mpisim import run
from tests.conftest import plan_program

REAL_ENGINES = [e for e in ENGINES if e != "auto"]

_round = st.one_of(
    st.tuples(st.just("compute"), st.integers(100, 3000)),
    st.tuples(st.just("ring"), st.integers(0, 20_000)),
    st.tuples(st.just("xchg"), st.integers(0, 2000)),
    st.tuples(st.just("nb"), st.integers(0, 20_000)),
    st.tuples(st.just("allreduce"), st.integers(0, 128)),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("scan"), st.integers(0, 128)),
    st.tuples(st.just("rscatter"), st.integers(0, 128)),
)

_plans = st.lists(_round, min_size=1, max_size=4)


def extract_all_engines(build, deltas=None):
    return [
        extract_critical_path(build, deltas=deltas, engine=e) for e in REAL_ENGINES
    ]


def assert_identical(extracts):
    ref = extracts[0]
    for other in extracts[1:]:
        assert other.edges == ref.edges, f"{other.engine} path != {ref.engine} path"
        assert other.nodes == ref.nodes
        assert other.costs == ref.costs
        assert other.total_cost == ref.total_cost
        assert other.final_costs == ref.final_costs
        assert other.sink_rank == ref.sink_rank


class TestEngineAgreement:
    def test_ring_identical_across_engines(self, ring_trace):
        build = build_graph(ring_trace)
        assert_identical(extract_all_engines(build))

    def test_stencil_identical_across_engines(self, stencil_trace):
        build = build_graph(stencil_trace)
        assert_identical(extract_all_engines(build))

    def test_identical_with_random_deltas(self, ring_trace, rng):
        build = build_graph(ring_trace)
        deltas = rng.exponential(500.0, size=len(build.graph.edges))
        assert_identical(extract_all_engines(build, deltas=deltas))

    @given(plan=_plans, p=st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_any_run_identical_across_engines(self, plan, p):
        """Property: path extraction is engine-independent for ANY valid run."""
        build = build_graph(run(plan_program(plan), nprocs=p, seed=5).trace)
        assert_identical(extract_all_engines(build))

    def test_auto_is_compiled(self, ring_trace):
        cp = extract_critical_path(build_graph(ring_trace))
        assert cp.engine == "compiled"

    def test_unknown_engine_rejected(self, ring_trace):
        with pytest.raises(ValueError, match="engine must be one of"):
            extract_critical_path(build_graph(ring_trace), engine="gpu")


class TestReplicateBatchInvariance:
    def test_row_zero_invariant_under_batching(self, ring_trace, rng):
        """Stacking extra replicate rows never changes an existing row."""
        build = build_graph(ring_trace)
        plan = compiled_plan(build)
        costs = path_costs(build)
        L1, pred1 = plan.longest_path(costs[None, :])
        stacked = np.vstack(
            [costs, costs * 2.0, rng.exponential(1000.0, size=costs.shape)]
        )
        Lb, predb = plan.longest_path(stacked)
        assert np.array_equal(L1[0], Lb[0])
        assert np.array_equal(pred1[0], predb[0])

    def test_each_batch_row_matches_solo_run(self, stencil_trace, rng):
        build = build_graph(stencil_trace)
        plan = compiled_plan(build)
        rows = rng.exponential(800.0, size=(4, len(build.graph.edges)))
        Lb, predb = plan.longest_path(rows)
        for i in range(rows.shape[0]):
            Li, predi = plan.longest_path(rows[i][None, :])
            assert np.array_equal(Lb[i], Li[0])
            assert np.array_equal(predb[i], predi[0])

    def test_extraction_matches_batched_final_cost(self, ring_trace):
        build = build_graph(ring_trace)
        cp = extract_critical_path(build)
        L, _ = compiled_plan(build).longest_path(path_costs(build)[None, :])
        assert cp.total_cost == float(L[0].max())


class TestExtractShape:
    def test_path_is_a_connected_chain(self, ring_trace):
        build = build_graph(ring_trace)
        cp = extract_critical_path(build)
        g = build.graph
        assert len(cp.nodes) == len(cp.edges) + 1
        for i, ei in enumerate(cp.edges):
            assert g.edges[ei].src == cp.nodes[i]
            assert g.edges[ei].dst == cp.nodes[i + 1]
        assert cp.total_cost == pytest.approx(sum(cp.costs))
        assert g.nodes[cp.nodes[-1]].rank == cp.sink_rank

    def test_costs_align_with_edge_weights(self, ring_trace):
        build = build_graph(ring_trace)
        cp = extract_critical_path(build)
        for ei, c in zip(cp.edges, cp.costs):
            assert c == build.graph.edges[ei].weight

    def test_final_costs_cover_all_ranks(self, stencil_trace):
        build = build_graph(stencil_trace)
        cp = extract_critical_path(build)
        assert len(cp.final_costs) == build.graph.nprocs
        assert max(cp.final_costs) == cp.total_cost

    def test_runner_up_ratio_bounds(self, ring_trace):
        cp = extract_critical_path(build_graph(ring_trace))
        assert 0.0 <= cp.runner_up_ratio() <= 1.0

    def test_as_dict_round_trips_key_fields(self, ring_trace):
        cp = extract_critical_path(build_graph(ring_trace))
        d = cp.as_dict()
        assert d["sink_rank"] == cp.sink_rank
        assert d["engine"] == "compiled"
        assert tuple(d["edges"]) == cp.edges

    def test_bad_deltas_shape_rejected(self, ring_trace):
        build = build_graph(ring_trace)
        with pytest.raises(ValueError, match="deltas shape"):
            extract_critical_path(build, deltas=[1.0, 2.0])
