"""Microbenchmarks that turn a machine into a signature (§5)."""

from repro.microbench.bandwidth import BandwidthResult, run_bandwidth
from repro.microbench.ftq import FTQResult, run_ftq
from repro.microbench.harness import MicrobenchReport, measure_machine
from repro.microbench.mraz import MrazResult, run_mraz
from repro.microbench.pingpong import PingPongResult, run_pingpong

__all__ = [
    "BandwidthResult",
    "run_bandwidth",
    "FTQResult",
    "run_ftq",
    "MicrobenchReport",
    "measure_machine",
    "MrazResult",
    "run_mraz",
    "PingPongResult",
    "run_pingpong",
]
