"""Structured analysis warnings and errors.

Pipeline stages used to report anomalies (unmatched nonblocking
requests, streaming-window doublings, clamped deltas) as ad-hoc
strings, which made them impossible to count, filter, or route.
:class:`AnalysisWarning` keeps them machine-readable — a stable
``code``, optional ``rank``/``seq`` location, and an occurrence
``count`` — while **subclassing** :class:`str` so every existing
consumer (``print``, ``"window" in w``, JSON history records) keeps
working on the human-readable message unchanged.

Construct warnings through :func:`warn` so each one is also counted
into the active observability session as a ``warnings.<code>`` metric
(:mod:`repro.obs`); a ``--metrics-out`` report then shows exactly how
many of each anomaly a run hit.

Hard failures use the same vocabulary: :class:`DiagnosticError` is a
:class:`ValueError` carrying a stable ``code`` (the strings in
:data:`CODES`) plus an optional ``rank``/``seq`` location, so the
builder, the matcher, and the static analyzer (:mod:`repro.lint`)
all report defects through one set of codes — ``repro-lint`` maps each
code to its ``MPGxxx`` rule id, and a runtime crash names the same
defect the pre-flight lint pass would have flagged.
"""

from __future__ import annotations

from repro import obs

__all__ = ["AnalysisWarning", "DiagnosticError", "CODES", "warn"]

# Stable diagnostic codes shared by runtime errors, warnings, and the
# lint rule pack (repro/lint).  Keep in sync with docs/LINTING.md.
CODES = frozenset(
    {
        "overlapping-events",  # local time went backwards / events overlap
        "negative-timestamp",
        "truncated-trace",  # non-dense per-rank sequence numbers
        "missing-framing",  # no INIT first / FINALIZE last
        "wait-without-request",  # completion references unknown/retired request
        "uncompleted-request",  # nonblocking request never completed (§4.3)
        "clock-skew-outlier",
        "graph-cycle",
        "unmatched-endpoint",  # send/recv counts differ on a channel
        "collective-mismatch",
        "invalid-edge-weight",
        "orphan-node",
        "invalid-edge",  # malformed endpoints / self-loop
        "duplicate-subevent",
        "invalid-gap",  # gap edge over non-consecutive events
        # diagnosis codes (repro.diagnose, MPG2xx rules)
        "critical-path-summary",  # where the makespan went (always reported)
        "bottleneck-rank",  # one rank dominates the critical path
        "bottleneck-primitive",  # one primitive dominates non-compute path time
        "anomalous-rank",  # a rank is a statistical outlier vs its peers
        "load-imbalance",  # compute totals spread far beyond the mean
        "noise-sensitive-rank",  # replicate delays concentrate on one rank
        # static verification codes (repro.verify, MPG3xx rules)
        "certified-bounds",  # the certified makespan enclosure (always reported)
        "quantile-bounded-support",  # bounds are sound up to a tail quantile
        "bounds-containment",  # MC replicates verified inside the static bounds
        "containment-violation",  # a replicate escaped the certified bounds
        "wildcard-nondeterminism",  # a wildcard receive has feasible alternatives
        "match-order-race",  # an alternative matching is observably different
        "deadlock-potential",  # a reordered matching would block a receive
        "generic",
    }
)


class DiagnosticError(ValueError):
    """A pipeline failure with a stable diagnostic code and location.

    Subclasses :class:`ValueError` so every existing ``except
    ValueError`` / ``pytest.raises(ValueError)`` consumer keeps
    working; the structure rides along as attributes.
    """

    def __init__(
        self,
        message: str,
        code: str = "generic",
        rank: int | None = None,
        seq: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.rank = rank
        self.seq = seq

    @property
    def message(self) -> str:
        return str(self)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": str(self),
            "rank": self.rank,
            "seq": self.seq,
        }


class AnalysisWarning(str):
    """A warning message carrying structured fields.

    Behaves exactly like its message string (slicing, ``in``, equality,
    serialization) — the structure rides along as attributes.
    """

    __slots__ = ("code", "rank", "seq", "count")

    code: str
    rank: int | None
    seq: int | None
    count: int

    def __new__(
        cls,
        message: str,
        code: str = "generic",
        rank: int | None = None,
        seq: int | None = None,
        count: int = 1,
    ) -> "AnalysisWarning":
        self = super().__new__(cls, message)
        self.code = code
        self.rank = rank
        self.seq = seq
        self.count = count
        return self

    @property
    def message(self) -> str:
        return str(self)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": str(self),
            "rank": self.rank,
            "seq": self.seq,
            "count": self.count,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnalysisWarning({str(self)!r}, code={self.code!r})"


def warn(
    message: str,
    code: str,
    rank: int | None = None,
    seq: int | None = None,
    count: int = 1,
) -> AnalysisWarning:
    """Create an :class:`AnalysisWarning` and count it as a metric."""
    obs.add(f"warnings.{code}", count)
    return AnalysisWarning(message, code=code, rank=rank, seq=seq, count=count)
