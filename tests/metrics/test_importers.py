"""Chrome trace-event import: bit-exact round trip through the
``repro.obs`` exporter, foreign-trace handling, and the committed
external fixture end-to-end."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.metrics import import_chrome_trace, pop_metrics, pop_timeline, trace_frame
from repro.metrics.report import build_report
from repro.metrics.validate import validate_pop_report
from repro.obs.export import (
    events_chrome_trace,
    to_events_chrome_trace,
    write_events_chrome_trace,
)
from repro.trace.events import EventKind

FIXTURE = Path(__file__).parent.parent / "data" / "external_chrome_trace.json"


class TestRoundTrip:
    def test_export_import_identical_frames(self, ring_trace):
        """obs.export -> json -> import reproduces the frame bit-for-bit."""
        payload = json.loads(json.dumps(to_events_chrome_trace(ring_trace)))
        imported = import_chrome_trace(payload)
        assert imported.nprocs == ring_trace.nprocs
        assert imported.meta(0).program == ring_trace.meta(0).program
        original = trace_frame(ring_trace)
        back = trace_frame(imported)
        assert len(back) == len(original)
        for name in original.columns:
            assert np.array_equal(original[name], back[name]), name

    def test_round_trip_nonblocking(self, stencil_trace):
        payload = json.loads(json.dumps(to_events_chrome_trace(stencil_trace)))
        back = trace_frame(import_chrome_trace(payload))
        original = trace_frame(stencil_trace)
        for name in original.columns:
            assert np.array_equal(original[name], back[name]), name

    def test_round_trip_through_file(self, ring_trace, tmp_path):
        path = write_events_chrome_trace(ring_trace, tmp_path / "ring.json")
        imported = import_chrome_trace(path)
        original, back = trace_frame(ring_trace), trace_frame(imported)
        for name in original.columns:
            assert np.array_equal(original[name], back[name]), name

    def test_metrics_survive_round_trip(self, ring_trace, tmp_path):
        path = write_events_chrome_trace(ring_trace, tmp_path / "ring.json")
        a = pop_metrics(ring_trace)
        b = pop_metrics(import_chrome_trace(path))
        assert b.parallel_efficiency == a.parallel_efficiency
        assert b.load_balance == a.load_balance
        assert np.array_equal(b.activity.useful, a.activity.useful)

    def test_bare_event_list(self, ring_trace):
        imported = import_chrome_trace(events_chrome_trace(ring_trace))
        assert imported.nprocs == ring_trace.nprocs
        assert imported.meta(0).program == "chrome-import"


class TestForeignTraces:
    def test_b_e_pairs_are_matched(self):
        raw = [
            {"ph": "B", "pid": 1, "tid": 1, "name": "MPI_Barrier", "ts": 5.0},
            {"ph": "E", "pid": 1, "tid": 1, "ts": 9.0},
        ]
        trace = import_chrome_trace(raw)
        (ev,) = trace.load_all()[0]
        assert ev.kind == EventKind.BARRIER
        assert (ev.t_start, ev.t_end) == (5.0, 9.0)

    def test_nested_b_e_pairs(self):
        raw = [
            {"ph": "B", "pid": 0, "tid": 0, "name": "MPI_Allreduce", "ts": 0.0},
            {"ph": "B", "pid": 0, "tid": 0, "name": "inner", "ts": 1.0},
            {"ph": "E", "pid": 0, "tid": 0, "ts": 2.0},
            {"ph": "E", "pid": 0, "tid": 0, "ts": 10.0},
        ]
        evs = import_chrome_trace(raw).load_all()[0]
        spans = {(ev.t_start, ev.t_end, ev.kind) for ev in evs}
        assert (0.0, 10.0, EventKind.ALLREDUCE) in spans
        assert (1.0, 2.0, EventKind.WAIT) in spans  # unknown name -> default

    def test_unmatched_end_raises(self):
        with pytest.raises(ValueError, match="unmatched 'E'"):
            import_chrome_trace([{"ph": "E", "pid": 0, "tid": 0, "ts": 1.0}])

    def test_unclosed_begin_raises(self):
        with pytest.raises(ValueError, match="unclosed 'B'"):
            import_chrome_trace(
                [{"ph": "B", "pid": 0, "tid": 0, "name": "MPI_Send", "ts": 1.0}]
            )

    def test_no_spans_raises(self):
        with pytest.raises(ValueError, match="no spans"):
            import_chrome_trace([{"ph": "M", "name": "process_name"}])
        with pytest.raises(ValueError, match="traceEvents"):
            import_chrome_trace({"foo": 1})

    def test_kind_map_and_default_override(self):
        raw = [
            {"ph": "X", "pid": 0, "tid": 0, "name": "exchange", "ts": 0.0, "dur": 1.0},
            {"ph": "X", "pid": 0, "tid": 0, "name": "mystery", "ts": 2.0, "dur": 1.0},
        ]
        trace = import_chrome_trace(
            raw,
            kind_map={"exchange": EventKind.SENDRECV},
            default_kind=EventKind.BARRIER,
        )
        kinds = [ev.kind for ev in trace.load_all()[0]]
        assert kinds == [EventKind.SENDRECV, EventKind.BARRIER]

    def test_name_mapping_is_case_insensitive(self):
        raw = [
            {"ph": "X", "pid": 0, "tid": 0, "name": "mpi_allgather", "ts": 0.0, "dur": 1.0},
            {"ph": "X", "pid": 0, "tid": 0, "name": " Barrier ", "ts": 2.0, "dur": 1.0},
        ]
        kinds = [ev.kind for ev in import_chrome_trace(raw).load_all()[0]]
        assert kinds == [EventKind.ALLGATHER, EventKind.BARRIER]

    def test_mixed_type_track_ids_sort(self):
        raw = [
            {"ph": "X", "pid": 0, "tid": "io", "name": "MPI_Send", "ts": 0.0, "dur": 1.0},
            {"ph": "X", "pid": 0, "tid": 3, "name": "MPI_Recv", "ts": 0.0, "dur": 1.0},
        ]
        trace = import_chrome_trace(raw)
        assert trace.nprocs == 2

    def test_program_precedence(self, tmp_path):
        raw = {"traceEvents": [
            {"ph": "X", "pid": 0, "tid": 0, "name": "MPI_Send", "ts": 0.0, "dur": 1.0}
        ]}
        path = tmp_path / "mysolver.json"
        path.write_text(json.dumps(raw))
        assert import_chrome_trace(path).meta(0).program == "mysolver"
        assert import_chrome_trace(path, program="x").meta(0).program == "x"
        raw["otherData"] = {"program": "from-meta"}
        path.write_text(json.dumps(raw))
        assert import_chrome_trace(path).meta(0).program == "from-meta"


class TestExternalFixture:
    """The committed, non-mpisim trace must import and produce metrics
    end-to-end (the acceptance criterion)."""

    def test_import_shape(self):
        trace = import_chrome_trace(FIXTURE)
        assert trace.nprocs == 3
        assert [len(evs) for evs in trace.load_all()] == [4, 5, 4]
        assert trace.meta(0).program == "external_chrome_trace"

    def test_kinds_and_fields(self):
        per_rank = import_chrome_trace(FIXTURE).load_all()
        # track order follows sorted tids: 101 -> rank 0, 205 -> 1, 309 -> 2
        send = per_rank[0][1]
        assert send.kind == EventKind.SEND
        assert (send.peer, send.nbytes) == (1, 4096)
        assert (send.t_start, send.t_end) == (1050.0, 1100.0)  # from B/E pair
        assert per_rank[1][3].kind == EventKind.WAIT  # cudaStreamSynchronize
        assert per_rank[2][1].kind == EventKind.BARRIER
        assert all(ev.kind == EventKind.ALLREDUCE for ev in
                   (per_rank[0][2], per_rank[1][2], per_rank[2][2]))

    def test_metrics_end_to_end(self):
        trace = import_chrome_trace(FIXTURE)
        act = pop_metrics(trace).activity
        assert np.array_equal(act.useful, [3000.0, 2500.0, 3000.0])
        assert np.array_equal(act.comm, [510.0, 1090.0, 510.0])
        pop = pop_metrics(trace)
        assert pop.runtime == 3590.0
        assert pop.parallel_efficiency == pytest.approx(8500.0 / (3 * 3590.0))
        assert pop.load_balance == pytest.approx(8500.0 / 9000.0)
        report = build_report(pop, pop_timeline(trace, 8), source=str(FIXTURE))
        assert validate_pop_report(json.loads(json.dumps(report))) == []
        assert len(report["windows"]) == 8
