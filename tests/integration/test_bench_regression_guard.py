"""The CI benchmark regression guard (``benchmarks/check_regression.py``).

Exercises the comparison semantics the benchmark-smoke job relies on:
regressions beyond the tolerance fail, faster-or-equal runs pass,
and results with differing params (smoke-sized runs) or without a
baseline are skipped rather than misjudged.
"""

import json
import runpy
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"


@pytest.fixture(scope="module")
def guard():
    return runpy.run_path(str(SCRIPT))


def record(name, params, timings):
    return {
        "schema": "repro-bench-result/1",
        "name": name,
        "params": params,
        "timings": timings,
        "metrics": {},
    }


def write(directory: Path, rec: dict) -> None:
    directory.mkdir(exist_ok=True)
    (directory / f"{rec['name']}.json").write_text(json.dumps(rec))


def run_guard(guard, tmp_path, baseline, fresh, tol=2.0):
    base_dir, fresh_dir = tmp_path / "baseline", tmp_path / "fresh"
    for rec in baseline:
        write(base_dir, rec)
    for rec in fresh:
        write(fresh_dir, rec)
    out = tmp_path / "diff.json"
    code = guard["main"](
        ["--baseline", str(base_dir), "--fresh", str(fresh_dir), "--tol", str(tol),
         "--out", str(out)]
    )
    return code, json.loads(out.read_text())


def test_within_tolerance_passes(guard, tmp_path):
    base = record("mc", {"replicates": 200}, {"serial_s": 1.0})
    fresh = record("mc", {"replicates": 200}, {"serial_s": 1.9})
    code, diff = run_guard(guard, tmp_path, [base], [fresh])
    assert code == 0
    assert diff["regressions"] == []
    assert diff["benchmarks"]["mc"]["timings"]["serial_s"]["ratio"] == pytest.approx(1.9)


def test_regression_fails(guard, tmp_path):
    base = record("mc", {"replicates": 200}, {"serial_s": 1.0, "jobs2_s": 0.5})
    fresh = record("mc", {"replicates": 200}, {"serial_s": 2.5, "jobs2_s": 0.5})
    code, diff = run_guard(guard, tmp_path, [base], [fresh])
    assert code == 1
    assert len(diff["regressions"]) == 1
    assert "mc.serial_s" in diff["regressions"][0]
    assert diff["benchmarks"]["mc"]["timings"]["serial_s"]["regressed"]
    assert not diff["benchmarks"]["mc"]["timings"]["jobs2_s"]["regressed"]


def test_differing_params_are_skipped(guard, tmp_path):
    """Smoke runs shrink replicate counts; those must never be compared."""
    base = record("mc", {"replicates": 200}, {"serial_s": 1.0})
    fresh = record("mc", {"replicates": 24}, {"serial_s": 9.0})
    code, diff = run_guard(guard, tmp_path, [base], [fresh])
    assert code == 0
    assert diff["benchmarks"]["mc"]["status"] == "skipped-params-differ"


def test_volatile_params_ignored(guard, tmp_path):
    """Core counts differ across runners without breaking comparability."""
    base = record("mc", {"replicates": 200, "cores": 1}, {"serial_s": 1.0})
    fresh = record("mc", {"replicates": 200, "cores": 4}, {"serial_s": 1.1})
    code, diff = run_guard(guard, tmp_path, [base], [fresh])
    assert code == 0
    assert diff["benchmarks"]["mc"]["status"] == "compared"


def test_new_benchmark_without_baseline_passes(guard, tmp_path):
    fresh = record("brand_new", {"n": 1}, {"serial_s": 5.0})
    code, diff = run_guard(guard, tmp_path, [], [fresh])
    assert code == 0
    assert diff["benchmarks"]["brand_new"]["status"] == "no-baseline"


def test_non_timing_keys_ignored(guard, tmp_path):
    base = record("mc", {"n": 1}, {"serial_s": 1.0, "speedup": 1.0})
    fresh = record("mc", {"n": 1}, {"serial_s": 1.0, "speedup": 99.0})
    code, diff = run_guard(guard, tmp_path, [base], [fresh])
    assert code == 0
    assert "speedup" not in diff["benchmarks"]["mc"]["timings"]
