"""Master/worker task farm with wildcard receives.

Rank 0 hands out work units to whichever worker reports back first
(MPI_ANY_SOURCE), the load-imbalanced pattern that *absorbs* noise:
a slow worker simply gets fewer tasks, so the absorption analysis
(§4.2) should classify most of its message joins as tolerant — the
counterpoint to the fully synchronous token ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import ANY_SOURCE, Compute, Op, RankInfo, Recv, Send

__all__ = ["MasterWorkerParams", "master_worker"]

_TASK_TAG = 1
_RESULT_TAG = 2
_STOP_TAG = 3


@dataclass(frozen=True)
class MasterWorkerParams:
    """Configuration of the task farm.

    tasks:
        Total work units to distribute.
    task_bytes / result_bytes:
        Payload sizes for task descriptors and results.
    base_cycles:
        Work per task on a worker.
    skew:
        Per-rank work multiplier spread: worker r's tasks cost
        ``base_cycles * (1 + skew * r / p)`` — deterministic imbalance.
    """

    tasks: int = 32
    task_bytes: int = 256
    result_bytes: int = 64
    base_cycles: float = 20_000.0
    skew: float = 0.5

    def __post_init__(self) -> None:
        if self.tasks < 1:
            raise ValueError("tasks must be >= 1")
        if self.base_cycles < 0 or self.skew < 0:
            raise ValueError("base_cycles and skew must be >= 0")


def master_worker(params: MasterWorkerParams = MasterWorkerParams()):
    """Rank program factory: rank 0 is the master, all others workers."""

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        if p < 2:
            for _ in range(params.tasks):
                yield Compute(params.base_cycles)
            return
        workers = p - 1
        if me.rank == 0:
            remaining = params.tasks
            # Seed one task per worker (or fewer if tasks < workers).
            seeded = min(workers, remaining)
            for w in range(1, seeded + 1):
                yield Send(dest=w, nbytes=params.task_bytes, tag=_TASK_TAG)
            remaining -= seeded
            outstanding = seeded
            while outstanding:
                status = yield Recv(source=ANY_SOURCE, tag=_RESULT_TAG)
                outstanding -= 1
                if remaining:
                    yield Send(dest=status.source, nbytes=params.task_bytes, tag=_TASK_TAG)
                    remaining -= 1
                    outstanding += 1
            for w in range(1, workers + 1):
                yield Send(dest=w, nbytes=0, tag=_STOP_TAG)
        else:
            cost = params.base_cycles * (1.0 + params.skew * me.rank / p)
            if me.rank > min(workers, params.tasks):
                # Never seeded: only the stop message arrives.
                yield Recv(source=0, tag=_STOP_TAG)
                return
            while True:
                # Task or stop, whichever the master sends next to us.
                status = yield Recv(source=0)
                if status.tag == _STOP_TAG:
                    return
                yield Compute(cost)
                yield Send(dest=0, nbytes=params.result_bytes, tag=_RESULT_TAG)

    return program
