"""Parameter sweeps and sensitivity curves (§6).

"From this new completion time, we can observe how running times for
the overall program and individual processors increase in the presence
of varying degrees of noise."  A sweep runs the traversal once per
perturbation setting over the *same* trace/build and collects the
resulting delays; helpers fit the response slope and find tolerance
thresholds ("what amount of operating system overhead the application
can tolerate before significant performance degradation occurs", §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.builder import BuildResult, build_graph
from repro.core.checkpoint import (
    CheckpointStore,
    ShardKey,
    build_digest,
    resolve_rows,
    signature_digest,
    trace_digest,
)
from repro.core.parallel import FaultPolicy, resolve_backend
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.traversal import (
    StreamingTraversal,
    TraversalResult,
    propagate,
    propagate_presampled,
    sample_edge_deltas,
)
from repro.noise.signature import MachineSignature

__all__ = ["SweepPoint", "SweepResult", "sweep_scales", "sweep_signatures", "fit_slope"]

#: Sweep engines: the in-core object graph, the windowed streaming
#: traversal, or the compiled numpy plan.  "auto" resolves to compiled,
#: "graph" is an alias for incore (matching the analyze CLI spelling).
SWEEP_ENGINES = ("auto", "incore", "graph", "streaming", "compiled")


def _resolve_engine(engine: str) -> str:
    if engine not in SWEEP_ENGINES:
        raise ValueError(f"engine must be one of {SWEEP_ENGINES}, got {engine!r}")
    return {"auto": "compiled", "graph": "incore"}.get(engine, engine)


@dataclass(frozen=True)
class SweepPoint:
    """One setting of the sweep and its measured response."""

    label: str
    x: float
    delays: tuple[float, ...]
    mode: str

    @property
    def max_delay(self) -> float:
        return max(self.delays)

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays)


@dataclass
class SweepResult:
    """Ordered sweep points plus fitted response."""

    points: list = field(default_factory=list)

    def xs(self) -> np.ndarray:
        return np.array([p.x for p in self.points])

    def max_delays(self) -> np.ndarray:
        return np.array([p.max_delay for p in self.points])

    def mean_delays(self) -> np.ndarray:
        return np.array([p.mean_delay for p in self.points])

    def slope(self, per_rank_mean: bool = False) -> float:
        """Least-squares slope of (x, delay)."""
        ys = self.mean_delays() if per_rank_mean else self.max_delays()
        return fit_slope(self.xs(), ys)

    def tolerance_threshold(self, budget: float) -> float | None:
        """Smallest swept x whose max delay exceeds ``budget`` (None if
        the application tolerates every setting)."""
        for p in self.points:
            if p.max_delay > budget:
                return p.x
        return None

    def table(self) -> str:
        lines = [f"{'x':>12} {'max delay':>14} {'mean delay':>14}  label"]
        for p in self.points:
            lines.append(f"{p.x:>12.4g} {p.max_delay:>14.1f} {p.mean_delay:>14.1f}  {p.label}")
        return "\n".join(lines)


def fit_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ys against xs."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size < 2:
        raise ValueError("slope fit needs at least two points")
    if np.allclose(xs, xs[0]):
        raise ValueError("slope fit needs varying x")
    return float(np.polyfit(xs, ys, 1)[0])


def _run_one(
    trace_set,
    build: BuildResult | None,
    spec: PerturbationSpec,
    mode: str,
    engine: str,
    config: BuildConfig,
    coarsen: str = "auto",
    store: CheckpointStore | None = None,
) -> TraversalResult:
    if engine == "incore":
        assert build is not None
        return propagate(build, spec, mode=mode)
    if engine == "compiled":
        from repro.core.compiled import compiled_plan

        assert build is not None
        plan = compiled_plan(build, coarsen=coarsen, checkpoint=store)
        return plan.propagate_one(spec, mode=mode)
    if engine == "streaming":
        return StreamingTraversal(spec, config=config, mode=mode).run(trace_set)
    raise ValueError(f"engine must be 'incore', 'compiled', or 'streaming', got {engine!r}")


def _sweep_worker(payload, spec: PerturbationSpec) -> list[float]:
    """Worker body for parallel sweeps: one point's final delays.

    ``carrier`` is the built graph (in-core engine) or the trace set
    (streaming engine) — whichever the engine traverses.
    """
    engine, carrier, mode, config = payload
    with obs.span("sweep_point", engine=engine, scale=spec.scale):
        obs.span_add("sweep.points")
        if engine == "incore":
            return propagate(carrier, spec, mode=mode).final_delay
        if engine == "compiled":
            return list(carrier.propagate_batch(spec, mode=mode).delays[0])
        return StreamingTraversal(spec, config=config, mode=mode).run(carrier).final_delay


def _map_points(
    specs: Sequence[PerturbationSpec],
    trace_set,
    build: BuildResult | None,
    mode: str,
    engine: str,
    config: BuildConfig,
    jobs: int | None,
    policy: FaultPolicy | None = None,
    coarsen: str = "auto",
    store: CheckpointStore | None = None,
) -> list[list[float]]:
    backend = resolve_backend(jobs, policy=policy)
    if engine == "incore":
        carrier = build
    elif engine == "compiled":
        from repro.core.compiled import compiled_plan

        carrier = compiled_plan(build, coarsen=coarsen, checkpoint=store)
    else:
        carrier = trace_set
    return backend.map(_sweep_worker, specs, payload=(engine, carrier, mode, config))


def _context_digest(build: BuildResult | None, trace_set) -> str:
    return build_digest(build) if build is not None else trace_digest(trace_set)


def _point(label: str, x: float, row, mode: str, nprocs: int) -> SweepPoint:
    """A sweep point from a delay row; None (a skipped chunk) → NaNs."""
    delays = tuple(row) if row is not None else (float("nan"),) * nprocs
    return SweepPoint(label=label, x=x, delays=delays, mode=mode)


def _scale_rows(
    trace_set,
    build: BuildResult | None,
    spec: PerturbationSpec,
    scales: Sequence[float],
    mode: str,
    engine: str,
    config: BuildConfig,
    jobs: int | None,
    policy: FaultPolicy | None,
    coarsen: str = "auto",
    store: CheckpointStore | None = None,
):
    """Yield one per-rank delay row per scale, in ladder order.

    A generator on purpose: checkpointed sweeps persist each row as it
    arrives, so a run killed mid-ladder keeps every completed point.
    """
    if not scales:
        return
    if engine == "compiled":
        from repro.core.compiled import compiled_plan

        plan = compiled_plan(build, coarsen=coarsen, checkpoint=store)
        raw = plan.sample_raw_batch(spec.signature, [spec.seed], 1.0)[0]
        batch = plan.propagate_presampled_batch(raw, [spec.scale * s for s in scales], mode=mode)
        obs.add("sweep.points", len(scales))
        for row in batch.delays:
            yield tuple(row)
        return
    backend = resolve_backend(jobs, policy=policy)
    if backend.jobs >= 2:
        # One full propagation per point — identical results to the
        # presampled fast path (deterministic sampling), run anywhere.
        specs = [
            PerturbationSpec(spec.signature, spec.seed, spec.scale * s)
            if engine == "incore"
            else spec.scaled(s)
            for s in scales
        ]
        for row in _map_points(
            specs, trace_set, build, mode, engine, config, jobs, policy, coarsen, store
        ):
            yield tuple(row) if row is not None else None
        return
    raw = sample_edge_deltas(build, spec) if engine == "incore" else None
    for s in scales:
        if engine == "incore":
            # Sample once, re-propagate per scale (identical results to a
            # fresh propagate — deterministic sampling — but much faster).
            tr = propagate_presampled(build, raw, scale=spec.scale * s, mode=mode)
        else:
            tr = _run_one(trace_set, build, spec.scaled(s), mode, engine, config, coarsen, store)
        obs.add("sweep.points")
        yield tuple(tr.final_delay)


def sweep_scales(
    trace_set,
    spec: PerturbationSpec,
    scales: Sequence[float],
    mode: str = "additive",
    engine: str = "incore",
    config: BuildConfig | None = None,
    jobs: int | None = 0,
    policy: FaultPolicy | None = None,
    checkpoint: CheckpointStore | str | None = None,
    resume: bool = False,
    coarsen: str = "auto",
    build: BuildResult | None = None,
) -> SweepResult:
    """Run the traversal once per global scale factor.

    The graph is built (or matched) once; only delta sampling changes
    between points, so the sweep isolates the noise response.  A caller
    that already holds the built graph (the serving daemon's build
    cache, a notebook that analyzed first) can pass it via ``build`` to
    skip the rebuild — it must be the graph of ``trace_set`` under
    ``config``, and results are bit-identical either way.  The
    streaming engine traverses the traces directly and ignores it.

    ``jobs >= 2`` (or None = auto) fans the points out across worker
    processes (:mod:`repro.core.parallel`); deterministic sampling makes
    the results bit-identical to the serial sweep.  ``policy`` is the
    pool's :class:`~repro.core.parallel.FaultPolicy` (chunk timeouts,
    retries, ``on_failure``); a skipped point's delays come back NaN.

    The ``"compiled"`` engine (or ``"auto"``) samples the edge deltas
    once and pushes the whole scale ladder through one replicate-batched
    kernel pass — every point in a single numpy invocation, so ``jobs``
    is moot there.  Results stay bit-identical to the other engines.

    ``checkpoint`` persists one shard per ladder point as it completes,
    keyed by ``(seed, signature digest, effective scale, mode, engine,
    build digest)``; ``resume=True`` reads existing shards and computes
    only the missing points, bit-identical to an uninterrupted run.

    ``coarsen`` controls phase coarsening in the compiled engine
    (``"auto"``/``"on"``/``"off"``, see :mod:`repro.core.coarsen`);
    with a checkpoint store the compiled plan is persisted too.
    """
    engine = _resolve_engine(engine)
    config = config or BuildConfig()
    store = CheckpointStore.coerce(checkpoint)
    scales = [float(s) for s in scales]
    with obs.span("sweep_scales", engine=engine, points=len(scales)):
        if engine == "streaming":
            build = None
        elif build is None:
            build = build_graph(trace_set, config)

        def compute(indices):
            return _scale_rows(
                trace_set,
                build,
                spec,
                [scales[i] for i in indices],
                mode,
                engine,
                config,
                jobs,
                policy,
                coarsen,
                store,
            )

        if store is None:
            rows = list(compute(range(len(scales))))
        else:
            context = _context_digest(build, trace_set)
            sig_digest = signature_digest(spec.signature)
            # Streaming sweeps scale the spec directly (scaled(s)); the
            # graph engines multiply into spec.scale — key on whichever
            # effective scale actually drives the sampling.
            keys = [
                ShardKey(
                    "sweep_scales",
                    spec.seed,
                    sig_digest,
                    s if engine == "streaming" else spec.scale * s,
                    mode,
                    engine,
                    context,
                )
                for s in scales
            ]
            rows = resolve_rows(store, keys, compute, resume=resume)
        nprocs = build.graph.nprocs if build is not None else trace_set.nprocs
        result = SweepResult()
        for s, row in zip(scales, rows):
            result.points.append(_point(f"scale={s:g}", float(s), row, mode, nprocs))
        return result


def _signature_rows(
    trace_set,
    build: BuildResult | None,
    specs: Sequence[PerturbationSpec],
    mode: str,
    engine: str,
    config: BuildConfig,
    jobs: int | None,
    policy: FaultPolicy | None,
    coarsen: str = "auto",
    store: CheckpointStore | None = None,
):
    """Yield one per-rank delay row per signature spec (generator, like
    :func:`_scale_rows`, so checkpointed ladders persist incrementally)."""
    backend = resolve_backend(jobs, policy=policy)
    if backend.jobs >= 2:
        for row in _map_points(
            specs, trace_set, build, mode, engine, config, jobs, policy, coarsen, store
        ):
            yield tuple(row) if row is not None else None
        return
    for spec in specs:
        tr = _run_one(trace_set, build, spec, mode, engine, config, coarsen, store)
        obs.add("sweep.points")
        yield tuple(tr.final_delay)


def sweep_signatures(
    trace_set,
    signatures: Sequence[MachineSignature],
    xs: Sequence[float] | None = None,
    seed: int = 0,
    mode: str = "additive",
    engine: str = "incore",
    config: BuildConfig | None = None,
    jobs: int | None = 0,
    policy: FaultPolicy | None = None,
    checkpoint: CheckpointStore | str | None = None,
    resume: bool = False,
    coarsen: str = "auto",
) -> SweepResult:
    """Run the traversal once per machine signature (platform ladder).

    ``xs`` supplies the numeric sweep coordinate per signature (e.g.
    mean noise in cycles); defaults to the signature index.  ``jobs``,
    ``policy``, ``checkpoint`` and ``resume`` behave exactly as in
    :func:`sweep_scales`; checkpoint shards key on each *signature's*
    content digest, so every ladder rung is independently resumable.
    """
    engine = _resolve_engine(engine)
    config = config or BuildConfig()
    if xs is not None and len(xs) != len(signatures):
        raise ValueError("xs must align with signatures")
    store = CheckpointStore.coerce(checkpoint)
    with obs.span("sweep_signatures", engine=engine, points=len(signatures)):
        build = build_graph(trace_set, config) if engine != "streaming" else None
        specs = [PerturbationSpec(sig, seed=seed) for sig in signatures]

        def compute(indices):
            return _signature_rows(
                trace_set,
                build,
                [specs[i] for i in indices],
                mode,
                engine,
                config,
                jobs,
                policy,
                coarsen,
                store,
            )

        if store is None:
            rows = list(compute(range(len(specs))))
        else:
            context = _context_digest(build, trace_set)
            keys = [
                ShardKey(
                    "sweep_signatures", seed, signature_digest(sig), 1.0, mode, engine, context
                )
                for sig in signatures
            ]
            rows = resolve_rows(store, keys, compute, resume=resume)
        nprocs = build.graph.nprocs if build is not None else trace_set.nprocs
        result = SweepResult()
        for i, (sig, row) in enumerate(zip(signatures, rows)):
            x = float(xs[i]) if xs is not None else float(i)
            result.points.append(_point(sig.name, x, row, mode, nprocs))
        return result
