"""Tests for the preset simulated platforms."""

import pytest

from repro.apps import TokenRingParams, token_ring
from repro.machines import PRESETS, asciq_like, noisy_cluster, quiet_cluster, wan_grid
from repro.mpisim import run
from repro.trace.validate import validate_traces


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_presets_build_and_run(name):
    machine = PRESETS[name](4, seed=0)
    assert machine.nprocs == 4
    res = run(token_ring(TokenRingParams(traversals=2)), machine=machine, seed=1)
    assert res.makespan > 0
    assert validate_traces(res.trace).ok


def test_presets_deterministic():
    a = run(token_ring(TokenRingParams(traversals=2)), machine=noisy_cluster(4, seed=0), seed=1)
    b = run(token_ring(TokenRingParams(traversals=2)), machine=noisy_cluster(4, seed=0), seed=1)
    assert a.finish_times == b.finish_times


def test_noise_ordering_quiet_fastest():
    """The preset ladder orders as designed: quiet < noisy for the same
    workload, and the WAN grid's slow links dominate everything."""
    prog = token_ring(TokenRingParams(traversals=3, token_bytes=4096))
    quiet = run(prog, machine=quiet_cluster(4, seed=0), seed=1).makespan
    noisy = run(prog, machine=noisy_cluster(4, seed=0), seed=1).makespan
    wan = run(prog, machine=wan_grid(4, seed=0), seed=1).makespan
    assert quiet < noisy < wan


def test_asciq_daemon_phases_differ_per_rank():
    machine = asciq_like(8, skewed_clocks=False)
    phases = {machine.noise[r].parts[0].phase for r in range(8)}
    assert len(phases) == 8  # unsynchronized daemons — the ASCI Q killer


def test_skewed_clocks_default_on():
    machine = quiet_cluster(4, seed=3)
    assert any(c.offset != 0.0 for c in machine.clocks)
    plain = quiet_cluster(4, skewed_clocks=False)
    assert plain.clocks == ()
