"""Tests for parametric fitting of microbenchmark samples (§5, method 1)."""

import numpy as np
import pytest

from repro.noise.distributions import Exponential, Gamma, LogNormal, Normal, Pareto
from repro.noise.empirical import Empirical
from repro.noise.fitting import (
    FAMILIES,
    fit_best,
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_normal,
    fit_pareto,
)


class TestIndividualFits:
    def test_exponential_recovers_mean(self, rng):
        samples = Exponential(250.0).sample_n(rng, 8000)
        res = fit_exponential(samples)
        assert res.family == "exponential"
        assert res.distribution.mean_value == pytest.approx(250.0, rel=0.05)
        assert res.acceptable()

    def test_normal_recovers_params(self, rng):
        samples = Normal(50.0, 7.0).sample_n(rng, 8000)
        res = fit_normal(samples)
        assert res.distribution.mu == pytest.approx(50.0, rel=0.05)
        assert res.distribution.sigma == pytest.approx(7.0, rel=0.1)
        assert res.acceptable()

    def test_lognormal_recovers_params(self, rng):
        samples = LogNormal(3.0, 0.4).sample_n(rng, 8000)
        res = fit_lognormal(samples)
        assert res.distribution.mu == pytest.approx(3.0, rel=0.05)
        assert res.distribution.sigma == pytest.approx(0.4, rel=0.1)
        assert res.acceptable()

    def test_gamma_recovers_moments(self, rng):
        src = Gamma(shape=3.0, scale=40.0)
        samples = src.sample_n(rng, 8000)
        res = fit_gamma(samples)
        assert res.distribution.mean() == pytest.approx(src.mean(), rel=0.05)
        assert res.acceptable()

    def test_pareto_recovers_alpha(self, rng):
        samples = Pareto(alpha=2.5, minimum=100.0).sample_n(rng, 8000)
        res = fit_pareto(samples)
        assert res.distribution.alpha == pytest.approx(2.5, rel=0.1)
        assert res.distribution.minimum == pytest.approx(100.0, rel=0.01)

    def test_exponential_rejects_negative(self):
        with pytest.raises(ValueError):
            fit_exponential([-1.0, 2.0, 3.0])

    def test_positive_families_reject_nonpositive(self):
        for fit in (fit_lognormal, fit_gamma, fit_pareto):
            with pytest.raises(ValueError):
                fit([0.0, 1.0, 2.0])

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_normal([1.0])


class TestFitBest:
    def test_picks_correct_family_exponential(self, rng):
        samples = Exponential(100.0).sample_n(rng, 5000)
        res = fit_best(samples)
        # Gamma(k≈1) and exponential overlap; accept either, but the fit
        # must be statistically acceptable and mean-faithful.
        assert res.family in ("exponential", "gamma", "weibull", "empirical")
        assert res.distribution.mean() == pytest.approx(100.0, rel=0.1)

    def test_picks_normal_for_gaussian(self, rng):
        samples = Normal(1000.0, 10.0).sample_n(rng, 5000)
        res = fit_best(samples, families=["exponential", "normal"])
        assert res.family == "normal"

    def test_fallback_empirical_for_multimodal(self, rng):
        # Bimodal spikes: no single family fits.
        a = Normal(10.0, 0.5).sample_n(rng, 2000)
        b = Normal(1000.0, 0.5).sample_n(rng, 2000)
        samples = np.concatenate([a, b])
        res = fit_best(samples)
        assert res.family == "empirical"
        assert isinstance(res.distribution, Empirical)

    def test_no_fallback_raises_or_returns_best(self, rng):
        samples = Normal(50.0, 5.0).sample_n(rng, 3000)
        res = fit_best(samples, fallback_empirical=False)
        assert res.family in FAMILIES

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(KeyError):
            fit_best([1.0, 2.0, 3.0], families=["zipf"])

    def test_inapplicable_families_skipped(self, rng):
        # Samples containing zeros: positive-support families must be
        # skipped without aborting the search.
        samples = np.abs(Normal(5.0, 2.0).sample_n(rng, 3000))
        samples[0] = 0.0
        res = fit_best(samples)
        assert res is not None


class TestWeibullFit:
    def test_recovers_params(self, rng):
        from repro.noise.distributions import Weibull
        from repro.noise.fitting import fit_weibull

        samples = Weibull(shape=1.8, scale=120.0).sample_n(rng, 6000)
        res = fit_weibull(samples)
        assert res.distribution.shape == pytest.approx(1.8, rel=0.1)
        assert res.distribution.scale == pytest.approx(120.0, rel=0.05)
        assert res.acceptable()

    def test_in_fit_best_families(self, rng):
        from repro.noise.distributions import Weibull
        from repro.noise.fitting import fit_best

        samples = Weibull(shape=0.8, scale=40.0).sample_n(rng, 4000)
        res = fit_best(samples)
        # Heavy-tailed sub-exponential data: weibull (or gamma, which can
        # mimic it) should win and be statistically acceptable.
        assert res.family in ("weibull", "gamma", "empirical")
        assert res.distribution.mean() == pytest.approx(
            Weibull(0.8, 40.0).mean(), rel=0.15
        )
