"""Chrome trace-event JSON schema checks.

Used by the obs test suite and by the CI smoke step (``python -m
repro.obs.validate profile.json``) to guarantee that what ``--profile``
writes actually loads in Perfetto: a ``traceEvents`` object list whose
events carry the required fields with sane types, complete events with
nonnegative durations, and properly nested spans per ``(pid, tid)``
track.
"""

from __future__ import annotations

import json
import sys
from numbers import Number
from pathlib import Path

__all__ = ["validate_chrome_trace", "validate_chrome_trace_file"]

_REQUIRED = ("name", "ph", "ts", "pid", "tid")


def validate_chrome_trace(obj) -> list[str]:
    """Return a list of schema problems (empty means valid)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    complete: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = [k for k in _REQUIRED if k not in ev]
        if missing:
            problems.append(f"{where}: missing {missing}")
            continue
        if not isinstance(ev["name"], str):
            problems.append(f"{where}: 'name' must be a string")
        if not isinstance(ev["ts"], Number):
            problems.append(f"{where}: 'ts' must be numeric")
            continue
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
        if ev["ph"] == "X":
            dur = ev.get("dur")
            if not isinstance(dur, Number):
                problems.append(f"{where}: complete event lacks numeric 'dur'")
                continue
            if dur < 0:
                problems.append(f"{where}: negative duration {dur}")
                continue
            complete.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ev["ts"]), float(ev["ts"]) + float(dur), ev["name"])
            )
    # Per-track nesting: intervals may nest or be disjoint, never
    # partially overlap (Perfetto renders partial overlaps misleadingly).
    for track, intervals in complete.items():
        intervals.sort(key=lambda iv: (iv[0], -(iv[1] - iv[0])))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in intervals:
            while stack and start >= stack[-1][1] - 1e-9:
                stack.pop()
            if stack and end > stack[-1][1] + 1e-9:
                problems.append(
                    f"track {track}: span {name!r} [{start:.1f}, {end:.1f}] partially "
                    f"overlaps enclosing {stack[-1][2]!r} ending at {stack[-1][1]:.1f}"
                )
            stack.append((start, end, name))
    return problems


def validate_chrome_trace_file(path: str | Path) -> dict:
    """Load, validate, and return the trace object; raise on problems."""
    with open(path) as fh:
        obj = json.load(fh)
    problems = validate_chrome_trace(obj)
    if problems:
        listing = "\n".join(f"  - {p}" for p in problems[:20])
        raise ValueError(f"{path}: invalid Chrome trace:\n{listing}")
    return obj


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.validate TRACE.json [...]", file=sys.stderr)
        return 2
    status = 0
    for arg in argv:
        try:
            obj = validate_chrome_trace_file(arg)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL {arg}: {exc}", file=sys.stderr)
            status = 1
            continue
        n = len(obj["traceEvents"])
        print(f"ok {arg}: {n} trace event(s)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
