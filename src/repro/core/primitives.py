"""Per-primitive subgraph templates (§3, Figs. 2–4).

The paper embeds the blocking semantics of every message-passing
primitive in the graph itself.  Each template below returns *edge
specifications* between *endpoint descriptors*; the in-core builder
materializes them as graph nodes/edges, and the streaming traversal
consumes them directly — both therefore encode identical semantics and,
through the deterministic ``uid`` scheme, sample identical deltas.

Endpoint descriptors (plain tuples, hashable):

* ``("sub", rank, seq, phase)`` — a real subevent;
* ``("hub", ordinal)`` — the virtual hub of collective #ordinal (Fig. 4);
* ``("bfly", ordinal, rank, k)`` — round-``k`` virtual node of the
  explicit-butterfly expansion for that rank.

Template catalogue:

``intra_event_edge``
    S→E of one event.  Blocking SEND carries δ_os1 (Eq. 1 second term);
    rooted collectives carry the per-rank local-noise edge the paper's
    Reduce description requires; everything else is pure precedence.
``gap_edge``
    E(prev)→S(next) compute-phase edge; carries one δ_os sample — the
    paper's primary noise-attachment point (§4.2, §5.1).
``transfer_edges``
    Fig. 2 (blocking) and Fig. 3 (nonblocking + waits): a data-path edge
    carrying δ_λ1 + δ_t(d) + δ_os2 into the receive-completion subevent,
    and an acknowledgement edge carrying δ_λ2 back into the
    send-completion subevent (modeling the synchronous blocking send of
    Eq. 1; suppressed for messages at or below an eager threshold when
    one is configured).
``collective_edges``
    Fig. 4 hub approximation (fan-in edges labelled l_δ with
    ceil(log2 p) samples, unlabelled fan-out carrying the max), the
    paper's simplified Reduce variant, our mirrored Bcast variant, and
    the explicit O(p log p) butterfly expansion the paper mentions as
    exact-but-wasteful (ABL1 ablates hub vs butterfly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import ilog2_ceil
from repro.core.diagnostics import DiagnosticError
from repro.core.graph import DeltaKind, DeltaSpec, EdgeKind, NO_DELTA, Phase
from repro.core.matching import CollectiveGroup
from repro.trace.events import EventKind, EventRecord, ROOTED_COLLECTIVES

__all__ = [
    "EdgeT",
    "BuildConfig",
    "sub",
    "hub",
    "bfly",
    "intra_event_edge",
    "gap_edge",
    "transfer_edges",
    "collective_edges",
    "UNROOTED_HUB_KINDS",
    "BCAST_STYLE",
    "REDUCE_STYLE",
    "PREFIX_STYLE",
]

# Collective families (see module docstring).
UNROOTED_HUB_KINDS = frozenset(
    {
        EventKind.ALLREDUCE,
        EventKind.BARRIER,
        EventKind.ALLGATHER,
        EventKind.ALLTOALL,
        EventKind.REDUCE_SCATTER,
    }
)
BCAST_STYLE = frozenset({EventKind.BCAST, EventKind.SCATTER})
REDUCE_STYLE = frozenset({EventKind.REDUCE, EventKind.GATHER})
PREFIX_STYLE = frozenset({EventKind.SCAN})

# uid namespaces (first element) — keep distinct per template so two edges
# never share a sampling stream.
_UID_INTRA = 1
_UID_GAP = 2
_UID_DATA = 3
_UID_ACK = 4
_UID_FANIN = 5
_UID_BCASTOUT = 6
_UID_BFLY_LOCAL = 7
_UID_BFLY_MSG = 8


def sub(rank: int, seq: int, phase: Phase) -> tuple:
    return ("sub", rank, seq, int(phase))


def hub(ordinal: int) -> tuple:
    return ("hub", ordinal)


def bfly(ordinal: int, rank: int, k: int) -> tuple:
    return ("bfly", ordinal, rank, k)


@dataclass(frozen=True)
class EdgeT:
    """One edge specification produced by a template."""

    src: tuple
    dst: tuple
    kind: EdgeKind
    weight: float
    delta: DeltaSpec
    label: str = ""


@dataclass(frozen=True)
class BuildConfig:
    """Knobs shared by the builder and the streaming traversal.

    collective_mode:
        ``"hub"`` — Fig. 4 approximation (default); ``"butterfly"`` —
        explicit O(p log p) expansion for the unrooted collectives.
    eager_threshold:
        When set, sends of at most this many bytes are modeled as
        buffered (no acknowledgement edge back to the sender — their
        blocking send completes locally).  ``None`` models every send
        synchronously, which is the paper's Fig. 2 / Eq. 1 semantics.
    absolute_weights:
        Store message-edge weights as cross-rank timestamp differences
        instead of the paper's zero weight.  ONLY valid for traces with
        a trusted global clock (our simulator's validation runs); the
        default keeps the paper's clock-free model.
    reduce_transfer_deltas:
        When True, REDUCE/GATHER fan-in edges carry δ_t(d) in addition
        to the single δ_λ sample the paper specifies (extension for
        data-heavy gathers; default False = paper-faithful).
    """

    collective_mode: str = "hub"
    eager_threshold: int | None = None
    absolute_weights: bool = False
    reduce_transfer_deltas: bool = False

    def __post_init__(self) -> None:
        if self.collective_mode not in ("hub", "butterfly"):
            raise ValueError(
                f"collective_mode must be 'hub' or 'butterfly', got {self.collective_mode!r}"
            )
        if self.eager_threshold is not None and self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0 or None")

    def models_ack(self, nbytes: int) -> bool:
        """Whether a send of ``nbytes`` gets the synchronous ack edge."""
        return self.eager_threshold is None or nbytes > self.eager_threshold


def intra_event_edge(ev: EventRecord) -> EdgeT:
    """S→E edge of one event, weighted with the observed duration."""
    if ev.kind == EventKind.SEND:
        delta = DeltaSpec(
            DeltaKind.OS, rank=ev.rank, uid=(_UID_INTRA, ev.rank, ev.seq)
        )  # δ_os1 of Eq. 1
    elif ev.kind in ROOTED_COLLECTIVES or ev.kind in PREFIX_STYLE:
        delta = DeltaSpec(DeltaKind.OS, rank=ev.rank, uid=(_UID_INTRA, ev.rank, ev.seq))
    else:
        delta = NO_DELTA
    return EdgeT(
        sub(ev.rank, ev.seq, Phase.START),
        sub(ev.rank, ev.seq, Phase.END),
        EdgeKind.LOCAL,
        ev.duration,
        delta,
        label="op",
    )


def gap_edge(prev: EventRecord, ev: EventRecord) -> EdgeT:
    """E(prev)→S(ev): the compute phase between two events (Fig. 1)."""
    if ev.rank != prev.rank or ev.seq != prev.seq + 1:
        raise DiagnosticError(
            f"gap edge needs consecutive events, got {prev.key} -> {ev.key}",
            code="invalid-gap",
            rank=ev.rank,
            seq=ev.seq,
        )
    gap = ev.t_start - prev.t_end
    if gap < 0:
        raise DiagnosticError(
            f"events overlap: negative compute gap at r{ev.rank}#{ev.seq}: {gap}",
            code="overlapping-events",
            rank=ev.rank,
            seq=ev.seq,
        )
    return EdgeT(
        sub(prev.rank, prev.seq, Phase.END),
        sub(ev.rank, ev.seq, Phase.START),
        EdgeKind.LOCAL,
        gap,
        DeltaSpec(DeltaKind.OS, rank=ev.rank, uid=(_UID_GAP, ev.rank, ev.seq)),
        label="compute",
    )


def transfer_edges(
    send_ev: EventRecord,
    recv_ev: EventRecord,
    send_completion: tuple | None,
    recv_completion: tuple | None,
    config: BuildConfig,
    chan_index: int = 0,
) -> list[EdgeT]:
    """Message-edge pair for one matched transfer (Figs. 2 and 3).

    ``send_completion``/``recv_completion`` are the (rank, seq) keys of
    the WAIT-family events that retired the respective nonblocking
    halves (None when not applicable or missing — the §4.3 async case).
    ``chan_index`` is the transfer's ordinal on its ``(src, dst, tag)``
    channel — the canonical identity used in edge uids so the streaming
    traversal (which never sees the remote event's seq) samples the same
    deltas.
    """
    s_rank, s_seq = send_ev.rank, send_ev.seq
    r_rank, r_seq = recv_ev.rank, recv_ev.seq
    tag = send_ev.tag
    nbytes = send_ev.nbytes
    data_uid = (_UID_DATA, s_rank, r_rank, tag, chan_index)
    ack_uid = (_UID_ACK, s_rank, r_rank, tag, chan_index)
    edges: list[EdgeT] = []

    # --- where delays *land* on the receiver -------------------------------
    recv_is_nonblocking = recv_ev.kind == EventKind.IRECV
    if recv_is_nonblocking and recv_completion is None:
        # The receiver never observed this transfer completing (§4.3's
        # fully-asynchronous case): there is no subevent whose time the
        # data could delay, so no data edge is emitted.  The correctness
        # checker reports the warning.
        data_dst = None
    elif recv_is_nonblocking:
        data_dst = sub(recv_completion[0], recv_completion[1], Phase.END)
    else:
        data_dst = sub(r_rank, r_seq, Phase.END)

    # Fig. 2 data path: send START → receive completion END, carrying
    # δ_λ1 + δ_t(d) + δ_os2 (Eq. 1 second line).
    if data_dst is not None:
        edges.append(
            EdgeT(
                sub(s_rank, s_seq, Phase.START),
                data_dst,
                EdgeKind.MESSAGE,
                0.0,
                DeltaSpec(
                    DeltaKind.TRANSFER_OS,
                    rank=r_rank,
                    src=s_rank,
                    dst=r_rank,
                    nbytes=nbytes,
                    uid=data_uid,
                ),
                label=f"d={nbytes}",
            )
        )

    # --- acknowledgement path back to the sender's completion ---------------
    if not config.models_ack(nbytes):
        return edges
    send_is_nonblocking = send_ev.kind == EventKind.ISEND
    if send_is_nonblocking:
        if send_completion is None:
            # Truly asynchronous sender (§4.3) — nothing to delay; the
            # correctness checker reports the warning.
            return edges
        ack_dst = sub(send_completion[0], send_completion[1], Phase.END)
    else:
        ack_dst = sub(s_rank, s_seq, Phase.END)

    if recv_is_nonblocking or recv_ev.kind == EventKind.SENDRECV:
        # Rendezvous against a *posted* receive: the ack chain restarts at
        # the receive's posting subevent (IRECV END, or SENDRECV START for
        # the combined call), not at the receiver's completion — sourcing
        # it there can manufacture END↔END cycles that the real run (and
        # MPI semantics) do not have, e.g. two ranks sendrecv-ing each
        # other.  The full λ→ + δ_t + δ_os + λ← round trip is sampled
        # fresh on this edge.
        ack_src_phase = Phase.END if recv_is_nonblocking else Phase.START
        edges.append(
            EdgeT(
                sub(r_rank, r_seq, ack_src_phase),
                ack_dst,
                EdgeKind.MESSAGE,
                0.0,
                DeltaSpec(
                    DeltaKind.ROUNDTRIP,
                    rank=r_rank,
                    src=s_rank,
                    dst=r_rank,
                    nbytes=nbytes,
                    uid=ack_uid,
                ),
                label="rdv",
            )
        )
    else:
        # Fig. 2 ack: receive END → send END carrying δ_λ2.  Combined with
        # the data path this reproduces Eq. 1's third term with *shared*
        # δ_λ1/δ_t/δ_os2 samples, exactly as the paper's subgraph does.
        edges.append(
            EdgeT(
                sub(r_rank, r_seq, Phase.END),
                ack_dst,
                EdgeKind.MESSAGE,
                0.0,
                DeltaSpec(
                    DeltaKind.LATENCY,
                    src=r_rank,
                    dst=s_rank,
                    uid=ack_uid,
                ),
                label="ack",
            )
        )
    return edges


def collective_edges(
    group: CollectiveGroup,
    nprocs: int,
    config: BuildConfig,
) -> list[EdgeT]:
    """Subgraph of one collective instance (Fig. 4 and variants)."""
    p = nprocs
    rounds = ilog2_ceil(p) if p > 1 else 0
    kind = group.kind
    ordinal = group.ordinal
    nbytes = group.nbytes
    root = group.root if group.root >= 0 else 0
    edges: list[EdgeT] = []

    starts = [sub(r, group.members[r][1], Phase.START) for r in range(p)]
    ends = [sub(r, group.members[r][1], Phase.END) for r in range(p)]

    if kind in UNROOTED_HUB_KINDS and config.collective_mode == "butterfly":
        # Explicit dissemination butterfly: exact structure, O(p log p) edges.
        for r in range(p):
            edges.append(
                EdgeT(
                    starts[r],
                    bfly(ordinal, r, 0),
                    EdgeKind.LOCAL,
                    0.0,
                    NO_DELTA,
                    label="bfly-in",
                )
            )
        for k in range(rounds):
            step = 1 << k
            for r in range(p):
                edges.append(
                    EdgeT(
                        bfly(ordinal, r, k),
                        bfly(ordinal, r, k + 1),
                        EdgeKind.LOCAL,
                        0.0,
                        DeltaSpec(
                            DeltaKind.OS, rank=r, uid=(_UID_BFLY_LOCAL, ordinal, r, k)
                        ),
                        label=f"os r{k}",
                    )
                )
                src = (r - step) % p
                edges.append(
                    EdgeT(
                        bfly(ordinal, src, k),
                        bfly(ordinal, r, k + 1),
                        EdgeKind.MESSAGE,
                        0.0,
                        DeltaSpec(
                            DeltaKind.TRANSFER,
                            src=src,
                            dst=r,
                            nbytes=nbytes,
                            uid=(_UID_BFLY_MSG, ordinal, r, k),
                        ),
                        label=f"x r{k}",
                    )
                )
        for r in range(p):
            edges.append(
                EdgeT(
                    bfly(ordinal, r, rounds),
                    ends[r],
                    EdgeKind.LOCAL,
                    0.0,
                    NO_DELTA,
                    label="bfly-out",
                )
            )
        return edges

    if kind in UNROOTED_HUB_KINDS:
        # Fig. 4: fan-in edges labelled l_δ (rounds × (δ_os + δ_λ [+ δ_t]))
        # into the hub; unlabelled fan-out carries max(l_δ) to every END.
        h = hub(ordinal)
        for r in range(p):
            edges.append(
                EdgeT(
                    starts[r],
                    h,
                    EdgeKind.MESSAGE,
                    0.0,
                    DeltaSpec(
                        DeltaKind.COLL_FANIN,
                        rank=r,
                        src=r,
                        dst=root,
                        nbytes=nbytes,
                        rounds=rounds,
                        uid=(_UID_FANIN, ordinal, r),
                    ),
                    label="l_d",
                )
            )
            edges.append(EdgeT(h, ends[r], EdgeKind.MESSAGE, 0.0, NO_DELTA, label="l_d_max"))
        return edges

    if kind in REDUCE_STYLE:
        # Paper's simplified Reduce: fan-in samples latency once; each rank
        # has a local δ_os edge (added by intra_event_edge); fan-out is
        # unlabelled, carrying the root's contribution back out.
        fanin_kind = (
            DeltaKind.TRANSFER if (config.reduce_transfer_deltas and nbytes) else DeltaKind.LATENCY
        )
        for r in range(p):
            if r == root:
                continue
            edges.append(
                EdgeT(
                    starts[r],
                    ends[root],
                    EdgeKind.MESSAGE,
                    0.0,
                    DeltaSpec(
                        fanin_kind,
                        rank=r,
                        src=r,
                        dst=root,
                        nbytes=nbytes,
                        uid=(_UID_FANIN, ordinal, r),
                    ),
                    label="l_d",
                )
            )
            edges.append(EdgeT(ends[root], ends[r], EdgeKind.MESSAGE, 0.0, NO_DELTA, label=""))
        return edges

    if kind in PREFIX_STYLE:
        # MPI_Scan: rank i's result depends on ranks 0..i.  Modeled as the
        # prefix chain E(0) -> E(1) -> ... -> E(p-1), each hop carrying one
        # transfer's perturbation — matching the pipeline algorithm the
        # simulator times.
        for r in range(1, p):
            edges.append(
                EdgeT(
                    ends[r - 1],
                    ends[r],
                    EdgeKind.MESSAGE,
                    0.0,
                    DeltaSpec(
                        DeltaKind.TRANSFER,
                        src=r - 1,
                        dst=r,
                        nbytes=nbytes,
                        uid=(_UID_FANIN, ordinal, r),
                    ),
                    label="prefix",
                )
            )
        return edges

    if kind in BCAST_STYLE:
        # Mirror of the Reduce simplification: data flows root → all; each
        # receiving rank's fan-out edge carries a tree-depth's worth of
        # (δ_os + δ_λ [+ δ_t]) samples.
        for r in range(p):
            if r == root:
                continue
            edges.append(
                EdgeT(
                    starts[root],
                    ends[r],
                    EdgeKind.MESSAGE,
                    0.0,
                    DeltaSpec(
                        DeltaKind.COLL_FANIN,
                        rank=r,
                        src=root,
                        dst=r,
                        nbytes=nbytes,
                        rounds=rounds,
                        uid=(_UID_BCASTOUT, ordinal, r),
                    ),
                    label="l_d",
                )
            )
        return edges

    raise ValueError(f"{kind.name} is not a collective kind")
