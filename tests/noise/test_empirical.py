"""Unit and property tests for empirical distributions (§5, method 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noise.distributions import Exponential
from repro.noise.empirical import Empirical, ecdf


class TestECDF:
    def test_simple(self):
        xs, F = ecdf([1.0, 2.0, 2.0, 3.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(F) == [0.25, 0.75, 1.0]

    def test_single_sample(self):
        xs, F = ecdf([5.0])
        assert list(xs) == [5.0]
        assert list(F) == [1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestEmpirical:
    def test_samples_sorted_and_stored(self):
        e = Empirical([3.0, 1.0, 2.0])
        assert e.samples == (1.0, 2.0, 3.0)
        assert e.min() == 1.0
        assert e.max() == 3.0
        assert e.size() == 3
        assert len(e) == 3

    def test_moments(self):
        e = Empirical([0.0, 10.0])
        assert e.mean() == 5.0
        assert e.var() == 25.0

    def test_bootstrap_draws_only_observed(self, rng):
        e = Empirical([1.0, 5.0, 9.0])
        s = e.sample_n(rng, 500)
        assert set(np.unique(s)) <= {1.0, 5.0, 9.0}

    def test_interpolated_draws_between(self, rng):
        e = Empirical([0.0, 100.0], interpolate=True)
        s = e.sample_n(rng, 500)
        assert np.all((s >= 0.0) & (s <= 100.0))
        assert np.any((s > 1.0) & (s < 99.0))

    def test_cdf_right_continuous(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0])
        assert float(e.cdf(0.5)) == 0.0
        assert float(e.cdf(1.0)) == 0.25
        assert float(e.cdf(2.5)) == 0.5
        assert float(e.cdf(4.0)) == 1.0

    def test_quantiles(self):
        e = Empirical(list(range(101)))
        assert float(e.quantile(0.0)) == 0.0
        assert float(e.quantile(0.5)) == 50.0
        assert float(e.quantile(1.0)) == 100.0

    def test_truncated(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0, 5.0])
        t = e.truncated(lower=2.0, upper=4.0)
        assert t.samples == (2.0, 3.0, 4.0)
        with pytest.raises(ValueError):
            e.truncated(lower=100.0)

    def test_ks_distance_self_zero(self):
        e = Empirical([1.0, 2.0, 3.0])
        assert e.ks_distance(e) == 0.0

    def test_ks_distance_disjoint_one(self):
        a = Empirical([1.0, 2.0])
        b = Empirical([10.0, 20.0])
        assert a.ks_distance(b) == 1.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([1.0, float("nan")])
        with pytest.raises(ValueError):
            Empirical([[1.0, 2.0], [3.0, 4.0]])


class TestConvergence:
    def test_law_of_large_numbers(self, rng):
        """§5: the empirical distribution approaches the true one as the
        sample count grows (monitored via the KS distance to a large
        reference sample)."""
        source = Exponential(100.0)
        reference = Empirical(source.sample_n(rng, 50_000))
        distances = []
        for n in (50, 500, 5000):
            emp = Empirical(source.sample_n(rng, n))
            distances.append(emp.ks_distance(reference))
        assert distances[0] > distances[2]
        assert distances[2] < 0.05

    def test_resampling_preserves_distribution(self, rng):
        source = Empirical(Exponential(42.0).sample_n(rng, 4000))
        resampled = Empirical(source.sample_n(rng, 4000))
        assert source.ks_distance(resampled) < 0.05
        assert resampled.mean() == pytest.approx(source.mean(), rel=0.1)


@given(
    samples=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    )
)
@settings(max_examples=100, deadline=None)
def test_empirical_invariants(samples):
    """Sorted storage, CDF in [0,1] and monotone, mean within range."""
    e = Empirical(samples)
    assert list(e.samples) == sorted(samples)
    grid = np.linspace(min(samples) - 1, max(samples) + 1, 17)
    F = e.cdf(grid)
    assert np.all((F >= 0.0) & (F <= 1.0))
    assert np.all(np.diff(F) >= 0.0)
    assert e.min() - 1e-9 <= e.mean() <= e.max() + 1e-9
