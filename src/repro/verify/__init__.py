"""Static verification: certified bounds and match-nondeterminism.

Two sampling-free analyses over a built message-passing graph:

* :mod:`repro.verify.bounds` — interval abstract interpretation of the
  perturbation model through the compiled level schedule, yielding a
  certified ``[lo, hi]`` makespan enclosure every Monte-Carlo replicate
  provably falls inside (:mod:`repro.verify.intervals` supplies the
  per-distribution support intervals and the finite-support policy for
  unbounded families).
* :mod:`repro.verify.matches` — happens-before analysis of wildcard
  receive matching: alternative matchings (match-order races) and
  would-block chains under reordered matches (deadlock potential).

Both surface through the MPG3xx rule pack (:mod:`repro.verify.rules`)
on the shared lint reporting stack; :func:`verify_build` /
:func:`verify_run` are the entry points, ``repro-verify`` the CLI.
"""

from repro.verify.bounds import (
    EdgeIntervals,
    MakespanBounds,
    edge_intervals,
    makespan_bounds,
)
from repro.verify.engine import (
    VerifyConfig,
    VerifyContext,
    VerifyReport,
    render_verify_text,
    verify_build,
    verify_run,
    verify_to_dict,
)
from repro.verify.intervals import DEFAULT_QUANTILE, Interval, support_interval
from repro.verify.matches import (
    DeadlockChain,
    MatchAnalysis,
    MatchRace,
    analyze_matches,
)

__all__ = [
    "DEFAULT_QUANTILE",
    "DeadlockChain",
    "EdgeIntervals",
    "Interval",
    "MakespanBounds",
    "MatchAnalysis",
    "MatchRace",
    "VerifyConfig",
    "VerifyContext",
    "VerifyReport",
    "analyze_matches",
    "edge_intervals",
    "makespan_bounds",
    "render_verify_text",
    "support_interval",
    "verify_build",
    "verify_run",
    "verify_to_dict",
]
