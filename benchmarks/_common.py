"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (figure,
experiment, or a DESIGN.md ablation) and records its rows/series under
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them; the
pytest-benchmark fixture times the analyzer operation under study.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> Path:
    """Write an experiment's rows to the results directory (and stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text if text.endswith("\n") else text + "\n")
    print(f"\n===== {name} =====\n{text}")
    return path


def table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Fixed-width text table."""
    widths = widths or [max(len(str(h)), 12) for h in headers]
    fmt = " ".join(f"{{:>{w}}}" for w in widths)
    lines = [fmt.format(*headers)]
    for row in rows:
        lines.append(fmt.format(*[_fmt(v) for v in row]))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        return f"{v:.3g}"
    return str(v)
