"""Tests for phase coarsening: the hierarchical two-level plan IR.

The contract under test is absolute: a coarse plan is a *schedule*
optimization, never an arithmetic one, so every result — single
propagations, replicate batches, presampled sweeps, Monte-Carlo through
a process pool — must be bit-for-bit identical to the flat compiled
engine (and therefore to the in-core reference).  Detection must also
be safely conservative: traces without enough repeated structure
coarsen to nothing and take the flat path untouched.
"""

import pickle

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.core import (
    CheckpointStore,
    CompiledPlan,
    PerturbationSpec,
    build_graph,
    compiled_plan,
    monte_carlo,
    propagate,
    rank_influence,
    sweep_scales,
)
from repro.core.checkpoint import load_plan, plan_cache_path, save_plan
from repro.core.coarsen import COARSEN_CHOICES, MIN_REPEATS
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature, Uniform
from repro.noise.distributions import LogNormal
from tests.conftest import plan_program

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False

SIGNATURES = {
    "const": MachineSignature(
        os_noise=Constant(100.0), latency=Constant(50.0), per_byte=Constant(0.01)
    ),
    "expo": MachineSignature(
        os_noise=Exponential(80.0), latency=Exponential(40.0), per_byte=Constant(0.005)
    ),
    "uniform": MachineSignature(
        os_noise=Uniform(0.0, 240.0), latency=Uniform(5.0, 95.0), per_byte=Constant(0.005)
    ),
    # No vectorized fast path: every lane resamples through the scalar spec.
    "fallback": MachineSignature(
        os_noise=LogNormal(3.0, 0.5), latency=Exponential(40.0), per_byte=Constant(0.005)
    ),
    # os_quantum > 0 makes draw programs weight-dependent: the coarse
    # template bind must refuse and the batch fall back to the flat path.
    "quantum": MachineSignature(
        os_noise=Exponential(80.0), latency=Exponential(40.0), os_quantum=500.0
    ),
}


@pytest.fixture(scope="module")
def app_builds():
    builds = {}
    for name, (factory, params_cls) in sorted(ALL_APPS.items()):
        p = 8 if name == "butterfly_allreduce" else 4
        trace = run(factory(params_cls()), nprocs=p, seed=1).trace
        builds[name] = (trace, build_graph(trace))
    return builds


# ---------------------------------------------------------------------------
# Cross-engine bit-identity matrix: coarse vs flat vs in-core
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("app", sorted(ALL_APPS))
@pytest.mark.parametrize("mode", ["additive", "threshold"])
def test_coarse_engine_matrix(app_builds, app, mode):
    _, build = app_builds[app]
    coarse = CompiledPlan(build, coarsen="on")
    flat = CompiledPlan(build, coarsen="off")
    assert flat.coarse is None
    seeds = [0, 7, 123456789]
    for sig_name, sig in SIGNATURES.items():
        for seed in seeds:
            spec = PerturbationSpec(sig, seed=seed, scale=1.5)
            ref = propagate(build, spec, mode=mode)
            got = coarse.propagate_one(spec, mode=mode)
            ctx = f"{app}/{sig_name}/seed={seed}"
            assert got.final_delay == ref.final_delay, ctx
            assert got.node_delay == ref.node_delay, ctx
            assert got.clamped_edges == ref.clamped_edges, ctx
        spec = PerturbationSpec(sig, seed=seeds[0], scale=1.5)
        bc = coarse.propagate_batch(spec, seeds=seeds, mode=mode)
        bf = flat.propagate_batch(spec, seeds=seeds, mode=mode)
        assert np.array_equal(bc.delays, bf.delays), f"{app}/{sig_name}"
        assert np.array_equal(bc.clamped, bf.clamped), f"{app}/{sig_name}"


def test_iterative_apps_actually_coarsen(app_builds):
    # The matrix above would pass vacuously if detection never fired;
    # pin the iterative apps where the two-level plan must exist.
    for app in ("stencil1d", "allreduce_iter", "token_ring"):
        _, build = app_builds[app]
        assert CompiledPlan(build, coarsen="on").coarse is not None, app


def test_presampled_batch_matches_flat(app_builds):
    _, build = app_builds["stencil1d"]
    coarse = CompiledPlan(build, coarsen="on")
    flat = CompiledPlan(build, coarsen="off")
    spec = PerturbationSpec(SIGNATURES["expo"], seed=11)
    raw = flat.sample_raw_batch(spec.signature, [spec.seed], 1.0)[0]
    scales = [0.0, 0.25, 1.0, 2.0, -1.0]
    for mode in ("additive", "threshold"):
        pc = coarse.propagate_presampled_batch(raw, scales, mode=mode)
        pf = flat.propagate_presampled_batch(raw, scales, mode=mode)
        assert np.array_equal(pc.delays, pf.delays), mode
        assert np.array_equal(pc.clamped, pf.clamped), mode


def test_quantum_signature_takes_flat_path_with_identical_results(app_builds):
    _, build = app_builds["stencil1d"]
    coarse = CompiledPlan(build, coarsen="on")
    sig = SIGNATURES["quantum"]
    assert not coarse._coarse_ready(sig)
    spec = PerturbationSpec(sig, seed=3)
    ref = propagate(build, spec)
    assert coarse.propagate_one(spec).final_delay == ref.final_delay


# ---------------------------------------------------------------------------
# Two-level plans through pickle and the process pool
# ---------------------------------------------------------------------------


def test_coarse_plan_pickle_roundtrip_is_bit_identical(app_builds):
    _, build = app_builds["stencil1d"]
    plan = CompiledPlan(build, coarsen="on")
    assert plan.coarse is not None
    spec = PerturbationSpec(SIGNATURES["expo"], seed=9)
    before = plan.propagate_batch(spec, seeds=[9, 10, 11])
    clone: CompiledPlan = pickle.loads(pickle.dumps(plan))
    assert clone.coarse is not None
    after = clone.propagate_batch(spec, seeds=[9, 10, 11])
    assert np.array_equal(before.delays, after.delays)


def test_monte_carlo_coarsen_through_process_pool(app_builds):
    # jobs=2 ships the two-level plan to ProcessPoolBackend workers —
    # the full pickle + per-worker rebind path must stay exact.
    _, build = app_builds["allreduce_iter"]
    spec = PerturbationSpec(SIGNATURES["expo"], seed=17)
    ref = monte_carlo(build, spec, replicates=12, coarsen="off")
    for kwargs in ({"coarsen": "on"}, {"coarsen": "on", "jobs": 2}, {"coarsen": "auto"}):
        got = monte_carlo(build, spec, replicates=12, **kwargs)
        assert np.array_equal(ref.samples, got.samples), kwargs
        assert ref.seeds == got.seeds


def test_sweep_and_influence_coarsen_agree(app_builds):
    trace, build = app_builds["stencil1d"]
    spec = PerturbationSpec(SIGNATURES["uniform"], seed=5)
    ref = sweep_scales(trace, spec, [0.0, 0.5, 2.0], coarsen="off")
    got = sweep_scales(trace, spec, [0.0, 0.5, 2.0], coarsen="on")
    for a, b in zip(ref.points, got.points):
        assert a.delays == b.delays, a.x
    mref = rank_influence(build, Exponential(120.0), coarsen="off")
    mgot = rank_influence(build, Exponential(120.0), coarsen="on")
    assert np.array_equal(mref.matrix, mgot.matrix)


# ---------------------------------------------------------------------------
# Conservative detection: no repeats -> no coarsening, identical results
# ---------------------------------------------------------------------------

_DISTINCT_ROUNDS = [
    ("compute", 1_000),
    ("compute", 2_500),
    ("ring", 64),
    ("xchg", 256),
    ("nb", 128),
    ("allreduce", 32),
    ("barrier",),
    ("bcast", 0, 64),
    ("reduce", 1, 16),
    ("scan", 8),
]


if HAVE_HYPOTHESIS:

    @given(
        rounds=st.lists(
            st.sampled_from(range(len(_DISTINCT_ROUNDS))),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        nprocs=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_repeat_trace_coarsens_to_nothing(rounds, nprocs, seed):
        # Each round kind appears at most once — far below MIN_REPEATS —
        # so detection must return None and the "on" plan must behave as
        # the flat plan bit-for-bit.
        plan_rounds = [_DISTINCT_ROUNDS[i] for i in rounds]
        trace = run(plan_program(plan_rounds), nprocs=nprocs, seed=seed).trace
        build = build_graph(trace)
        coarse = CompiledPlan(build, coarsen="on")
        assert coarse.coarse is None
        spec = PerturbationSpec(SIGNATURES["expo"], seed=seed & 0xFFFF)
        ref = propagate(build, spec)
        assert coarse.propagate_one(spec).final_delay == ref.final_delay


def test_min_repeats_boundary():
    # MIN_REPEATS-1 repetitions must not coarsen; a few more must.
    below = [("nb", 128)] * (MIN_REPEATS - 1)
    trace = run(plan_program(below), nprocs=4, seed=2).trace
    assert CompiledPlan(build_graph(trace), coarsen="on").coarse is None
    above = [("nb", 128)] * (MIN_REPEATS * 3)
    trace = run(plan_program(above), nprocs=4, seed=2).trace
    plan = CompiledPlan(build_graph(trace), coarsen="on")
    assert plan.coarse is not None
    spec = PerturbationSpec(SIGNATURES["expo"], seed=6)
    ref = propagate(build_graph(trace), spec)
    assert plan.propagate_one(spec).final_delay == ref.final_delay


def test_detect_phases_rejects_small_graphs_under_auto(app_builds):
    # auto gates on AUTO_MIN_NODES; tiny builds stay flat without error.
    _, build = app_builds["stencil1d"]
    assert CompiledPlan(build, coarsen="auto").coarse is None
    assert CompiledPlan(build, coarsen="off").coarse is None


def test_detect_phases_is_deterministic(app_builds):
    _, build = app_builds["stencil1d"]
    a = CompiledPlan(build, coarsen="on")
    b = CompiledPlan(build, coarsen="on")
    assert a.coarse is not None and b.coarse is not None
    assert np.array_equal(a.coarse.run_edge_ids, b.coarse.run_edge_ids)
    assert np.array_equal(a.coarse.static_eids, b.coarse.static_eids)


def test_coarsen_choices_validated(app_builds):
    _, build = app_builds["token_ring"]
    assert COARSEN_CHOICES == ("auto", "on", "off")
    with pytest.raises(ValueError, match="coarsen"):
        compiled_plan(build, coarsen="bogus")
    with pytest.raises(ValueError, match="coarsen"):
        CompiledPlan(build, coarsen="bogus")
    spec = PerturbationSpec(SIGNATURES["const"], seed=0)
    with pytest.raises(ValueError, match="coarsen"):
        monte_carlo(build, spec, replicates=2, coarsen="bogus")
    from repro.diagnose import DiagnoseConfig

    with pytest.raises(ValueError, match="coarsen"):
        DiagnoseConfig(coarsen="bogus")


def test_detection_bails_on_irregular_structure(app_builds):
    # master_worker's data-dependent task farm has no congruent phase
    # run; detection must bail rather than force a wrong template —
    # and the forced-"on" plan must still match the reference exactly.
    _, build = app_builds["master_worker"]
    plan = CompiledPlan(build, coarsen="on")
    assert plan.coarse is None
    spec = PerturbationSpec(SIGNATURES["expo"], seed=2)
    assert plan.propagate_one(spec).final_delay == propagate(build, spec).final_delay


# ---------------------------------------------------------------------------
# Persistent plan cache (checkpoint store)
# ---------------------------------------------------------------------------


class TestPlanCache:
    def _fresh_build(self, app_builds):
        trace, _ = app_builds["stencil1d"]
        return build_graph(trace)

    def test_roundtrip_is_bit_identical(self, app_builds, tmp_path):
        store = CheckpointStore(tmp_path)
        build = self._fresh_build(app_builds)
        plan = compiled_plan(build, coarsen="on", checkpoint=store)
        path = plan_cache_path(store, build, "on")
        assert path.exists(), "plan cache file not written"
        spec = PerturbationSpec(SIGNATURES["expo"], seed=4)
        ref = plan.propagate_batch(spec, seeds=[1, 2, 3])

        rebuilt = self._fresh_build(app_builds)
        loaded = load_plan(store, rebuilt, "on")
        assert loaded is not None and loaded.coarse is not None
        got = loaded.propagate_batch(spec, seeds=[1, 2, 3])
        assert np.array_equal(ref.delays, got.delays)

    def test_compiled_plan_uses_cache_on_fresh_build(self, app_builds, tmp_path):
        store = CheckpointStore(tmp_path)
        build = self._fresh_build(app_builds)
        compiled_plan(build, coarsen="on", checkpoint=store)
        rebuilt = self._fresh_build(app_builds)
        again = compiled_plan(rebuilt, coarsen="on", checkpoint=store)
        assert again.coarse is not None
        # memoized on the new build object as well
        assert compiled_plan(rebuilt, coarsen="on", checkpoint=store) is again

    def test_cache_is_keyed_by_coarsen_policy(self, app_builds, tmp_path):
        store = CheckpointStore(tmp_path)
        build = self._fresh_build(app_builds)
        compiled_plan(build, coarsen="on", checkpoint=store)
        compiled_plan(build, coarsen="off", checkpoint=store)
        assert plan_cache_path(store, build, "on").exists()
        assert plan_cache_path(store, build, "off").exists()
        assert plan_cache_path(store, build, "on") != plan_cache_path(store, build, "off")

    def test_corrupt_cache_falls_back_to_recompile(self, app_builds, tmp_path):
        store = CheckpointStore(tmp_path)
        build = self._fresh_build(app_builds)
        plan = compiled_plan(build, coarsen="on", checkpoint=store)
        path = plan_cache_path(store, build, "on")
        path.write_bytes(b"not a pickle")
        rebuilt = self._fresh_build(app_builds)
        assert load_plan(store, rebuilt, "on") is None
        again = compiled_plan(rebuilt, coarsen="on", checkpoint=store)
        spec = PerturbationSpec(SIGNATURES["expo"], seed=4)
        assert np.array_equal(
            plan.propagate_batch(spec, seeds=[5]).delays,
            again.propagate_batch(spec, seeds=[5]).delays,
        )

    def test_wrong_digest_rejected(self, app_builds, tmp_path):
        store = CheckpointStore(tmp_path)
        trace, _ = app_builds["stencil1d"]
        build = build_graph(trace)
        plan = CompiledPlan(build, coarsen="on")
        save_plan(store, build, "on", plan)
        other_trace, _ = app_builds["token_ring"]
        other = build_graph(other_trace)
        assert load_plan(store, other, "on") is None
