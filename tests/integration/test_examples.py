"""Smoke tests: every bundled example must run end-to-end.

Examples are part of the public contract (deliverable (b)); these tests
execute them in-process (with reduced sizes where the script accepts
arguments) and sanity-check the narrative output.
"""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(monkeypatch, capsys, name: str, argv: list[str] | None = None) -> str:
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py")
    assert "traced run: 16 ranks" in out
    assert "critical path of rank" in out
    assert "absorption:" in out
    assert "0 order violation(s)" in out


def test_nbody_token_ring(monkeypatch, capsys):
    out = run_example(
        monkeypatch,
        capsys,
        "nbody_token_ring.py",
        ["--nprocs", "16", "--traversals", "3", "--max-noise", "200"],
    )
    assert "fitted slope" in out
    # slope ≈ traversals × p = 48
    assert "48" in out


def test_platform_comparison(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "platform_comparison.py")
    assert "recommendation" in out
    assert "noisy-commodity" in out and "wan-grid" in out
    # Every app gets a recommendation line.
    assert out.count(":") >= 6


def test_noise_tolerance_study(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "noise_tolerance_study.py")
    assert "most tolerant" in out
    assert "sensitivity detail" in out
    assert "compute" in out  # timeline legend


def test_uncertainty_and_influence(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "uncertainty_and_influence.py")
    assert "p5/p50/p95" in out
    assert "most dangerous rank" in out
    assert "identical delays = True" in out
