"""Tests for deterministic per-edge perturbation sampling."""

import pytest

from repro.core.graph import DeltaKind, DeltaSpec
from repro.core.perturb import PerturbationSpec
from repro.noise import Constant, Exponential, MachineSignature


@pytest.fixture
def spec():
    return PerturbationSpec(
        MachineSignature(
            os_noise=Constant(10.0),
            latency=Constant(3.0),
            per_byte=Constant(0.5),
        ),
        seed=1,
    )


def ds(kind, **kw):
    kw.setdefault("uid", (9, 9))
    return DeltaSpec(kind, **kw)


class TestComposition:
    def test_none_zero(self, spec):
        assert spec.sample(DeltaSpec(DeltaKind.NONE)) == 0.0

    def test_os(self, spec):
        assert spec.sample(ds(DeltaKind.OS, rank=0)) == 10.0

    def test_latency(self, spec):
        assert spec.sample(ds(DeltaKind.LATENCY, src=0, dst=1)) == 3.0

    def test_transfer(self, spec):
        assert spec.sample(ds(DeltaKind.TRANSFER, src=0, dst=1, nbytes=4)) == 3.0 + 2.0

    def test_transfer_os(self, spec):
        # λ + t(d) + os2 (Eq. 1 second line)
        assert spec.sample(ds(DeltaKind.TRANSFER_OS, rank=1, src=0, dst=1, nbytes=4)) == 15.0

    def test_roundtrip(self, spec):
        # λ→ + t(d) + os + λ←
        assert spec.sample(ds(DeltaKind.ROUNDTRIP, rank=1, src=0, dst=1, nbytes=4)) == 18.0

    def test_coll_fanin(self, spec):
        # rounds × (os + λ + t(d))
        v = spec.sample(ds(DeltaKind.COLL_FANIN, rank=0, src=0, dst=0, nbytes=2, rounds=3))
        assert v == pytest.approx(3 * (10.0 + 3.0 + 1.0))

    def test_coll_fanin_no_bytes(self, spec):
        v = spec.sample(ds(DeltaKind.COLL_FANIN, rank=0, src=0, dst=0, nbytes=0, rounds=2))
        assert v == pytest.approx(2 * 13.0)

    def test_expected_matches_constants(self, spec):
        for kind, kw in [
            (DeltaKind.OS, dict(rank=0)),
            (DeltaKind.LATENCY, dict(src=0, dst=1)),
            (DeltaKind.TRANSFER_OS, dict(rank=1, src=0, dst=1, nbytes=4)),
            (DeltaKind.ROUNDTRIP, dict(rank=1, src=0, dst=1, nbytes=4)),
            (DeltaKind.COLL_FANIN, dict(rank=0, src=0, dst=0, nbytes=2, rounds=3)),
        ]:
            d = ds(kind, **kw)
            assert spec.expected(d) == pytest.approx(spec.sample(d))


class TestDeterminism:
    def test_same_uid_same_value(self):
        sig = MachineSignature(os_noise=Exponential(100.0))
        spec = PerturbationSpec(sig, seed=3)
        d = ds(DeltaKind.OS, rank=0, uid=(1, 2, 3))
        assert spec.sample(d) == spec.sample(d)

    def test_different_uid_different_value(self):
        sig = MachineSignature(os_noise=Exponential(100.0))
        spec = PerturbationSpec(sig, seed=3)
        a = spec.sample(ds(DeltaKind.OS, rank=0, uid=(1, 2, 3)))
        b = spec.sample(ds(DeltaKind.OS, rank=0, uid=(1, 2, 4)))
        assert a != b

    def test_different_seed_different_value(self):
        sig = MachineSignature(os_noise=Exponential(100.0))
        d = ds(DeltaKind.OS, rank=0)
        a = PerturbationSpec(sig, seed=1).sample(d)
        b = PerturbationSpec(sig, seed=2).sample(d)
        assert a != b

    def test_order_independence(self):
        """Visit order must not change per-edge draws — the property that
        makes streaming ≡ in-core."""
        sig = MachineSignature(os_noise=Exponential(100.0), latency=Exponential(5.0))
        spec = PerturbationSpec(sig, seed=9)
        edges = [ds(DeltaKind.OS, rank=r, uid=(4, r)) for r in range(10)]
        forward = [spec.sample(e) for e in edges]
        backward = [spec.sample(e) for e in reversed(edges)][::-1]
        assert forward == backward

    def test_missing_uid_rejected(self, spec):
        with pytest.raises(ValueError, match="uid"):
            spec.sample(DeltaSpec(DeltaKind.OS, rank=0))


class TestScale:
    def test_scale_multiplies(self, spec):
        d = ds(DeltaKind.OS, rank=0)
        assert spec.scaled(3.0).sample(d) == 30.0
        assert spec.scaled(0.0).sample(d) == 0.0

    def test_negative_scale_for_speedups(self, spec):
        d = ds(DeltaKind.OS, rank=0)
        assert spec.scaled(-1.0).sample(d) == -10.0

    def test_scaled_keeps_seed(self, spec):
        d = ds(DeltaKind.OS, rank=0, uid=(8,))
        assert spec.scaled(2.0).sample(d) == 2.0 * spec.sample(d)

    def test_per_rank_overrides_respected(self):
        sig = MachineSignature(
            os_noise=Constant(1.0), os_noise_by_rank={3: Constant(100.0)}
        )
        spec = PerturbationSpec(sig, seed=0)
        assert spec.sample(ds(DeltaKind.OS, rank=0)) == 1.0
        assert spec.sample(ds(DeltaKind.OS, rank=3)) == 100.0

    def test_per_link_overrides_respected(self):
        sig = MachineSignature(
            latency=Constant(1.0), latency_by_link={(0, 1): Constant(50.0)}
        )
        spec = PerturbationSpec(sig, seed=0)
        assert spec.sample(ds(DeltaKind.LATENCY, src=0, dst=1)) == 50.0
        assert spec.sample(ds(DeltaKind.LATENCY, src=1, dst=0)) == 1.0
