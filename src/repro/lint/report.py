"""Reporters: render a :class:`~repro.lint.engine.LintReport` as
human-readable text, machine-readable JSON, or SARIF 2.1.0.

The SARIF document follows the OASIS 2.1.0 schema closely enough for
GitHub code scanning: one run, a ``tool.driver`` carrying the full rule
catalog (id, short/full description, default severity), and one
``result`` per finding with logical locations (rank / event) plus a
physical location when the linted trace set is file-backed.  Text
traces are line-addressable (header line 1, event ``seq`` on line
``seq + 2``), so findings on ``.jsonl`` traces land on the exact line.
"""

from __future__ import annotations

import json
from typing import IO

from repro.lint.engine import LintReport
from repro.lint.model import Finding, Severity
from repro.lint.registry import all_rules

__all__ = [
    "render_text",
    "report_to_dict",
    "render_json",
    "report_to_sarif",
    "render_sarif",
    "write_report",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://github.com/repro/repro"  # project home for SARIF metadata


def _tool_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - missing dist metadata
        return "0"


# -- text -------------------------------------------------------------------


def render_text(report: LintReport, verbose: bool = False) -> str:
    """GCC-style one-line-per-finding rendering plus a summary."""
    lines = []
    for f in report.findings:
        where = f"{f.path}: " if f.path else ""
        lines.append(
            f"{where}{f.location}: {f.severity.name.lower()} {f.rule_id} "
            f"[{f.code}]: {f.message}"
        )
    lines.append(report.summary())
    if verbose:
        lines.append(f"rules run: {', '.join(report.rules_run)}")
    return "\n".join(lines)


# -- JSON -------------------------------------------------------------------


def report_to_dict(report: LintReport) -> dict:
    return {
        "schema": "repro-lint-report/1",
        "summary": {
            "nprocs": report.nprocs,
            "events": report.event_count,
            "graph_checked": report.graph_checked,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "notes": len(report.notes),
            "by_rule": report.counts(),
        },
        "rules_run": list(report.rules_run),
        "findings": [f.as_dict() for f in report.findings],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True)


# -- SARIF 2.1.0 ------------------------------------------------------------


def _sarif_rules() -> list[dict]:
    out = []
    for r in all_rules():
        out.append(
            {
                "id": r.id,
                "name": r.code.replace("-", " ").title().replace(" ", ""),
                "shortDescription": {"text": r.summary},
                "fullDescription": {"text": r.rationale},
                "defaultConfiguration": {"level": r.severity.sarif_level},
                "properties": {"category": r.category, "code": r.code},
            }
        )
    return out


def _sarif_location(f: Finding) -> dict:
    logical = []
    if f.rank is not None:
        logical.append({"name": f"rank {f.rank}", "kind": "process"})
    if f.seq is not None:
        logical.append({"name": f"event #{f.seq}", "kind": "object"})
    if f.node is not None:
        logical.append({"name": f"node {f.node}", "kind": "object"})
    location: dict = {}
    if f.path is not None:
        physical: dict = {"artifactLocation": {"uri": f.path}}
        if f.seq is not None and f.path.endswith(".jsonl"):
            # text traces: header on line 1, event seq s on line s + 2
            physical["region"] = {"startLine": f.seq + 2}
        location["physicalLocation"] = physical
    if logical:
        location["logicalLocations"] = logical
    return location


def report_to_sarif(report: LintReport) -> dict:
    rule_index = {r.id: i for i, r in enumerate(all_rules())}
    results = []
    for f in report.findings:
        result = {
            "ruleId": f.rule_id,
            "level": f.severity.sarif_level,
            "message": {"text": f.message},
        }
        if f.rule_id in rule_index:
            result["ruleIndex"] = rule_index[f.rule_id]
        loc = _sarif_location(f)
        if loc:
            result["locations"] = [loc]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _tool_version(),
                        "informationUri": _TOOL_URI,
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    return json.dumps(report_to_sarif(report), indent=2, sort_keys=True)


FORMATS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def write_report(report: LintReport, fmt: str, stream: IO[str]) -> None:
    """Render ``report`` in ``fmt`` ('text' | 'json' | 'sarif')."""
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(f"unknown lint report format {fmt!r}") from None
    stream.write(renderer(report))
    stream.write("\n")


def severity_histogram(report: LintReport) -> dict[str, int]:
    """Severity -> count mapping (CLI summaries, metrics)."""
    out = {s.name.lower(): 0 for s in Severity}
    for f in report.findings:
        out[f.severity.name.lower()] += 1
    return out
