"""End-to-end tests for the Scan and Reduce_scatter collectives."""

import pytest

from repro.core import (
    BuildConfig,
    PerturbationSpec,
    build_graph,
    check_correctness,
    propagate,
)
from repro.core.graph import DeltaKind, Phase
from repro.mpisim import Compute, Machine, NetworkModel, ReduceScatter, Scan, run
from repro.noise import Constant, Exponential, MachineSignature
from repro.trace.events import EventKind
from repro.trace.validate import validate_traces

from tests.conftest import assert_engines_agree

NET = NetworkModel(latency=100.0, bandwidth=1.0, send_overhead=10.0, recv_overhead=10.0)


def prog(me):
    yield Compute(1_000.0 * (me.rank + 1))
    yield Scan(nbytes=64)
    yield Compute(500.0)
    yield ReduceScatter(nbytes=128)


@pytest.fixture(scope="module")
def trace():
    return run(prog, machine=Machine(nprocs=5, network=NET), seed=0).trace


class TestSimulator:
    def test_traces_validate(self, trace):
        assert validate_traces(trace).ok

    def test_scan_is_a_prefix_pipeline(self, trace):
        ends = {}
        for r in range(5):
            for ev in trace.events_of(r):
                if ev.kind == EventKind.SCAN:
                    ends[r] = ev.t_end
        # Exits strictly increase along the chain: rank r waits for 0..r.
        for r in range(1, 5):
            assert ends[r] > ends[r - 1]

    def test_scan_rank0_exits_first(self, trace):
        starts, ends = {}, {}
        for r in range(5):
            for ev in trace.events_of(r):
                if ev.kind == EventKind.SCAN:
                    starts[r], ends[r] = ev.t_start, ev.t_end
        assert ends[0] == min(ends.values())

    def test_reduce_scatter_synchronizes(self, trace):
        entries, exits = {}, {}
        for r in range(5):
            for ev in trace.events_of(r):
                if ev.kind == EventKind.REDUCE_SCATTER:
                    entries[r], exits[r] = ev.t_start, ev.t_end
        last_entry = max(entries.values())
        assert all(x > last_entry for x in exits.values())


class TestAnalyzer:
    def test_scan_template_is_prefix_chain(self, trace):
        build = build_graph(trace)
        g = build.graph
        prefix_edges = [e for e in g.message_edges() if e.label == "prefix"]
        assert len(prefix_edges) == 4  # p-1 chain hops

    def test_scan_delay_propagates_down_chain_only(self, trace):
        """Rank 0's noise delays everyone's scan; rank 4's delays no one
        else — the asymmetry that distinguishes scan from allreduce."""
        build = build_graph(trace)
        for noisy, expect_all in ((0, True), (4, False)):
            sig = MachineSignature(os_noise_by_rank={noisy: Constant(10_000.0)})
            res = propagate(build, PerturbationSpec(sig, seed=0))
            scan_seq = next(e.seq for e in build.events[0] if e.kind == EventKind.SCAN)
            delays = [
                res.node_delay[build.graph.node_of(r, scan_seq, Phase.END)] for r in range(5)
            ]
            if expect_all:
                assert all(d > 0 for d in delays)
            else:
                assert delays[4] > 0
                assert all(d == 0 for d in delays[:4])

    def test_reduce_scatter_uses_hub(self, trace):
        build = build_graph(trace)
        fanin = [
            e
            for e in build.graph.message_edges()
            if e.delta.kind == DeltaKind.COLL_FANIN
        ]
        assert len(fanin) == 5  # one l_δ edge per rank for the reduce_scatter

    def test_streaming_equality(self, trace):
        sig = MachineSignature(os_noise=Exponential(70.0), latency=Exponential(30.0))
        assert_engines_agree(trace, PerturbationSpec(sig, seed=3))
        assert_engines_agree(
            trace,
            PerturbationSpec(sig, seed=3),
            config=BuildConfig(collective_mode="butterfly"),
        )

    def test_correctness_clean(self, trace):
        build = build_graph(trace)
        res = propagate(
            build, PerturbationSpec(MachineSignature(os_noise=Exponential(100.0)), seed=1)
        )
        assert check_correctness(build, res).ok
