"""Chrome-trace / JSONL export shape and the schema validator."""

import json

import pytest

from repro.obs import (
    Session,
    chrome_trace_events,
    jsonl_records,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.validate import main as validate_main


def make_session() -> Session:
    s = Session("unit")
    with s.span("build", engine="incore") as h:
        h.add("graph.nodes", 12)
        with s.span("match"):
            pass
    s.metrics.counter("graph.nodes").inc(12)
    s.metrics.gauge("window.hwm", "max").set(5.0)
    s.metrics.timer("io").observe(0.01)
    return s


def test_chrome_trace_events_shape():
    s = make_session()
    events = chrome_trace_events(s)
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 1 and meta[0]["name"] == "process_name"
    assert {e["name"] for e in spans} == {"build", "match"}
    build = next(e for e in spans if e["name"] == "build")
    assert build["args"]["engine"] == "incore"
    assert build["args"]["graph.nodes"] == 12
    assert "cpu_ms" in build["args"]
    assert all(e["dur"] >= 0 for e in spans)


def test_chrome_trace_validates():
    trace = to_chrome_trace(make_session())
    assert validate_chrome_trace(trace) == []
    assert trace["displayTimeUnit"] == "ms"
    assert trace["otherData"]["metrics"]["graph.nodes"] == 12


def test_validator_catches_problems():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
    bad_dur = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": -5, "pid": 1, "tid": 1}
        ]
    }
    assert any("negative" in p for p in validate_chrome_trace(bad_dur))
    overlap = {
        "traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]
    }
    assert any("partially" in p for p in validate_chrome_trace(overlap))


def test_write_chrome_trace_roundtrip(tmp_path):
    s = make_session()
    path = write_chrome_trace(s, tmp_path / "profile.json")
    obj = validate_chrome_trace_file(path)
    assert obj["otherData"]["label"] == "unit"
    assert validate_main([str(path)]) == 0

    (tmp_path / "broken.json").write_text('{"traceEvents": "nope"}')
    assert validate_main([str(tmp_path / "broken.json")]) == 1
    assert validate_main([]) == 2
    with pytest.raises(ValueError):
        validate_chrome_trace_file(tmp_path / "broken.json")


def test_jsonl_export(tmp_path):
    s = make_session()
    records = list(jsonl_records(s))
    assert [r["type"] for r in records] == ["span", "span", "metrics"]
    assert records[-1]["metrics"]["graph.nodes"] == 12

    path = write_jsonl(s, tmp_path / "spans.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == records


def test_write_metrics(tmp_path):
    s = make_session()
    path = write_metrics(s, tmp_path / "metrics.json")
    payload = json.loads(path.read_text())
    assert payload["label"] == "unit"
    assert payload["metrics"]["window.hwm"] == 5.0
    assert payload["metrics"]["io"]["count"] == 1
