"""Compiled graph plan: vectorized sampling + replicate-batched propagation.

The perturbation engine is the hot path of every experiment:
``monte_carlo``, sweeps, and ``rank_influence`` all call
:func:`~repro.core.traversal.propagate` once per replicate, re-walking
the Python object graph and re-hashing every edge uid through scalar
``_splitmix64`` — an R-replicate analysis does R interpreter-bound
traversals of *identical* topology.  A :class:`CompiledPlan` lowers a
:class:`~repro.core.builder.BuildResult` once into structure-of-arrays
form and then processes **all replicates simultaneously**:

* a level-ordered node table with CSR in-edge arrays (predecessor
  index, weight, delta-kind code, uid columns for hashing, message
  sizes for δ_t(d));
* a vectorized sampler — numpy-native splitmix64 over the uid columns,
  a vectorized PCG64 (XSL-RR 128/64) advancing one independent stream
  per edge, and ziggurat fast paths for the exponential / normal
  families — that reproduces :meth:`PerturbationSpec.sample` draws
  **bit-for-bit**;
* a propagation kernel carrying a ``(R, n_nodes)`` delay matrix
  through one topological pass (per-node max over in-edges vectorized
  across the replicate axis, both ``additive`` and ``threshold``
  modes).

Exactness strategy
------------------

``PerturbationSpec`` keys one PCG64 stream per edge from
``splitmix64``-mixed ``(seed, kind, *uid)`` and draws through numpy
``Generator`` methods.  The mix chain and the PCG64 LCG are replayed
here with uint64 array arithmetic (verified against
``BitGenerator.random_raw`` at runtime).  The ziggurat layer tables
numpy uses for ``standard_exponential`` / ``standard_normal`` are not
exported, so they are *harvested* at runtime: the PCG64 LCG is
invertible, so for any desired 64-bit output we can construct the
predecessor state, feed it to a real ``Generator``, and observe the
returned value and the number of raw draws consumed.  256 probes plus a
binary search per layer recover ``(w[idx], k[idx])`` exactly.  Lanes
whose every draw takes the single-draw ziggurat fast path (~98%) are
vectorized; the rest — rejection/tail branches, and any distribution
family outside the verified registry (Constant / Uniform / Exponential
/ Normal plus Shifted/Scaled combinators) — fall back to the scalar
``PerturbationSpec`` for that (edge, replicate) lane, so results are
unconditionally identical to :func:`propagate` for *any* signature.
If the runtime self-check fails (e.g. a future numpy changes its
bit-stream layout), the vectorized sampler disables itself and every
lane falls back — slower, never wrong.

Observability: the compiled path emits ``compiled.compile``,
``compiled.sample`` and ``compiled.propagate`` spans plus
``traversal.propagations`` / ``traversal.clamped_edges`` counters, so
``--profile`` output stays comparable with the reference engine.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro._util import atomic_write_text
from repro.core.builder import BuildResult
from repro.core.coarsen import AUTO_MIN_NODES, COARSEN_CHOICES, detect_phases
from repro.core.graph import DeltaKind, DeltaSpec, EdgeKind
from repro.core.perturb import PerturbationSpec
from repro.core.traversal import MODES, TraversalResult
from repro.noise.distributions import Constant, Exponential, Normal, Scaled, Shifted, Uniform
from repro.noise.signature import MachineSignature

__all__ = ["CompiledBatch", "CompiledPlan", "compiled_plan"]

_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF
_FNV_SEED = 0x811C9DC5
_TO_DOUBLE = 1.0 / 9007199254740992.0  # 2^-53

# PCG64 (XSL-RR 128/64) multiplier, split into 64-bit halves for the
# two-limb vectorized LCG step.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_PCG_MULT_HI = _U64(_PCG_MULT >> 64)
_PCG_MULT_LO = _U64(_PCG_MULT & _MASK64)
_MASK128 = (1 << 128) - 1
_PCG_INV_MULT = pow(_PCG_MULT, -1, 1 << 128)  # LCG step inverse (harvesting)


# ---------------------------------------------------------------------------
# Vectorized splitmix64 / _mix (must match repro.core.perturb exactly)
# ---------------------------------------------------------------------------


def _splitmix64_into(x: np.ndarray, t: np.ndarray) -> np.ndarray:
    """In-place splitmix64 finalizer: mutates uint64 ``x`` (returning it),
    with ``t`` as same-shape scratch.  The hot key-derivation loops call
    this to avoid reallocating multi-MB temporaries per round."""
    x += _U64(0x9E3779B97F4A7C15)
    np.right_shift(x, _U64(30), out=t)
    x ^= t
    x *= _U64(0xBF58476D1CE4E5B9)
    np.right_shift(x, _U64(27), out=t)
    x ^= t
    x *= _U64(0x94D049BB133111EB)
    np.right_shift(x, _U64(31), out=t)
    x ^= t
    return x


def _splitmix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.perturb._splitmix64` over uint64 arrays."""
    x = x.astype(_U64, copy=True)
    return _splitmix64_into(x, np.empty_like(x))


def _mix_vec(columns: np.ndarray, lengths: np.ndarray | None = None) -> np.ndarray:
    """Vectorized :func:`repro.core.perturb._mix` over the rows of a padded
    uint64 matrix (``lengths[i]`` = how many leading columns row i uses)."""
    n, width = columns.shape
    h = np.full(n, _U64(_FNV_SEED), dtype=_U64)
    for j in range(width):
        if lengths is None:
            h = _splitmix64_vec(h ^ columns[:, j])
        else:
            m = lengths > j
            h[m] = _splitmix64_vec(h[m] ^ columns[m, j])
    return h


# ---------------------------------------------------------------------------
# Vectorized PCG64 (XSL-RR 128/64)
# ---------------------------------------------------------------------------


def _mulhi64(a: np.ndarray, b) -> np.ndarray:
    """High 64 bits of the 128-bit product of uint64 arrays (32-bit limbs)."""
    m32 = _U64(0xFFFFFFFF)
    s32 = _U64(32)
    ah, al = a >> s32, a & m32
    bh, bl = b >> s32, b & m32
    lo = al * bl
    t = ah * bl + (lo >> s32)
    w1 = (t & m32) + al * bh
    return ah * bh + (t >> s32) + (w1 >> s32)


_PCG_ML_HI = _U64(int(_PCG_MULT_LO) >> 32)
_PCG_ML_LO = _U64(int(_PCG_MULT_LO) & 0xFFFFFFFF)


def _pcg_next64(hi, lo, inc_hi, inc_lo):
    """One LCG step + XSL-RR output.  Returns ``(hi', lo', out)``.

    The 128-bit LCG step is accumulated with in-place uint64 ops —
    unsigned addition is commutative and wrap-exact, so the reordering
    relative to the textbook :func:`_mulhi64` formulation is
    bit-identical while allocating far fewer (R, n_lane) temporaries.
    """
    m32 = _U64(0xFFFFFFFF)
    s32 = _U64(32)
    al = lo & m32
    ah = lo >> s32
    t = al * _PCG_ML_LO
    t >>= s32
    t += ah * _PCG_ML_LO
    w1 = t & m32
    w1 += al * _PCG_ML_HI
    t >>= s32
    w1 >>= s32
    t += w1
    t += ah * _PCG_ML_HI
    t += hi * _PCG_MULT_LO
    t += lo * _PCG_MULT_HI
    nlo = lo * _PCG_MULT_LO
    lo2 = nlo + inc_lo
    t += inc_hi
    np.add(t, lo2 < nlo, out=t, casting="unsafe")
    hi2 = t
    rot = hi2 >> _U64(58)
    x = hi2 ^ lo2
    out = x >> rot
    np.subtract(_U64(64), rot, out=rot)
    rot &= _U64(63)
    x <<= rot
    out |= x
    return hi2, lo2, out


# ---------------------------------------------------------------------------
# Runtime ziggurat-table harvesting + backend self-check
# ---------------------------------------------------------------------------

_TABLES: dict | None = None


def _spec_state(k: int, s1: int, s2: int, s3: int) -> tuple[int, int]:
    """(state, inc) exactly as ``PerturbationSpec._rng`` would install them."""
    inc = ((((s2 << 64) | s3) << 1) | 1) & _MASK128
    return (k << 64) | s1, inc


class _Prober:
    """Drives a real ``Generator`` from constructed PCG64 states."""

    def __init__(self) -> None:
        self.bg = np.random.PCG64(0)
        self.template = self.bg.state
        self.gen = np.random.Generator(self.bg)

    def set_state(self, state128: int, inc128: int) -> None:
        st = dict(self.template)
        st["state"] = {"state": state128, "inc": inc128}
        st["has_uint32"] = 0
        st["uinteger"] = 0
        self.bg.state = st

    def probe(self, u0: int, draw, maxn: int = 4) -> tuple[float, int]:
        """Make the next raw output exactly ``u0`` (via the LCG inverse),
        call ``draw()``, and count how many raw draws it consumed."""
        s_pre = ((u0 - 1) * _PCG_INV_MULT) & _MASK128  # post-step (hi=0, lo=u0)
        self.set_state(s_pre, 1)
        value = draw()
        after = self.bg.state["state"]["state"]
        s = s_pre
        for n in range(1, maxn + 1):
            s = (s * _PCG_MULT + 1) & _MASK128
            if s == after:
                return value, n
        return value, -1


def _harvest_layers(probe_fn, payload_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``(w, k)`` ziggurat tables for one family.

    ``probe_fn(idx, payload) -> (value, steps)``.  A 1-step probe is a
    primary accept; a 2-step probe is the boundary branch, which still
    returns ``payload * w[idx]`` exactly, so either yields ``w``.  The
    binary search uses ``steps == 1`` as the accept signal (``k[idx]``
    is the smallest rejected payload; a layer may accept its whole
    payload range, flagged with the ``2**payload_bits`` sentinel).
    """
    w = np.empty(256, dtype=np.float64)
    k = np.empty(256, dtype=np.uint64)
    top = 1 << payload_bits
    for idx in range(256):
        v, n = probe_fn(idx, 1)
        if n not in (1, 2):
            raise RuntimeError(f"layer {idx}: probe consumed {n} draws")
        w[idx] = v
        _, n = probe_fn(idx, top - 1)
        if n == 1:
            k[idx] = top
            continue
        lo, hi = 0, top
        while hi - lo > 1:
            mid = (lo + hi) // 2
            _, n = probe_fn(idx, mid)
            lo, hi = (mid, hi) if n == 1 else (lo, mid)
        k[idx] = hi
    return w, k


def _random_streams(n: int, seed: int):
    """``n`` spec-style stream keys (k, s1, s2, s3) for self-checks."""
    rng = np.random.default_rng(seed)
    return tuple(rng.integers(0, 1 << 64, size=n, dtype=_U64) for _ in range(4))


def _stream_state_arrays(k, s1, s2, s3):
    inc_hi = (s2 << _U64(1)) | (s3 >> _U64(63))
    inc_lo = (s3 << _U64(1)) | _U64(1)
    return k.copy(), s1.copy(), inc_hi, inc_lo


def _check_family(prober: _Prober, keys, u0, vec_values, accept, scalar_draw) -> bool:
    """Verify vectorized accepted-lane values against scalar draws."""
    k, s1, s2, s3 = keys
    idx = np.nonzero(accept)[0] if accept is not None else np.arange(len(u0))
    if accept is not None and len(idx) < len(u0) // 2:
        return False  # implausible accept rate: layout assumption broken
    for i in idx:
        prober.set_state(*_spec_state(int(k[i]), int(s1[i]), int(s2[i]), int(s3[i])))
        if scalar_draw(prober.gen) != vec_values[i]:
            return False
    return True


def _build_tables(candidates: dict | None = None) -> dict:
    """Harvest + verify the vectorized sampling backend (once per process).

    Returns ``{"pcg": bool, "uniform": bool, "exp": (we, ke) | None,
    "norm": (wi, ki) | None}``.  Any check that fails simply disables
    its family — affected lanes take the exact scalar fallback.

    ``candidates`` optionally supplies previously-harvested ziggurat
    tables (e.g. from the on-disk cache).  Candidates run through the
    *same* scalar-draw verification as a fresh harvest, so a stale or
    corrupted cache can never change results — it just falls through to
    the runtime harvest.
    """
    out: dict = {"pcg": False, "uniform": False, "exp": None, "norm": None}
    prober = _Prober()
    keys = _random_streams(512, 0xC0FFEE)
    k, s1, s2, s3 = keys

    # 1. Raw-stream check: vectorized LCG vs BitGenerator.random_raw.
    hi, lo, ihi, ilo = _stream_state_arrays(k, s1, s2, s3)
    hi, lo, u0 = _pcg_next64(hi, lo, ihi, ilo)
    _, _, u1 = _pcg_next64(hi, lo, ihi, ilo)
    for i in range(0, 512, 31):
        prober.set_state(*_spec_state(int(k[i]), int(s1[i]), int(s2[i]), int(s3[i])))
        raw = prober.bg.random_raw(2)
        if int(raw[0]) != int(u0[i]) or int(raw[1]) != int(u1[i]):
            return out
    out["pcg"] = True

    # 2. Uniform double: out = (u >> 11) * 2^-53.
    d = (u0 >> _U64(11)).astype(np.float64) * _TO_DOUBLE
    vals = -2.5 + 7.0 * d
    out["uniform"] = _check_family(
        prober, keys, u0, vals, None, lambda g: g.uniform(-2.5, 4.5)
    )

    # 3. Exponential ziggurat: idx = (u >> 3) & 0xFF, payload = u >> 11.
    def check_exp(tables) -> bool:
        we, ke = tables
        ri = u0 >> _U64(3)
        lidx = (ri & _U64(0xFF)).astype(np.intp)
        pay = ri >> _U64(8)
        x = pay.astype(np.float64) * we[lidx]
        acc = pay < ke[lidx]
        return _check_family(prober, keys, u0, x, acc, lambda g: g.standard_exponential())

    cand = candidates.get("exp") if candidates else None
    if cand is not None and check_exp(cand):
        out["exp"] = cand
        obs.add("compiled.tables_cache.hits")
    else:
        with contextlib.suppress(RuntimeError):  # layer harvest gives up on odd builds
            exp_tables = _harvest_layers(
                lambda idx, pay: prober.probe(((pay << 8) | idx) << 3, prober.gen.standard_exponential),
                payload_bits=53,
            )
            if check_exp(exp_tables):
                out["exp"] = exp_tables

    # 4. Normal ziggurat: idx = u & 0xFF, sign = bit 8, rabs = 52 bits above.
    def check_norm(tables) -> bool:
        wi, ki = tables
        nidx = (u0 & _U64(0xFF)).astype(np.intp)
        r = u0 >> _U64(8)
        sign = (r & _U64(1)) != 0
        rabs = (r >> _U64(1)) & _U64(0x000FFFFFFFFFFFFF)
        z = rabs.astype(np.float64) * wi[nidx]
        z = np.where(sign, -z, z)
        acc = rabs < ki[nidx]
        return _check_family(prober, keys, u0, z, acc, lambda g: g.standard_normal())

    cand = candidates.get("norm") if candidates else None
    if cand is not None and check_norm(cand):
        out["norm"] = cand
        obs.add("compiled.tables_cache.hits")
    else:
        with contextlib.suppress(RuntimeError):
            norm_tables = _harvest_layers(
                lambda idx, rabs: prober.probe((rabs << 9) | idx, prober.gen.standard_normal),
                payload_bits=52,
            )
            if check_norm(norm_tables):
                out["norm"] = norm_tables
    return out


# -- per-user on-disk table cache (skips the harvest in pool workers and
# repeated CLI runs; contents are re-verified on every load) -----------------

TABLES_CACHE_ENV = "REPRO_TABLES_CACHE"
_TABLES_CACHE_SCHEMA = "repro-ziggurat-tables/1"


def _tables_cache_path() -> Path | None:
    """Cache file for this numpy version, or None when disabled.

    ``REPRO_TABLES_CACHE`` overrides the directory; ``0`` / ``off`` /
    ``none`` disables the cache entirely.  The filename embeds the
    numpy version because the tables mirror numpy's private ziggurat
    layout — an upgraded numpy harvests (and caches) afresh.
    """
    val = os.environ.get(TABLES_CACHE_ENV, "").strip()
    if val.lower() in ("0", "off", "none", "disabled"):
        return None
    if val:
        root = Path(val)
    else:
        base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
        root = Path(base) / "repro"
    return root / f"ziggurat-np{np.__version__}.json"


def _load_table_candidates(path: Path) -> dict | None:
    """Parse cached tables; None on any structural problem (then the
    normal harvest runs — verification guards against value problems)."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") != _TABLES_CACHE_SCHEMA:
        return None
    out: dict = {}
    for fam in ("exp", "norm"):
        ent = doc.get(fam)
        if ent is None:
            out[fam] = None
            continue
        try:
            w = np.asarray(ent["w"], dtype=np.float64)
            kk = np.asarray(ent["k"], dtype=np.uint64)
        except (KeyError, TypeError, ValueError, OverflowError):
            return None
        if w.shape != (256,) or kk.shape != (256,):
            return None
        out[fam] = (w, kk)
    return out


def _store_tables(path: Path, tables: dict) -> None:
    doc: dict = {"schema": _TABLES_CACHE_SCHEMA, "numpy": np.__version__}
    for fam in ("exp", "norm"):
        ent = tables[fam]
        doc[fam] = (
            None
            if ent is None
            else {"w": ent[0].tolist(), "k": [int(x) for x in ent[1].tolist()]}
        )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(doc, sort_keys=True) + "\n")
        obs.add("compiled.tables_cache.writes")
    except OSError:  # unwritable cache dir: never fatal
        pass


def _tables_match_candidates(tables: dict, candidates: dict | None) -> bool:
    if candidates is None:
        return False
    for fam in ("exp", "norm"):
        t, c = tables[fam], candidates.get(fam)
        if (t is None) != (c is None):
            return False
        if t is not None and not (
            np.array_equal(t[0], c[0]) and np.array_equal(t[1], c[1])
        ):
            return False
    return True


def _get_tables() -> dict:
    global _TABLES
    if _TABLES is None:
        path = _tables_cache_path()
        candidates = None
        if path is not None and path.exists():
            candidates = _load_table_candidates(path)
        with obs.span("compiled.harvest_tables", cached=candidates is not None):
            _TABLES = _build_tables(candidates)
        if (
            path is not None
            and (_TABLES["exp"] is not None or _TABLES["norm"] is not None)
            and not _tables_match_candidates(_TABLES, candidates)
        ):
            _store_tables(path, _TABLES)
    return _TABLES


# ---------------------------------------------------------------------------
# Distribution registry (vectorizable families)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ConstDist:
    """0-draw distribution: always ``value`` (after combinator folding)."""

    value: float


@dataclass(frozen=True)
class _VecDist:
    """1-draw distribution with a verified vectorized fast path.

    ``family`` ∈ {"uniform", "exp", "norm"}; ``ops`` is the ordered
    Shifted/Scaled combinator chain applied after the family transform.
    """

    family: str
    p1: float
    p2: float = 0.0
    ops: tuple = ()


_CLASSIFY_CACHE: dict = {}
_CLASSIFY_CACHE_MAX = 4096


def _dist_key(dist):
    """Hashable identity of a distribution over the verified registry,
    or None for families we cannot key (classified fresh each time)."""
    if isinstance(dist, Constant):
        return ("const", dist.value)
    if isinstance(dist, Uniform):
        return ("uniform", dist.low, dist.high)
    if isinstance(dist, Exponential):
        return ("exp", dist.mean_value)
    if isinstance(dist, Normal):
        return ("norm", dist.mu, dist.sigma)
    if isinstance(dist, Shifted):
        inner = _dist_key(dist.base)
        return None if inner is None else ("shift", dist.offset, inner)
    if isinstance(dist, Scaled):
        inner = _dist_key(dist.base)
        return None if inner is None else ("scale", dist.factor, inner)
    return None


def _classify_cached(dist, tables: dict):
    """Module-level memoized :func:`_classify`, keyed by distribution
    *value* plus which table families are enabled — so sweeps binding
    many signatures classify each distinct distribution once per
    process instead of once per bind."""
    if not tables["pcg"]:
        return None
    key = _dist_key(dist)
    if key is None:
        return _classify(dist, tables)
    full_key = (key, tables["uniform"], tables["exp"] is None, tables["norm"] is None)
    try:
        return _CLASSIFY_CACHE[full_key]
    except KeyError:
        if len(_CLASSIFY_CACHE) >= _CLASSIFY_CACHE_MAX:
            _CLASSIFY_CACHE.clear()
        val = _classify(dist, tables)
        _CLASSIFY_CACHE[full_key] = val
        return val


def _classify(dist, tables: dict):
    """Map a RandomVariable to its vectorized form, or None (unsupported)."""
    if isinstance(dist, Constant):
        return _ConstDist(dist.value)
    if isinstance(dist, Uniform):
        if not tables["uniform"]:
            return None
        return _VecDist("uniform", dist.low, dist.high - dist.low)
    if isinstance(dist, Exponential):
        if tables["exp"] is None:
            return None
        return _VecDist("exp", dist.mean_value)
    if isinstance(dist, Normal):
        if tables["norm"] is None:
            return None
        return _VecDist("norm", dist.mu, dist.sigma)
    if isinstance(dist, (Shifted, Scaled)):
        inner = _classify(dist.base, tables)
        if inner is None:
            return None
        op = ("+", dist.offset) if isinstance(dist, Shifted) else ("*", dist.factor)
        if isinstance(inner, _ConstDist):
            v = inner.value + op[1] if op[0] == "+" else inner.value * op[1]
            return _ConstDist(v)
        return _VecDist(inner.family, inner.p1, inner.p2, inner.ops + (op,))
    return None


def _eval_dist(d: _VecDist, u: np.ndarray, tables: dict):
    """Evaluate a vectorized distribution on raw uint64 draws.

    Returns ``(values, accept)`` — ``accept`` is None when every lane
    is exact (no rejection step possible, e.g. uniform).
    """
    if d.family == "uniform":
        v = (u >> _U64(11)).astype(np.float64) * _TO_DOUBLE
        v = d.p1 + d.p2 * v
        acc = None
    elif d.family == "exp":
        we, ke = tables["exp"]
        ri = u >> _U64(3)
        idx = (ri & _U64(0xFF)).astype(np.intp)
        pay = ri >> _U64(8)
        v = pay.astype(np.float64) * we[idx]
        acc = pay < ke[idx]
        v = d.p1 * v
    else:  # "norm"
        wi, ki = tables["norm"]
        idx = (u & _U64(0xFF)).astype(np.intp)
        r = u >> _U64(8)
        sign = (r & _U64(1)) != 0
        rabs = (r >> _U64(1)) & _U64(0x000FFFFFFFFFFFFF)
        v = rabs.astype(np.float64) * wi[idx]
        v = np.where(sign, -v, v)
        acc = rabs < ki[idx]
        v = d.p1 + d.p2 * v
    for op, c in d.ops:
        v = v + c if op == "+" else v * c
    return v, acc


# ---------------------------------------------------------------------------
# Draw programs (per-edge sampling recipes)
# ---------------------------------------------------------------------------


def _edge_program(sig: MachineSignature, delta: DeltaSpec, weight: float, classify):
    """The ordered primitive-draw recipe replaying ``spec.sample`` for one
    edge: a list of ``(dist, factor)`` steps (factor = nbytes for δ_t
    terms), or None when any step's family is unsupported."""
    kind = delta.kind
    os_d = classify(sig.os_noise_for(delta.rank))
    lat = classify(sig.latency_for(delta.src, delta.dst))
    pb = classify(sig.per_byte)
    steps: list | None
    if kind == DeltaKind.OS:
        if sig.os_draws(weight) != 1:
            return None  # interval-scaled multi-draw: scalar fallback
        steps = [(os_d, 1.0)]
    elif kind == DeltaKind.LATENCY:
        steps = [(lat, 1.0)]
    elif kind == DeltaKind.TRANSFER:
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
    elif kind == DeltaKind.TRANSFER_OS:
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
        steps.append((os_d, 1.0))
    elif kind == DeltaKind.ROUNDTRIP:
        lat_back = classify(sig.latency_for(delta.dst, delta.src))
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
        steps.extend([(os_d, 1.0), (lat_back, 1.0)])
    elif kind == DeltaKind.COLL_FANIN:
        steps = []
        for _ in range(delta.rounds):
            steps.extend([(os_d, 1.0), (lat, 1.0)])
            if delta.nbytes > 0:
                steps.append((pb, float(delta.nbytes)))
    else:  # pragma: no cover - exhaustive over sampled kinds
        return None
    if any(d is None for d, _ in steps):
        return None
    return steps


class _Group:
    """Edges sharing one program shape, sampled lane-parallel.

    ``lanes`` indexes the supported-lane axis (for stream keys);
    ``edge_ids`` the global edge axis (for uid/weight/fallback lookups);
    ``out_cols`` the sampler's output column axis.  Steps are
    ``("const", contrib_row)`` — no stream consumption — or
    ``("draw", _VecDist, factor_row | None)``.
    """

    __slots__ = ("lanes", "edge_ids", "out_cols", "steps")

    def __init__(self, lanes, edge_ids, out_cols, steps):
        self.lanes = lanes
        self.edge_ids = edge_ids
        self.out_cols = out_cols
        self.steps = steps


def _stream_key_arrays(seeds_u64, kind_u64, uid_mat, uid_len):
    """Per-(replicate, lane) PCG64 state arrays, shape (R, n_lanes).

    Replays ``PerturbationSpec``'s ``(seed, kind, *uid)`` splitmix
    chain for every lane of a uid-column block at once.
    """
    h0 = _splitmix64_vec(_U64(_FNV_SEED) ^ seeds_u64)
    h = np.bitwise_xor(h0[:, None], kind_u64[None, :])
    t = np.empty_like(h)
    _splitmix64_into(h, t)
    for j in range(uid_mat.shape[1]):
        cols = uid_len > j
        if not np.any(cols):
            break
        if cols.all():
            h ^= uid_mat[None, :, j]
            _splitmix64_into(h, t)
        else:
            h[:, cols] = _splitmix64_vec(h[:, cols] ^ uid_mat[cols, j][None, :])
    k = h
    s1 = _splitmix64_into(k.copy(), t)
    s2 = _splitmix64_into(s1.copy(), t)
    s3 = _splitmix64_into(s2.copy(), t)
    inc_hi = (s2 << _U64(1)) | (s3 >> _U64(63))
    inc_lo = (s3 << _U64(1)) | _U64(1)
    return k, s1, inc_hi, inc_lo


class _BoundSampler:
    """A CompiledPlan's sampler bound to one machine signature.

    With ``edge_ids=None`` it covers the full edge axis (output width
    ``n_edges``); with an explicit edge-id subset its output columns
    follow that subset's order (the coarse engine samples the static
    region this way).
    """

    def __init__(
        self,
        plan: "CompiledPlan",
        signature: MachineSignature,
        edge_ids: np.ndarray | None = None,
    ):
        self.plan = plan
        self.signature = signature
        self.tables = _get_tables()
        cache: dict = {}

        def classify(dist):
            key = id(dist)
            if key not in cache:
                cache[key] = _classify_cached(dist, self.tables)
            return cache[key]

        if edge_ids is None:
            self.out_width = plan.n_edges
            cand = plan.sampled_ids
            cand_cols = plan.sampled_ids
        else:
            edge_ids = np.asarray(edge_ids, dtype=np.int64)
            self.out_width = len(edge_ids)
            mask = plan.edge_kind[edge_ids] != int(DeltaKind.NONE)
            cand = edge_ids[mask]
            cand_cols = np.nonzero(mask)[0]

        sup_lanes: list[int] = []  # edge ids with a vectorizable program
        sup_cols: list[int] = []
        programs: list = []
        unsup: list[int] = []
        unsup_cols: list[int] = []
        for eid, col in zip(cand.tolist(), cand_cols.tolist()):
            delta = plan.deltas[eid]
            if not delta.uid:
                # scalar engine raises for uid-less sampled edges; defer
                # to it so the error (and message) is identical.
                unsup.append(eid)
                unsup_cols.append(col)
                continue
            prog = _edge_program(signature, delta, plan.edge_weight[eid], classify)
            if prog is None:
                unsup.append(eid)
                unsup_cols.append(col)
            else:
                sup_lanes.append(eid)
                sup_cols.append(col)
                programs.append(prog)
        self.unsup_ids = np.array(unsup, dtype=np.int64)
        self.unsup_cols = np.array(unsup_cols, dtype=np.int64)
        self.lane_edge_ids = np.array(sup_lanes, dtype=np.int64)
        lane_cols = np.array(sup_cols, dtype=np.int64)
        n_sup = len(sup_lanes)
        self.kind_u64 = plan.uid_kind[self.lane_edge_ids] if n_sup else np.empty(0, _U64)
        self.uid_mat = plan.uid_mat[self.lane_edge_ids] if n_sup else np.empty((0, 0), _U64)
        self.uid_len = plan.uid_len[self.lane_edge_ids] if n_sup else np.empty(0, np.int64)

        # Group lanes by program shape (the dist sequence; factors vary).
        by_shape: dict[tuple, list[int]] = {}
        for lane, prog in enumerate(programs):
            by_shape.setdefault(tuple(d for d, _ in prog), []).append(lane)
        self.groups: list[_Group] = []
        for shape, lanes in by_shape.items():
            lanes_arr = np.array(lanes, dtype=np.int64)
            steps = []
            for j, dist in enumerate(shape):
                factors = np.array([programs[i][j][1] for i in lanes], dtype=np.float64)
                if isinstance(dist, _ConstDist):
                    steps.append(("const", max(dist.value, 0.0) * factors))
                else:
                    fac = None if np.all(factors == 1.0) else factors
                    steps.append(("draw", dist, fac))
            self.groups.append(
                _Group(
                    lanes_arr,
                    self.lane_edge_ids[lanes_arr],
                    lane_cols[lanes_arr],
                    steps,
                )
            )

    # -- sampling ---------------------------------------------------------------
    def _stream_keys(self, seeds_u64: np.ndarray):
        """Per-(replicate, lane) PCG64 state arrays, shape (R, n_sup)."""
        return _stream_key_arrays(seeds_u64, self.kind_u64, self.uid_mat, self.uid_len)

    def sample_raw(self, seeds: list[int], scale: float) -> np.ndarray:
        """(R, out_width) matrix of per-edge deltas, row r drawn exactly
        as ``PerturbationSpec(signature, seed=seeds[r], scale=scale)``
        would for each covered edge."""
        plan = self.plan
        R = len(seeds)
        raw = np.zeros((R, self.out_width), dtype=np.float64)
        fallback = 0
        if len(self.lane_edge_ids):
            seeds_u64 = np.array([s & _MASK64 for s in seeds], dtype=_U64)
            k, s1, inc_hi, inc_lo = self._stream_keys(seeds_u64)
            bad_cols: list[np.ndarray] = []  # per-group (R, n_g) reject masks
            for g in self.groups:
                hi = k[:, g.lanes]
                lo = s1[:, g.lanes]
                ihi = inc_hi[:, g.lanes]
                ilo = inc_lo[:, g.lanes]
                V = np.zeros((R, len(g.lanes)), dtype=np.float64)
                ok = np.ones((R, len(g.lanes)), dtype=bool)
                for step in g.steps:
                    if step[0] == "const":
                        V += step[1]
                        continue
                    _, dist, fac = step
                    hi, lo, u = _pcg_next64(hi, lo, ihi, ilo)
                    v, acc = _eval_dist(dist, u, self.tables)
                    np.maximum(v, 0.0, out=v)
                    if fac is not None:
                        v *= fac
                    V += v
                    if acc is not None:
                        ok &= acc
                raw[:, g.out_cols] = V * scale
                bad_cols.append(~ok)
            # Exact per-lane fallback: any replicate/edge whose draw chain
            # left the verified fast path is resampled by the scalar spec.
            for g, bad in zip(self.groups, bad_cols):
                if not bad.any():
                    continue
                rows, cols = np.nonzero(bad)
                fallback += len(rows)
                spec = None
                last_row = -1
                for r, c in zip(rows, cols):
                    if r != last_row:
                        spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                        last_row = r
                    eid = int(g.edge_ids[c])
                    raw[r, int(g.out_cols[c])] = spec.sample(
                        plan.deltas[eid], plan.edge_weight[eid]
                    )
        if len(self.unsup_ids):
            fallback += R * len(self.unsup_ids)
            for r in range(R):
                spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                for eid, col in zip(self.unsup_ids.tolist(), self.unsup_cols.tolist()):
                    raw[r, col] = spec.sample(plan.deltas[eid], plan.edge_weight[eid])
        obs.span_add("compiled.lanes", R * self.out_width)
        if fallback:
            obs.span_add("compiled.fallback_lanes", fallback)
        return raw


class _TemplateSampler:
    """Shared per-template draw programs, sampled per instance chunk.

    Phase congruence guarantees every templated instance's edge at
    template position ``q`` has the same delta kind / endpoints /
    nbytes / rounds — hence the same draw program — while uids (and so
    PCG streams) differ per repetition.  Programs therefore classify
    **once** from the reference instance; sampling gathers each
    instance chunk's per-edge uid rows and runs the shared program over
    one ``(R, n_inst * n_lanes)`` lane block, reproducing the scalar
    draws bit-for-bit via exactly the machinery of
    :class:`_BoundSampler`.

    Only valid when programs are weight-independent, i.e.
    ``signature.os_quantum <= 0`` (the caller gates on this).
    """

    def __init__(self, plan: "CompiledPlan", signature: MachineSignature, ir):
        self.plan = plan
        self.signature = signature
        self.ir = ir
        self.tables = _get_tables()
        cache: dict = {}

        def classify(dist):
            key = id(dist)
            if key not in cache:
                cache[key] = _classify_cached(dist, self.tables)
            return cache[key]

        ref = ir.run_edge_ids[-1]
        kinds = plan.edge_kind[ref]
        none_code = int(DeltaKind.NONE)
        # Any uid-less sampled edge anywhere in the run: bail to the
        # flat sampler wholesale so its error surface is identical.
        sampled_cols = kinds != none_code
        self.ok = not (
            sampled_cols.any()
            and np.any(plan.uid_len[ir.run_edge_ids[:, sampled_cols]] == 0)
        )
        sup: list[tuple[int, list]] = []
        unsup_pos: list[int] = []
        if self.ok:
            for q in range(ir.n_te):
                if kinds[q] == none_code:
                    continue  # unsampled: raw stays 0 for every instance
                eid = int(ref[q])
                prog = _edge_program(
                    signature, plan.deltas[eid], plan.edge_weight[eid], classify
                )
                if prog is None:
                    unsup_pos.append(q)
                else:
                    sup.append((q, prog))
        by_shape: dict[tuple, list[tuple[int, list]]] = {}
        for q, prog in sup:
            by_shape.setdefault(tuple(d for d, _ in prog), []).append((q, prog))
        self.groups: list[tuple[np.ndarray, list]] = []
        for shape, members in by_shape.items():
            tpos = np.array([q for q, _ in members], dtype=np.int64)
            steps: list = []
            for j, dist in enumerate(shape):
                factors = np.array([m[1][j][1] for m in members], dtype=np.float64)
                if isinstance(dist, _ConstDist):
                    steps.append(("const", max(dist.value, 0.0) * factors))
                else:
                    fac = None if np.all(factors == 1.0) else factors
                    steps.append(("draw", dist, fac))
            self.groups.append((tpos, steps))
        self.unsup_pos = np.array(unsup_pos, dtype=np.int64)

    def sample(self, seeds: list[int], scale: float, j0: int, j1: int) -> np.ndarray:
        """(R, (j1-j0) * n_te) sampled deltas for templated instances
        ``[j0, j1)``, instance-major, bit-identical per edge to the
        scalar ``PerturbationSpec.sample``."""
        plan, ir = self.plan, self.ir
        rows = ir.run_edge_ids[j0:j1]
        ni = j1 - j0
        n_te = ir.n_te
        R = len(seeds)
        raw = np.zeros((R, ni * n_te), dtype=np.float64)
        seeds_u64 = np.array([s & _MASK64 for s in seeds], dtype=_U64)
        fallback = 0
        for tpos, steps in self.groups:
            gids = rows[:, tpos].reshape(-1)  # instance-major lane order
            k, s1, inc_hi, inc_lo = _stream_key_arrays(
                seeds_u64, plan.uid_kind[gids], plan.uid_mat[gids], plan.uid_len[gids]
            )
            hi, lo, ihi, ilo = k, s1, inc_hi, inc_lo
            n_lane = ni * len(tpos)
            V = np.zeros((R, n_lane), dtype=np.float64)
            ok = np.ones((R, n_lane), dtype=bool)
            for step in steps:
                if step[0] == "const":
                    V += np.tile(step[1], ni)
                    continue
                _, dist, fac = step
                hi, lo, u = _pcg_next64(hi, lo, ihi, ilo)
                v, acc = _eval_dist(dist, u, self.tables)
                np.maximum(v, 0.0, out=v)
                if fac is not None:
                    v *= np.tile(fac, ni)
                V += v
                if acc is not None:
                    ok &= acc
            cols = (
                np.arange(ni, dtype=np.int64)[:, None] * n_te + tpos[None, :]
            ).reshape(-1)
            raw[:, cols] = V * scale
            if not ok.all():
                bad_r, bad_l = np.nonzero(~ok)
                fallback += len(bad_r)
                spec = None
                last_row = -1
                for r, c in zip(bad_r.tolist(), bad_l.tolist()):
                    if r != last_row:
                        spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                        last_row = r
                    eid = int(gids[c])
                    raw[r, int(cols[c])] = spec.sample(
                        plan.deltas[eid], plan.edge_weight[eid]
                    )
        if len(self.unsup_pos):
            fallback += R * ni * len(self.unsup_pos)
            unsup = self.unsup_pos.tolist()
            for r in range(R):
                spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                for j in range(ni):
                    for q in unsup:
                        eid = int(rows[j, q])
                        raw[r, j * n_te + q] = spec.sample(
                            plan.deltas[eid], plan.edge_weight[eid]
                        )
        obs.span_add("compiled.lanes", R * ni * n_te)
        if fallback:
            obs.span_add("compiled.fallback_lanes", fallback)
        return raw


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------


class _Level:
    """One rank of the level schedule: nodes whose in-edges all come from
    earlier levels, so the whole rank is a single vectorized gather+max."""

    __slots__ = ("nodes", "src", "eid", "segs", "sizes", "single")

    def __init__(self, nodes, src, eid, segs, single):
        self.nodes = nodes
        self.src = src
        self.eid = eid
        self.segs = segs
        # In-edges per node in this level (for expanding segment maxima
        # back to the edge axis in the predecessor-tracking kernel).
        self.sizes = np.diff(np.append(segs, len(eid)))
        self.single = single

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


def _apply_mode_w(raw: np.ndarray, w: np.ndarray, mode: str):
    """δ_eff + additive clamp counts for explicit per-column weights.

    Exactly the operations of :meth:`CompiledPlan.apply_mode` (which
    delegates here with the full weight row) — the coarse engine calls
    it with gathered static / per-instance weight slices so both paths
    compute bit-identical effective deltas.
    """
    if mode == "threshold":
        return np.maximum(0.0, raw - w), np.zeros(raw.shape[0], dtype=np.int64)
    mask = raw < -w
    eff = np.where(mask, -w, raw)
    return eff, mask.sum(axis=1).astype(np.int64)


@dataclass(frozen=True)
class CompiledBatch:
    """Replicate-batched propagation output.

    ``delays`` has shape (replicates, nprocs) — row r is exactly
    ``propagate(build, spec_with_seed_r, mode).final_delay``.
    """

    delays: np.ndarray
    clamped: np.ndarray  # (replicates,) per-replicate clamped-edge counts
    mode: str


class CompiledPlan:
    """A BuildResult lowered to structure-of-arrays form (see module doc).

    Compile once (topology is spec-independent), then reuse across
    replicates, sweep points and influence rows.  The plan is picklable
    — :class:`~repro.core.parallel.ProcessPoolBackend` ships these
    compact arrays to workers instead of the Python object graph.
    """

    def __init__(self, build: BuildResult, coarsen: str = "auto"):
        if coarsen not in COARSEN_CHOICES:
            raise ValueError(
                f"coarsen must be one of {COARSEN_CHOICES}, got {coarsen!r}"
            )
        with obs.span("compiled.compile", coarsen=coarsen):
            g = build.graph
            self.nprocs = g.nprocs
            self.n_nodes = len(g.nodes)
            self.n_edges = len(g.edges)
            edges = g.edges
            self.edge_weight = np.array([e.weight for e in edges], dtype=np.float64)
            self.edge_kind = np.array([int(e.delta.kind) for e in edges], dtype=np.uint8)
            self.deltas = [e.delta for e in edges]
            self.sampled_ids = np.nonzero(self.edge_kind != int(DeltaKind.NONE))[0]

            # Node/edge attribute columns — the structure-of-arrays substrate
            # that repro.metrics.frames hands out as zero-copy views.
            nodes = g.nodes
            self.node_rank = np.array([n.rank for n in nodes], dtype=np.int64)
            self.node_seq = np.array([n.seq for n in nodes], dtype=np.int64)
            self.node_phase = np.array([int(n.phase) for n in nodes], dtype=np.uint8)
            self.node_kind = np.array([int(n.kind) for n in nodes], dtype=np.uint8)
            self.node_t_local = np.array([n.t_local for n in nodes], dtype=np.float64)
            self.edge_src = np.array([e.src for e in edges], dtype=np.int64)
            self.edge_dst = np.array([e.dst for e in edges], dtype=np.int64)
            self.edge_is_local = np.array(
                [e.kind == EdgeKind.LOCAL for e in edges], dtype=np.bool_
            )
            self.edge_nbytes = np.array([e.delta.nbytes for e in edges], dtype=np.int64)

            # uid columns, premasked to uint64 exactly like perturb._mix.
            max_len = max((len(self.deltas[i].uid) for i in self.sampled_ids), default=0)
            self.uid_mat = np.zeros((self.n_edges, max_len), dtype=_U64)
            self.uid_len = np.zeros(self.n_edges, dtype=np.int64)
            self.uid_kind = np.zeros(self.n_edges, dtype=_U64)
            for i in self.sampled_ids:
                uid = self.deltas[i].uid
                self.uid_len[i] = len(uid)
                self.uid_kind[i] = int(self.deltas[i].kind) & _MASK64
                for j, v in enumerate(uid):
                    self.uid_mat[i, j] = v & _MASK64

            # Level schedule: level(v) = 1 + max level of predecessors.
            topo = g.topological_order()
            level = [0] * self.n_nodes
            for v in topo:
                ins = g.in_edge_ids(v)
                if ins:
                    level[v] = 1 + max(level[edges[ei].src] for ei in ins)
            by_level: dict[int, list[int]] = {}
            for v, lv in enumerate(level):
                if lv > 0:
                    by_level.setdefault(lv, []).append(v)
            self.levels: list[_Level] = []
            for lv in sorted(by_level):
                nodes = by_level[lv]
                src: list[int] = []
                eid: list[int] = []
                segs: list[int] = []
                for v in nodes:
                    segs.append(len(eid))
                    for ei in g.in_edge_ids(v):
                        src.append(edges[ei].src)
                        eid.append(ei)
                single = len(eid) == len(nodes)
                self.levels.append(
                    _Level(
                        np.array(nodes, dtype=np.int64),
                        np.array(src, dtype=np.int64),
                        np.array(eid, dtype=np.int64),
                        np.array(segs, dtype=np.int64),
                        single,
                    )
                )

            # Final (FINALIZE END) node per rank, rank-chain fallback as in
            # traversal._finals_from_graph; -1 = rank has no nodes at all.
            self.final_node = np.full(self.nprocs, -1, dtype=np.int64)
            self.final_t_local = np.zeros(self.nprocs, dtype=np.float64)
            for rank in range(self.nprocs):
                nid = g.final_node_of(rank)
                if nid is not None:
                    self.final_node[rank] = nid
                    self.final_t_local[rank] = g.nodes[nid].t_local
            # Hierarchical IR: detect the repeated phase and lower it to
            # the two-level coarse plan.  ``auto`` only attempts detection
            # on graphs large enough for the coarse walk to pay off.
            self.coarsen = coarsen
            self.coarse = None
            if coarsen == "on" or (coarsen == "auto" and self.n_nodes >= AUTO_MIN_NODES):
                with obs.span("coarsen.detect", nodes=self.n_nodes):
                    self.coarse = detect_phases(self, g, topo)
                if self.coarse is not None:
                    obs.add("coarsen.applied")
                else:
                    obs.add("coarsen.rejected")

            obs.span_add("compiled.plans")
            self._samplers: list[tuple[MachineSignature, _BoundSampler]] = []
            self._coarse_binds: list = []
            self._tmpl_abs: dict = {}
            self._tap_groups: dict | None = None
            self._tables = _get_tables()  # harvested once; rides the pickle

    # -- pickling (ship arrays, not caches) -------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_samplers"] = []
        state["_coarse_binds"] = []
        state["_tmpl_abs"] = {}
        state["_tap_groups"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        global _TABLES
        if _TABLES is None and state.get("_tables") is not None:
            _TABLES = state["_tables"]  # workers skip re-harvesting

    # -- sampling ---------------------------------------------------------------
    def bind(self, signature: MachineSignature) -> _BoundSampler:
        """Sampler for one signature (memoized; signatures are compared
        by identity first, then equality)."""
        for sig, sampler in self._samplers:
            if sig is signature or sig == signature:
                return sampler
        sampler = _BoundSampler(self, signature)
        self._samplers.append((signature, sampler))
        if len(self._samplers) > 8:
            self._samplers.pop(0)
        return sampler

    def _coarse_ready(self, signature: MachineSignature) -> bool:
        """Whether the coarse sampling path may serve this signature.

        Interval-scaled OS draws (``os_quantum > 0``) make draw programs
        weight-dependent, which breaks template program sharing — those
        signatures take the flat engine (still exact, just slower).
        """
        return self.coarse is not None and signature.os_quantum <= 0.0

    def _coarse_bind(self, signature: MachineSignature):
        """``(static_sampler, template_sampler)`` for one signature, or
        None when the template cannot be sampled coarsely (flat path)."""
        for sig, pair in self._coarse_binds:
            if sig is signature or sig == signature:
                return pair
        ir = self.coarse
        tmpl = _TemplateSampler(self, signature, ir)
        pair = None
        if tmpl.ok:
            static = _BoundSampler(self, signature, edge_ids=ir.static_eids)
            pair = (static, tmpl)
        self._coarse_binds.append((signature, pair))
        if len(self._coarse_binds) > 4:
            self._coarse_binds.pop(0)
        return pair

    def sample_raw_batch(
        self, signature: MachineSignature, seeds: list[int], scale: float = 1.0
    ) -> np.ndarray:
        """(R, n_edges) sampled deltas (already scaled), bit-identical to
        per-replicate ``PerturbationSpec.sample`` over every edge."""
        with obs.span("compiled.sample", replicates=len(seeds)):
            if self._coarse_ready(signature):
                pair = self._coarse_bind(signature)
                if pair is not None:
                    return self._coarse_sample_full(pair, list(seeds), scale)
            return self.bind(signature).sample_raw(list(seeds), scale)

    def _coarse_sample_full(self, pair, seeds: list[int], scale: float) -> np.ndarray:
        """Assemble the full (R, n_edges) raw matrix through the coarse
        samplers — avoids the per-edge flat bind on huge graphs while
        producing identical values column by column."""
        ir = self.coarse
        static_s, tmpl_s = pair
        R = len(seeds)
        raw = np.zeros((R, self.n_edges), dtype=np.float64)
        if len(ir.static_eids):
            raw[:, ir.static_eids] = static_s.sample_raw(seeds, scale)
        step = max(1, int(12_000_000 // max(1, R * ir.n_te * 3)))
        for j0 in range(0, ir.m_run, step):
            j1 = min(ir.m_run, j0 + step)
            raw[:, ir.run_edge_ids[j0:j1].reshape(-1)] = tmpl_s.sample(
                seeds, scale, j0, j1
            )
        return raw

    # -- mode + kernel ----------------------------------------------------------
    def apply_mode(self, raw: np.ndarray, mode: str):
        """δ_eff per edge (same clamp semantics as ``_DeltaApplier``).

        Returns ``(eff, clamped)``; ``clamped`` counts additive-mode
        zero-floor clamps per replicate."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        return _apply_mode_w(raw, self.edge_weight, mode)

    def kernel(self, eff: np.ndarray) -> np.ndarray:
        """One topological pass for all replicates: (R, n_nodes) delays."""
        D = np.zeros((eff.shape[0], self.n_nodes), dtype=np.float64)
        for lv in self.levels:
            contrib = D[:, lv.src] + eff[:, lv.eid]
            if lv.single:
                D[:, lv.nodes] = contrib
            else:
                D[:, lv.nodes] = np.maximum.reduceat(contrib, lv.segs, axis=1)
        return D

    def longest_path(self, eff: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Longest weighted path with predecessor tracking, all replicates.

        ``eff`` is an (R, n_edges) per-edge cost matrix; returns
        ``(L, pred)`` of shapes (R, n_nodes): ``L[r, v]`` is the longest
        path cost into ``v`` under row r's costs and ``pred[r, v]`` the
        binding in-edge id (-1 for sources).  Ties break toward the
        *first* in-edge in ``graph.in_edge_ids`` order — the CSR arrays
        are built in exactly that order, so first-position-of-max here
        matches the scalar :func:`~repro.core.traversal.longest_weighted_path`
        bit-for-bit (both compare the same computed float values).
        """
        R = eff.shape[0]
        L = np.zeros((R, self.n_nodes), dtype=np.float64)
        pred = np.full((R, self.n_nodes), -1, dtype=np.int64)
        with obs.span("longest_path", engine="compiled", replicates=R):
            for lv in self.levels:
                contrib = L[:, lv.src] + eff[:, lv.eid]
                if lv.single:
                    L[:, lv.nodes] = contrib
                    pred[:, lv.nodes] = lv.eid[None, :]
                else:
                    M = np.maximum.reduceat(contrib, lv.segs, axis=1)
                    L[:, lv.nodes] = M
                    # First max per segment: mask non-max positions to a
                    # sentinel past the end, then min-reduce positions.
                    ncols = contrib.shape[1]
                    expanded = np.repeat(M, lv.sizes, axis=1)
                    pos = np.where(
                        contrib == expanded,
                        np.arange(ncols, dtype=np.int64)[None, :],
                        ncols,
                    )
                    first = np.minimum.reduceat(pos, lv.segs, axis=1)
                    pred[:, lv.nodes] = lv.eid[first]
        return L, pred

    def finals(self, D: np.ndarray) -> np.ndarray:
        """(R, nprocs) per-rank final delays from a node-delay matrix."""
        out = np.zeros((D.shape[0], self.nprocs), dtype=np.float64)
        have = self.final_node >= 0
        out[:, have] = D[:, self.final_node[have]]
        return out

    # -- coarse (two-level) execution ---------------------------------------------
    def _tmpl_levels_abs(self, phi: int):
        """Template levels materialized for ring frame ``phi``: absolute
        scratch positions for destinations and (lagged or static)
        sources.  Cached per frame — there are only ``L`` variants."""
        got = self._tmpl_abs.get(phi)
        if got is None:
            ir = self.coarse
            got = []
            for lv in ir.tmpl_levels:
                lagged = lv.src_lag >= 0
                slot = (phi - lv.src_lag) % ir.L
                src = np.where(
                    lagged, ir.ring_base + slot * ir.n_t + lv.src_ref, lv.src_ref
                )
                dst = ir.ring_base + phi * ir.n_t + lv.dst
                got.append((dst, src, lv.ecol, lv.segs, lv.single))
            self._tmpl_abs[phi] = got
        return got

    def _instance_taps(self) -> dict:
        """Per-instance tap copies ``{instance: (slots, frame_offsets)}``."""
        if self._tap_groups is None:
            ir = self.coarse
            groups: dict[int, tuple[list, list]] = {}
            for j, (inst, off) in enumerate(
                zip(ir.tap_inst.tolist(), ir.tap_off.tolist())
            ):
                slots, offs = groups.setdefault(int(inst), ([], []))
                slots.append(ir.tap_base + j)
                offs.append(int(off))
            self._tap_groups = {
                i: (np.array(a, dtype=np.int64), np.array(b, dtype=np.int64))
                for i, (a, b) in groups.items()
            }
        return self._tap_groups

    def _coarse_run(self, R: int, eff_static: np.ndarray, tmpl_eff, D_full=None):
        """Walk the two-level plan for ``R`` replicate rows.

        ``eff_static`` is the (R, n_static) effective-delta block in
        ``static_eids`` order; ``tmpl_eff(j0, j1)`` returns the
        ``(eff, clamped)`` block for templated instances ``[j0, j1)``.
        Returns ``(final delays (R, nprocs), template clamp counts)``.
        Any execution order yields the flat engine's exact floats: each
        node's value is the max over the identical contrib operand
        pairs, and float max is order-exact.
        """
        ir = self.coarse
        S = np.zeros((R, ir.W), dtype=np.float64)
        for lv in ir.pre_levels:
            contrib = S[:, lv.src] + eff_static[:, lv.ecol]
            if lv.single:
                S[:, lv.dst] = contrib
            else:
                S[:, lv.dst] = np.maximum.reduceat(contrib, lv.segs, axis=1)
        n_t, L, ring = ir.n_t, ir.L, ir.ring_base
        for j in range(ir.fold):
            frame = ring + (j % L) * n_t
            S[:, frame : frame + n_t] = S[:, ir.fold_src_pos[j]]
        if D_full is not None and ir.n_pre:
            D_full[:, ir.pre_node_ids] = S[:, : ir.n_pre]
        taps = self._instance_taps()
        clamp = np.zeros(R, dtype=np.int64)
        zero = ir.zero_offs
        step = max(1, int(12_000_000 // max(1, R * ir.n_te * 3)))
        for j0 in range(0, ir.m_run, step):
            j1 = min(ir.m_run, j0 + step)
            eff_c, nclamp_c = tmpl_eff(j0, j1)
            clamp += nclamp_c
            for j in range(j0, j1):
                i = ir.fold + j
                phi = i % L
                frame = ring + phi * n_t
                if len(zero):
                    S[:, frame + zero] = 0.0
                off = (j - j0) * ir.n_te
                for dst, src, ecol, segs, single in self._tmpl_levels_abs(phi):
                    contrib = S[:, src] + eff_c[:, off + ecol]
                    if single:
                        S[:, dst] = contrib
                    else:
                        S[:, dst] = np.maximum.reduceat(contrib, segs, axis=1)
                tp = taps.get(i)
                if tp is not None:
                    S[:, tp[0]] = S[:, frame + tp[1]]
                if D_full is not None:
                    D_full[:, ir.run_node_ids[i]] = S[:, frame : frame + n_t]
        for lv in ir.post_levels:
            contrib = S[:, lv.src] + eff_static[:, lv.ecol]
            if lv.single:
                S[:, lv.dst] = contrib
            else:
                S[:, lv.dst] = np.maximum.reduceat(contrib, lv.segs, axis=1)
        if D_full is not None and ir.n_post:
            D_full[:, ir.post_node_ids] = S[:, ir.post_base : ir.post_base + ir.n_post]
        delays = np.zeros((R, self.nprocs), dtype=np.float64)
        have = ir.final_pos >= 0
        if have.any():
            delays[:, have] = S[:, ir.final_pos[have]]
        return delays, clamp

    def _coarse_batch(self, spec: PerturbationSpec, seeds: list[int], mode: str):
        """Coarse-path ``propagate_batch`` (None → caller goes flat)."""
        pair = self._coarse_bind(spec.signature)
        if pair is None:
            return None
        static_s, tmpl_s = pair
        ir = self.coarse
        R = len(seeds)
        delays = np.empty((R, self.nprocs), dtype=np.float64)
        clamped = np.empty(R, dtype=np.int64)
        w_static = self.edge_weight[ir.static_eids]
        step = max(1, min(R, 12_000_000 // max(1, ir.W + 4 * ir.n_te)))
        for lo in range(0, R, step):
            chunk = seeds[lo : lo + step]
            Rc = len(chunk)
            with obs.span("compiled.sample", replicates=Rc):
                raw_s = static_s.sample_raw(chunk, spec.scale)
            eff_s, nclamp = _apply_mode_w(raw_s, w_static, mode)

            def tmpl_eff(j0, j1, _chunk=chunk):
                with obs.span("compiled.sample", replicates=Rc):
                    raw_t = tmpl_s.sample(_chunk, spec.scale, j0, j1)
                w = self.edge_weight[ir.run_edge_ids[j0:j1]].reshape(-1)
                return _apply_mode_w(raw_t, w, mode)

            with obs.span("compiled.propagate", replicates=Rc, mode=mode, coarse=True):
                d, cl = self._coarse_run(Rc, eff_s, tmpl_eff)
                nclamp = nclamp + cl
                obs.span_add("traversal.propagations", Rc)
                if nclamp.any():
                    obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
            delays[lo : lo + step] = d
            clamped[lo : lo + step] = nclamp
        return CompiledBatch(delays=delays, clamped=clamped, mode=mode)

    def _coarse_presampled(
        self, raw_base: np.ndarray, scales: list[float], mode: str
    ) -> CompiledBatch:
        """Coarse-path ``propagate_presampled_batch``: effective deltas
        are gathered per region from the single pre-sampled row, so no
        (R, n_edges) scratch is ever allocated."""
        ir = self.coarse
        scales_arr = np.asarray(scales, dtype=np.float64)
        R = len(scales_arr)
        with obs.span("compiled.propagate", replicates=R, mode=mode, coarse=True):
            eff_s, nclamp = _apply_mode_w(
                raw_base[ir.static_eids][None, :] * scales_arr[:, None],
                self.edge_weight[ir.static_eids],
                mode,
            )

            def tmpl_eff(j0, j1):
                cols = ir.run_edge_ids[j0:j1].reshape(-1)
                return _apply_mode_w(
                    raw_base[cols][None, :] * scales_arr[:, None],
                    self.edge_weight[cols],
                    mode,
                )

            delays, cl = self._coarse_run(R, eff_s, tmpl_eff)
            nclamp = nclamp + cl
            obs.span_add("traversal.propagations", R)
            if nclamp.any():
                obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
        return CompiledBatch(delays=delays, clamped=nclamp, mode=mode)

    # -- high-level entry points --------------------------------------------------
    def _batch_size(self, replicates: int) -> int:
        """Bound (R, n_nodes)+(R, n_edges) scratch to ~100 MB per batch."""
        per_rep = max(1, self.n_nodes + 3 * self.n_edges)
        return max(1, min(replicates, 12_000_000 // per_rep))

    def propagate_batch(
        self,
        spec: PerturbationSpec,
        seeds: list[int] | None = None,
        mode: str = "additive",
    ) -> CompiledBatch:
        """Batched equivalent of ``propagate`` over per-replicate seeds.

        Row r uses ``PerturbationSpec(spec.signature, seed=seeds[r],
        scale=spec.scale)`` — the exact Monte-Carlo replicate schedule.
        ``seeds`` defaults to ``[spec.seed]``.
        """
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        seeds = [spec.seed] if seeds is None else list(seeds)
        if self._coarse_ready(spec.signature):
            out = self._coarse_batch(spec, seeds, mode)
            if out is not None:
                return out
        R = len(seeds)
        delays = np.empty((R, self.nprocs), dtype=np.float64)
        clamped = np.empty(R, dtype=np.int64)
        step = self._batch_size(R)
        for lo in range(0, R, step):
            chunk = seeds[lo : lo + step]
            raw = self.sample_raw_batch(spec.signature, chunk, spec.scale)
            with obs.span("compiled.propagate", replicates=len(chunk), mode=mode):
                eff, nclamp = self.apply_mode(raw, mode)
                delays[lo : lo + step] = self.finals(self.kernel(eff))
                clamped[lo : lo + step] = nclamp
                obs.span_add("traversal.propagations", len(chunk))
                if nclamp.any():
                    obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
        return CompiledBatch(delays=delays, clamped=clamped, mode=mode)

    def propagate_presampled_batch(
        self, raw_base: np.ndarray, scales: list[float], mode: str = "additive"
    ) -> CompiledBatch:
        """Propagate one pre-sampled raw row at many scales (sweep fast
        path): row i of the result uses ``raw_base * scales[i]``."""
        if self.coarse is not None:
            return self._coarse_presampled(raw_base, scales, mode)
        raw = raw_base[None, :] * np.asarray(scales, dtype=np.float64)[:, None]
        with obs.span("compiled.propagate", replicates=len(scales), mode=mode):
            eff, nclamp = self.apply_mode(raw, mode)
            delays = self.finals(self.kernel(eff))
            obs.span_add("traversal.propagations", len(scales))
            if nclamp.any():
                obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
        return CompiledBatch(delays=delays, clamped=nclamp, mode=mode)

    def propagate_one(self, spec: PerturbationSpec, mode: str = "additive") -> TraversalResult:
        """Drop-in ``propagate`` replacement (single spec/seed) with the
        in-core extras (node delays, edge deltas) populated."""
        raw = self.sample_raw_batch(spec.signature, [spec.seed], spec.scale)
        with obs.span("compiled.propagate", replicates=1, mode=mode):
            eff, nclamp = self.apply_mode(raw, mode)
            if self.coarse is not None:
                ir = self.coarse
                D = np.zeros((1, self.n_nodes), dtype=np.float64)
                self._coarse_run(
                    1,
                    eff[:, ir.static_eids],
                    lambda j0, j1: (
                        eff[:, ir.run_edge_ids[j0:j1].reshape(-1)],
                        np.zeros(1, dtype=np.int64),
                    ),
                    D_full=D,
                )
            else:
                D = self.kernel(eff)
            delays = self.finals(D)[0]
            have = self.final_node >= 0
            times = np.where(have, self.final_t_local + delays, 0.0)
            obs.span_add("traversal.propagations")
            if nclamp[0]:
                obs.span_add("traversal.clamped_edges", int(nclamp[0]))
        return TraversalResult(
            final_delay=delays.tolist(),
            final_local_times=times.tolist(),
            mode=mode,
            clamped_edges=int(nclamp[0]),
            node_delay=D[0].tolist(),
            edge_delta=eff[0].tolist(),
        )


def compiled_plan(
    build: BuildResult, coarsen: str = "auto", checkpoint=None
) -> CompiledPlan:
    """The (cached) compiled plan for a build — compile once, reuse.

    Plans are memoized on the build per ``coarsen`` policy.  When a
    ``CheckpointStore`` is passed, compiled plans are additionally
    persisted on disk keyed by the build digest, so repeated CLI runs
    and pool workers skip recompilation entirely.

    Concurrent callers sharing one ``build`` (daemon requests that
    coalesced on the same trace) are serialized on a per-build lock, so
    exactly one thread compiles and the rest reuse its plan — the
    memoized dict alone would let two threads race past the ``get`` and
    both pay the compile.
    """
    if coarsen not in COARSEN_CHOICES:
        raise ValueError(f"coarsen must be one of {COARSEN_CHOICES}, got {coarsen!r}")
    import threading

    # dict.setdefault is atomic under the GIL, so all racers agree on
    # one lock object (and one plans dict) for this build.
    lock = build.__dict__.setdefault("_compiled_plans_lock", threading.Lock())
    plans = build.__dict__.setdefault("_compiled_plans", {})
    with lock:
        plan = plans.get(coarsen)
        if plan is None:
            if checkpoint is not None:
                from repro.core.checkpoint import load_plan

                plan = load_plan(checkpoint, build, coarsen)
            if plan is None:
                plan = CompiledPlan(build, coarsen=coarsen)
                if checkpoint is not None:
                    from repro.core.checkpoint import save_plan

                    save_plan(checkpoint, build, coarsen, plan)
            plans[coarsen] = plan
        return plan
