"""Property tests over random valid runs: file round trips and
pipeline invariants that must hold for ANY simulator-producible trace."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpisim import run
from repro.mpisim.engine import Engine
from repro.mpisim.tracing import FileCollector
from repro.trace.reader import TraceSet
from repro.trace.stats import trace_stats
from repro.trace.validate import validate_traces

from tests.conftest import plan_program

_round = st.one_of(
    st.tuples(st.just("compute"), st.integers(100, 3000)),
    st.tuples(st.just("ring"), st.integers(0, 20_000)),
    st.tuples(st.just("xchg"), st.integers(0, 2000)),
    st.tuples(st.just("nb"), st.integers(0, 20_000)),
    st.tuples(st.just("allreduce"), st.integers(0, 128)),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("scan"), st.integers(0, 128)),
    st.tuples(st.just("rscatter"), st.integers(0, 128)),
)

_plans = st.lists(_round, min_size=1, max_size=4)


@given(plan=_plans, p=st.integers(2, 4), binary=st.booleans())
@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)
def test_file_round_trip_property(plan, p, binary, tmp_path_factory):
    """Trace files round-trip every event of any run bit-exactly, in
    both codecs."""
    tmp = tmp_path_factory.mktemp("rt")
    mem = run(plan_program(plan), nprocs=p, seed=1)

    collector = FileCollector(tmp, "x", p, binary=binary)
    engine = Engine(plan_program(plan), p, trace_hook=collector.hook, seed=1)
    engine.run()
    collector.close()
    from_disk = TraceSet.open(tmp, "x")
    for rank in range(p):
        assert list(from_disk.events_of(rank)) == list(mem.trace.events_of(rank))


@given(plan=_plans, p=st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_every_run_validates_and_balances(plan, p):
    """Any simulator-produced trace passes structural validation, and its
    traffic accounting balances (bytes sent == bytes received)."""
    trace = run(plan_program(plan), nprocs=p, seed=2).trace
    report = validate_traces(trace)
    assert report.ok, [str(e) for e in report.errors[:3]]
    stats = trace_stats(trace)
    assert sum(r.bytes_sent for r in stats.ranks) == sum(
        r.bytes_received for r in stats.ranks
    )
    assert sum(r.messages_sent for r in stats.ranks) == sum(
        r.messages_received for r in stats.ranks
    )


@given(plan=_plans, p=st.integers(2, 4), seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_simulator_deterministic_property(plan, p, seed):
    a = run(plan_program(plan), nprocs=p, seed=seed)
    b = run(plan_program(plan), nprocs=p, seed=seed)
    assert a.finish_times == b.finish_times
    for rank in range(p):
        assert list(a.trace.events_of(rank)) == list(b.trace.events_of(rank))
