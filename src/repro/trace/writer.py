"""Buffered per-rank trace writers.

Section 4: the PMPI wrapper "records the event in a memory resident
buffer.  The buffer is dumped to an event trace file when it becomes
full, and is then reset to empty for future events.  The size of this
buffer can be tuned to compensate for event frequency and overhead."

:class:`TraceWriter` reproduces that behaviour: events accumulate in a
list and are encoded + written only when ``buffer_events`` is reached
(or on close/flush).  The ``flush_count`` statistic lets tests assert
the buffering actually happens.

:class:`TraceSetWriter` manages one writer per rank plus the naming
convention ``<stem>.rank<NNNN><suffix>`` shared with the reader.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable

from repro.trace import format as fmt
from repro.trace.events import EventRecord, TraceMeta

__all__ = ["TraceWriter", "TraceSetWriter", "rank_filename"]


def rank_filename(stem: str, rank: int, binary: bool = False) -> str:
    """Canonical per-rank trace filename."""
    suffix = fmt.BINARY_SUFFIX if binary else fmt.TEXT_SUFFIX
    return f"{stem}.rank{rank:04d}{suffix}"


class TraceWriter:
    """Buffered writer for a single rank's trace file."""

    def __init__(
        self,
        path: str | Path,
        meta: TraceMeta,
        buffer_events: int = 4096,
        binary: bool = False,
    ):
        if buffer_events < 1:
            raise ValueError(f"buffer_events must be >= 1, got {buffer_events}")
        self.path = Path(path)
        self.meta = meta
        self.binary = binary
        self.buffer_events = buffer_events
        self._buffer: list[EventRecord] = []
        self._next_seq = 0
        self.flush_count = 0
        self.event_count = 0
        self._closed = False
        # The handle outlives __init__ by design (buffered writes land on
        # flush/close), so a context manager cannot own it.
        if binary:
            self._fh: io.IOBase = open(self.path, "wb")  # noqa: SIM115
            fmt.write_header_binary(self._fh, meta)
        else:
            self._fh = open(self.path, "w")  # noqa: SIM115
            fmt.write_header_text(self._fh, meta)

    # -- recording ----------------------------------------------------------------
    def record(self, event: EventRecord) -> None:
        """Append one event; flush if the memory buffer is full."""
        if self._closed:
            raise ValueError(f"writer for {self.path} is closed")
        if event.rank != self.meta.rank:
            raise ValueError(f"event rank {event.rank} != trace rank {self.meta.rank}")
        if event.seq != self._next_seq:
            raise ValueError(
                f"out-of-order event: expected seq {self._next_seq}, got {event.seq}"
            )
        self._buffer.append(event)
        self._next_seq += 1
        self.event_count += 1
        if len(self._buffer) >= self.buffer_events:
            self.flush()

    def record_all(self, events: Iterable[EventRecord]) -> None:
        for ev in events:
            self.record(ev)

    def flush(self) -> None:
        """Dump the memory buffer to disk and reset it (§4)."""
        if not self._buffer:
            return
        if self.binary:
            self._fh.write(b"".join(fmt.encode_event_binary(ev) for ev in self._buffer))
        else:
            self._fh.write("\n".join(fmt.encode_event_text(ev) for ev in self._buffer) + "\n")
        self._buffer.clear()
        self.flush_count += 1

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceSetWriter:
    """One :class:`TraceWriter` per rank under a common stem."""

    def __init__(
        self,
        directory: str | Path,
        stem: str,
        nprocs: int,
        program: str = "",
        buffer_events: int = 4096,
        binary: bool = False,
        clock_params: dict[int, tuple[float, float]] | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stem = stem
        self.nprocs = nprocs
        self.writers: list[TraceWriter] = []
        clock_params = clock_params or {}
        for rank in range(nprocs):
            offset, drift = clock_params.get(rank, (0.0, 0.0))
            meta = TraceMeta(
                rank=rank,
                nprocs=nprocs,
                program=program,
                clock_offset=offset,
                clock_drift=drift,
            )
            path = self.directory / rank_filename(stem, rank, binary)
            self.writers.append(TraceWriter(path, meta, buffer_events, binary))

    def record(self, event: EventRecord) -> None:
        self.writers[event.rank].record(event)

    def paths(self) -> list[Path]:
        return [w.path for w in self.writers]

    def close(self) -> None:
        for w in self.writers:
            w.close()

    def __enter__(self) -> "TraceSetWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
