"""Tests for Graphviz DOT export (Fig. 5)."""

import re

import pytest

from repro.core import PerturbationSpec, build_graph, propagate, to_dot
from repro.noise import Constant, MachineSignature


class TestDotOutput:
    def test_well_formed(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph, name="ring")
        assert dot.startswith('digraph "ring" {')
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_one_cluster_per_rank(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph)
        for rank in range(ring_trace.nprocs):
            assert f"cluster_rank{rank}" in dot
            assert f'label="rank {rank}"' in dot

    def test_every_node_and_edge_rendered(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph)
        node_decls = re.findall(r"^\s*n(\d+) \[", dot, re.MULTILINE)
        assert len(node_decls) == len(build.graph.nodes)
        edge_lines = re.findall(r"n\d+ -> n\d+", dot)
        assert len(edge_lines) == len(build.graph.edges)

    def test_message_edges_dashed(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph)
        dashed = [l for l in dot.splitlines() if "->" in l and "style=dashed" in l]
        n_msg = sum(1 for _ in build.graph.message_edges())
        assert len(dashed) == n_msg

    def test_virtual_hub_rendered_as_ellipse(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph)
        assert "shape=ellipse" in dot
        assert "hub#" in dot

    def test_delay_annotations(self, ring_trace):
        build = build_graph(ring_trace)
        spec = PerturbationSpec(MachineSignature(os_noise=Constant(100.0)), seed=0)
        res = propagate(build, spec)
        dot = to_dot(build.graph, node_delay=res.node_delay)
        assert "D=" in dot

    def test_delay_length_validated(self, ring_trace):
        build = build_graph(ring_trace)
        with pytest.raises(ValueError, match="node_delay"):
            to_dot(build.graph, node_delay=[0.0])

    def test_max_nodes_guard(self, ring_trace):
        build = build_graph(ring_trace)
        with pytest.raises(ValueError, match="max_nodes"):
            to_dot(build.graph, max_nodes=3)

    def test_quotes_escaped(self, ring_trace):
        build = build_graph(ring_trace)
        dot = to_dot(build.graph, name='we"ird')
        assert 'digraph "we\\"ird"' in dot
