"""PERF — hierarchical (coarse) plan vs flat compiled propagation.

Measures the phase-coarsening tentpole on the iterations-scaled
million-event stress configuration
(:func:`repro.apps.stencil1d.stress_params`: 4 ranks x 52 000
iterations = 1 040 008 events, ~2.1M nodes / ~2.9M edges, 520 003 flat
levels): replicates/sec through ``coarsen="on"`` vs ``coarsen="off"``
on the same :class:`~repro.core.compiled.CompiledPlan` build, plus the
process peak RSS.  The coarse batch must be **bit-for-bit identical**
to the flat engine's on the same seeds — the whole point of the
precomputed-transfer-function design is that it changes the schedule,
never the arithmetic.

The headline signature draws from the uniform family (no ziggurat
rejection, so every lane stays on the vectorized path) — this isolates
what coarsening optimizes: per-level dispatch in propagation.  A
secondary exponential-noise pair is recorded too; there the shared
scalar resample of rejected ziggurat lanes dilutes the ratio equally
in both engines, so the speedup is structurally smaller.

Environment knobs (used by the CI smoke job to keep runtime tiny):

``REPRO_BENCH_COARSEN_ITERATIONS``
    Stencil iterations (default 52 000 — the >= 1M-event headline).
``REPRO_BENCH_COARSEN_NPROCS``
    Ranks (default 4).
``REPRO_BENCH_COARSEN_FLAT_REPS`` / ``REPRO_BENCH_COARSEN_COARSE_REPS``
    Timed replicate counts per engine (defaults 3 / 128 — the coarse
    batch is large so the one-time template bind amortizes, exactly how
    Monte-Carlo analyses call it).
``REPRO_BENCH_COARSEN_MIN_SPEEDUP``
    When > 0, assert the measured flat->coarse throughput ratio meets
    this floor (off by default: committed baselines record the real
    number; shared CI runners are too noisy to gate on one).
"""

import os
import resource
import time

import numpy as np

from benchmarks._common import emit, table
from repro.apps.stencil1d import stencil1d, stress_params
from repro.core import PerturbationSpec, build_graph, compiled_plan
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature, Uniform

ITERATIONS = int(os.environ.get("REPRO_BENCH_COARSEN_ITERATIONS", "52000"))
NPROCS = int(os.environ.get("REPRO_BENCH_COARSEN_NPROCS", "4"))
FLAT_REPS = int(os.environ.get("REPRO_BENCH_COARSEN_FLAT_REPS", "3"))
COARSE_REPS = int(os.environ.get("REPRO_BENCH_COARSEN_COARSE_REPS", "128"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_COARSEN_MIN_SPEEDUP", "0"))

UNIFORM_SIG = MachineSignature(
    os_noise=Uniform(0.0, 240.0),
    latency=Uniform(0.0, 100.0),
    per_byte=Constant(0.005),
    name="uniform-vectorized",
)
EXP_SIG = MachineSignature(
    os_noise=Exponential(80.0),
    latency=Exponential(25.0),
    per_byte=Constant(0.005),
    name="exp-ziggurat",
)


def _rss_mb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024)


def _reps_per_sec(plan, spec, n: int) -> tuple[float, float]:
    t0 = time.perf_counter()
    plan.propagate_batch(spec, seeds=list(range(n)))
    dt = time.perf_counter() - t0
    return n / dt, dt


def test_coarsen_stress_speedup(benchmark):
    trace = run(stencil1d(stress_params(ITERATIONS)), nprocs=NPROCS, seed=0).trace
    n_events = sum(len(trace._events[r]) for r in range(NPROCS))
    build = build_graph(trace)
    coarse = compiled_plan(build, coarsen="on")
    flat = compiled_plan(build, coarsen="off")
    assert coarse.coarse is not None, "stress config must coarsen"

    spec = PerturbationSpec(UNIFORM_SIG, seed=17)
    # Warm-up doubles as the equivalence bar: same seeds, both engines,
    # bit-identical delay matrices (and pays the one-time table harvest).
    warm_c = coarse.propagate_batch(spec, seeds=[0, 1])
    warm_f = flat.propagate_batch(spec, seeds=[0, 1])
    assert np.array_equal(warm_c.delays, warm_f.delays)

    flat_rps, flat_s = _reps_per_sec(flat, spec, FLAT_REPS)
    coarse_rps, coarse_s = _reps_per_sec(coarse, spec, COARSE_REPS)
    speedup = coarse_rps / flat_rps

    spec_exp = PerturbationSpec(EXP_SIG, seed=17)
    warm_c = coarse.propagate_batch(spec_exp, seeds=[0])
    warm_f = flat.propagate_batch(spec_exp, seeds=[0])
    assert np.array_equal(warm_c.delays, warm_f.delays)
    flat_exp_rps, flat_exp_s = _reps_per_sec(flat, spec_exp, max(2, FLAT_REPS // 2))
    coarse_exp_rps, coarse_exp_s = _reps_per_sec(coarse, spec_exp, max(8, COARSE_REPS // 8))
    exp_speedup = coarse_exp_rps / flat_exp_rps

    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"coarse/flat throughput ratio {speedup:.2f}x below the "
            f"REPRO_BENCH_COARSEN_MIN_SPEEDUP={MIN_SPEEDUP} floor"
        )

    ir = coarse.coarse
    rows = [
        ["flat  (uniform)", FLAT_REPS, f"{flat_rps:.3f}", "1.00"],
        ["coarse (uniform)", COARSE_REPS, f"{coarse_rps:.3f}", f"{speedup:.2f}"],
        ["flat  (exp)", max(2, FLAT_REPS // 2), f"{flat_exp_rps:.3f}", "1.00"],
        ["coarse (exp)", max(8, COARSE_REPS // 8), f"{coarse_exp_rps:.3f}", f"{exp_speedup:.2f}"],
        ["events", n_events, "", ""],
        ["peak RSS MB", _rss_mb(), "", ""],
    ]
    emit(
        "perf_coarsen",
        table(
            ["engine", "replicates", "reps/s", "speedup"], rows, widths=[17, 10, 9, 8]
        ),
        params={
            "iterations": ITERATIONS,
            "nprocs": NPROCS,
            "flat_reps": FLAT_REPS,
            "coarse_reps": COARSE_REPS,
            "cores": os.cpu_count() or 1,
        },
        timings={
            "flat_s": flat_s,
            "coarse_s": coarse_s,
            "flat_exp_s": flat_exp_s,
            "coarse_exp_s": coarse_exp_s,
        },
        metrics={
            "events": n_events,
            "n_nodes": flat.n_nodes,
            "n_edges": flat.n_edges,
            "flat_levels": len(flat.levels),
            "coarse_instances": len(ir.run_edge_ids),
            "flat_reps_per_sec": flat_rps,
            "coarse_reps_per_sec": coarse_rps,
            "speedup": speedup,
            "flat_exp_reps_per_sec": flat_exp_rps,
            "coarse_exp_reps_per_sec": coarse_exp_rps,
            "exp_speedup": exp_speedup,
            "rss_peak_mb": _rss_mb(),
        },
    )

    benchmark(lambda: coarse.propagate_batch(spec, seeds=[3, 4]))
