"""Tests for shared utilities."""

import numpy as np
import pytest

from repro._util import (
    as_rng,
    check_nonnegative,
    check_positive,
    check_rank,
    chunked,
    format_cycles,
    ilog2_ceil,
    pairwise,
    spawn_rng,
)


class TestRngHelpers:
    def test_as_rng_from_int(self):
        a = as_rng(5)
        b = as_rng(5)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_as_rng_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        children = spawn_rng(as_rng(7), 4)
        draws = [c.integers(0, 2**62) for c in children]
        assert len(set(draws)) == 4

    def test_spawn_stable_prefix(self):
        """Adding ranks must not shift existing ranks' streams."""
        a = spawn_rng(as_rng(7), 2)
        b = spawn_rng(as_rng(7), 5)
        for x, y in zip(a, b):
            assert x.integers(0, 2**62) == y.integers(0, 2**62)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(as_rng(0), -1)


class TestChecks:
    def test_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        assert check_nonnegative("x", 5.5) == 5.5
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_nonnegative("x", bad)

    def test_positive(self):
        assert check_positive("x", 0.1) == 0.1
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_rank(self):
        assert check_rank(0, 4) == 0
        assert check_rank(3, 4) == 3
        with pytest.raises(ValueError):
            check_rank(4, 4)
        with pytest.raises(ValueError):
            check_rank(-1, 4)


class TestMath:
    def test_ilog2_ceil(self):
        assert ilog2_ceil(1) == 0
        assert ilog2_ceil(2) == 1
        assert ilog2_ceil(3) == 2
        assert ilog2_ceil(4) == 2
        assert ilog2_ceil(5) == 3
        assert ilog2_ceil(1024) == 10
        assert ilog2_ceil(1025) == 11
        with pytest.raises(ValueError):
            ilog2_ceil(0)

    def test_ilog2_is_smallest_cover(self):
        for n in range(1, 200):
            k = ilog2_ceil(n)
            assert 2**k >= n
            assert k == 0 or 2 ** (k - 1) < n


class TestIterables:
    def test_pairwise(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]
        assert list(pairwise([1])) == []
        assert list(pairwise([])) == []

    def test_chunked(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
        assert list(chunked([], 3)) == []
        with pytest.raises(ValueError):
            list(chunked([1], 0))


class TestFormatting:
    def test_format_cycles(self):
        assert format_cycles(0) == "0 cy"
        assert format_cycles(999) == "999 cy"
        assert format_cycles(1_500) == "1.50 kcy"
        assert format_cycles(2_500_000) == "2.50 Mcy"
        assert format_cycles(3.2e9) == "3.20 Gcy"
        assert "kcy" in format_cycles(-5_000)
