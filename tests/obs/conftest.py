"""Obs tests toggle the module-global session; never leak it."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leaked_session():
    obs.stop()
    yield
    obs.stop()
