"""Parallel execution backends for independent graph traversals.

Every expensive analysis in this package — :func:`~repro.core.montecarlo.
monte_carlo` replicates, :func:`~repro.core.sweep.sweep_scales` /
:func:`~repro.core.sweep.sweep_signatures` points, and
:func:`~repro.core.influence.rank_influence` rows — is a set of
*independent* propagations over one shared :class:`~repro.core.builder.
BuildResult`.  The paper's §5–§6 methodology makes them embarrassingly
parallel: deterministic per-edge sampling means replicate ``i`` depends
only on ``(base_seed + i, signature, scale)``, never on any other
replicate's state.

This module turns that independence into wall-clock speedup without
giving up reproducibility:

* :class:`SerialBackend` — the in-process reference executor.
* :class:`ProcessPoolBackend` — fans work items out over a
  ``concurrent.futures.ProcessPoolExecutor``.  The shared payload (the
  built graph) is shipped to each worker **once** via the pool
  initializer, and items are submitted in chunks so per-task pickling
  overhead is amortized.

**Fault tolerance.**  Chunks are submitted individually (``submit()`` +
a completion loop, never ``pool.map``), so one failure costs one chunk,
not the workload:

* a :class:`FaultPolicy` gives every chunk a wall-clock ``timeout``, a
  bounded ``retries`` budget with exponential ``backoff``, and a
  straggler policy — a chunk past its deadline is *speculatively
  resubmitted* and the first result wins (safe because every item is
  deterministic in its own seed);
* a mid-run ``BrokenProcessPool`` (worker killed, OOM, …) restarts the
  pool and resubmits only the **unfinished** chunks — results and
  observability blobs already absorbed from completed chunks are kept,
  and a chunk's blob is never absorbed twice;
* when a chunk exhausts its budget the explicit ``on_failure`` policy
  decides: ``"fail"`` re-raises the worker's exception in the parent
  (the default — errors are loud), ``"degrade"`` re-runs just that
  chunk serially in the parent, ``"skip"`` records ``None`` per item;
* exceptions raised *by the mapped function* always surface — only
  pool **construction** failures (restricted platforms, missing
  ``_multiprocessing``) degrade to serial execution with a
  :class:`RuntimeWarning`.

Retries, timeouts, restarts and fallbacks are counted through
:mod:`repro.obs` metrics: ``parallel.chunks_completed``,
``parallel.chunk_retries``, ``parallel.chunk_timeouts``,
``parallel.pool_restarts``, ``parallel.chunks_degraded``,
``parallel.chunks_skipped``, ``parallel.serial_fallback``.

**Determinism guarantee:** a backend only changes *where* each item
runs, never *what* it computes.  Each work item carries its own explicit
seed, so parallel results are bit-for-bit identical to serial results
for the same ``base_seed`` — verified by tests and by
``benchmarks/bench_perf_parallel_mc.py``.  Speculative twins compute
the same bits, so "first result wins" cannot change an answer.

The ``jobs`` convention (mirrored by the ``--jobs`` CLI flag):

``jobs=0`` (default)
    Serial, in-process — no pool is ever created.
``jobs=1``
    Also serial: a one-worker pool would add pickling cost for nothing.
``jobs=None``
    Auto: one worker per *available* core — the scheduler affinity mask
    (``os.sched_getaffinity``) where the platform has one, so cgroup /
    container CPU limits are respected, else ``os.cpu_count()``.
``jobs >= 2``
    A pool with exactly that many workers.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.perturb import PerturbationSpec
from repro.core.traversal import propagate
from repro.noise.signature import MachineSignature

__all__ = [
    "ChunkTimeoutError",
    "ExecutionBackend",
    "FaultPolicy",
    "ProcessPoolBackend",
    "SerialBackend",
    "available_cpus",
    "chunked",
    "default_chunk_size",
    "map_replicate_batches",
    "map_replicates",
    "replicate_items",
    "resolve_backend",
]

# Exceptions that mean "this platform cannot construct a process pool".
# Only pool *construction* is guarded by these — once workers exist, any
# exception raised by the mapped function propagates (or goes through
# the FaultPolicy), never silently rerouting the workload to serial.
_POOL_UNAVAILABLE = (NotImplementedError, ImportError, OSError, PermissionError)


class ChunkTimeoutError(TimeoutError):
    """A chunk exceeded its per-chunk deadline on every allowed attempt."""


@dataclass(frozen=True)
class FaultPolicy:
    """How :class:`ProcessPoolBackend` reacts when a chunk misbehaves.

    Parameters
    ----------
    timeout:
        Per-chunk wall-clock deadline in seconds (None = no deadline).
        A chunk past its deadline is speculatively resubmitted while
        retry budget remains — the original keeps running and the first
        result wins (stragglers cost nothing but a duplicate slot).
    retries:
        Extra submissions allowed per chunk beyond the first (so a
        chunk runs at most ``1 + retries`` times).
    backoff:
        Base of the exponential retry delay: resubmission ``k`` after a
        worker-raised exception sleeps ``backoff * 2**(k-1)`` seconds.
        Timeout resubmissions never sleep (the straggler is the delay).
    on_failure:
        What to do once a chunk's budget is spent (or the pool cannot
        be restarted): ``"fail"`` re-raises the chunk's exception,
        ``"degrade"`` re-runs the chunk serially in the parent process,
        ``"skip"`` records ``None`` for each of the chunk's items.
    max_pool_restarts:
        How many times a mid-run ``BrokenProcessPool`` may rebuild the
        pool before ``on_failure`` applies to the unfinished remainder.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.1
    on_failure: str = "fail"
    max_pool_restarts: int = 3

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0 or None, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.on_failure not in ("fail", "degrade", "skip"):
            raise ValueError(
                f"on_failure must be 'fail', 'degrade', or 'skip', got {self.on_failure!r}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}")


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

# Per-worker shared payload, installed once by the pool initializer so the
# (potentially large) BuildResult is pickled once per worker instead of
# once per chunk.
_WORKER_PAYLOAD: dict = {}


def _worker_init(payload, observe: bool = False) -> None:
    _WORKER_PAYLOAD["payload"] = payload
    # A fork-started worker inherits the parent's observability session
    # (including its already-recorded spans); always discard that copy,
    # then open a fresh worker session when the parent is observing.
    obs.stop()
    if observe:
        obs.start("repro-worker")


def _worker_run_chunk(args: tuple) -> tuple[list, dict | None]:
    """Run one chunk; ship results plus any observability state.

    The second element is the worker session's :meth:`~repro.obs.
    session.Session.drain` blob (spans + metric snapshot accumulated by
    this chunk), or ``None`` when observability is off — the parent
    absorbs it so ``--jobs N`` metrics merge to the serial totals.
    """
    fn, chunk = args
    payload = _WORKER_PAYLOAD.get("payload")
    results = [fn(payload, item) for item in chunk]
    session = obs.active()
    return results, (session.drain() if session is not None else None)


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------


def chunked(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``size``.

    Order is preserved (concatenating the chunks reproduces ``items``),
    which is what lets backends return results in submission order.
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


def default_chunk_size(n_items: int, jobs: int) -> int:
    """Aim for ~4 chunks per worker: large enough to amortize pickling,
    small enough that a straggler chunk cannot idle the rest of the pool
    for long.  Degenerates to one-item chunks when ``n_items < jobs``."""
    if n_items <= 0:
        return 1
    return max(1, math.ceil(n_items / (4 * max(1, jobs))))


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.sched_getaffinity`` reflects cgroup / taskset limits (the
    budget a container or CI runner really grants), falling back to
    ``os.cpu_count()`` on platforms without an affinity mask (macOS,
    Windows).  ``jobs=None`` sizes pools with this, so containers are
    not oversubscribed.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Maps a pure function over independent work items.

    ``fn`` must be a module-level callable (picklable by reference) of
    the form ``fn(payload, item) -> result``; ``payload`` is shared
    state (typically the :class:`BuildResult`) shipped to workers once.
    Results are returned in item order regardless of execution order.
    """

    jobs: int = 0

    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process reference executor (``jobs=0``/``jobs=1``)."""

    jobs = 0

    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        return [fn(payload, item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class _Chunk:
    """Scheduler state for one submitted chunk."""

    __slots__ = ("index", "items", "attempts", "deadline", "results", "done")

    def __init__(self, index: int, items: list):
        self.index = index
        self.items = items
        self.attempts = 0  # submissions so far
        self.deadline: float | None = None  # of the latest submission
        self.results: list | None = None
        self.done = False


class ProcessPoolBackend(ExecutionBackend):
    """Chunked fan-out over a ``ProcessPoolExecutor`` (module docstring).

    Parameters
    ----------
    jobs:
        Worker count (>= 2; use :func:`resolve_backend` for the
        ``0/1/None`` conveniences).
    chunk_size:
        Items per submitted task; defaults to
        :func:`default_chunk_size`.
    policy:
        The :class:`FaultPolicy` governing timeouts, retries and
        failure handling (default: no timeout, 2 retries, fail loudly).
    """

    def __init__(
        self,
        jobs: int,
        chunk_size: int | None = None,
        policy: FaultPolicy | None = None,
    ):
        if jobs < 2:
            raise ValueError(f"ProcessPoolBackend needs jobs >= 2, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size
        self.policy = policy or FaultPolicy()

    # -- pool lifecycle -----------------------------------------------------
    def _make_pool(self, workers: int, payload, observe: bool) -> ProcessPoolExecutor | None:
        """Construct the executor, or None when the platform cannot.

        This is the *only* place unavailability is detected: a worker-
        raised ``OSError``/``ImportError`` reaches the caller as itself,
        never as a silent serial re-run (the old ``pool.map`` path
        misclassified those).
        """
        try:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(payload, observe),
            )
        except _POOL_UNAVAILABLE as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    # -- failure policy -----------------------------------------------------
    def _settle_failed_chunk(self, chunk: _Chunk, fn: Callable, payload, exc: BaseException):
        """Apply ``on_failure`` to a chunk whose budget is spent.

        Returns normally (marking the chunk done) for ``degrade`` and
        ``skip``; raises for ``fail``.
        """
        mode = self.policy.on_failure
        if mode == "fail":
            raise exc
        if mode == "degrade":
            obs.add("parallel.chunks_degraded")
            chunk.results = [fn(payload, item) for item in chunk.items]
        else:  # skip
            obs.add("parallel.chunks_skipped")
            chunk.results = [None] * len(chunk.items)
        chunk.done = True

    # -- the scheduler ------------------------------------------------------
    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        items = list(items)
        if not items:
            return []
        size = self.chunk_size or default_chunk_size(len(items), self.jobs)
        chunks = [_Chunk(i, c) for i, c in enumerate(chunked(items, size))]
        workers = min(self.jobs, len(chunks))
        session = obs.active()
        pool = self._make_pool(workers, payload, session is not None)
        if pool is None:
            obs.add("parallel.serial_fallback")
            return SerialBackend().map(fn, items, payload)
        # The scheduler may replace the pool mid-run (BrokenProcessPool
        # restart); the holder keeps shutdown pointed at the live one.
        holder = [pool]
        try:
            self._run(holder, fn, payload, chunks, workers, session)
        finally:
            if holder[0] is not None:
                holder[0].shutdown(wait=False, cancel_futures=True)
        return [r for chunk in chunks for r in chunk.results]

    def _run(self, holder, fn, payload, chunks: list[_Chunk], workers: int, session) -> None:
        policy = self.policy
        pending: dict[Future, _Chunk] = {}
        restarts = 0

        def submit(chunk: _Chunk) -> None:
            chunk.attempts += 1
            fut = holder[0].submit(_worker_run_chunk, (fn, chunk.items))
            pending[fut] = chunk
            if policy.timeout is not None:
                chunk.deadline = time.monotonic() + policy.timeout

        for chunk in chunks:
            submit(chunk)
        n_done = 0

        while n_done < len(chunks):
            if not pending:  # pragma: no cover - scheduler invariant
                raise RuntimeError("no pending futures but unfinished chunks remain")
            wait_timeout = None
            if policy.timeout is not None:
                deadlines = [c.deadline for c in chunks if not c.done and c.deadline is not None]
                if deadlines:
                    wait_timeout = max(0.0, min(deadlines) - time.monotonic())
            ready, _ = futures_wait(set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            broken: BaseException | None = None
            for fut in ready:
                chunk = pending.pop(fut)
                if chunk.done:
                    # Stale speculative twin of an already-settled chunk:
                    # discard wholesale so its obs blob is never absorbed
                    # twice and its (bit-identical) results never re-land.
                    continue
                exc = fut.exception()
                if exc is None:
                    chunk.results, blob = fut.result()
                    chunk.done = True
                    n_done += 1
                    obs.add("parallel.chunks_completed")
                    if session is not None:
                        session.absorb(blob)
                elif isinstance(exc, BrokenProcessPool):
                    broken = exc  # pool-level event; handled once, below
                elif chunk.attempts <= policy.retries:
                    obs.add("parallel.chunk_retries")
                    if policy.backoff:
                        time.sleep(policy.backoff * 2 ** (chunk.attempts - 1))
                    submit(chunk)
                else:
                    self._settle_failed_chunk(chunk, fn, payload, exc)
                    n_done += 1

            if broken is not None:
                restarts += 1
                obs.add("parallel.pool_restarts")
                holder[0].shutdown(wait=False, cancel_futures=True)
                pending.clear()
                holder[0] = None
                if restarts <= policy.max_pool_restarts:
                    holder[0] = self._make_pool(workers, payload, session is not None)
                if holder[0] is None:
                    # Restart budget spent (or the platform regressed):
                    # completed chunks keep their results; the remainder
                    # goes through the explicit failure policy.
                    for chunk in chunks:
                        if not chunk.done:
                            self._settle_failed_chunk(chunk, fn, payload, broken)
                            n_done += 1
                    return
                for chunk in chunks:
                    if not chunk.done:
                        submit(chunk)
                continue

            if policy.timeout is not None:
                now = time.monotonic()
                for chunk in chunks:
                    if chunk.done or chunk.deadline is None or now < chunk.deadline:
                        continue
                    obs.add("parallel.chunk_timeouts")
                    if chunk.attempts <= policy.retries:
                        # Straggler: resubmit speculatively, first result
                        # wins; the original future stays live and is
                        # discarded as stale if it loses the race.
                        submit(chunk)
                    else:
                        self._settle_failed_chunk(
                            chunk,
                            fn,
                            payload,
                            ChunkTimeoutError(
                                f"chunk {chunk.index} ({len(chunk.items)} items) exceeded "
                                f"{policy.timeout:g}s on all {chunk.attempts} attempts"
                            ),
                        )
                        chunk.deadline = None
                        n_done += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessPoolBackend(jobs={self.jobs}, chunk_size={self.chunk_size}, "
            f"policy={self.policy})"
        )


def resolve_backend(
    jobs: int | None = 0,
    chunk_size: int | None = None,
    policy: FaultPolicy | None = None,
) -> ExecutionBackend:
    """Select a backend from the ``jobs`` convention (module docstring)."""
    if jobs is None:
        jobs = available_cpus()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 or None, got {jobs}")
    if jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs, chunk_size, policy)


# ---------------------------------------------------------------------------
# Replicate mapping (the Monte-Carlo / influence work-item shape)
# ---------------------------------------------------------------------------


def replicate_items(spec: PerturbationSpec, replicates: int) -> list[tuple[int, PerturbationSpec]]:
    """The §5 replicate schedule: item ``i`` is ``(spec.seed + i, spec)``."""
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    return [(spec.seed + i, spec) for i in range(replicates)]


def _propagate_item(payload, item: tuple[int, PerturbationSpec]) -> list[float]:
    """Worker body: one replicate's propagation, identified by its seed."""
    build, mode = payload
    seed, spec = item
    with obs.span("replicate", seed=seed):
        obs.span_add("mc.replicates")
        res = propagate(
            build, PerturbationSpec(spec.signature, seed=seed, scale=spec.scale), mode
        )
    return res.final_delay


def map_replicates(
    build: BuildResult,
    items: Sequence[tuple[int, PerturbationSpec]],
    mode: str = "additive",
    jobs: int | None = 0,
    chunk_size: int | None = None,
    policy: FaultPolicy | None = None,
) -> list[list[float]]:
    """Propagate every ``(seed, spec)`` item over ``build``, returning
    per-item ``final_delay`` rows in item order.

    The workhorse behind ``monte_carlo(..., jobs=)`` and
    ``rank_influence(..., jobs=)``; results are independent of the
    backend choice (see module docstring).  Under
    ``FaultPolicy(on_failure="skip")`` a failed chunk's rows come back
    as ``None``.
    """
    backend = resolve_backend(jobs, chunk_size, policy)
    return backend.map(_propagate_item, items, payload=(build, mode))


# ---------------------------------------------------------------------------
# Compiled-plan replicate mapping (batched seeds, compact worker payload)
# ---------------------------------------------------------------------------


def _compiled_batch_item(payload, seed_batch: list[int]) -> np.ndarray:
    """Worker body: one contiguous seed batch through the compiled kernel."""
    plan, signature, scale, mode = payload
    spec = PerturbationSpec(signature, seed=seed_batch[0], scale=scale)
    with obs.span("replicate_batch", first_seed=seed_batch[0], n=len(seed_batch)):
        obs.span_add("mc.replicates", len(seed_batch))
        return plan.propagate_batch(spec, seeds=seed_batch, mode=mode).delays


def map_replicate_batches(
    plan,
    signature: MachineSignature,
    seeds: Sequence[int],
    scale: float = 1.0,
    mode: str = "additive",
    jobs: int | None = 0,
    chunk_size: int | None = None,
    policy: FaultPolicy | None = None,
) -> np.ndarray:
    """Replicate ``seeds`` through a :class:`~repro.core.compiled.
    CompiledPlan`, returning the ``(len(seeds), nprocs)`` delay matrix.

    The compiled counterpart of :func:`map_replicates`: workers receive
    the plan's compact structure-of-arrays payload (never the Python
    object graph) plus a *batch* of seeds per task, so each task is one
    vectorized kernel invocation and the result rows come back as
    ndarray blocks that assemble with a single ``vstack`` — no per-row
    Python lists.  Row order follows ``seeds``; results are bit-identical
    across backends (each row is keyed by its own seed).

    The :class:`FaultPolicy` applies per *batch* (a batch is the chunk
    unit here); under ``on_failure="skip"`` a failed batch's rows are
    returned as NaN so the matrix keeps its shape.
    """
    seeds = list(seeds)
    payload = (plan, signature, scale, mode)
    backend = resolve_backend(jobs, chunk_size, policy)
    if backend.jobs < 2:
        return _compiled_batch_item(payload, seeds)
    size = chunk_size or default_chunk_size(len(seeds), backend.jobs)
    batches = chunked(seeds, size)
    # Each work item is a whole seed batch (chunk_size=1 below: the
    # batches themselves are already the amortization unit).
    pool = ProcessPoolBackend(backend.jobs, chunk_size=1, policy=policy)
    parts = pool.map(_compiled_batch_item, batches, payload=payload)
    parts = [
        p if p is not None else np.full((len(batch), plan.nprocs), np.nan)
        for batch, p in zip(batches, parts)
    ]
    return parts[0] if len(parts) == 1 else np.vstack(parts)
