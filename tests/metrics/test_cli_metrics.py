"""repro-metrics / repro-analyze --pop-metrics CLI behavior (in-process)
plus the report validator module, gating, and report rendering."""

import json
from pathlib import Path

import pytest

from repro.cli import main_analyze, main_metrics, main_trace
from repro.metrics import pop_metrics, pop_timeline
from repro.metrics.report import GATEABLE, build_report, gate_report, render_text
from repro.metrics.validate import (
    main as validate_main,
    validate_pop_report,
    validate_pop_report_file,
)

FIXTURE = Path(__file__).parent.parent / "data" / "external_chrome_trace.json"


@pytest.fixture
def traced(tmp_path):
    rc = main_trace(
        ["--app", "token_ring", "--nprocs", "4", "--machine", "quiet",
         "--out", str(tmp_path), "--stem", "ring", "--param", "traversals=2",
         "--seed", "1"]
    )
    assert rc == 0
    return tmp_path


class TestMainMetrics:
    def test_text_report(self, traced, capsys):
        rc = main_metrics(["--traces", str(traced), "--stem", "ring"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "POP efficiency metrics" in out
        assert "parallel efficiency (PE)" in out
        assert "timeline (16 windows" in out
        assert "<- worst" in out

    def test_json_out_validates(self, traced, tmp_path):
        out = tmp_path / "pop.json"
        rc = main_metrics(
            ["--traces", str(traced), "--stem", "ring", "--format", "json",
             "--out", str(out), "--windows", "6"]
        )
        assert rc == 0
        assert validate_pop_report_file(out) == []
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-pop-metrics/1"
        assert report["nprocs"] == 4
        assert len(report["windows"]) == 6
        assert report["program"] == "token_ring"

    def test_ideal_split_in_report(self, traced, tmp_path):
        out = tmp_path / "pop.json"
        rc = main_metrics(
            ["--traces", str(traced), "--stem", "ring", "--ideal",
             "--format", "json", "--out", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert 0.0 < report["ideal_runtime"] <= report["runtime"]
        assert report["comm_efficiency"] == pytest.approx(
            report["serialization_efficiency"] * report["transfer_efficiency"]
        )

    def test_fail_below_gates(self, traced, caplog):
        rc = main_metrics(
            ["--traces", str(traced), "--stem", "ring", "--fail-below", "pe=0.9999"]
        )
        assert rc == 1
        assert any("fail-below" in r.message for r in caplog.records)
        rc = main_metrics(
            ["--traces", str(traced), "--stem", "ring",
             "--fail-below", "pe=0.0", "--fail-below", "lb=0.0"]
        )
        assert rc == 0

    def test_fail_below_missing_metric_is_violation(self, traced):
        # ser_eff exists only with --ideal; gating on it without must fail
        rc = main_metrics(
            ["--traces", str(traced), "--stem", "ring", "--fail-below", "ser_eff=0.1"]
        )
        assert rc == 1

    def test_rejects_unknown_gate_metric(self, traced):
        with pytest.raises(SystemExit, match="unknown metric"):
            main_metrics(
                ["--traces", str(traced), "--stem", "ring", "--fail-below", "spam=1"]
            )

    def test_rejects_malformed_gate_spec(self, traced):
        with pytest.raises(SystemExit, match="METRIC=VALUE"):
            main_metrics(["--traces", str(traced), "--stem", "ring",
                          "--fail-below", "pe"])

    def test_requires_exactly_one_source(self, traced):
        with pytest.raises(SystemExit, match="either"):
            main_metrics([])
        with pytest.raises(SystemExit, match="either"):
            main_metrics(["--traces", str(traced), "--stem", "ring",
                          "--import", str(FIXTURE)])
        with pytest.raises(SystemExit, match="--stem"):
            main_metrics(["--traces", str(traced)])

    def test_import_external_trace(self, tmp_path, capsys):
        out = tmp_path / "external.json"
        rc = main_metrics(
            ["--import", str(FIXTURE), "--format", "json", "--out", str(out)]
        )
        assert rc == 0
        assert validate_pop_report_file(out) == []
        report = json.loads(out.read_text())
        assert report["nprocs"] == 3
        assert report["source"] == str(FIXTURE)
        assert "pop: PE" in capsys.readouterr().out

    def test_import_rejects_ideal(self):
        with pytest.raises(SystemExit, match="--ideal"):
            main_metrics(["--import", str(FIXTURE), "--ideal"])


class TestAnalyzePopMetrics:
    def test_analyze_prints_pop_report(self, traced, tmp_path, capsys):
        from repro.cli import main_microbench

        sig = tmp_path / "sig.json"
        assert main_microbench(["--machine", "quiet", "--out", str(sig),
                                "--seed", "0"]) == 0
        rc = main_analyze(
            ["--traces", str(traced), "--stem", "ring", "--signature", str(sig),
             "--pop-metrics", "--pop-windows", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "POP efficiency metrics" in out
        assert "timeline (4 windows" in out


class TestReportHelpers:
    def test_gate_report_messages(self):
        report = {"parallel_efficiency": 0.5, "load_balance": 0.9}
        assert gate_report(report, {"pe": 0.4}) == []
        (v,) = gate_report(report, {"pe": 0.6})
        assert "0.5000 < required 0.6000" in v
        (v,) = gate_report(report, {"window_pe": 0.1})
        assert "not present" in v
        with pytest.raises(ValueError, match="unknown metric"):
            gate_report(report, {"nope": 1.0})
        # every gateable short name maps to a distinct report key
        assert len(set(GATEABLE.values())) == len(GATEABLE)

    def test_render_text_smoke(self, ring_trace):
        report = build_report(
            pop_metrics(ring_trace), pop_timeline(ring_trace, 3),
            source="x", program="ring",
        )
        text = render_text(report)
        assert "program=ring" in text
        assert text.count("\n") > 8


class TestValidatorCli:
    def test_ok_and_failure_paths(self, tmp_path, capsys, ring_trace):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(
            build_report(pop_metrics(ring_trace), pop_timeline(ring_trace, 2))
        ))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))

        assert validate_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert validate_main([str(good), str(bad)]) == 1
        assert "schema" in capsys.readouterr().err
        assert validate_main([]) == 2
        assert validate_main([str(tmp_path / "missing.json")]) == 1

    def test_validator_catches_corruption(self, ring_trace):
        report = build_report(pop_metrics(ring_trace), pop_timeline(ring_trace, 2))
        assert validate_pop_report(report) == []
        for mutation, fragment in [
            ({"schema": "x"}, "schema"),
            ({"nprocs": 0}, "nprocs"),
            ({"parallel_efficiency": 1.5}, "outside"),
            ({"runtime": -1.0}, "runtime"),
            ({"rank_useful": [1.0]}, "rank_useful"),
            ({"windows": "no"}, "windows"),
        ]:
            broken = dict(report)
            broken.update(mutation)
            errs = validate_pop_report(broken)
            assert any(fragment in e for e in errs), mutation

    def test_validator_checks_window_contiguity(self, ring_trace):
        report = build_report(pop_metrics(ring_trace), pop_timeline(ring_trace, 3))
        broken = json.loads(json.dumps(report))
        broken["windows"][1]["t_start"] += broken["runtime"] * 0.1
        assert any("t_start" in e for e in validate_pop_report(broken))
        broken = json.loads(json.dumps(report))
        broken["windows"][2]["t_end"] *= 0.5
        assert any("windows end" in e for e in validate_pop_report(broken))
        broken = json.loads(json.dumps(report))
        broken["windows"][0]["index"] = 5
        assert any("position" in e for e in validate_pop_report(broken))
