"""Preset simulated platforms (quiet / noisy / ASCI-Q-like / WAN grid)."""

from repro.machines.presets import PRESETS, asciq_like, noisy_cluster, quiet_cluster, wan_grid

__all__ = ["PRESETS", "asciq_like", "noisy_cluster", "quiet_cluster", "wan_grid"]
