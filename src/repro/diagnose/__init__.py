"""Automated bottleneck & faulty-rank diagnosis.

The paper's premise is that slowdown questions are answerable by
traversing the message-passing graph; this package automates the
traversal so nobody has to answer "why is this run slow" by hand from
``rank_influence`` numbers.  Following the fault-localization line of
work (Okita et al., arXiv:cs/0310015) and the case for fully automated
MPI analysis pipelines (Aljahdali et al., arXiv:1311.0864), it turns
"which rank/edge is the bottleneck" into a deterministic,
machine-checkable artifact:

* :mod:`repro.diagnose.path` — critical-path extraction (longest
  weighted path with predecessor tracking, bit-identical across the
  scalar and compiled engines);
* :mod:`repro.diagnose.attribution` — decompose the end-to-end
  makespan into per-rank / per-primitive / per-edge contributions
  along that path;
* :mod:`repro.diagnose.anomaly` — anomalous-rank detection comparing
  each rank's subgraph timings against its role peers (robust z-score
  over compute and communication totals, plus Monte-Carlo replicate
  delays when requested);
* :mod:`repro.diagnose.rules` — the MPG2xx diagnosis rule pack,
  reported through the existing :mod:`repro.lint` text / JSON / SARIF
  reporters so CI can gate on findings.

Entry points are :func:`~repro.diagnose.engine.diagnose_run` (traces
in, report out) and :func:`~repro.diagnose.engine.diagnose_build`
(reuse an existing :class:`~repro.core.builder.BuildResult`).
"""

from repro.diagnose.anomaly import (
    AnomalyReport,
    RankAnomaly,
    RankProfile,
    detect_anomalies,
    profile_ranks,
)
from repro.diagnose.attribution import Attribution, attribute_path, classify_edge
from repro.diagnose.engine import (
    DiagnoseConfig,
    DiagnoseContext,
    DiagnosisReport,
    diagnose_build,
    diagnose_run,
    diagnosis_to_dict,
    render_diagnosis_text,
)
from repro.diagnose.path import CriticalPathExtract, extract_critical_path

__all__ = [
    "CriticalPathExtract",
    "extract_critical_path",
    "Attribution",
    "attribute_path",
    "classify_edge",
    "RankProfile",
    "RankAnomaly",
    "AnomalyReport",
    "profile_ranks",
    "detect_anomalies",
    "DiagnoseConfig",
    "DiagnoseContext",
    "DiagnosisReport",
    "diagnose_build",
    "diagnose_run",
    "diagnosis_to_dict",
    "render_diagnosis_text",
]
