"""Whole-run POP metrics: hand-checked values, the PE = LB x CommE
identity, degenerate cases, and the CommE = SerE x TE split."""

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.metrics import (
    ideal_params,
    ideal_runtime,
    pop_metrics,
    rank_activity,
    trace_frame,
)
from repro.mpisim import run
from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace


def _ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


# Small per-app parameter overrides keeping the all-apps sweep fast.
_APP_PARAMS = {
    "token_ring": {"traversals": 2},
    "stencil1d": {"iterations": 3},
    "stencil2d": {"iterations": 2},
    "master_worker": {"tasks": 9},
    "allreduce_iter": {"iterations": 4},
    "fft_transpose": {"stages": 2},
    "butterfly_allreduce": {"iterations": 2},
    "pipeline": {"items": 5},
    "random_sparse": {"iterations": 2},
}


@pytest.fixture
def hand_trace():
    """Two ranks with activity small enough to check by hand.

    rank 0: INIT [0,10], gap 80, SEND [90,100], FINALIZE [100,110]
    rank 1: INIT [0,10], gap 40, RECV [50,100], FINALIZE [100,110]
    """
    return MemoryTrace(
        [
            [
                _ev(0, 0, EventKind.INIT, 0.0, 10.0),
                _ev(0, 1, EventKind.SEND, 90.0, 100.0, peer=1, nbytes=8),
                _ev(0, 2, EventKind.FINALIZE, 100.0, 110.0),
            ],
            [
                _ev(1, 0, EventKind.INIT, 0.0, 10.0),
                _ev(1, 1, EventKind.RECV, 50.0, 100.0, peer=0, nbytes=8),
                _ev(1, 2, EventKind.FINALIZE, 100.0, 110.0),
            ],
        ],
        program="hand",
    )


class TestRankActivity:
    def test_hand_values(self, hand_trace):
        act = rank_activity(hand_trace)
        assert act.nprocs == 2
        assert np.array_equal(act.events, [3, 3])
        assert np.array_equal(act.runtime, [110.0, 110.0])
        assert np.array_equal(act.useful, [80.0, 40.0])
        assert np.array_equal(act.comm, [30.0, 70.0])
        assert np.array_equal(act.first_start, [0.0, 0.0])
        assert act.run_length == 110.0

    def test_accepts_frame_or_trace(self, hand_trace):
        from_trace = rank_activity(hand_trace)
        from_frame = rank_activity(trace_frame(hand_trace))
        assert np.array_equal(from_trace.useful, from_frame.useful)
        assert np.array_equal(from_trace.comm, from_frame.comm)

    def test_unsorted_frame_is_resorted(self, hand_trace):
        flat = [ev for evs in hand_trace.load_all() for ev in evs]
        interleaved = flat[::2] + flat[1::2]  # ranks out of order
        act = rank_activity(trace_frame(interleaved), nprocs=2)
        ref = rank_activity(hand_trace)
        assert np.array_equal(act.useful, ref.useful)
        assert np.array_equal(act.comm, ref.comm)
        assert np.array_equal(act.runtime, ref.runtime)

    def test_empty_rank_is_all_zero(self):
        trace = MemoryTrace(
            [[_ev(0, 0, EventKind.INIT, 5.0, 6.0)], []], program="gap"
        )
        act = rank_activity(trace)
        assert np.array_equal(act.events, [1, 0])
        assert act.runtime[1] == 0.0
        assert act.useful[1] == 0.0
        assert act.first_start[1] == 0.0

    def test_overlapping_events_never_negative(self):
        # t_start[i] < t_end[i-1]: the gap clamps to zero instead of
        # subtracting from real compute elsewhere.
        trace = MemoryTrace(
            [
                [
                    _ev(0, 0, EventKind.ISEND, 0.0, 50.0, peer=0, req=1),
                    _ev(0, 1, EventKind.WAIT, 10.0, 60.0, req=1),
                    _ev(0, 2, EventKind.FINALIZE, 80.0, 90.0),
                ]
            ],
            program="overlap",
        )
        act = rank_activity(trace)
        assert act.useful[0] == 20.0  # only the 60 -> 80 gap


class TestPopMetrics:
    def test_hand_values(self, hand_trace):
        pop = pop_metrics(hand_trace)
        assert pop.nprocs == 2
        assert pop.runtime == 110.0
        assert pop.parallel_efficiency == pytest.approx(60.0 / 110.0, rel=1e-12)
        assert pop.load_balance == pytest.approx(60.0 / 80.0, rel=1e-12)
        assert pop.comm_efficiency == pytest.approx(80.0 / 110.0, rel=1e-12)

    def test_identity_pe_equals_lb_times_comme(self, ring_trace, stencil_trace):
        for trace in (ring_trace, stencil_trace):
            pop = pop_metrics(trace)
            assert pop.parallel_efficiency == pytest.approx(
                pop.load_balance * pop.comm_efficiency, rel=1e-12
            )
            assert 0.0 < pop.parallel_efficiency <= 1.0
            assert 0.0 < pop.load_balance <= 1.0
            assert 0.0 < pop.comm_efficiency <= 1.0

    @pytest.mark.parametrize("app", sorted(ALL_APPS))
    def test_identity_holds_on_every_app(self, app):
        factory, params_cls = ALL_APPS[app]
        params = params_cls(**_APP_PARAMS.get(app, {}))
        nprocs = 8 if app == "butterfly_allreduce" else 4
        trace = run(factory(params), nprocs=nprocs, seed=2).trace
        pop = pop_metrics(trace)
        assert pop.parallel_efficiency == pytest.approx(
            pop.load_balance * pop.comm_efficiency, rel=1e-12
        )

    def test_degenerate_no_events(self):
        trace = MemoryTrace([[], []], program="empty")
        pop = pop_metrics(trace)
        assert pop.parallel_efficiency == 0.0
        assert pop.load_balance == 1.0
        assert pop.comm_efficiency == 0.0

    def test_degenerate_single_event(self):
        trace = MemoryTrace(
            [[_ev(0, 0, EventKind.BARRIER, 0.0, 5.0)]], program="one"
        )
        pop = pop_metrics(trace)
        assert pop.runtime == 5.0
        assert pop.parallel_efficiency == 0.0  # no gaps -> no useful time
        assert pop.load_balance == 1.0

    def test_to_dict_round_trip(self, hand_trace):
        d = pop_metrics(hand_trace).to_dict()
        assert d["nprocs"] == 2
        assert d["rank_useful"] == [80.0, 40.0]
        assert d["rank_comm"] == [30.0, 70.0]
        assert d["rank_events"] == [3, 3]
        assert "ideal_runtime" not in d


class TestIdealSplit:
    def test_ideal_params_are_zero_cost(self):
        p = ideal_params()
        assert p.latency == 0.0
        assert p.send_overhead == p.recv_overhead == p.call_overhead == 0.0
        assert p.cpu_factor == 1.0
        p.network()  # must construct (finite bandwidth)

    def test_comme_splits_into_sere_times_te(self, ring_trace):
        ideal = ideal_runtime(ring_trace)
        pop = pop_metrics(ring_trace, ideal=ideal)
        assert pop.ideal_run_length == ideal
        assert 0.0 < ideal <= pop.runtime
        assert pop.comm_efficiency == pytest.approx(
            pop.serialization_efficiency * pop.transfer_efficiency, rel=1e-12
        )
        d = pop.to_dict()
        assert d["ideal_runtime"] == ideal
        assert d["serialization_efficiency"] == pop.serialization_efficiency

    def test_without_ideal_split_is_absent(self, ring_trace):
        pop = pop_metrics(ring_trace)
        assert pop.ideal_run_length is None
        assert pop.serialization_efficiency is None
        assert pop.transfer_efficiency is None
