"""Spans and the observability session.

A :class:`Session` collects what one analysis run did: a tree of timed
**spans** (phase-level wall/CPU intervals with attributes and span-local
counters) plus a :class:`~repro.obs.metrics.MetricsRegistry`.  Sessions
are explicitly started — the instrumented library code goes through the
module-level helpers in :mod:`repro.obs`, which are no-ops costing one
global load + ``is None`` check while no session is active.

Worker processes run their own session; :meth:`Session.drain` /
:meth:`Session.absorb` move completed spans and metric snapshots across
the process boundary (plain dicts, pickle-friendly), tagging every
absorbed span with the worker's pid so the Chrome-trace export shows
per-worker tracks.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Session", "SpanRecord"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    name: str
    t_start: float  # time.perf_counter seconds
    cpu_start: float  # time.process_time seconds
    pid: int
    tid: int
    depth: int
    parent: int | None  # index into Session.spans, None for roots
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    t_end: float | None = None
    cpu_end: float | None = None

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    @property
    def cpu_time(self) -> float:
        return (self.cpu_end - self.cpu_start) if self.cpu_end is not None else 0.0

    def add(self, name: str, n: int | float = 1) -> None:
        """Attach a span-local counter value."""
        self.counters[name] = self.counters.get(name, 0) + n

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "cpu_start": self.cpu_start,
            "cpu_end": self.cpu_end,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        return cls(**d)


class _SpanHandle:
    """Context manager returned by :meth:`Session.span`."""

    __slots__ = ("_session", "_record", "_index")

    def __init__(self, session: "Session", record: SpanRecord, index: int):
        self._session = session
        self._record = record
        self._index = index

    @property
    def record(self) -> SpanRecord:
        return self._record

    def add(self, name: str, n: int | float = 1) -> None:
        self._record.add(name, n)

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._session._close(self._index, failed=exc_type is not None)
        return False


class Session:
    """One run's observability state (spans + metrics)."""

    def __init__(self, label: str = "repro"):
        self.label = label
        self.pid = os.getpid()
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.spans: list[SpanRecord] = []
        from repro.obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        self.workers: list[int] = []  # pids whose drained state was absorbed
        self._stack: list[int] = []  # indices of open spans
        self._drained = 0  # spans already shipped out by drain()
        # Span recording is task-confined (one request/thread at a time),
        # but drain/absorb cross task boundaries: a daemon folds many
        # request sessions into one aggregate, so those two are guarded.
        self._transfer_lock = threading.Lock()

    # -- spans --------------------------------------------------------------
    def span(self, name: str, **attrs) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            t_start=time.perf_counter(),
            cpu_start=time.process_time(),
            pid=self.pid,
            tid=threading.get_native_id(),
            depth=len(self._stack),
            parent=parent,
            attrs=attrs,
        )
        index = len(self.spans)
        self.spans.append(record)
        self._stack.append(index)
        return _SpanHandle(self, record, index)

    def _close(self, index: int, failed: bool = False) -> None:
        record = self.spans[index]
        record.t_end = time.perf_counter()
        record.cpu_end = time.process_time()
        if failed:
            record.attrs["error"] = True
        # Spans close strictly LIFO under the context-manager API; tolerate
        # a stray handle closed out of order by dropping nested survivors.
        while self._stack and self._stack[-1] >= index:
            self._stack.pop()

    def current_span(self) -> SpanRecord | None:
        return self.spans[self._stack[-1]] if self._stack else None

    def close_open_spans(self) -> None:
        """Force-close anything still open (end-of-run safety net)."""
        while self._stack:
            self._close(self._stack[-1])

    # -- cross-process transfer --------------------------------------------
    def drain(self) -> dict:
        """Completed spans + metric snapshot since the last drain.

        Clears what it returns; open spans stay behind.  The result is a
        plain-dict blob that pickles cheaply across the pool boundary.
        """
        with self._transfer_lock:
            completed = [
                s.to_dict() for s in self.spans[self._drained :] if s.t_end is not None
            ]
            blob = {"pid": self.pid, "spans": completed, "metrics": self.metrics.snapshot()}
            self._drained = len(self.spans)
            self.metrics.clear()
        return blob

    def absorb(self, blob: dict | None) -> None:
        """Merge a worker's :meth:`drain` blob into this session.

        Spans keep their recorded worker pid (separate tracks in the
        Chrome export); metrics merge by kind so parallel totals equal
        serial totals.
        """
        if not blob:
            return
        with self._transfer_lock:
            worker = blob.get("pid")
            if worker is not None and worker != self.pid and worker not in self.workers:
                self.workers.append(worker)
            base = len(self.spans)
            for d in blob.get("spans", ()):
                rec = SpanRecord.from_dict(d)
                # Re-base parent links into this session's span list.
                if rec.parent is not None:
                    rec.parent += base
                self.spans.append(rec)
            self.metrics.merge(blob.get("metrics", {}))

    # -- reporting ----------------------------------------------------------
    def completed_spans(self) -> list[SpanRecord]:
        return [s for s in self.spans if s.t_end is not None]

    def summary(self) -> str:
        roots = [s for s in self.completed_spans() if s.parent is None]
        total = sum(s.duration for s in roots)
        return (
            f"{len(self.completed_spans())} span(s), {len(self.metrics)} metric(s), "
            f"{len(self.workers)} worker(s), {total * 1e3:.1f} ms in root spans"
        )
