"""Attribution: the decomposition must be an exact audit of the
makespan — every path edge lands in exactly one rank bucket and one
primitive bucket, and both bucket families sum back to the total."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_graph
from repro.core.graph import EdgeKind
from repro.diagnose import attribute_path, classify_edge, extract_critical_path
from repro.mpisim import run
from tests.conftest import plan_program
from tests.diagnose.test_path import _plans


def attribution_of(trace, top_edges=10):
    build = build_graph(trace)
    cp = extract_critical_path(build)
    return build, cp, attribute_path(build, cp, top_edges=top_edges)


class TestExactness:
    def test_buckets_sum_to_makespan(self, ring_trace):
        _, cp, attr = attribution_of(ring_trace)
        assert attr.makespan == cp.total_cost
        assert sum(attr.by_rank.values()) == pytest.approx(attr.makespan)
        assert sum(attr.by_primitive.values()) == pytest.approx(attr.makespan)

    @given(plan=_plans, p=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_any_run_sums_exactly(self, plan, p):
        _, cp, attr = attribution_of(run(plan_program(plan), nprocs=p, seed=9).trace)
        assert sum(attr.by_rank.values()) == pytest.approx(attr.makespan, rel=1e-12)
        assert sum(attr.by_primitive.values()) == pytest.approx(attr.makespan, rel=1e-12)

    def test_shares_partition_unity(self, stencil_trace):
        _, _, attr = attribution_of(stencil_trace)
        assert sum(attr.rank_share(r) for r in attr.by_rank) == pytest.approx(1.0)
        assert sum(attr.primitive_share(p) for p in attr.by_primitive) == pytest.approx(1.0)


class TestClassification:
    def test_every_path_edge_classifies(self, stencil_trace):
        build, cp, _ = attribution_of(stencil_trace)
        g = build.graph
        for ei in cp.edges:
            primitive, rank = classify_edge(g, g.edges[ei])
            assert primitive
            assert -1 <= rank < g.nprocs

    def test_operation_vs_compute_split(self, ring_trace):
        """START→END of one event buckets as the op; inter-event local
        edges bucket as compute."""
        build, cp, attr = attribution_of(ring_trace)
        assert "compute" in attr.by_primitive
        op_buckets = set(attr.by_primitive) - {"compute"}
        assert op_buckets  # a ring has send/recv/allreduce intervals on-path

    def test_message_edges_bucket_by_delta_kind(self, ring_trace):
        build = build_graph(ring_trace)
        g = build.graph
        msg = next(e for e in g.edges if e.kind == EdgeKind.MESSAGE)
        primitive, _ = classify_edge(g, msg)
        assert primitive in {"sync", "os-noise", "ack", "transfer", "rendezvous", "collective"}


class TestDominantsAndRendering:
    def test_dominant_rank_is_argmax(self, ring_trace):
        _, _, attr = attribution_of(ring_trace)
        rank, share = attr.dominant_rank()
        assert attr.by_rank[rank] == max(attr.by_rank.values())
        assert share == pytest.approx(attr.rank_share(rank))

    def test_dominant_primitive_excludes_compute_by_default(self, ring_trace):
        _, _, attr = attribution_of(ring_trace)
        prim, _ = attr.dominant_primitive()
        assert prim != "compute"

    def test_top_edges_cost_descending_and_capped(self, stencil_trace):
        _, _, attr = attribution_of(stencil_trace, top_edges=3)
        assert len(attr.top_edges) <= 3
        costs = [c for _, c, _, _ in attr.top_edges]
        assert costs == sorted(costs, reverse=True)

    def test_table_and_dict_render(self, ring_trace):
        _, _, attr = attribution_of(ring_trace)
        table = attr.table()
        assert "rank" in table and "primitive" in table
        d = attr.as_dict()
        assert d["makespan"] == attr.makespan
        assert set(d["by_primitive"]) == set(attr.by_primitive)
