"""Regenerate the golden report snapshots in tests/lint/golden/.

Run from the repository root after an intentional format change:

    PYTHONPATH=src python tests/lint/regen_golden.py

then review the diff before committing.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1].parent))

from repro.lint import render_json, render_sarif  # noqa: E402

from tests.lint.test_report import GOLDEN, fixture_report, normalize_sarif  # noqa: E402


def main() -> None:
    GOLDEN.mkdir(exist_ok=True)
    report = fixture_report()
    (GOLDEN / "report.json").write_text(render_json(report) + "\n")
    (GOLDEN / "report.sarif").write_text(normalize_sarif(render_sarif(report)) + "\n")
    print(f"wrote {GOLDEN / 'report.json'}")
    print(f"wrote {GOLDEN / 'report.sarif'}")


if __name__ == "__main__":
    main()
