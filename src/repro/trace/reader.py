"""Streaming trace readers.

The analyzer streams traces instead of loading them in core (§1
difference (3); §6 "windowed approach").  :class:`TraceReader` yields
one rank's events lazily from disk; :class:`RankStream` wraps any event
iterator with one-event lookahead (the matching algorithm of §4.1 needs
``peek``); :class:`TraceSet` opens the per-rank files written by
:class:`repro.trace.writer.TraceSetWriter` and checks they form a
coherent run.

An in-memory variant (:class:`MemoryTrace`) backs tests and
property-based generators without touching disk.
"""

from __future__ import annotations

import glob
import re
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro import obs
from repro.trace import format as fmt
from repro.trace.events import EventRecord, TraceMeta

__all__ = [
    "TraceReader",
    "RankStream",
    "TraceSet",
    "MemoryTrace",
    "TraceSource",
    "find_trace_files",
]


@runtime_checkable
class TraceSource(Protocol):
    """Anything that can hand per-rank event streams to the analyzer.

    Satisfied by the file-backed :class:`TraceSet` and the in-memory
    :class:`MemoryTrace`; consumers (builder, validators, lint engine)
    accept this protocol instead of a concrete reader.
    """

    nprocs: int

    def meta(self, rank: int) -> TraceMeta: ...

    def streams(self) -> "list[RankStream]": ...

    def events_of(self, rank: int) -> Iterator[EventRecord]: ...

    def load_all(self) -> list[list[EventRecord]]: ...


_RANK_RE = re.compile(r"\.rank(\d+)\.trace\.(jsonl|bin)$")


def _counted_events(it: Iterator[EventRecord]) -> Iterator[EventRecord]:
    """Pass events through, reporting how many were read.

    Only ever wrapped around a stream while an observability session is
    active (the disabled path yields the raw iterator, zero overhead);
    the count lands when the stream is exhausted or dropped, so partial
    consumption is reported faithfully.
    """
    n = 0
    try:
        for ev in it:
            n += 1
            yield ev
    finally:
        if n:
            obs.add("trace.events_read", n)


def find_trace_files(directory: str | Path, stem: str) -> list[Path]:
    """Locate and rank-sort all trace files for ``stem`` in ``directory``."""
    paths = []
    for pattern in (f"{stem}.rank*.trace.jsonl", f"{stem}.rank*.trace.bin"):
        paths.extend(Path(p) for p in glob.glob(str(Path(directory) / pattern)))
    matched = []
    for p in paths:
        m = _RANK_RE.search(p.name)
        if m:
            matched.append((int(m.group(1)), p))
    matched.sort()
    return [p for _, p in matched]


class TraceReader:
    """Lazy reader for a single rank's trace file (text or binary)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.binary = self.path.name.endswith(fmt.BINARY_SUFFIX) or (
            not self.path.name.endswith(fmt.TEXT_SUFFIX) and self._sniff_binary()
        )
        self._bin_flags = True
        if self.binary:
            with open(self.path, "rb") as fh:
                self.meta, self._bin_flags = fmt.read_header_binary_versioned(fh)
        else:
            with open(self.path, "r") as fh:
                self.meta = fmt.read_header_text(fh)

    def _sniff_binary(self) -> bool:
        with open(self.path, "rb") as fh:
            return fh.read(len(fmt.BINARY_MAGIC)) in (fmt.BINARY_MAGIC, fmt.BINARY_MAGIC_V1)

    def events(self) -> Iterator[EventRecord]:
        """Stream all events from disk, one at a time."""
        it = self._raw_events()
        if obs.enabled():
            obs.add("trace.files_read")
            return _counted_events(it)
        return it

    def _raw_events(self) -> Iterator[EventRecord]:
        if self.binary:
            with open(self.path, "rb") as fh:
                fmt.read_header_binary(fh)
                yield from fmt.decode_events_binary(fh, with_flags=self._bin_flags)
        else:
            with open(self.path, "r") as fh:
                fmt.read_header_text(fh)
                for line in fh:
                    line = line.strip()
                    if line:
                        yield fmt.decode_event_text(line)

    def __iter__(self) -> Iterator[EventRecord]:
        return self.events()


class RankStream:
    """One-event-lookahead cursor over a rank's event sequence.

    The order-based matcher repeatedly asks "what is the next unmatched
    event on rank r?" — ``peek``/``advance`` is exactly that interface.
    """

    def __init__(self, rank: int, events: Iterable[EventRecord]):
        self.rank = rank
        self._it = iter(events)
        self._head: EventRecord | None = None
        self._exhausted = False
        self.consumed = 0
        self._pull()

    def _pull(self) -> None:
        try:
            self._head = next(self._it)
        except StopIteration:
            self._head = None
            self._exhausted = True

    def peek(self) -> EventRecord | None:
        """Next event without consuming it (``None`` at end of trace)."""
        return self._head

    def advance(self) -> EventRecord:
        """Consume and return the next event."""
        if self._head is None:
            raise StopIteration(f"rank {self.rank} trace exhausted")
        ev = self._head
        self._pull()
        self.consumed += 1
        return ev

    @property
    def exhausted(self) -> bool:
        return self._head is None


class TraceSet:
    """The per-rank trace files of one complete run."""

    def __init__(self, readers: Sequence[TraceReader]):
        if not readers:
            raise ValueError("TraceSet requires at least one trace")
        ranks = sorted(r.meta.rank for r in readers)
        nprocs = readers[0].meta.nprocs
        if any(r.meta.nprocs != nprocs for r in readers):
            raise ValueError("trace files disagree on nprocs")
        if ranks != list(range(nprocs)):
            raise ValueError(f"expected ranks 0..{nprocs - 1}, found {ranks}")
        self.readers = sorted(readers, key=lambda r: r.meta.rank)
        self.nprocs = nprocs

    @classmethod
    def open(cls, directory: str | Path, stem: str) -> "TraceSet":
        paths = find_trace_files(directory, stem)
        if not paths:
            raise FileNotFoundError(f"no trace files for stem {stem!r} in {directory}")
        return cls([TraceReader(p) for p in paths])

    @classmethod
    def open_paths(cls, paths: Sequence[str | Path]) -> "TraceSet":
        return cls([TraceReader(p) for p in paths])

    def meta(self, rank: int) -> TraceMeta:
        return self.readers[rank].meta

    def streams(self) -> list[RankStream]:
        """Fresh lookahead cursors, one per rank."""
        return [RankStream(r.meta.rank, r.events()) for r in self.readers]

    def events_of(self, rank: int) -> Iterator[EventRecord]:
        return self.readers[rank].events()

    def load_all(self) -> list[list[EventRecord]]:
        """Materialize everything (small traces / tests only)."""
        return [list(r.events()) for r in self.readers]


class MemoryTrace:
    """In-memory stand-in for :class:`TraceSet` (tests, generators).

    Takes per-rank event lists; performs the same coherence checks.
    """

    def __init__(self, per_rank: Sequence[Sequence[EventRecord]], program: str = "synthetic"):
        if not per_rank:
            raise ValueError("MemoryTrace requires at least one rank")
        self.nprocs = len(per_rank)
        self._events = [list(evs) for evs in per_rank]
        for rank, evs in enumerate(self._events):
            for ev in evs:
                if ev.rank != rank:
                    raise ValueError(f"event rank {ev.rank} filed under rank {rank}")
        self._metas = [
            TraceMeta(rank=r, nprocs=self.nprocs, program=program) for r in range(self.nprocs)
        ]

    def meta(self, rank: int) -> TraceMeta:
        return self._metas[rank]

    def streams(self) -> list[RankStream]:
        return [RankStream(r, iter(evs)) for r, evs in enumerate(self._events)]

    def events_of(self, rank: int) -> Iterator[EventRecord]:
        return iter(self._events[rank])

    def load_all(self) -> list[list[EventRecord]]:
        return [list(evs) for evs in self._events]
