"""PERF — compiled plan vs object-graph Monte-Carlo throughput.

Measures ``monte_carlo(..., engine="compiled")`` — the
:class:`~repro.core.compiled.CompiledPlan` replicate-batched numpy
kernel — against ``engine="graph"`` (the per-replicate object-graph
reference) on the token-ring trace, serially and with ``--jobs``
fan-out, and verifies the tentpole's equivalence bar: the compiled
samples must be **bit-for-bit identical** to the reference engine's.

Environment knobs (used by the CI smoke job to keep runtime tiny):

``REPRO_BENCH_MC_REPLICATES``
    Replicate count per run (default 200 — the headline R=200
    configuration the >= 5x serial-speedup criterion is stated at).
``REPRO_BENCH_MC_JOBS``
    Comma-separated worker counts to ladder over (default ``2,4``).

A warm-up batch runs first so the one-time costs (graph lowering plus
the runtime ziggurat-table harvest, ~0.2 s per process) are paid before
timing starts — exactly the steady state a sweep or repeated analysis
sees, since plans and tables are cached per build / per process.
"""

import os
import time

import numpy as np

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, compiled_plan, monte_carlo
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature

REPLICATES = int(os.environ.get("REPRO_BENCH_MC_REPLICATES", "200"))
JOBS_LADDER = [
    int(j) for j in os.environ.get("REPRO_BENCH_MC_JOBS", "2,4").split(",") if j.strip()
]


def mc_build():
    trace = run(token_ring(TokenRingParams(traversals=8)), nprocs=8, seed=0).trace
    return build_graph(trace)


def mc_spec():
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(120.0), latency=Exponential(50.0)), seed=17
    )


def test_compiled_mc_speedup(benchmark):
    build = mc_build()
    spec = mc_spec()
    compiled_plan(build)  # lower once + harvest tables (cached afterwards)
    monte_carlo(build, spec, replicates=4, engine="compiled")  # warm-up

    t0 = time.perf_counter()
    reference = monte_carlo(build, spec, replicates=REPLICATES, engine="graph")
    t_graph = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = monte_carlo(build, spec, replicates=REPLICATES, engine="compiled")
    t_compiled = time.perf_counter() - t0

    # The tentpole's equivalence bar: bit-identical makespan samples.
    assert np.array_equal(reference.samples, compiled.samples)
    assert reference.seeds == compiled.seeds

    serial_speedup = t_graph / t_compiled
    rows = [
        ["graph", REPLICATES, f"{t_graph * 1e3:.0f}", "1.00"],
        ["compiled", REPLICATES, f"{t_compiled * 1e3:.0f}", f"{serial_speedup:.2f}"],
    ]
    timings = {"graph_serial_s": t_graph, "compiled_serial_s": t_compiled}
    speedups = {"serial": serial_speedup}
    for jobs in JOBS_LADDER:
        t0 = time.perf_counter()
        dist = monte_carlo(build, spec, replicates=REPLICATES, engine="compiled", jobs=jobs)
        dt = time.perf_counter() - t0
        assert np.array_equal(reference.samples, dist.samples)
        timings[f"compiled_jobs{jobs}_s"] = dt
        speedups[f"jobs{jobs}"] = t_graph / dt
        rows.append(
            [f"compiled -j{jobs}", REPLICATES, f"{dt * 1e3:.0f}", f"{t_graph / dt:.2f}"]
        )

    rows.append(["cores", os.cpu_count() or 1, "", ""])
    emit(
        "perf_compiled_mc",
        table(["engine", "replicates", "time ms", "speedup"], rows, widths=[13, 10, 9, 8]),
        params={
            "replicates": REPLICATES,
            "jobs_ladder": JOBS_LADDER,
            "cores": os.cpu_count() or 1,
        },
        timings=timings,
        metrics={"speedup": speedups, "mc_mean_delay": reference.mean()},
    )

    benchmark(lambda: monte_carlo(build, spec, replicates=REPLICATES, engine="compiled"))


def test_compiled_mc_fallback_signature_equivalence():
    """A signature with no vectorized fast path (LogNormal OS noise)
    must still be bit-identical — only slower — via the scalar lanes."""
    from repro.noise.distributions import LogNormal

    build = mc_build()
    sig = MachineSignature(os_noise=LogNormal(3.0, 0.5), latency=Exponential(50.0))
    spec = PerturbationSpec(sig, seed=17)
    n = min(REPLICATES, 24)
    reference = monte_carlo(build, spec, replicates=n, engine="graph")
    compiled = monte_carlo(build, spec, replicates=n, engine="compiled")
    assert np.array_equal(reference.samples, compiled.samples)
