"""Reporter tests: text rendering, golden JSON / SARIF snapshots, and
SARIF 2.1.0 schema conformance.

The golden files live in ``tests/lint/golden/``; regenerate them with

    PYTHONPATH=src python tests/lint/regen_golden.py

after an intentional report-format change, and review the diff.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.lint import (
    lint_traces,
    render_json,
    render_sarif,
    render_text,
    report_to_sarif,
    severity_histogram,
    write_report,
)
from repro.trace.events import EventKind
from tests.lint.helpers import ev, memory_trace

GOLDEN = Path(__file__).parent / "golden"


def fixture_report():
    """A deterministic report: one error (MPG001) + one warning (MPG004)."""
    events = [
        ev(0, 0, EventKind.INIT, 0.0, 10.0),
        ev(0, 1, EventKind.SEND, 1.0, 2.0, peer=0, tag=0, nbytes=8),
    ]
    return lint_traces(memory_trace(events))


def normalize_sarif(text: str) -> str:
    """Pin the tool version so snapshots survive version bumps."""
    doc = json.loads(text)
    for run in doc["runs"]:
        run["tool"]["driver"]["version"] = "TEST"
    return json.dumps(doc, indent=2, sort_keys=True)


class TestText:
    def test_gcc_style_lines(self):
        out = render_text(fixture_report())
        lines = out.splitlines()
        assert lines[0].startswith("rank 0, event #1: error MPG001 [overlapping-events]:")
        assert "warning MPG004 [missing-framing]" in lines[1]
        assert "1 error(s), 1 warning(s), 0 note(s)" in lines[-1]

    def test_verbose_lists_rules(self):
        out = render_text(fixture_report(), verbose=True)
        assert "rules run: MPG001" in out

    def test_path_prefix(self, tmp_path):
        from repro.trace.reader import TraceSet
        from repro.trace.writer import TraceSetWriter

        with TraceSetWriter(tmp_path, "bad", nprocs=1) as w:
            w.record(ev(0, 0, EventKind.INIT, 0.0, 10.0))
            w.record(ev(0, 1, EventKind.FINALIZE, 1.0, 2.0))
        out = render_text(lint_traces(TraceSet.open(tmp_path, "bad")))
        assert out.splitlines()[0].startswith(str(tmp_path / "bad.rank0000.trace.jsonl"))


class TestGoldenSnapshots:
    def test_json_matches_golden(self):
        expected = (GOLDEN / "report.json").read_text()
        assert render_json(fixture_report()) + "\n" == expected

    def test_sarif_matches_golden(self):
        expected = (GOLDEN / "report.sarif").read_text()
        assert normalize_sarif(render_sarif(fixture_report())) + "\n" == expected


class TestSarif:
    def test_version_and_schema_uri(self):
        doc = report_to_sarif(fixture_report())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_rule_catalog_and_indices(self):
        doc = report_to_sarif(fixture_report())
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rules = driver["rules"]
        assert [r["id"] for r in rules] == sorted(r["id"] for r in rules)
        assert len(rules) == 25  # 12 trace/graph + 6 MPG2xx diagnosis + 7 MPG3xx verify
        for result in doc["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_logical_locations(self):
        doc = report_to_sarif(fixture_report())
        (err, warn) = doc["runs"][0]["results"]
        assert err["level"] == "error"
        names = [loc["name"] for loc in err["locations"][0]["logicalLocations"]]
        assert names == ["rank 0", "event #1"]
        assert warn["level"] == "warning"

    def test_physical_location_line_numbers(self, tmp_path):
        from repro.trace.reader import TraceSet
        from repro.trace.writer import TraceSetWriter

        with TraceSetWriter(tmp_path, "bad", nprocs=1) as w:
            w.record(ev(0, 0, EventKind.INIT, 0.0, 10.0))
            w.record(ev(0, 1, EventKind.FINALIZE, 1.0, 2.0))
        doc = report_to_sarif(lint_traces(TraceSet.open(tmp_path, "bad")))
        result = doc["runs"][0]["results"][0]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith("bad.rank0000.trace.jsonl")
        # header is line 1, so event seq 1 sits on line 3
        assert physical["region"]["startLine"] == 3

    def test_validates_against_sarif_subset_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads((Path(__file__).parent / "sarif-2.1.0-subset.schema.json").read_text())
        jsonschema.validate(report_to_sarif(fixture_report()), schema)


class TestWriteReport:
    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_formats(self, fmt):
        buf = io.StringIO()
        write_report(fixture_report(), fmt, buf)
        assert buf.getvalue().endswith("\n")

    def test_unknown_format(self):
        with pytest.raises(ValueError, match="unknown lint report format"):
            write_report(fixture_report(), "xml", io.StringIO())

    def test_histogram(self):
        assert severity_histogram(fixture_report()) == {"error": 1, "warning": 1, "info": 0}
