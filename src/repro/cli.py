"""Command-line tools.

Entry points mirroring the paper's workflow:

``repro-trace``
    Run a bundled application on a preset simulated machine, writing
    per-rank trace files (the PMPI-tracing step, §4).
``repro-microbench``
    Run the microbenchmark suite against a preset machine and save the
    resulting machine signature (§5).
``repro-analyze``
    Build the message-passing graph from traces and propagate sampled
    perturbations from a signature, reporting runtime impact, critical
    path attribution, absorption, and correctness warnings (§4.2, §6).
``repro-sweep``
    Noise-scale ladder over one trace set (§6's "varying degrees").
``repro-dot``
    Export the graph as Graphviz DOT (Fig. 5).
``repro-replay``
    Dimemas-style deterministic replay under target machine parameters
    (the §1.1 baseline) — what-if for base network / CPU changes.
``repro-lint``
    Rule-based static analysis of traces and built graphs
    (:mod:`repro.lint`): text, JSON, or SARIF 2.1.0 reports, no
    perturbation engine involved.  ``repro-analyze``/``repro-sweep``
    run the same pass as a pre-flight via ``--lint {off,warn,strict}``.
``repro-diagnose``
    Automated bottleneck & faulty-rank diagnosis (:mod:`repro.diagnose`):
    critical-path extraction, makespan attribution, and anomalous-rank
    detection, reported through the lint reporters (text / JSON / SARIF)
    with the same ``--fail-on`` CI gate.  ``repro-analyze --diagnose``
    appends the same report to an analysis run.
``repro-metrics``
    Time-resolved POP-style efficiency metrics (:mod:`repro.metrics`):
    parallel efficiency, load balance, communication efficiency — whole
    run and per time window — from an mpisim trace set or an imported
    Chrome trace-event file, with ``--fail-below`` CI gating.
    ``repro-analyze --pop-metrics`` appends the same report.
``repro-verify``
    Static verification (:mod:`repro.verify`): certified makespan
    bounds by interval abstract interpretation (no sampling) and
    match-nondeterminism / deadlock-potential analysis of wildcard
    receives, reported as MPG3xx findings through the lint reporters
    (text / JSON / SARIF) with the same ``--fail-on`` CI gate.
    ``repro-analyze --verify`` runs the same pass as a pre-flight and
    arms the Monte-Carlo containment cross-check.
``repro-serve``
    Long-running analysis daemon (:mod:`repro.serve`): the analyses
    above as HTTP endpoints with a coalescing build cache — concurrent
    requests sharing a trace set pay for one graph build and one plan
    compile.  Responses are bit-identical to the CLI/library results.
``repro-client``
    Client for ``repro-serve``: submits jobs and renders responses in
    the exact byte formats of the corresponding CLI tools (CI diffs
    daemon output against CLI output with ``cmp``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import sys
from pathlib import Path

from repro import obs
from repro._util import atomic_write_text
from repro.apps import ALL_APPS
from repro.core import (
    BuildConfig,
    CheckpointStore,
    ExperimentHistory,
    FaultPolicy,
    PerturbationSpec,
    StreamingTraversal,
    absorption_map,
    build_graph,
    check_correctness,
    compiled_plan,
    critical_path,
    monte_carlo,
    propagate,
    runtime_impact,
    sweep_scales,
    to_dot,
)
from repro.machines import PRESETS
from repro.metrics import (
    build_report,
    gate_report,
    ideal_runtime,
    import_chrome_trace,
    pop_metrics,
    pop_timeline,
    publish_obs_metrics,
    render_text,
    trace_frame,
)
from repro.microbench import measure_machine
from repro.mpisim import run_to_files
from repro.noise import MachineSignature
from repro.trace import TraceSet, validate_traces
from repro.trace.stats import trace_stats

__all__ = [
    "main_trace",
    "main_analyze",
    "main_dot",
    "main_sweep",
    "main_microbench",
    "main_replay",
    "main_lint",
    "main_diagnose",
    "main_metrics",
    "main_verify",
    "main_serve",
    "main_client",
]

# Two output channels, never mixed: results go to stdout (bare lines,
# pipeable), diagnostics/warnings go to stderr through ``logging`` with
# levels controlled by ``-v``/``--quiet``.
_LOG = logging.getLogger("repro.cli")
_RESULTS = logging.getLogger("repro.cli.results")


def _add_logging_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more diagnostics on stderr (repeatable)",
    )
    ap.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress diagnostics on stderr (errors only); results still print",
    )


def _configure_logging(args) -> None:
    """(Re)install the stderr diagnostics and stdout results handlers.

    Reinstalling per invocation keeps in-process callers (tests, driver
    scripts) bound to the *current* ``sys.stdout``/``sys.stderr``.
    """
    root = logging.getLogger("repro")
    for h in list(root.handlers):
        root.removeHandler(h)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s: %(message)s"))
    root.addHandler(handler)
    if getattr(args, "quiet", False):
        root.setLevel(logging.ERROR)
    elif getattr(args, "verbose", 0) >= 1:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)

    for h in list(_RESULTS.handlers):
        _RESULTS.removeHandler(h)
    out = logging.StreamHandler(sys.stdout)
    out.setFormatter(logging.Formatter("%(message)s"))
    _RESULTS.addHandler(out)
    _RESULTS.setLevel(logging.INFO)
    _RESULTS.propagate = False


def _say(message: str) -> None:
    """Emit one result line on stdout."""
    _RESULTS.info(message)


def _add_obs_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--profile",
        metavar="FILE",
        help="record the analyzer's own execution and write a Chrome trace-event "
        "JSON (open in https://ui.perfetto.dev)",
    )
    ap.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write pipeline metrics (counters/gauges/timers) as JSON",
    )


def _start_observability(args, label: str):
    """Activate an obs session when ``--profile``/``--metrics-out`` ask
    for one; returns the session or None."""
    if getattr(args, "profile", None) or getattr(args, "metrics_out", None):
        return obs.start(label)
    return None


def _finish_observability(args, session) -> None:
    if session is None:
        return
    obs.stop()
    _LOG.debug(f"observability: {session.summary()}")
    if args.profile:
        obs.write_chrome_trace(session, args.profile)
        _LOG.info(
            f"profile written to {args.profile} "
            f"({len(session.completed_spans())} spans; view at https://ui.perfetto.dev)"
        )
    if args.metrics_out:
        obs.write_metrics(session, args.metrics_out)
        _LOG.info(f"metrics written to {args.metrics_out}")


def _parse_params(pairs: list[str]) -> dict:
    """``k=v`` strings -> kwargs dict with int/float/bool coercion."""
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects k=v, got {pair!r}")
        key, value = pair.split("=", 1)
        if value.lower() in ("true", "false"):
            out[key] = value.lower() == "true"
        else:
            try:
                out[key] = int(value)
            except ValueError:
                try:
                    out[key] = float(value)
                except ValueError:
                    out[key] = value
    return out


def _parse_jobs(value: str) -> int | None:
    """``--jobs`` values: 0 = serial, N >= 2 = pool of N, ``auto`` (or a
    negative count) = one worker per core (see repro.core.parallel)."""
    if value.strip().lower() == "auto":
        return None
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects an integer or 'auto', got {value!r}"
        ) from None
    return None if jobs < 0 else jobs


def _add_jobs_arg(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=0,
        metavar="N",
        help="worker processes for independent traversals: 0 = serial (default), "
        "N >= 2 = process pool, 'auto'/-1 = one per core; results are "
        "bit-identical regardless of N",
    )


def _add_coarsen_arg(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--coarsen",
        choices=("auto", "on", "off"),
        default="auto",
        help="phase coarsening in the compiled engine (repro.core.coarsen): "
        "auto coarsens large iterative builds, on forces detection, off "
        "disables it — results are bit-identical under every setting",
    )


def _add_fault_args(ap: argparse.ArgumentParser) -> None:
    """Fault-tolerance / resumability flags shared by analyze and sweep."""
    ap.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="persist one shard per replicate/point into DIR as results are "
        "computed (see repro.core.checkpoint)",
    )
    ap.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: read existing shards first and compute only "
        "the missing rows — bit-identical to an uninterrupted run",
    )
    ap.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline for pooled execution; past-deadline chunks are "
        "speculatively resubmitted (default: no timeout)",
    )
    ap.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-submissions per failed chunk before the failure policy applies "
        "(default: 2)",
    )
    ap.add_argument(
        "--on-failure",
        choices=("fail", "degrade", "skip"),
        default=None,
        help="what to do with a chunk that exhausts its retries: fail the run "
        "(default), degrade to in-process serial execution, or skip it "
        "(its rows become NaN)",
    )


def _fault_policy(args) -> FaultPolicy | None:
    """A FaultPolicy when any fault flag was given, else None (defaults)."""
    if args.chunk_timeout is None and args.retries is None and args.on_failure is None:
        return None
    defaults = FaultPolicy()
    return FaultPolicy(
        timeout=args.chunk_timeout,
        retries=defaults.retries if args.retries is None else args.retries,
        on_failure=args.on_failure or defaults.on_failure,
    )


def _checkpoint_args(args) -> dict:
    """The checkpoint/resume kwargs for analysis entry points."""
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume requires --checkpoint DIR")
    return {"checkpoint": args.checkpoint, "resume": args.resume}


def _machine(name: str, nprocs: int, seed: int):
    if name not in PRESETS:
        raise SystemExit(f"unknown machine preset {name!r}; choose from {sorted(PRESETS)}")
    return PRESETS[name](nprocs, seed=seed)


def _load_signature(args) -> MachineSignature:
    if args.signature:
        return MachineSignature.load(args.signature)
    if args.measure:
        machine = _machine(args.measure, max(args.measure_nprocs, 2), args.seed)
        with obs.span("measure_machine", preset=args.measure):
            report = measure_machine(machine, seed=args.seed)
        _LOG.info(report.summary())
        return report.to_signature()
    raise SystemExit("provide --signature FILE or --measure PRESET")


def _build_config(args) -> BuildConfig:
    return BuildConfig(
        collective_mode=args.collective_mode,
        eager_threshold=args.eager_threshold,
    )


def _add_lint_arg(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--lint",
        choices=("off", "warn", "strict"),
        default="warn",
        help="pre-flight static analysis (repro.lint): 'warn' (default) runs the "
        "trace-level rules and logs findings, 'strict' runs the full rule pack "
        "and refuses to analyze on ERROR findings, 'off' skips the pass",
    )


def _preflight_lint(args, traces, build_config: BuildConfig) -> None:
    """Run the ``--lint`` pre-flight pass before any graph is built.

    ``warn`` stays cheap (trace-level rules only) and routes findings
    through the structured :func:`repro.core.diagnostics.warn` channel,
    so they are logged AND counted as ``warnings.lint.<rule>`` metrics;
    ``strict`` runs the whole pack (including a guarded graph build)
    and aborts on ERROR findings.
    """
    from repro import lint
    from repro.core.diagnostics import warn as _warn

    mode = getattr(args, "lint", "off")
    if mode == "off":
        return
    with obs.span("preflight_lint", mode=mode):
        if mode == "strict":
            report = lint.lint_run(traces, build_config=build_config)
        else:
            report = lint.lint_traces(traces)
    for f in report.findings:
        _LOG.warning(str(_warn(f"lint {f.rule_id}: {f.message}", f"lint.{f.rule_id}", f.rank, f.seq)))
    if mode == "strict" and not report.ok:
        raise SystemExit(
            f"repro-lint found {len(report.errors)} ERROR finding(s) "
            f"({', '.join(sorted({f.rule_id for f in report.errors}))}); refusing to "
            f"analyze — run repro-lint for the full report or pass --lint warn/off"
        )
    _LOG.info(f"lint ({mode}): {report.summary()}")


def _add_analysis_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--traces", required=True, help="directory containing trace files")
    ap.add_argument("--stem", required=True, help="trace file stem")
    ap.add_argument("--signature", help="machine signature JSON (from repro-microbench)")
    ap.add_argument("--measure", help="measure a preset machine instead of loading a signature")
    ap.add_argument("--measure-nprocs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--mode", choices=("additive", "threshold"), default="additive")
    ap.add_argument("--collective-mode", choices=("hub", "butterfly"), default="hub")
    ap.add_argument("--eager-threshold", type=int, default=None)


def main_trace(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-trace", description="Run a bundled app on a simulated machine and trace it."
    )
    ap.add_argument("--app", required=True, choices=sorted(ALL_APPS))
    ap.add_argument("--nprocs", type=int, required=True)
    ap.add_argument("--machine", default="quiet", choices=sorted(PRESETS))
    ap.add_argument("--out", required=True, help="output directory for trace files")
    ap.add_argument("--stem", default=None, help="trace file stem (default: app name)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--binary", action="store_true", help="write binary traces")
    ap.add_argument("--buffer-events", type=int, default=4096)
    ap.add_argument(
        "--param", action="append", default=[], help="app parameter override, k=v (repeatable)"
    )
    _add_logging_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    factory, params_cls = ALL_APPS[args.app]
    params = params_cls(**_parse_params(args.param))
    machine = _machine(args.machine, args.nprocs, args.seed)
    stem = args.stem or args.app
    result = run_to_files(
        factory(params),
        args.out,
        stem,
        machine=machine,
        seed=args.seed,
        program_name=args.app,
        binary=args.binary,
        buffer_events=args.buffer_events,
    )
    _say(
        f"traced {args.app} on {machine.name} p={args.nprocs}: "
        f"makespan {result.makespan:.0f} cy, {result.events_processed} engine events"
    )
    _say(f"trace files: {args.out}/{stem}.rank*.trace.{'bin' if args.binary else 'jsonl'}")
    return 0


def main_microbench(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-microbench",
        description="Measure a preset machine's signature via microbenchmarks.",
    )
    ap.add_argument("--machine", required=True, choices=sorted(PRESETS))
    ap.add_argument("--nprocs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--method", choices=("empirical", "fit"), default="empirical")
    ap.add_argument("--out", required=True, help="signature JSON output path")
    _add_logging_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    machine = _machine(args.machine, max(args.nprocs, 2), args.seed)
    report = measure_machine(machine, seed=args.seed)
    _say(report.summary())
    sig = report.to_signature(method=args.method)
    sig.save(args.out)
    _say(f"signature written to {args.out}")
    return 0


def main_analyze(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Build the message-passing graph and propagate perturbations.",
    )
    _add_analysis_args(ap)
    _add_jobs_arg(ap)
    _add_fault_args(ap)
    _add_logging_args(ap)
    _add_obs_args(ap)
    _add_lint_arg(ap)
    _add_coarsen_arg(ap)
    ap.add_argument(
        "--engine",
        choices=("auto", "incore", "graph", "streaming", "compiled"),
        default="auto",
        help="propagation engine: auto (= compiled), the in-core object graph "
        "(incore / its alias graph), the windowed streaming traversal, or the "
        "vectorized compiled plan — all bit-identical on the same seed",
    )
    ap.add_argument("--window", type=int, default=4096)
    ap.add_argument("--history", help="append the experiment to this history JSONL")
    ap.add_argument("--name", default="analysis", help="experiment name for the history")
    ap.add_argument(
        "--show-path",
        action="store_true",
        help="print the critical path's top contributing edges (in-core engine only)",
    )
    ap.add_argument(
        "--replicates",
        type=int,
        default=0,
        help="Monte-Carlo replicates for the runtime-delay distribution "
        "(0 = single propagation only; in-core engine)",
    )
    ap.add_argument(
        "--diagnose",
        action="store_true",
        help="run the repro.diagnose pass (critical path, attribution, anomalous "
        "ranks) on the built graph and report MPG2xx findings",
    )
    ap.add_argument(
        "--diagnose-format",
        choices=("text", "json", "sarif"),
        default="text",
        help="format for the --diagnose report",
    )
    ap.add_argument(
        "--diagnose-out",
        metavar="FILE",
        help="write the --diagnose report to this file instead of stdout",
    )
    ap.add_argument(
        "--pop-metrics",
        action="store_true",
        help="append POP-style efficiency metrics (repro.metrics): parallel "
        "efficiency, load balance, communication efficiency, whole-run and "
        "per time window",
    )
    ap.add_argument(
        "--pop-windows",
        type=int,
        default=12,
        metavar="N",
        help="time windows for the --pop-metrics timeline (default 12)",
    )
    ap.add_argument(
        "--verify",
        action="store_true",
        help="run the repro.verify pass as a pre-flight: certified makespan "
        "bounds + match-nondeterminism analysis (MPG3xx findings), and "
        "cross-check every Monte-Carlo replicate against the static bounds",
    )
    ap.add_argument(
        "--verify-format",
        choices=("text", "json", "sarif"),
        default="text",
        help="format for the --verify report",
    )
    ap.add_argument(
        "--verify-out",
        metavar="FILE",
        help="write the --verify report to this file instead of stdout",
    )
    ap.add_argument(
        "--verify-quantile",
        type=float,
        default=None,
        metavar="Q",
        help="finite-support cut for unbounded distribution families in the "
        "--verify bounds (default 1 - 1e-12)",
    )
    args = ap.parse_args(argv)
    _configure_logging(args)
    engine = {"auto": "compiled", "graph": "incore"}.get(args.engine, args.engine)
    if args.replicates and engine == "streaming":
        raise SystemExit("--replicates requires a graph engine (incore or compiled)")
    if args.diagnose and engine == "streaming":
        raise SystemExit("--diagnose requires a graph engine (incore or compiled)")
    if args.verify and engine == "streaming":
        raise SystemExit("--verify requires a graph engine (incore or compiled)")

    session = _start_observability(args, "repro-analyze")
    with obs.span("analyze", engine=engine, mode=args.mode):
        traces = TraceSet.open(args.traces, args.stem)
        config = _build_config(args)
        _preflight_lint(args, traces, config)
        with obs.span("validate_traces"):
            report = validate_traces(traces)
        if not report.ok:
            report.raise_if_invalid()
        for issue in report.warnings:
            _LOG.warning(str(issue))
        sig = _load_signature(args)
        spec = PerturbationSpec(sig, seed=args.seed, scale=args.scale)

        with obs.span("trace_stats"):
            stats = trace_stats(traces)
        _say(f"trace: {stats.summary()}")
        if args.pop_metrics:
            with obs.span("pop_metrics", windows=args.pop_windows):
                event_frame = trace_frame(traces)
                pop_report = build_report(
                    pop_metrics(event_frame),
                    pop_timeline(event_frame, args.pop_windows),
                    source=f"{args.traces}/{args.stem}",
                    program=traces.meta(0).program,
                )
            publish_obs_metrics(pop_report)
            _say(render_text(pop_report))
        if engine == "streaming":
            result = StreamingTraversal(
                spec, config=config, mode=args.mode, window=args.window
            ).run(traces)
            _say(f"streaming traversal ({args.mode}):")
            for r, d in enumerate(result.final_delay):
                _say(f"  rank {r}: +{d:.1f} cy")
            _say(f"  max delay: {result.max_delay:.1f} cy")
            for w in result.warnings:
                _LOG.warning(str(w))
        else:
            build = build_graph(traces, config)
            vbounds = None
            if args.verify:
                from repro.verify import DEFAULT_QUANTILE, VerifyConfig, verify_build

                vconfig = VerifyConfig(
                    quantile=(
                        DEFAULT_QUANTILE
                        if args.verify_quantile is None
                        else args.verify_quantile
                    ),
                    scale=args.scale,
                    mode=args.mode,
                    coarsen=args.coarsen,
                    seed=args.seed,
                )
                vreport = verify_build(build, vconfig, signature=sig, trace_set=traces)
                vbounds = vreport.bounds
                if args.verify_out:
                    with open(args.verify_out, "w") as fh:
                        _write_verify(vreport, args.verify_format, fh, args.verbose >= 1)
                    _LOG.info(
                        f"verification report ({args.verify_format}) "
                        f"written to {args.verify_out}"
                    )
                    _say(f"verify: {vreport.summary()}")
                else:
                    import io

                    buf = io.StringIO()
                    _write_verify(vreport, args.verify_format, buf, args.verbose >= 1)
                    _say(buf.getvalue().rstrip("\n"))
                if vreport.errors:
                    raise SystemExit(
                        f"repro-verify found {len(vreport.errors)} ERROR finding(s) "
                        f"({', '.join(sorted({f.rule_id for f in vreport.errors}))}); "
                        f"refusing to analyze — run repro-verify for the full report"
                    )
            if engine == "compiled":
                plan = compiled_plan(
                    build,
                    coarsen=args.coarsen,
                    checkpoint=CheckpointStore.coerce(args.checkpoint),
                )
                result = plan.propagate_one(spec, mode=args.mode)
            else:
                result = propagate(build, spec, mode=args.mode)
            with obs.span("analysis"):
                correctness = check_correctness(build, result)
                impact = runtime_impact(build, result)
                cp = critical_path(build, result)
                am = absorption_map(build, result)
            _say(f"graph: {build.graph}")
            _say(impact.table())
            _say(
                f"critical path (rank {cp.rank}): {cp.total_delay:.1f} cy total; "
                f"dominant class {cp.dominant_class()}; per-class {cp.by_delta_kind}"
            )
            if args.show_path:
                _say(cp.describe(build))
            _say(f"absorption ratio (overall): {am.overall_ratio():.2%}")
            _say(f"correctness: {correctness.summary()}")
            for w in correctness.warnings:
                _LOG.warning(str(w))
            if args.replicates:
                dist = monte_carlo(
                    build,
                    spec,
                    replicates=args.replicates,
                    mode=args.mode,
                    jobs=args.jobs,
                    engine="compiled" if engine == "compiled" else "graph",
                    policy=_fault_policy(args),
                    coarsen=args.coarsen,
                    bounds=vbounds,
                    **_checkpoint_args(args),
                )
                _say(f"monte carlo: {dist.summary()}")
                _say(
                    f"  P(makespan delay > 2x mean) = "
                    f"{dist.exceedance_probability(2 * dist.mean()):.2%}"
                )
            if args.diagnose:
                from repro.diagnose import DiagnoseConfig, diagnose_build

                dconfig = DiagnoseConfig(
                    engine=engine,
                    coarsen=args.coarsen,
                    replicates=args.replicates,
                    seed=args.seed,
                    scale=args.scale,
                    mode=args.mode,
                )
                diag = diagnose_build(build, dconfig, signature=sig, trace_set=traces)
                if args.diagnose_out:
                    with open(args.diagnose_out, "w") as fh:
                        _write_diagnosis(diag, args.diagnose_format, fh, args.verbose >= 1)
                    _LOG.info(
                        f"diagnosis report ({args.diagnose_format}) "
                        f"written to {args.diagnose_out}"
                    )
                    _say(f"diagnosis: {diag.summary()}")
                else:
                    import io

                    buf = io.StringIO()
                    _write_diagnosis(diag, args.diagnose_format, buf, args.verbose >= 1)
                    _say(buf.getvalue().rstrip("\n"))
        if args.history:
            rec = ExperimentHistory(args.history).record(args.name, spec, result, config)
            _say(f"recorded experiment {rec.name!r} in {args.history}")
    _finish_observability(args, session)
    return 0


def main_sweep(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-sweep", description="Noise-scale ladder over one trace set."
    )
    _add_analysis_args(ap)
    _add_jobs_arg(ap)
    _add_fault_args(ap)
    _add_logging_args(ap)
    _add_obs_args(ap)
    _add_lint_arg(ap)
    _add_coarsen_arg(ap)
    ap.add_argument("--scales", default="0,0.25,0.5,1,2,4", help="comma-separated scale factors")
    ap.add_argument(
        "--engine",
        choices=("auto", "incore", "graph", "streaming", "compiled"),
        default="auto",
        help="sweep engine (auto = compiled; all engines give identical points)",
    )
    args = ap.parse_args(argv)
    _configure_logging(args)

    session = _start_observability(args, "repro-sweep")
    traces = TraceSet.open(args.traces, args.stem)
    _preflight_lint(args, traces, _build_config(args))
    sig = _load_signature(args)
    spec = PerturbationSpec(sig, seed=args.seed, scale=args.scale)
    scales = [float(s) for s in args.scales.split(",") if s.strip()]
    result = sweep_scales(
        traces,
        spec,
        scales,
        mode=args.mode,
        engine=args.engine,
        config=_build_config(args),
        jobs=args.jobs,
        policy=_fault_policy(args),
        coarsen=args.coarsen,
        **_checkpoint_args(args),
    )
    _say(result.table())
    with contextlib.suppress(ValueError):  # slope undefined for a single scale
        _say(f"slope (max delay per unit scale): {result.slope():.1f} cy")
    _finish_observability(args, session)
    return 0


def main_dot(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-dot", description="Export the message-passing graph as Graphviz DOT."
    )
    ap.add_argument("--traces", required=True)
    ap.add_argument("--stem", required=True)
    ap.add_argument("--out", help="output .dot path (default: stdout)")
    ap.add_argument("--max-nodes", type=int, default=4000)
    ap.add_argument(
        "--seq-range",
        help="export only events with LO:HI sequence numbers (window view)",
    )
    ap.add_argument("--collective-mode", choices=("hub", "butterfly"), default="hub")
    ap.add_argument("--eager-threshold", type=int, default=None)
    _add_logging_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    traces = TraceSet.open(args.traces, args.stem)
    build = build_graph(traces, _build_config(args))
    graph = build.graph
    if args.seq_range:
        from repro.core import extract_window

        lo, hi = (int(x) for x in args.seq_range.split(":", 1))
        graph = extract_window(build, lo, hi).graph
    dot = to_dot(graph, name=args.stem, max_nodes=args.max_nodes)
    if args.out:
        Path(args.out).write_text(dot)
        _LOG.info(f"wrote {args.out} ({len(dot.splitlines())} lines)")
    else:
        _say(dot)
    return 0


#: The one set of CI-gate severities every report-producing tool accepts.
FAIL_ON_CHOICES = ("error", "warning", "never")


def _add_fail_on_arg(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--fail-on",
        choices=FAIL_ON_CHOICES,
        default="error",
        help="exit nonzero when findings at/above this severity exist (default: error)",
    )


def _add_rule_flags(ap: argparse.ArgumentParser) -> None:
    """The shared rule-mechanics flags (lint / diagnose / verify)."""
    ap.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE[,RULE...]",
        help="rule ids to skip (repeatable or comma-separated)",
    )
    ap.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=LEVEL",
        help="override a rule's severity, e.g. MPG007=error (repeatable)",
    )
    ap.add_argument(
        "--max-findings", type=int, default=100, help="per-rule finding cap in the report"
    )


def _gate_exit(fail_on: str, errors: int, warnings: int = 0) -> int:
    """The one CI-gate exit policy: 1 when findings at/above ``fail_on``
    exist, 0 otherwise (``never`` always passes).  Every gating tool
    (lint / diagnose / metrics / verify) funnels through here so exit
    codes mean the same thing across the suite."""
    if fail_on == "never":
        return 0
    if errors or (fail_on == "warning" and warnings):
        return 1
    return 0


def main_lint(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-lint",
        description="Rule-based static analysis of traces and message-passing graphs.",
    )
    ap.add_argument("--traces", help="directory containing trace files")
    ap.add_argument("--stem", help="trace file stem")
    ap.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif = SARIF 2.1.0 for GitHub code scanning)",
    )
    ap.add_argument("--out", help="write the report to this file instead of stdout")
    ap.add_argument(
        "--trace-only",
        action="store_true",
        help="run only the trace-level rules (never builds a graph)",
    )
    _add_rule_flags(ap)
    ap.add_argument("--skew-tolerance", type=float, default=0.5, help="MPG007 threshold")
    _add_fail_on_arg(ap)
    ap.add_argument("--list-rules", action="store_true", help="print the rule catalog and exit")
    ap.add_argument("--collective-mode", choices=("hub", "butterfly"), default="hub")
    ap.add_argument("--eager-threshold", type=int, default=None)
    _add_logging_args(ap)
    _add_obs_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    from repro import lint

    if args.list_rules:
        for r in lint.all_rules():
            _say(f"{r.id}  {r.severity.name.lower():<7} {r.category:<5} [{r.code}] {r.summary}")
        return 0
    if not args.traces or not args.stem:
        ap.error("--traces and --stem are required (unless --list-rules)")

    config = _lint_flag_config(args)

    session = _start_observability(args, "repro-lint")
    with obs.span("repro_lint"):
        traces = TraceSet.open(args.traces, args.stem)
        if args.trace_only:
            report = lint.lint_traces(traces, config)
        else:
            report = lint.lint_run(traces, config, build_config=_build_config(args))
    _finish_observability(args, session)

    if args.out:
        with open(args.out, "w") as fh:
            lint.write_report(report, args.format, fh)
        _LOG.info(f"lint report ({args.format}) written to {args.out}")
        _say(report.summary())
    else:
        import io

        buf = io.StringIO()
        lint.write_report(report, args.format, buf)
        _say(buf.getvalue().rstrip("\n"))

    return _gate_exit(args.fail_on, len(report.errors), len(report.warnings))


def _lint_flag_config(args) -> "object":
    """Shared --disable/--severity/--max-findings parsing (lint, diagnose,
    verify); ``--skew-tolerance`` rides along where the tool defines it."""
    from repro import lint

    overrides = {}
    for pair in args.severity:
        if "=" not in pair:
            raise SystemExit(f"--severity expects RULE=LEVEL, got {pair!r}")
        rule_id, level = pair.split("=", 1)
        overrides[rule_id.strip().upper()] = lint.Severity.parse(level)
    disabled = [r.strip().upper() for spec in args.disable for r in spec.split(",") if r.strip()]
    kwargs = {}
    if getattr(args, "skew_tolerance", None) is not None:
        kwargs["skew_tolerance"] = args.skew_tolerance
    return lint.LintConfig(
        disabled=tuple(disabled),
        severity_overrides=overrides,
        max_findings_per_rule=args.max_findings,
        **kwargs,
    )


def _write_diagnosis(report, fmt: str, stream, verbose: bool) -> None:
    """Render a DiagnosisReport: text adds the attribution tables, json the
    diagnosis block; sarif is the unmodified lint reporter."""
    import json as _json

    from repro import lint
    from repro.diagnose import diagnosis_to_dict, render_diagnosis_text

    if fmt == "text":
        stream.write(render_diagnosis_text(report, verbose=verbose))
        stream.write("\n")
    elif fmt == "json":
        stream.write(_json.dumps(diagnosis_to_dict(report), indent=2, sort_keys=True))
        stream.write("\n")
    else:
        lint.write_report(report, fmt, stream)


def _add_diagnose_threshold_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--z-threshold", type=float, default=3.5, help="MPG210/212 robust-z floor")
    ap.add_argument(
        "--rel-excess",
        type=float,
        default=1.2,
        help="MPG210/212 minimum value/peer-median ratio",
    )
    ap.add_argument(
        "--min-peers", type=int, default=2, help="peers a rank needs before it can be judged"
    )
    ap.add_argument(
        "--bottleneck-rank-share",
        type=float,
        default=0.95,
        help="MPG201: critical-path share one rank must carry",
    )
    ap.add_argument(
        "--serialization-margin",
        type=float,
        default=0.8,
        help="MPG201: runner-up rank's path must be below this fraction of the makespan",
    )
    ap.add_argument(
        "--bottleneck-primitive-share",
        type=float,
        default=0.6,
        help="MPG202: share of non-compute path time one primitive must carry",
    )
    ap.add_argument(
        "--imbalance-ratio",
        type=float,
        default=2.0,
        help="MPG211: peak/mean compute ratio",
    )
    ap.add_argument(
        "--top-edges", type=int, default=10, help="costliest path edges kept in the report"
    )


def _diagnose_config(args, engine: str):
    from repro.diagnose import DiagnoseConfig

    return DiagnoseConfig(
        engine=engine,
        coarsen=args.coarsen,
        replicates=args.replicates,
        seed=args.seed,
        scale=args.scale,
        mode=args.mode,
        z_threshold=args.z_threshold,
        rel_excess=args.rel_excess,
        min_peers=args.min_peers,
        bottleneck_rank_share=args.bottleneck_rank_share,
        serialization_margin=args.serialization_margin,
        bottleneck_primitive_share=args.bottleneck_primitive_share,
        imbalance_ratio=args.imbalance_ratio,
        top_edges=args.top_edges,
        lint=_lint_flag_config(args),
    )


def main_diagnose(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-diagnose",
        description="Automated bottleneck & faulty-rank diagnosis over one trace set.",
    )
    ap.add_argument("--traces", help="directory containing trace files")
    ap.add_argument("--stem", help="trace file stem")
    ap.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif = SARIF 2.1.0 for GitHub code scanning)",
    )
    ap.add_argument("--out", help="write the report to this file instead of stdout")
    ap.add_argument(
        "--engine",
        choices=("auto", "compiled", "incore", "graph"),
        default="auto",
        help="longest-path kernel (auto = compiled); the extracted path is "
        "bit-identical whichever runs",
    )
    _add_coarsen_arg(ap)
    ap.add_argument(
        "--replicates",
        type=int,
        default=0,
        help="Monte-Carlo replicates for the replicate-delay anomaly metric "
        "(0 = off; needs --signature or --measure)",
    )
    ap.add_argument("--signature", help="machine signature JSON (for --replicates)")
    ap.add_argument("--measure", help="measure a preset machine instead of loading a signature")
    ap.add_argument("--measure-nprocs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--mode", choices=("additive", "threshold"), default="additive")
    ap.add_argument("--collective-mode", choices=("hub", "butterfly"), default="hub")
    ap.add_argument("--eager-threshold", type=int, default=None)
    _add_diagnose_threshold_args(ap)
    _add_rule_flags(ap)
    _add_fail_on_arg(ap)
    ap.add_argument(
        "--list-rules", action="store_true", help="print the diagnosis rule catalog and exit"
    )
    _add_logging_args(ap)
    _add_obs_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    from repro import lint
    from repro.diagnose import diagnose_run

    if args.list_rules:
        for r in lint.all_rules("diagnosis"):
            _say(f"{r.id}  {r.severity.name.lower():<7} [{r.code}] {r.summary}")
        return 0
    if not args.traces or not args.stem:
        ap.error("--traces and --stem are required (unless --list-rules)")

    config = _diagnose_config(args, args.engine)
    signature = None
    if args.replicates > 0:
        signature = _load_signature(args)

    session = _start_observability(args, "repro-diagnose")
    with obs.span("repro_diagnose"):
        traces = TraceSet.open(args.traces, args.stem)
        report = diagnose_run(
            traces, config, build_config=_build_config(args), signature=signature
        )
    _finish_observability(args, session)

    verbose = getattr(args, "verbose", 0) >= 1
    if args.out:
        with open(args.out, "w") as fh:
            _write_diagnosis(report, args.format, fh, verbose)
        _LOG.info(f"diagnosis report ({args.format}) written to {args.out}")
        _say(report.summary())
    else:
        import io

        buf = io.StringIO()
        _write_diagnosis(report, args.format, buf, verbose)
        _say(buf.getvalue().rstrip("\n"))

    return _gate_exit(args.fail_on, len(report.errors), len(report.warnings))


def _parse_fail_below(specs: list[str]) -> dict[str, float]:
    """``METRIC=VALUE`` strings -> thresholds dict for gate_report."""
    out: dict[str, float] = {}
    for spec in specs:
        if "=" not in spec:
            raise SystemExit(f"--fail-below expects METRIC=VALUE, got {spec!r}")
        key, _, value = spec.partition("=")
        try:
            out[key.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"--fail-below {spec!r}: {value!r} is not a number") from None
    return out


def main_metrics(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-metrics",
        description="Time-resolved POP-style efficiency metrics (parallel efficiency, "
        "load balance, communication efficiency) over a trace set.",
    )
    ap.add_argument("--traces", help="directory containing mpisim trace files")
    ap.add_argument("--stem", help="trace file stem (with --traces)")
    ap.add_argument(
        "--import",
        dest="import_file",
        metavar="FILE",
        help="import an external Chrome trace-event JSON file instead of "
        "--traces/--stem (see docs/METRICS.md for the mapping)",
    )
    ap.add_argument(
        "--windows",
        type=int,
        default=16,
        metavar="N",
        help="time windows for the efficiency timeline (default 16)",
    )
    ap.add_argument(
        "--ideal",
        action="store_true",
        help="also replay the trace on an ideal network (Dimemas, zero latency / "
        "near-infinite bandwidth) and split CommE into serialization x transfer "
        "efficiency; requires a complete mpisim trace set",
    )
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--out", metavar="FILE", help="write the report to FILE instead of stdout")
    ap.add_argument(
        "--fail-below",
        action="append",
        default=[],
        metavar="METRIC=VALUE",
        help="exit 1 if METRIC is below VALUE; metrics: pe, lb, comm_eff, ser_eff, "
        "transfer_eff, window_pe, window_lb, window_comm_eff (window_* gate the "
        "worst window). Repeatable.",
    )
    _add_logging_args(ap)
    _add_obs_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)
    if bool(args.import_file) == bool(args.traces):
        raise SystemExit("provide either --traces DIR --stem STEM or --import FILE")
    if args.traces and not args.stem:
        raise SystemExit("--traces requires --stem")
    if args.import_file and args.ideal:
        raise SystemExit("--ideal replays the message protocol and requires an mpisim "
                         "trace set (--traces/--stem)")
    thresholds = _parse_fail_below(args.fail_below)
    from repro.metrics.report import GATEABLE

    unknown = sorted(set(thresholds) - set(GATEABLE))
    if unknown:
        raise SystemExit(
            f"--fail-below: unknown metric(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(GATEABLE))}"
        )

    session = _start_observability(args, "repro-metrics")
    with obs.span("repro_metrics", windows=args.windows):
        if args.import_file:
            with obs.span("import_chrome_trace"):
                traces = import_chrome_trace(args.import_file)
            source = args.import_file
            _LOG.info(
                f"imported {args.import_file}: {traces.nprocs} rank(s), "
                f"{sum(len(evs) for evs in traces.load_all())} event(s)"
            )
        else:
            traces = TraceSet.open(args.traces, args.stem)
            source = f"{args.traces}/{args.stem}"
        with obs.span("trace_frame"):
            frame = trace_frame(traces)
        ideal = None
        if args.ideal:
            with obs.span("ideal_replay"):
                ideal = ideal_runtime(traces)
        with obs.span("pop_metrics"):
            pop = pop_metrics(frame, ideal=ideal)
            timeline = pop_timeline(frame, args.windows)
        report = build_report(
            pop, timeline, source=source, program=traces.meta(0).program
        )
        publish_obs_metrics(report)
    _finish_observability(args, session)

    if args.format == "json":
        rendered = json.dumps(report, indent=2)
    else:
        rendered = render_text(report)
    if args.out:
        atomic_write_text(args.out, rendered + "\n")
        _LOG.info(f"POP metrics report ({args.format}) written to {args.out}")
        _say(
            f"pop: PE {report['parallel_efficiency']:.3f} "
            f"LB {report['load_balance']:.3f} "
            f"CommE {report['comm_efficiency']:.3f} "
            f"({len(report['windows'])} windows, worst-window "
            f"PE {report.get('window_pe_min', 0.0):.3f})"
        )
    else:
        _say(rendered)

    violations = gate_report(report, thresholds)
    for v in violations:
        _LOG.error(f"fail-below: {v}")
    return _gate_exit("error", len(violations))


def _write_verify(report, fmt: str, stream, verbose: bool) -> None:
    """Render a VerifyReport: text adds the certificate summary, json the
    verification block; sarif is the unmodified lint reporter."""
    import json as _json

    from repro import lint
    from repro.verify import render_verify_text, verify_to_dict

    if fmt == "text":
        stream.write(render_verify_text(report, verbose=verbose))
        stream.write("\n")
    elif fmt == "json":
        stream.write(_json.dumps(verify_to_dict(report), indent=2, sort_keys=True))
        stream.write("\n")
    else:
        lint.write_report(report, fmt, stream)


def main_verify(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-verify",
        description="Static verification: certified makespan bounds (interval abstract "
        "interpretation, no sampling) and match-nondeterminism / deadlock-potential "
        "analysis of wildcard receives.",
    )
    ap.add_argument("--traces", help="directory containing trace files")
    ap.add_argument("--stem", help="trace file stem")
    ap.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif = SARIF 2.1.0 for GitHub code scanning)",
    )
    ap.add_argument("--out", help="write the report to this file instead of stdout")
    ap.add_argument(
        "--signature",
        help="machine signature JSON — enables the certified-bounds analysis",
    )
    ap.add_argument("--measure", help="measure a preset machine instead of loading a signature")
    ap.add_argument("--measure-nprocs", type=int, default=2)
    ap.add_argument(
        "--quantile",
        type=float,
        default=None,
        metavar="Q",
        help="finite-support cut for unbounded distribution families: intervals "
        "are sound up to this per-draw quantile (default 1 - 1e-12; bounded "
        "families are always exact)",
    )
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--mode", choices=("additive", "threshold"), default="additive")
    _add_coarsen_arg(ap)
    ap.add_argument(
        "--engine",
        choices=("auto", "compiled", "graph"),
        default="auto",
        help="Monte-Carlo engine for the --replicates containment cross-check "
        "(auto = compiled; both bit-identical)",
    )
    ap.add_argument(
        "--replicates",
        type=int,
        default=0,
        help="also propagate N actual Monte-Carlo replicates and cross-check "
        "every one against the certified bounds (0 = static only; needs "
        "--signature or --measure)",
    )
    ap.add_argument(
        "--no-matches",
        action="store_true",
        help="skip the match-nondeterminism / deadlock-potential analysis",
    )
    ap.add_argument("--collective-mode", choices=("hub", "butterfly"), default="hub")
    ap.add_argument("--eager-threshold", type=int, default=None)
    _add_rule_flags(ap)
    _add_fail_on_arg(ap)
    ap.add_argument(
        "--list-rules", action="store_true", help="print the verification rule catalog and exit"
    )
    _add_logging_args(ap)
    _add_obs_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    from repro import lint
    from repro.verify import DEFAULT_QUANTILE, VerifyConfig, verify_run

    if args.list_rules:
        for r in lint.all_rules("verify"):
            _say(f"{r.id}  {r.severity.name.lower():<7} [{r.code}] {r.summary}")
        return 0
    if not args.traces or not args.stem:
        ap.error("--traces and --stem are required (unless --list-rules)")

    config = VerifyConfig(
        quantile=DEFAULT_QUANTILE if args.quantile is None else args.quantile,
        scale=args.scale,
        mode=args.mode,
        coarsen=args.coarsen,
        engine=args.engine,
        replicates=args.replicates,
        seed=args.seed,
        matches=not args.no_matches,
        lint=_lint_flag_config(args),
    )
    signature = None
    if args.signature or args.measure:
        signature = _load_signature(args)
    elif args.replicates > 0:
        raise SystemExit("--replicates needs --signature FILE or --measure PRESET")

    session = _start_observability(args, "repro-verify")
    with obs.span("repro_verify"):
        traces = TraceSet.open(args.traces, args.stem)
        report = verify_run(
            traces, config, build_config=_build_config(args), signature=signature
        )
    _finish_observability(args, session)

    verbose = getattr(args, "verbose", 0) >= 1
    if args.out:
        with open(args.out, "w") as fh:
            _write_verify(report, args.format, fh, verbose)
        _LOG.info(f"verification report ({args.format}) written to {args.out}")
        _say(report.summary())
    else:
        import io

        buf = io.StringIO()
        _write_verify(report, args.format, buf, verbose)
        _say(buf.getvalue().rstrip("\n"))

    return _gate_exit(args.fail_on, len(report.errors), len(report.warnings))


def main_replay(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-replay",
        description="Dimemas-style deterministic replay under target machine parameters.",
    )
    ap.add_argument("--traces", required=True)
    ap.add_argument("--stem", required=True)
    ap.add_argument("--latency", type=float, default=1000.0)
    ap.add_argument("--bandwidth", type=float, default=1.0)
    ap.add_argument("--send-overhead", type=float, default=200.0)
    ap.add_argument("--recv-overhead", type=float, default=200.0)
    ap.add_argument("--eager-threshold", type=int, default=8192)
    ap.add_argument("--cpu-factor", type=float, default=1.0)
    ap.add_argument(
        "--cpu-factors",
        help="comma-separated cpu_factor ladder: replay once per factor "
        "(parallelized by --jobs) and print a what-if table",
    )
    _add_jobs_arg(ap)
    _add_logging_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    from repro.baselines import ReplayParams, replay, replay_ladder

    traces = TraceSet.open(args.traces, args.stem)

    def params_for(cpu_factor: float) -> ReplayParams:
        return ReplayParams(
            latency=args.latency,
            bandwidth=args.bandwidth,
            send_overhead=args.send_overhead,
            recv_overhead=args.recv_overhead,
            eager_threshold=args.eager_threshold,
            cpu_factor=cpu_factor,
        )

    if args.cpu_factors:
        factors = [float(f) for f in args.cpu_factors.split(",") if f.strip()]
        results = replay_ladder(traces, [params_for(f) for f in factors], jobs=args.jobs)
        _say(
            f"target machine: latency {args.latency:g} cy, bandwidth {args.bandwidth:g} B/cy, "
            f"{len(factors)}-point cpu-factor ladder"
        )
        _say(f"{'cpu factor':>11} {'makespan (cy)':>16} {'speedup':>9}")
        for f, res in zip(factors, results):
            _say(f"{f:>11g} {res.makespan:>16,.0f} {res.speedup:>8.2f}x")
        return 0

    params = params_for(args.cpu_factor)
    result = replay(traces, params)
    _say(
        f"target machine: latency {params.latency:g} cy, bandwidth {params.bandwidth:g} B/cy, "
        f"cpu factor {params.cpu_factor:g}"
    )
    _say(f"{'rank':>5} {'original (cy)':>16} {'replayed (cy)':>16}")
    for r, (a, b) in enumerate(zip(result.original_finish_times, result.finish_times)):
        _say(f"{r:>5} {a:>16,.0f} {b:>16,.0f}")
    _say(
        f"makespan: {result.original_makespan:,.0f} -> {result.makespan:,.0f} cy "
        f"(speedup {result.speedup:.2f}x)"
    )
    return 0


def main_serve(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running analysis daemon: analyze / sweep / diagnose / metrics / "
        "verify as HTTP endpoints with a coalescing build cache (see docs/SERVING.md).",
    )
    ap.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    ap.add_argument(
        "--port", type=int, default=8765, help="bind port (default 8765; 0 = ephemeral)"
    )
    ap.add_argument(
        "--trace-root",
        metavar="DIR",
        help="confine request trace dirs under DIR (default: any server-side path)",
    )
    ap.add_argument(
        "--cache-size",
        type=int,
        default=8,
        metavar="N",
        help="live builds kept in the LRU cache (default 8)",
    )
    ap.add_argument(
        "--max-pending",
        type=int,
        default=32,
        metavar="N",
        help="jobs in flight before new requests get 429 (default 32)",
    )
    ap.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job deadline; past it the request gets a 504 (default: none)",
    )
    _add_jobs_arg(ap)
    ap.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="durable result cache: shards and compiled plans persist in DIR, so "
        "repeated identical requests are near-free (see repro.core.checkpoint)",
    )
    ap.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk deadline for pooled execution inside jobs",
    )
    ap.add_argument(
        "--retries", type=int, default=None, metavar="N", help="pool chunk retries (default 2)"
    )
    ap.add_argument(
        "--on-failure",
        choices=("fail", "degrade", "skip"),
        default=None,
        help="pool chunk failure policy (default fail)",
    )
    ap.add_argument(
        "--allow-fault-injection",
        action="store_true",
        help="accept the 'inject' request field (testing only: lets a request crash "
        "its handler or kill a pool worker to prove containment)",
    )
    ap.add_argument("--label", default="repro-serve", help="obs session label")
    _add_logging_args(ap)
    args = ap.parse_args(argv)
    _configure_logging(args)

    import asyncio

    from repro.serve import ServeConfig
    from repro.serve.daemon import serve as _serve

    config = ServeConfig(
        host=args.host,
        port=args.port,
        trace_root=args.trace_root,
        cache_size=args.cache_size,
        max_pending=args.max_pending,
        job_timeout=args.job_timeout,
        jobs=args.jobs,
        policy=_fault_policy(args),
        checkpoint=args.checkpoint,
        allow_fault_injection=args.allow_fault_injection,
        label=args.label,
    )

    def _ready(server) -> None:
        _say(f"repro-serve listening on http://{config.host}:{server.port}")

    try:
        asyncio.run(_serve(config, ready=_ready))
    except KeyboardInterrupt:
        _LOG.info("repro-serve interrupted; shutting down")
    return 0


def _client_payload(args, kind: str) -> dict:
    """Assemble the job kwargs for one repro-client invocation."""
    from repro.trace.reader import find_trace_files

    job: dict = {"stem": args.stem}
    if getattr(args, "upload", False):
        paths = find_trace_files(args.traces, args.stem)
        if not paths:
            raise SystemExit(f"no trace files for stem {args.stem!r} in {args.traces}")
        job["upload"] = {p.name: p.read_text() for p in paths}
    else:
        job["traces"] = args.traces
    if getattr(args, "signature", None):
        job["signature"] = MachineSignature.load(args.signature).to_dict()
    params: dict = {}
    for key in ("seed", "scale", "mode", "engine", "coarsen", "replicates", "windows"):
        value = getattr(args, key, None)
        if value is not None:
            params[key] = value
    if getattr(args, "collective_mode", None) not in (None, "hub"):
        params["collective_mode"] = args.collective_mode
    if getattr(args, "eager_threshold", None) is not None:
        params["eager_threshold"] = args.eager_threshold
    if getattr(args, "quantile", None) is not None:
        params["quantile"] = args.quantile
    if getattr(args, "no_matches", False):
        params["matches"] = False
    if getattr(args, "scales", None):
        params["scales"] = [float(s) for s in args.scales.split(",") if s.strip()]
    if params:
        job["params"] = params
    if getattr(args, "inject", None):
        job["inject"] = args.inject
    return job


def main_client(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-client",
        description="Submit jobs to a repro-serve daemon; output formats are byte-identical "
        "to the corresponding CLI tools (repro-diagnose/-verify/-metrics --format json).",
    )
    ap.add_argument("--url", required=True, help="daemon base URL, e.g. http://127.0.0.1:8765")
    ap.add_argument("--timeout", type=float, default=300.0, help="HTTP timeout in seconds")
    _add_logging_args(ap)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("healthz", help="liveness probe")
    sub.add_parser("metricsz", help="aggregated daemon metrics and span histogram")

    def add_job(name: str, needs_signature: bool) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=f"POST /v1/{name}")
        p.add_argument("--traces", required=True, help="trace directory")
        p.add_argument("--stem", required=True, help="trace file stem")
        p.add_argument(
            "--upload",
            action="store_true",
            help="read the trace files locally and ship their contents inline "
            "(default: the daemon reads --traces server-side)",
        )
        if needs_signature:
            p.add_argument("--signature", help="machine signature JSON (sent inline)")
        p.add_argument("--out", metavar="FILE", help="write the rendered result to FILE")
        p.add_argument("--inject", choices=("error", "kill-worker"), help=argparse.SUPPRESS)
        return p

    def add_analysis_params(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=None)
        p.add_argument("--scale", type=float, default=None)
        p.add_argument("--mode", choices=("additive", "threshold"), default=None)
        p.add_argument(
            "--engine",
            choices=("auto", "incore", "graph", "streaming", "compiled"),
            default=None,
        )
        p.add_argument("--coarsen", choices=("auto", "on", "off"), default=None)
        p.add_argument("--collective-mode", choices=("hub", "butterfly"), default=None)
        p.add_argument("--eager-threshold", type=int, default=None)

    p = add_job("analyze", needs_signature=True)
    add_analysis_params(p)
    p.add_argument("--replicates", type=int, default=None)

    p = add_job("sweep", needs_signature=True)
    add_analysis_params(p)
    p.add_argument("--scales", default=None, help="comma-separated scale factors")

    p = add_job("diagnose", needs_signature=True)
    add_analysis_params(p)
    p.add_argument("--replicates", type=int, default=None)

    p = add_job("metrics", needs_signature=False)
    p.add_argument("--windows", type=int, default=None)
    p.add_argument("--collective-mode", choices=("hub", "butterfly"), default=None)
    p.add_argument("--eager-threshold", type=int, default=None)

    p = add_job("verify", needs_signature=True)
    add_analysis_params(p)
    p.add_argument("--replicates", type=int, default=None)
    p.add_argument("--quantile", type=float, default=None)
    p.add_argument("--no-matches", action="store_true")

    args = ap.parse_args(argv)
    _configure_logging(args)

    from repro.serve import ServeClient, ServeError
    from repro.serve.client import (
        render_analyze,
        render_diagnose,
        render_metrics,
        render_sweep,
        render_verify,
    )

    client = ServeClient(args.url, timeout=args.timeout)
    try:
        if args.command in ("healthz", "metricsz"):
            probe = client.healthz() if args.command == "healthz" else client.metricsz()
            _say(json.dumps(probe, indent=2, sort_keys=True))
            return 0
        envelope = client.job(args.command, **_client_payload(args, args.command))
    except ServeError as exc:
        _LOG.error(f"{exc.code}: {exc.message}")
        return 1

    render = {
        "analyze": render_analyze,
        "sweep": render_sweep,
        "diagnose": render_diagnose,
        "metrics": render_metrics,
        "verify": render_verify,
    }[args.command]
    rendered = render(envelope["result"])
    build = envelope.get("build", {})
    _LOG.info(
        f"{args.command}: build {build.get('digest', '?')} "
        f"({'cache hit' if build.get('cached') else 'built'})"
    )
    if args.out:
        atomic_write_text(args.out, rendered)
        _LOG.info(f"result written to {args.out}")
    else:
        _say(rendered.rstrip("\n"))
    return 0
