"""repro.metrics — time-resolved POP-style efficiency metrics over a
columnar trace/graph analytics layer.

Three pieces (see ``docs/METRICS.md``):

* :mod:`repro.metrics.frames` — the trace set and the built event
  graph as structure-of-arrays :class:`Frame` objects (zero-copy views
  over :class:`~repro.core.compiled.CompiledPlan` arrays on the graph
  side), scriptable Pipit-style.
* :mod:`repro.metrics.pop` / :mod:`repro.metrics.timeline` — whole-run
  and per-time-window POP metrics (parallel efficiency, load balance,
  communication efficiency, serialization/transfer split), with the
  multiplicative identity PE = LB × CommE holding by construction.
* :mod:`repro.metrics.importers` — external trace files (Chrome
  trace-event JSON) as :class:`~repro.trace.reader.TraceSource`
  objects, so real-world traces become first-class workloads.

CLI: ``repro-metrics`` (and ``repro-analyze --pop-metrics``).
"""

from repro.metrics.frames import Frame, FrameGroupBy, edge_frame, node_frame, trace_frame
from repro.metrics.importers import import_chrome_trace
from repro.metrics.pop import (
    PopMetrics,
    RankActivity,
    ideal_params,
    ideal_runtime,
    pop_metrics,
    rank_activity,
)
from repro.metrics.report import build_report, gate_report, publish_obs_metrics, render_text
from repro.metrics.timeline import PopTimeline, pop_timeline, window_occupancy

__all__ = [
    "Frame",
    "FrameGroupBy",
    "PopMetrics",
    "PopTimeline",
    "RankActivity",
    "build_report",
    "edge_frame",
    "gate_report",
    "ideal_params",
    "ideal_runtime",
    "import_chrome_trace",
    "node_frame",
    "pop_metrics",
    "pop_timeline",
    "publish_obs_metrics",
    "rank_activity",
    "render_text",
    "trace_frame",
    "window_occupancy",
]
