"""Schema validation for ``repro-pop-metrics/1`` report files.

Mirrors :mod:`repro.obs.validate`: a dependency-free structural
validator plus a tiny CLI (``python -m repro.metrics.validate
report.json [...]``) used by the ``metrics-smoke`` CI job to prove the
artifacts are well-formed before uploading them.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

from repro.metrics.report import SCHEMA

__all__ = ["validate_pop_report", "validate_pop_report_file", "main"]

_EFFICIENCY_KEYS = ("parallel_efficiency", "load_balance", "comm_efficiency")
_TOL = 1e-6  # fp headroom on [0, 1] bounds


def _num(x: object) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) and math.isfinite(x)


def _check_efficiencies(obj: dict, errors: list[str], where: str) -> None:
    for key in _EFFICIENCY_KEYS:
        v = obj.get(key)
        if not _num(v):
            errors.append(f"{where}: {key} missing or not a finite number")
        elif not -_TOL <= v <= 1.0 + _TOL:
            errors.append(f"{where}: {key} = {v} outside [0, 1]")


def validate_pop_report(obj: object) -> list[str]:
    """Structural errors in a POP-metrics report dict ([] = valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"report must be a JSON object, got {type(obj).__name__}"]
    if obj.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {obj.get('schema')!r}")
    nprocs = obj.get("nprocs")
    if not isinstance(nprocs, int) or nprocs < 1:
        errors.append(f"nprocs must be a positive int, got {nprocs!r}")
        nprocs = 0
    if not _num(obj.get("runtime")) or obj.get("runtime", -1) < 0:
        errors.append("runtime missing or negative")
    _check_efficiencies(obj, errors, "run")
    for key in ("rank_useful", "rank_comm", "rank_runtime", "rank_events"):
        arr = obj.get(key)
        if not isinstance(arr, list) or (nprocs and len(arr) != nprocs):
            errors.append(f"{key} must be a list of length nprocs={nprocs}")
        elif not all(_num(v) and v >= 0 for v in arr):
            errors.append(f"{key} has non-finite or negative entries")

    windows = obj.get("windows")
    if not isinstance(windows, list):
        errors.append("windows must be a list (possibly empty)")
        return errors
    prev_end = 0.0
    for i, w in enumerate(windows):
        where = f"window[{i}]"
        if not isinstance(w, dict):
            errors.append(f"{where}: not an object")
            continue
        if w.get("index") != i:
            errors.append(f"{where}: index {w.get('index')!r} != position {i}")
        t0, t1 = w.get("t_start"), w.get("t_end")
        if not (_num(t0) and _num(t1)) or t1 < t0:
            errors.append(f"{where}: bad bounds [{t0!r}, {t1!r})")
        else:
            if i and abs(t0 - prev_end) > _TOL * max(1.0, abs(prev_end)):
                errors.append(f"{where}: t_start {t0} != previous t_end {prev_end}")
            prev_end = t1
        _check_efficiencies(w, errors, where)
    if windows and _num(obj.get("runtime")):
        runtime = obj["runtime"]
        if abs(prev_end - runtime) > _TOL * max(1.0, runtime):
            errors.append(f"windows end at {prev_end}, runtime is {runtime}")
    return errors


def validate_pop_report_file(path: str | Path) -> list[str]:
    try:
        with open(path) as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read {path}: {exc}"]
    return validate_pop_report(obj)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.metrics.validate report.json [...]", file=sys.stderr)
        return 2
    status = 0
    for path in args:
        errors = validate_pop_report_file(path)
        if errors:
            status = 1
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
