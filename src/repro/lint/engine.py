"""Lint engine: run the rule pack over traces and built graphs.

The analyzer is a *pre-flight* pass: it inspects raw per-rank event
streams and (when they are coherent enough to build) the resulting
message-passing graph, **without executing the perturbation engine**.
Entry points:

:func:`lint_run`
    The full pass — trace rules, then a guarded graph build, then
    graph rules.  A build failure is converted into the finding of the
    rule owning the error's diagnostic code instead of crashing, so a
    malformed trace produces a report, never a stack trace.
:func:`lint_traces`
    Trace-level rules only (no graph is ever built).
:func:`lint_build`
    Graph-level rules over an existing
    :class:`~repro.core.builder.BuildResult` (or a hand-built
    :class:`~repro.core.graph.MessagePassingGraph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

from repro import obs
from repro.core.builder import BuildResult, build_graph
from repro.core.diagnostics import DiagnosticError
from repro.core.graph import MessagePassingGraph
from repro.core.primitives import BuildConfig
from repro.lint.model import Finding, LintConfig, Severity
from repro.lint.registry import all_rules, rule_for_code, run_rule
from repro.trace.events import EventRecord, TraceMeta
from repro.trace.reader import TraceSource

__all__ = ["LintContext", "LintReport", "lint_run", "lint_traces", "lint_build"]


class LintContext:
    """Everything a rule may inspect, loaded lazily.

    ``per_rank`` materializes the event lists on first use (rules share
    the one copy); ``graph`` is the built message-passing graph or
    ``None`` when no build was possible — graph rules that need it must
    tolerate its absence.
    """

    def __init__(
        self,
        trace_set: TraceSource | None = None,
        per_rank: list[list[EventRecord]] | None = None,
        build: BuildResult | None = None,
        graph: MessagePassingGraph | None = None,
        build_config: BuildConfig | None = None,
    ) -> None:
        if trace_set is None and per_rank is None and build is None and graph is None:
            raise ValueError("LintContext needs a trace_set, events, a build, or a graph")
        self.trace_set = trace_set
        self._per_rank = per_rank
        self.build = build
        self._graph = graph
        self.build_config = build_config
        self.build_error: DiagnosticError | None = None

    @classmethod
    def from_build(cls, build: BuildResult) -> "LintContext":
        return cls(per_rank=build.events, build=build, build_config=build.config)

    @cached_property
    def per_rank(self) -> list[list[EventRecord]]:
        """Per-rank event lists (empty when only a graph was supplied)."""
        if self._per_rank is not None:
            return self._per_rank
        if self.build is not None:
            return self.build.events
        if self.trace_set is not None:
            return self.trace_set.load_all()
        return []

    @cached_property
    def metas(self) -> list[TraceMeta | None]:
        if self.trace_set is not None and hasattr(self.trace_set, "meta"):
            return [self.trace_set.meta(r) for r in range(len(self.per_rank))]
        return [None] * len(self.per_rank)

    @cached_property
    def paths(self) -> list[str | None]:
        """Per-rank trace file paths (None for in-memory traces)."""
        readers = getattr(self.trace_set, "readers", None)
        if readers:
            return [str(r.path) for r in readers]
        return [None] * len(self.per_rank)

    @property
    def graph(self) -> MessagePassingGraph | None:
        if self._graph is not None:
            return self._graph
        if self.build is not None:
            return self.build.graph
        return None

    def path_of(self, rank: int | None) -> str | None:
        if rank is None or not 0 <= rank < len(self.paths):
            return None
        return self.paths[rank]

    def try_build(self) -> None:
        """Attempt the graph build, capturing structured failures.

        Only called by the engine after trace rules ran; any
        :class:`DiagnosticError` (including ``MatchError``) is recorded
        on ``build_error`` for conversion into a finding.
        """
        if self.build is not None or self._graph is not None:
            return
        source = self.trace_set
        if source is None:
            from repro.trace.reader import MemoryTrace

            source = MemoryTrace(self.per_rank) if self.per_rank else None
        if source is None:
            return
        try:
            self.build = build_graph(source, self.build_config)
        except DiagnosticError as exc:
            self.build_error = exc


@dataclass
class LintReport:
    """All findings of one lint pass, plus enough context to render."""

    findings: list[Finding] = field(default_factory=list)
    nprocs: int = 0
    event_count: int = 0
    rules_run: tuple[str, ...] = ()
    graph_checked: bool = False

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def notes(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity findings were reported."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule_id] = out.get(f.rule_id, 0) + 1
        return out

    def summary(self) -> str:
        scope = f"{self.nprocs} ranks, {self.event_count} events"
        if self.graph_checked:
            scope += ", graph checked"
        return (
            f"{scope}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.notes)} note(s)"
        )


def _finalize(
    ctx: LintContext, findings: Iterable[Finding], rules_run: Iterable[str]
) -> LintReport:
    ordered = sorted(
        (f.with_path(ctx.path_of(f.rank)) for f in findings),
        key=lambda f: (
            -int(f.severity),
            f.rule_id,
            f.rank if f.rank is not None else -1,
            f.seq if f.seq is not None else -1,
            f.node if f.node is not None else -1,
        ),
    )
    for f in ordered:
        obs.add(f"lint.findings.{f.severity.name.lower()}")
    return LintReport(
        findings=ordered,
        nprocs=len(ctx.per_rank),
        event_count=sum(len(evs) for evs in ctx.per_rank),
        rules_run=tuple(rules_run),
        graph_checked=ctx.graph is not None,
    )


def _run_rules(ctx: LintContext, config: LintConfig, category: str | None) -> LintReport:
    findings: list[Finding] = []
    rules_run: list[str] = []
    for r in all_rules(category):
        if not config.enabled(r):
            continue
        rules_run.append(r.id)
        findings.extend(run_rule(r, ctx, config))
    return _finalize(ctx, findings, rules_run)


def lint_traces(trace_set: TraceSource, config: LintConfig | None = None) -> LintReport:
    """Run the trace-level rules only (MPG0xx); no graph is built."""
    config = config or LintConfig()
    with obs.span("lint", layer="trace"):
        return _run_rules(LintContext(trace_set=trace_set), config, "trace")


def lint_build(
    build: BuildResult | MessagePassingGraph, config: LintConfig | None = None
) -> LintReport:
    """Run the graph-level rules (MPG1xx) over an existing build.

    Accepts a :class:`BuildResult` or a bare
    :class:`MessagePassingGraph` (hand-built graphs in tests have no
    trace events; event-based graph rules then report nothing).
    """
    config = config or LintConfig()
    if isinstance(build, MessagePassingGraph):
        ctx = LintContext(graph=build, per_rank=[])
    else:
        ctx = LintContext.from_build(build)
    with obs.span("lint", layer="graph"):
        return _run_rules(ctx, config, "graph")


def lint_run(
    trace_set: TraceSource,
    config: LintConfig | None = None,
    build_config: BuildConfig | None = None,
) -> LintReport:
    """The full pre-flight pass: trace rules, guarded build, graph rules."""
    config = config or LintConfig()
    with obs.span("lint", layer="all"):
        ctx = LintContext(trace_set=trace_set, build_config=build_config)
        findings: list[Finding] = []
        rules_run: list[str] = []
        for r in all_rules("trace"):
            if not config.enabled(r):
                continue
            rules_run.append(r.id)
            findings.extend(run_rule(r, ctx, config))

        ctx.try_build()
        for r in all_rules("graph"):
            if not config.enabled(r):
                continue
            rules_run.append(r.id)
            findings.extend(run_rule(r, ctx, config))

        # A build failure whose code no rule finding already covers
        # becomes a finding itself — the report never hides the reason
        # the graph could not be checked.
        if ctx.build_error is not None:
            err = ctx.build_error
            owner = rule_for_code(err.code)
            covered = {f.code for f in findings}
            if owner is not None and config.enabled(owner):
                if err.code not in covered:
                    severity = config.severity_for(owner.id, owner.severity)
                    findings.append(
                        owner.finding(
                            f"graph build failed: {err}", rank=err.rank, seq=err.seq
                        ).with_severity(severity)
                    )
            elif err.code not in covered:
                findings.append(
                    Finding(
                        rule_id="MPG000",
                        code=err.code,
                        severity=Severity.ERROR,
                        message=f"graph build failed: {err}",
                        rank=err.rank,
                        seq=err.seq,
                    )
                )
        return _finalize(ctx, findings, rules_run)
