"""Tests for the trace event model."""

import pytest

from repro.trace.events import (
    COLLECTIVE_KINDS,
    COMPLETION_KINDS,
    EventKind,
    EventRecord,
    NONBLOCKING_KINDS,
    PAIRWISE_KINDS,
    TraceMeta,
    check_rank_order,
)


def ev(**kw):
    base = dict(rank=0, seq=0, kind=EventKind.SEND, t_start=0.0, t_end=1.0)
    base.update(kw)
    return EventRecord(**base)


class TestEventKind:
    def test_partitions_disjoint(self):
        assert not (PAIRWISE_KINDS & COLLECTIVE_KINDS)
        assert not (COMPLETION_KINDS & COLLECTIVE_KINDS)
        assert not (NONBLOCKING_KINDS - PAIRWISE_KINDS)

    def test_predicates(self):
        assert EventKind.SEND.is_pairwise
        assert EventKind.ISEND.is_nonblocking
        assert EventKind.WAITALL.is_completion
        assert EventKind.ALLREDUCE.is_collective
        assert EventKind.INIT.is_local
        assert not EventKind.RECV.is_collective

    def test_every_kind_covered_once(self):
        classified = (
            PAIRWISE_KINDS | COLLECTIVE_KINDS | COMPLETION_KINDS
            | {EventKind.INIT, EventKind.FINALIZE}
        )
        assert classified == set(EventKind)


class TestEventRecord:
    def test_duration(self):
        assert ev(t_start=10.0, t_end=35.0).duration == 25.0

    def test_key(self):
        assert ev(rank=3, seq=7).key == (3, 7)

    def test_rejects_reversed_times(self):
        with pytest.raises(ValueError):
            ev(t_start=5.0, t_end=4.0)

    def test_rejects_negative_rank_seq(self):
        with pytest.raises(ValueError):
            ev(rank=-1)
        with pytest.raises(ValueError):
            ev(seq=-1)

    def test_reqs_normalized_to_tuples(self):
        e = ev(kind=EventKind.WAITALL, reqs=[1, 2], completed=[1, 2])
        assert e.reqs == (1, 2)
        assert e.completed == (1, 2)

    def test_with_times(self):
        e = ev().with_times(100.0, 200.0)
        assert (e.t_start, e.t_end) == (100.0, 200.0)
        assert e.kind == EventKind.SEND

    def test_describe_mentions_metadata(self):
        e = ev(kind=EventKind.ISEND, peer=3, tag=9, nbytes=128, req=5)
        text = e.describe()
        assert "ISEND" in text and "peer=3" in text and "req=5" in text
        c = ev(kind=EventKind.ALLREDUCE, coll_seq=2)
        assert "coll#2" in c.describe()


class TestTraceMeta:
    def test_valid(self):
        m = TraceMeta(rank=2, nprocs=4, program="x", clock_offset=5.0, clock_drift=1e-5)
        assert m.rank == 2

    def test_rejects_rank_out_of_range(self):
        with pytest.raises(ValueError):
            TraceMeta(rank=4, nprocs=4)

    def test_dict_round_trip(self):
        m = TraceMeta(rank=1, nprocs=8, program="app", clock_offset=-3.0, clock_drift=2e-6)
        assert TraceMeta.from_dict(m.to_dict()) == m


class TestCheckRankOrder:
    def test_accepts_ordered(self):
        events = [ev(seq=0, t_start=0.0, t_end=1.0), ev(seq=1, t_start=1.0, t_end=2.0)]
        check_rank_order(events)

    def test_rejects_gap_in_seq(self):
        events = [ev(seq=0), ev(seq=2, t_start=2.0, t_end=3.0)]
        with pytest.raises(ValueError, match="non-dense"):
            check_rank_order(events)

    def test_rejects_time_travel(self):
        events = [ev(seq=0, t_start=0.0, t_end=10.0), ev(seq=1, t_start=5.0, t_end=12.0)]
        with pytest.raises(ValueError, match="backwards"):
            check_rank_order(events)
