"""Shared fixtures and helpers for the test suite.

Traced runs are expensive relative to assertions, so commonly used
traces are produced once per session.  The ``plan_program`` helper turns
a declarative "round plan" into a rank program — the basis for the
property-based tests, because any plan yields a *valid* complete run by
construction (all ranks derive identical structure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BuildConfig, PerturbationSpec, StreamingTraversal, build_graph, propagate
from repro.mpisim import (
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    RankInfo,
    Recv,
    Reduce,
    ReduceScatter,
    Scan,
    Send,
    Sendrecv,
    Waitall,
    run,
)
from repro.noise import Constant, Exponential, MachineSignature

DELAY_TOL = 1e-6


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def const_signature():
    """Deterministic signature: exact-arithmetic checks."""
    return MachineSignature(
        os_noise=Constant(100.0),
        latency=Constant(50.0),
        per_byte=Constant(0.01),
        name="const",
    )


@pytest.fixture
def mixed_signature():
    """Random-distribution signature: statistical checks."""
    return MachineSignature(
        os_noise=Exponential(80.0),
        latency=Exponential(40.0),
        per_byte=Constant(0.005),
        name="mixed",
    )


@pytest.fixture
def const_spec(const_signature):
    return PerturbationSpec(const_signature, seed=7)


@pytest.fixture
def mixed_spec(mixed_signature):
    return PerturbationSpec(mixed_signature, seed=7)


# ---------------------------------------------------------------------------
# Canned traced runs (session-scoped: read-only from tests)
# ---------------------------------------------------------------------------


def _ring_program(me: RankInfo):
    p = me.size
    for _ in range(3):
        yield Compute(10_000)
        if me.rank == 0:
            yield Send(dest=1, nbytes=512)
            yield Recv(source=p - 1)
        else:
            yield Recv(source=me.rank - 1)
            yield Send(dest=(me.rank + 1) % p, nbytes=512)
    yield Allreduce(nbytes=64)


def _stencil_program(me: RankInfo):
    p = me.size
    left, right = (me.rank - 1) % p, (me.rank + 1) % p
    for _ in range(3):
        r1 = yield Irecv(source=left, tag=1)
        r2 = yield Irecv(source=right, tag=2)
        s1 = yield Isend(dest=right, nbytes=256, tag=1)
        s2 = yield Isend(dest=left, nbytes=256, tag=2)
        yield Compute(5_000)
        yield Waitall([r1, r2, s1, s2])
    yield Reduce(root=0, nbytes=8)


@pytest.fixture(scope="session")
def ring_trace():
    return run(_ring_program, nprocs=4, seed=3).trace


@pytest.fixture(scope="session")
def stencil_trace():
    return run(_stencil_program, nprocs=5, seed=3).trace


# ---------------------------------------------------------------------------
# Declarative random-plan programs (property tests)
# ---------------------------------------------------------------------------


def plan_program(plan: list[tuple]):
    """Build a rank program from a round plan.

    Every rank executes the same plan, so the run is always valid.
    Round forms:

    - ``("compute", base_cycles)`` — per-rank work ``base * (rank+1)``
    - ``("ring", nbytes)`` — blocking token pass 0→1→...→0
    - ``("xchg", nbytes)`` — neighbor sendrecv ring
    - ``("nb", nbytes)`` — nonblocking bidirectional halo + waitall
    - ``("allreduce", nbytes)`` / ``("barrier",)`` / ``("bcast", root, nbytes)``
      / ``("reduce", root, nbytes)`` / ``("scan", nbytes)`` /
      ``("rscatter", nbytes)``
    """

    def program(me: RankInfo):
        p = me.size
        for round_ in plan:
            kind = round_[0]
            if kind == "compute":
                yield Compute(round_[1] * (me.rank + 1))
            elif kind == "ring" and p > 1:
                nxt, prv = (me.rank + 1) % p, (me.rank - 1) % p
                if me.rank == 0:
                    yield Send(dest=nxt, nbytes=round_[1])
                    yield Recv(source=prv)
                else:
                    yield Recv(source=prv)
                    yield Send(dest=nxt, nbytes=round_[1])
            elif kind == "xchg" and p > 1:
                yield Sendrecv(
                    dest=(me.rank + 1) % p,
                    send_nbytes=round_[1],
                    source=(me.rank - 1) % p,
                )
            elif kind == "nb" and p > 1:
                left, right = (me.rank - 1) % p, (me.rank + 1) % p
                r1 = yield Irecv(source=left, tag=3)
                r2 = yield Irecv(source=right, tag=4)
                s1 = yield Isend(dest=right, nbytes=round_[1], tag=3)
                s2 = yield Isend(dest=left, nbytes=round_[1], tag=4)
                yield Compute(1_000)
                yield Waitall([r1, r2, s1, s2])
            elif kind == "allreduce":
                yield Allreduce(nbytes=round_[1])
            elif kind == "barrier":
                yield Barrier()
            elif kind == "bcast":
                yield Bcast(root=round_[1] % p, nbytes=round_[2])
            elif kind == "reduce":
                yield Reduce(root=round_[1] % p, nbytes=round_[2])
            elif kind == "scan":
                yield Scan(nbytes=round_[1])
            elif kind == "rscatter":
                yield ReduceScatter(nbytes=round_[1])

    return program


def assert_engines_agree(trace, spec, config: BuildConfig | None = None, mode: str = "additive"):
    """Assert all three engines agree — the compiled plan bit-for-bit
    against in-core, streaming within ``DELAY_TOL`` — and return the
    in-core result."""
    from repro.core import compiled_plan

    config = config or BuildConfig()
    build = build_graph(trace, config)
    incore = propagate(build, spec, mode=mode)
    compiled = compiled_plan(build).propagate_one(spec, mode=mode)
    assert compiled.final_delay == incore.final_delay, "compiled engine diverged from in-core"
    assert compiled.clamped_edges == incore.clamped_edges
    streaming = StreamingTraversal(spec, config=config, mode=mode).run(trace)
    assert len(incore.final_delay) == len(streaming.final_delay)
    for r, (a, b) in enumerate(zip(incore.final_delay, streaming.final_delay)):
        assert a == pytest.approx(b, abs=DELAY_TOL), f"rank {r}: incore {a} != streaming {b}"
    return incore
