"""FIG1 — alternating computation/messaging phases (Fig. 1).

Regenerates the paper's concept figure from a real trace: the c_i/m_i
phase sequence of one rank of the token ring, plus the ASCII swim-lane
rendering of all ranks.
"""

import pytest

from benchmarks._common import bench_timings, emit, table
from repro.apps import TokenRingParams, token_ring
from repro.mpisim import run
from repro.viz import phases, render_ascii


@pytest.fixture(scope="module")
def ring_trace():
    return run(token_ring(TokenRingParams(traversals=2)), nprocs=4, seed=0).trace


def test_fig1_phase_sequence(ring_trace, benchmark):
    events = list(ring_trace.events_of(1))
    segs = benchmark(phases, events)

    rows = [[s.label, s.kind, f"{s.t_start:.0f}", f"{s.duration:.0f}"] for s in segs]
    out = table(["phase", "kind", "start (cy)", "duration (cy)"], rows, widths=[16, 8, 12, 14])
    out += "\n\n" + render_ascii(ring_trace, width=90)
    kinds = [s.kind for s in segs]
    emit(
        "fig1_phases",
        out,
        params={"app": "token_ring", "nprocs": 4, "traversals": 2, "rank": 1},
        timings=bench_timings(benchmark),
        metrics={
            "segments": len(segs),
            "message_phases": kinds.count("message"),
            "compute_phases": kinds.count("compute"),
        },
    )

    # Shape: compute phases are always separated by messaging (two gaps
    # cannot be adjacent — Fig. 1's alternation; zero-length gaps between
    # back-to-back calls produce adjacent message phases, which is fine),
    # and message phases correspond one-to-one to traced events.
    for a, b in zip(kinds, kinds[1:]):
        assert not (a == "compute" and b == "compute")
    assert kinds.count("message") == len(events)
    assert kinds.count("compute") >= 1
