"""Token ring (§6.1): the paper's evaluation workload.

"A token ring is one of the simplest messaging topologies found in
realistic parallel programs."  Each rank owns n/p particles of an
n-body problem; it packages its particle set into a token, passes it to
rank (i+1) mod p, computes interactions against each arriving token,
and after p hops has seen every particle.  The paper traced a 128-
processor ring and verified that injecting noise per message grows the
runtime by (traversals × noise × p).

``token_ring(...)`` builds the rank program; ``TokenRingParams``
captures the workload knobs (the compute_cycles default approximates
the n²/p² pairwise-interaction cost of a token against local
particles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Compute, Op, RankInfo, Recv, Send

__all__ = ["TokenRingParams", "token_ring"]


@dataclass(frozen=True)
class TokenRingParams:
    """Configuration of the token-ring n-body surrogate.

    traversals:
        Full trips of each token around the ring (the paper's run used
        around 10).
    token_bytes:
        Size of the particle-set token.
    compute_cycles:
        Local interaction work per received token.
    tag:
        Message tag for the token messages.
    """

    traversals: int = 10
    token_bytes: int = 4096
    compute_cycles: float = 50_000.0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.traversals < 1:
            raise ValueError("traversals must be >= 1")
        if self.token_bytes < 0:
            raise ValueError("token_bytes must be >= 0")
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be >= 0")


def token_ring(params: TokenRingParams = TokenRingParams()):
    """Rank program factory for the §6.1 token ring.

    The token circulates sequentially: rank 0 starts each traversal by
    sending its token to rank 1, then every rank forwards after
    computing against the received set.  A single token travels the
    ring (the fully synchronous case whose noise response the paper
    verifies to be ``traversals × noise × p``).
    """

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        nxt = (me.rank + 1) % p
        prv = (me.rank - 1) % p
        if p == 1:
            for _ in range(params.traversals):
                yield Compute(params.compute_cycles)
            return
        for _ in range(params.traversals):
            if me.rank == 0:
                yield Compute(params.compute_cycles)
                yield Send(dest=nxt, nbytes=params.token_bytes, tag=params.tag)
                yield Recv(source=prv, tag=params.tag)
            else:
                yield Recv(source=prv, tag=params.tag)
                yield Compute(params.compute_cycles)
                yield Send(dest=nxt, nbytes=params.token_bytes, tag=params.tag)

    return program
