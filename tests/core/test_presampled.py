"""Tests for the presampled sweep fast path."""

import pytest

from repro.core import (
    PerturbationSpec,
    build_graph,
    propagate,
    propagate_presampled,
    sample_edge_deltas,
)
from repro.noise import Constant, Exponential, MachineSignature


@pytest.fixture(scope="module")
def build(ring_trace):
    return build_graph(ring_trace)


def spec(seed=3, scale=1.0, quantum=0.0):
    return PerturbationSpec(
        MachineSignature(
            os_noise=Exponential(80.0),
            latency=Exponential(40.0),
            per_byte=Constant(0.003),
            os_quantum=quantum,
        ),
        seed=seed,
        scale=scale,
    )


class TestEquivalence:
    @pytest.mark.parametrize("scale", [0.0, 0.5, 1.0, 4.0, -1.0])
    def test_matches_fresh_propagate(self, build, scale):
        s = spec()
        raw = sample_edge_deltas(build, s)
        fast = propagate_presampled(build, raw, scale=scale)
        slow = propagate(build, s.scaled(scale))
        assert fast.final_delay == pytest.approx(slow.final_delay)
        assert fast.clamped_edges == slow.clamped_edges

    def test_matches_in_threshold_mode(self, build):
        s = spec()
        raw = sample_edge_deltas(build, s)
        fast = propagate_presampled(build, raw, scale=2.0, mode="threshold")
        slow = propagate(build, s.scaled(2.0), mode="threshold")
        assert fast.final_delay == pytest.approx(slow.final_delay)

    def test_matches_with_interval_scaling(self, build):
        s = spec(quantum=2000.0)
        raw = sample_edge_deltas(build, s)
        fast = propagate_presampled(build, raw, scale=3.0)
        slow = propagate(build, s.scaled(3.0))
        assert fast.final_delay == pytest.approx(slow.final_delay)

    def test_base_spec_scale_respected_by_sweep(self, ring_trace):
        """sweep_scales composes the spec's own scale with the ladder."""
        from repro.core import sweep_scales

        s2 = spec(scale=2.0)
        doubled = sweep_scales(ring_trace, s2, [1.0])
        base = sweep_scales(ring_trace, spec(scale=1.0), [2.0])
        assert doubled.points[0].delays == pytest.approx(base.points[0].delays)


class TestValidation:
    def test_length_checked(self, build):
        with pytest.raises(ValueError, match="length"):
            propagate_presampled(build, [0.0], scale=1.0)

    def test_mode_checked(self, build):
        raw = sample_edge_deltas(build, spec())
        with pytest.raises(ValueError, match="mode"):
            propagate_presampled(build, raw, mode="quantum")
