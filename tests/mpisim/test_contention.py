"""Tests for link-contention modeling (the Dimemas §1.1 network
contention parameter, implemented in the simulated machine)."""

import pytest

from repro.mpisim import Compute, Isend, Machine, NetworkModel, Recv, Send, Wait, run

NET = NetworkModel(
    latency=100.0,
    bandwidth=1.0,
    send_overhead=10.0,
    recv_overhead=10.0,
    eager_threshold=100_000,
)


def go(prog, p, contention, seed=0):
    net = NET.with_contention() if contention else NET
    return run(prog, machine=Machine(nprocs=p, network=net), seed=seed)


def two_sends(me):
    if me.rank == 0:
        r1 = yield Isend(dest=1, nbytes=10_000, tag=1)
        r2 = yield Isend(dest=1, nbytes=10_000, tag=2)
        yield Wait(r1)
        yield Wait(r2)
    else:
        yield Recv(source=0, tag=1)
        yield Recv(source=0, tag=2)


class TestSerialization:
    def test_same_link_serializes(self):
        free = go(two_sends, 2, contention=False)
        cont = go(two_sends, 2, contention=True)
        # Second 10 kB payload waits for the first: ~payload_time extra.
        assert cont.makespan - free.makespan == pytest.approx(10_000.0, rel=0.05)

    def test_distinct_links_do_not_interact(self):
        def prog(me):
            if me.rank == 0:
                r1 = yield Isend(dest=1, nbytes=10_000, tag=1)
                r2 = yield Isend(dest=2, nbytes=10_000, tag=2)
                yield Wait(r1)
                yield Wait(r2)
            elif me.rank in (1, 2):
                yield Recv(source=0)

        free = go(prog, 3, contention=False)
        cont = go(prog, 3, contention=True)
        assert cont.makespan == pytest.approx(free.makespan)

    def test_directions_are_independent(self):
        def prog(me):
            if me.rank == 0:
                r = yield Isend(dest=1, nbytes=10_000, tag=1)
                yield Recv(source=1, tag=2)
                yield Wait(r)
            else:
                r = yield Isend(dest=0, nbytes=10_000, tag=2)
                yield Recv(source=0, tag=1)
                yield Wait(r)

        free = go(prog, 2, contention=False)
        cont = go(prog, 2, contention=True)
        assert cont.makespan == pytest.approx(free.makespan)

    def test_zero_payload_messages_never_contend(self):
        def prog(me):
            if me.rank == 0:
                for tag in range(5):
                    yield Send(dest=1, nbytes=0, tag=tag)
            else:
                for tag in range(5):
                    yield Recv(source=0, tag=tag)

        free = go(prog, 2, contention=False)
        cont = go(prog, 2, contention=True)
        assert cont.makespan == pytest.approx(free.makespan)

    def test_spaced_sends_do_not_contend(self):
        def prog(me):
            if me.rank == 0:
                r1 = yield Isend(dest=1, nbytes=1_000, tag=1)
                yield Compute(50_000.0)  # link long idle before next send
                r2 = yield Isend(dest=1, nbytes=1_000, tag=2)
                yield Wait(r1)
                yield Wait(r2)
            else:
                yield Recv(source=0, tag=1)
                yield Recv(source=0, tag=2)

        free = go(prog, 2, contention=False)
        cont = go(prog, 2, contention=True)
        assert cont.makespan == pytest.approx(free.makespan)


class TestConfig:
    def test_with_contention_copies(self):
        net = NET.with_contention()
        assert net.contention and not NET.contention
        assert net.latency == NET.latency
        assert net.with_contention(False).contention is False

    def test_deterministic(self):
        a = go(two_sends, 2, contention=True)
        b = go(two_sends, 2, contention=True)
        assert a.finish_times == b.finish_times
