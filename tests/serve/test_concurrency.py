"""Concurrency regression suite for the fixes the daemon flushed out.

These are the library-level races the serving work exposed: checkpoint
shards hammered from many threads, the metrics registry as a shared
sink, per-task obs sessions, and the per-build compile memo.  Each test
would flake (or deadlock) against the pre-fix implementations.
"""

import concurrent.futures as cf
import json
import threading

import pytest

from repro import obs
from repro.core import BuildConfig, build_graph, compiled_plan
from repro.core.checkpoint import CheckpointStore, ShardKey
from repro.obs.metrics import MetricsRegistry
from repro.mpisim import run
from tests.conftest import _ring_program


@pytest.fixture(scope="module")
def ring_build():
    trace = run(_ring_program, nprocs=4, seed=3).trace
    return build_graph(trace, BuildConfig())


class TestCheckpointStoreHammering:
    def test_concurrent_put_get_same_key_never_tears(self, tmp_path):
        """16 threads × 30 rounds of put+get on one key: every get sees
        either a miss or the complete row — never a torn/corrupt shard."""
        store = CheckpointStore(tmp_path)
        key = ShardKey(kind="mc", seed=1, signature="s", scale=1.0,
                       mode="additive", engine="compiled", context="c")
        row = [float(i) * 1.5 for i in range(64)]

        def hammer(worker):
            for _ in range(30):
                store.put(key, row)
                got = store.get(key)
                assert got is None or got == row
            return worker

        with cf.ThreadPoolExecutor(16) as ex:
            assert sorted(ex.map(hammer, range(16))) == list(range(16))
        assert store.get(key) == row
        # exactly one shard file, no leftover temp files
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_concurrent_distinct_keys_all_land(self, tmp_path):
        store = CheckpointStore(tmp_path)

        def put_one(i):
            key = ShardKey(kind="mc", seed=i, signature="s", scale=1.0,
                           mode="additive", engine="graph", context="c")
            store.put(key, [float(i)])
            return store.get(key)

        with cf.ThreadPoolExecutor(12) as ex:
            rows = list(ex.map(put_one, range(48)))
        assert rows == [[float(i)] for i in range(48)]


class TestMetricsRegistryAtomicity:
    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()

        def bump(_):
            for _ in range(1000):
                reg.counter("hits").inc()

        with cf.ThreadPoolExecutor(8) as ex:
            list(ex.map(bump, range(8)))
        assert reg.counter("hits").value == 8000

    def test_concurrent_merge_totals_match_serial(self):
        reg = MetricsRegistry()
        donor = MetricsRegistry()
        donor.counter("n").inc(5)
        donor.timer("t").observe(0.25)
        snapshot = donor.snapshot()

        def merge(_):
            for _ in range(100):
                reg.merge(snapshot)

        with cf.ThreadPoolExecutor(8) as ex:
            list(ex.map(merge, range(8)))
        assert reg.counter("n").value == 8 * 100 * 5
        assert reg.timer("t").count == 8 * 100


class TestSessionScopeIsolation:
    def test_parallel_task_sessions_do_not_cross_contaminate(self):
        """Threads with their own session_scope record only their own
        spans; the daemon-style absorb produces exact aggregate counts."""
        daemon = obs.Session("aggregate")
        barrier = threading.Barrier(6)

        def one_request(i):
            session = obs.Session(f"req{i}")
            with obs.session_scope(session=session):
                barrier.wait()
                for _ in range(i + 1):
                    with obs.span("work", worker=i):
                        pass
            daemon.absorb(session.drain())
            return len(session.completed_spans())

        with cf.ThreadPoolExecutor(6) as ex:
            counts = list(ex.map(one_request, range(6)))
        # each session saw exactly its own spans, nobody else's
        assert counts == [i + 1 for i in range(6)]
        spans = daemon.completed_spans()
        assert len(spans) == sum(range(1, 7))
        by_worker = {}
        for record in spans:
            by_worker.setdefault(record.attrs["worker"], 0)
            by_worker[record.attrs["worker"]] += 1
        assert by_worker == {i: i + 1 for i in range(6)}

    def test_global_start_race_yields_single_winner(self):
        obs.stop()
        barrier = threading.Barrier(8)
        sessions = []

        def racer(_):
            barrier.wait()
            sessions.append(obs.start("race"))

        threads = [threading.Thread(target=racer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert len({id(s) for s in sessions}) == 1
        finally:
            obs.stop()


class TestCompileCoalescing:
    def test_threads_share_exactly_one_compile(self, ring_build):
        """8 threads demand the compiled plan of one build: the memo
        lock admits one compiler; everyone gets the same plan object."""
        obs.stop()
        session = obs.start("compile-race")
        try:
            barrier = threading.Barrier(8)

            def get_plan(_):
                barrier.wait()
                return compiled_plan(ring_build, coarsen="off")

            with cf.ThreadPoolExecutor(8) as ex:
                plans = list(ex.map(get_plan, range(8)))
            assert len({id(p) for p in plans}) == 1
            compiles = [r for r in session.completed_spans() if r.name == "compiled.compile"]
            assert len(compiles) == 1
        finally:
            obs.stop()

    def test_build_pickles_without_the_compile_lock(self, ring_build):
        import pickle

        compiled_plan(ring_build, coarsen="off")  # installs memo + lock
        clone = pickle.loads(pickle.dumps(ring_build))
        assert "_compiled_plans_lock" not in clone.__dict__
        # the clone can still compile (fresh lock on demand)
        assert compiled_plan(clone, coarsen="off") is not None


class TestResponseStability:
    def test_render_is_stable_across_json_round_trips(self):
        """The wire contract: a JSON round-trip never changes the bytes
        a render produces (shortest-repr float round-tripping)."""
        from repro.serve.client import render_analyze

        result = {"summary": {"mean": 1.0000000000000002e-16, "p95": 3.141592653589793},
                  "samples": [[0.1 + 0.2, 1e308, 5e-324]]}
        once = render_analyze(result)
        again = render_analyze(json.loads(once))
        assert once == again
