"""FIG4 — the AllReduce hub subgraph and the Reduce simplification.

Regenerates Fig. 4's structure for p ∈ {4, 8, 16}: per-rank l_δ fan-in
values (ceil(log2 p) samples of δ_os + δ_λ [+ δ_t]), the propagated
l_δmax, and the slowest-rank-dominates behaviour the paper highlights.
"""

import pytest

from benchmarks._common import bench_timings, emit, table
from repro._util import ilog2_ceil
from repro.core import PerturbationSpec, build_graph, propagate
from repro.core.graph import Phase
from repro.mpisim import Allreduce, Compute, Reduce, run
from repro.noise import Constant, MachineSignature

OS, LAT = 200.0, 75.0


def allreduce_prog(me):
    yield Compute(1_000.0 * (me.rank + 1))
    yield Allreduce(nbytes=64)


def reduce_prog(me):
    yield Compute(1_000.0)
    yield Reduce(root=0, nbytes=64)


def test_fig4_allreduce_hub(benchmark):
    spec = PerturbationSpec(
        MachineSignature(os_noise=Constant(OS), latency=Constant(LAT)), seed=0
    )
    rows = []
    builds = {}
    for p in (4, 8, 16):
        trace = run(allreduce_prog, nprocs=p, seed=0).trace
        build = build_graph(trace)
        builds[p] = build
        res = propagate(build, spec)
        rounds = ilog2_ceil(p)
        l_delta = rounds * (OS + LAT)
        # every rank's allreduce END carries δ_os(gap) + l_δmax
        coll_seq = next(e.seq for e in build.events[0] if e.kind.is_collective)
        d_end = res.node_delay[build.graph.node_of(0, coll_seq, Phase.END)]
        assert d_end == pytest.approx(OS + l_delta)
        rows.append([p, rounds, l_delta, d_end])
    out = table(
        ["p", "rounds=ceil(log2 p)", "l_delta model", "measured END delay"],
        rows,
        widths=[4, 20, 14, 20],
    )

    benchmark(propagate, builds[16], spec)

    # --- slowest-node domination -------------------------------------------
    sig = MachineSignature(os_noise_by_rank={3: Constant(10_000.0)})
    res = propagate(builds[8], PerturbationSpec(sig, seed=0))
    dom_rows = [[r, f"{d:.0f}"] for r, d in enumerate(res.final_delay)]
    assert min(res.final_delay) >= 3 * 10_000.0  # rank 3's l_δ reaches all
    out += "\n\nslowest-node domination (only rank 3 noisy, p=8):\n"
    out += table(["rank", "final delay"], dom_rows, widths=[4, 12])
    emit(
        "fig4_allreduce",
        out,
        params={"procs": [4, 8, 16], "os": OS, "latency": LAT},
        timings=bench_timings(benchmark),
        metrics={
            "end_delay_by_p": {str(r[0]): r[3] for r in rows},
            "min_final_delay_dominated": min(res.final_delay),
        },
    )


def test_fig4_reduce_simplification(benchmark):
    """The three Reduce modifications: latency-only fan-in, local δ_os
    edge per rank, unlabelled fan-out carrying the root's delay."""
    spec = PerturbationSpec(
        MachineSignature(os_noise=Constant(OS), latency=Constant(LAT)), seed=0
    )
    trace = run(reduce_prog, nprocs=8, seed=0).trace

    def build_and_propagate():
        build = build_graph(trace)
        return build, propagate(build, spec)

    build, res = benchmark(build_and_propagate)
    g = build.graph
    coll_seq = next(e.seq for e in build.events[0] if e.kind.is_collective)
    d_root = res.node_delay[g.node_of(0, coll_seq, Phase.END)]
    # Root END = max(own δ_os path, fan-in latency paths): gap OS + max(OS, LAT).
    assert d_root == pytest.approx(OS + max(OS, LAT))
    for r in range(1, 8):
        d_r = res.node_delay[g.node_of(r, coll_seq, Phase.END)]
        assert d_r == pytest.approx(max(OS + OS, d_root))
    emit(
        "fig4_reduce",
        table(
            ["node", "delay", "model"],
            [
                ["root END", f"{d_root:.0f}", "gap_os + max(os_local, lat_fanin)"],
                ["others END", f"{OS + OS:.0f}", "max(own os path, root delay)"],
            ],
            widths=[10, 8, 36],
        ),
        params={"nprocs": 8, "os": OS, "latency": LAT},
        timings=bench_timings(benchmark),
        metrics={"root_end_delay": d_root, "others_end_delay": OS + OS},
    )
