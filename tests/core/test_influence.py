"""Tests for the rank-to-rank influence matrix."""

import numpy as np
import pytest

from repro.apps import (
    MasterWorkerParams,
    PipelineParams,
    TokenRingParams,
    master_worker,
    pipeline,
    token_ring,
)
from repro.core import build_graph, rank_influence
from repro.mpisim import run
from repro.noise import Constant


NOISE = Constant(10_000.0)


class TestRing:
    @pytest.fixture(scope="class")
    def matrix(self):
        trace = run(token_ring(TokenRingParams(traversals=3)), nprocs=5, seed=0).trace
        return rank_influence(build_graph(trace), NOISE, seed=0)

    def test_shape(self, matrix):
        assert matrix.matrix.shape == (5, 5)
        assert matrix.noise_mean == 10_000.0

    def test_everyone_influences_everyone(self, matrix):
        """The lockstep ring: any rank's noise reaches all ranks."""
        assert np.all(matrix.matrix > 0)
        for src in range(5):
            assert matrix.spread(src) == 5

    def test_self_influence_positive(self, matrix):
        for r in range(5):
            assert matrix.matrix[r, r] > 0

    def test_table_renders(self, matrix):
        text = matrix.table()
        assert "src   0" in text
        assert len(text.splitlines()) == 6


class TestPipeline:
    def test_influence_flows_downstream(self):
        """Pipeline: an early stage delays later stages more than the
        reverse (upstream back-pressure is weaker than forward data
        dependence once the pipeline drains)."""
        trace = run(pipeline(PipelineParams(items=10)), nprocs=4, seed=0).trace
        m = rank_influence(build_graph(trace), NOISE, seed=0)
        # Stage 0's noise delays the final stage fully...
        assert m.matrix[0, 3] > 0
        # ...and more than stage 3's noise delays stage 0.
        assert m.matrix[0, 3] > m.matrix[3, 0]


class TestMasterWorker:
    def test_master_is_most_influential(self):
        trace = run(
            master_worker(MasterWorkerParams(tasks=18, base_cycles=30_000.0)), nprocs=4, seed=0
        ).trace
        m = rank_influence(build_graph(trace), NOISE, seed=0)
        totals = m.total_influence()
        assert np.argmax(totals) == 0  # the master's noise hurts the most
