"""Tests for the experiment history registry (§7 future work)."""

import pytest

from repro.core import ExperimentHistory, PerturbationSpec, build_graph, propagate
from repro.noise import Constant, Exponential, MachineSignature


@pytest.fixture
def history(tmp_path):
    return ExperimentHistory(tmp_path / "exp.jsonl")


def spec(seed=3, scale=2.0):
    return MachineSignature(
        os_noise=Exponential(80.0), latency=Constant(25.0), name="hist-sig"
    ), PerturbationSpec(
        MachineSignature(os_noise=Exponential(80.0), latency=Constant(25.0), name="hist-sig"),
        seed=seed,
        scale=scale,
    )


class TestRecording:
    def test_record_and_iterate(self, history, ring_trace):
        _, s = spec()
        build = build_graph(ring_trace)
        res = propagate(build, s)
        rec = history.record("first", s, res, build.config)
        assert rec.name == "first"
        assert rec.delays == tuple(res.final_delay)
        stored = list(history)
        assert len(stored) == 1
        assert stored[0].params["seed"] == 3
        assert stored[0].params["scale"] == 2.0
        assert stored[0].params["build_config"]["collective_mode"] == "hub"

    def test_append_only(self, history, ring_trace):
        _, s = spec()
        build = build_graph(ring_trace)
        res = propagate(build, s)
        history.record("a", s, res)
        history.record("b", s, res)
        history.record("a", s, res, extra={"note": "rerun"})
        assert len(history) == 3
        assert len(history.find("a")) == 2
        assert history.latest("a").params.get("extra") == {"note": "rerun"}
        assert history.latest("missing") is None

    def test_max_delay(self, history, ring_trace):
        _, s = spec()
        build = build_graph(ring_trace)
        res = propagate(build, s)
        rec = history.record("x", s, res)
        assert rec.max_delay == max(res.final_delay)


class TestReplay:
    def test_replay_spec_reproduces_exactly(self, history, ring_trace):
        """Deterministic sampling + stored parameterization = exact replay."""
        _, s = spec(seed=11, scale=1.5)
        build = build_graph(ring_trace)
        res = propagate(build, s)
        history.record("replayable", s, res)

        # New history object reading the same file (cold start).
        later = ExperimentHistory(history.path)
        stored = later.latest("replayable")
        replay = propagate(build, later.replay_spec(stored))
        assert list(replay.final_delay) == list(stored.delays)

    def test_empty_history(self, tmp_path):
        h = ExperimentHistory(tmp_path / "nothing.jsonl")
        assert len(h) == 0
        assert list(h) == []
