"""Certified makespan bounds: containment of real Monte-Carlo samples,
bit-stability across the coarsening setting, and the certificate's
self-description (absolute vs sound-up-to-q)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PerturbationSpec, build_graph, monte_carlo
from repro.core.compiled import compiled_plan
from repro.noise import Constant, Empirical, MachineSignature
from repro.verify import edge_intervals, makespan_bounds

REPLICATES = 40


@pytest.fixture(params=["ring", "stencil"])
def build(request, ring_trace, stencil_trace):
    trace = ring_trace if request.param == "ring" else stencil_trace
    return build_graph(trace)


class TestContainment:
    @pytest.mark.parametrize("mode", ["additive", "threshold"])
    def test_monte_carlo_replicates_inside_bounds(self, build, mixed_signature, mode):
        plan = compiled_plan(build)
        bounds = makespan_bounds(plan, mixed_signature, mode=mode)
        spec = PerturbationSpec(mixed_signature, seed=11)
        dist = monte_carlo(build, spec, replicates=REPLICATES, mode=mode)
        assert bounds.contains(dist.samples).all()
        assert bounds.violations(dist.samples) == []

    def test_scaled_bounds_cover_scaled_run(self, build, mixed_signature):
        plan = compiled_plan(build)
        bounds = makespan_bounds(plan, mixed_signature, scale=2.5)
        spec = PerturbationSpec(mixed_signature, seed=11, scale=2.5)
        dist = monte_carlo(build, spec, replicates=REPLICATES)
        assert bounds.contains(dist.samples).all()

    def test_constant_signature_pins_the_interval(self, build, const_signature, const_spec):
        plan = compiled_plan(build)
        bounds = makespan_bounds(plan, const_signature)
        assert bounds.absolute
        dist = monte_carlo(build, const_spec, replicates=3)
        # Every replicate of a deterministic signature IS the bound.
        expected = np.broadcast_to(bounds.rank_lo, dist.samples.shape)
        np.testing.assert_allclose(dist.samples, expected, rtol=1e-9)
        np.testing.assert_allclose(bounds.rank_lo, bounds.rank_hi, rtol=1e-9)

    def test_narrowed_bound_is_caught(self, build, mixed_signature):
        """Mutation check: shrink the certified ceiling and the
        containment cross-check must start reporting violations."""
        plan = compiled_plan(build)
        bounds = makespan_bounds(plan, mixed_signature)
        spec = PerturbationSpec(mixed_signature, seed=11)
        dist = monte_carlo(build, spec, replicates=REPLICATES)
        median = np.median(dist.samples, axis=0)
        narrowed = type(bounds)(
            rank_lo=bounds.rank_lo,
            rank_hi=median,
            quantile=bounds.quantile,
            q_bounded_edges=bounds.q_bounded_edges,
            sampled_edges=bounds.sampled_edges,
            scale=bounds.scale,
            mode=bounds.mode,
            coarse=bounds.coarse,
        )
        assert narrowed.violations(dist.samples) != []

    def test_nan_rows_count_as_contained(self, build, mixed_signature):
        plan = compiled_plan(build)
        bounds = makespan_bounds(plan, mixed_signature)
        nprocs = len(bounds.rank_lo)
        samples = np.full((2, nprocs), np.nan)
        samples[1] = bounds.rank_hi * 100.0
        assert bounds.contains(samples).tolist() == [True, False]
        assert bounds.violations(samples) == [1]

    def test_shape_mismatch_rejected(self, build, mixed_signature):
        bounds = makespan_bounds(compiled_plan(build), mixed_signature)
        with pytest.raises(ValueError, match="samples must be"):
            bounds.contains(np.zeros((3, len(bounds.rank_lo) + 1)))


class TestCoarsenStability:
    def test_bounds_identical_across_coarsen_setting(self, build, mixed_signature):
        on = makespan_bounds(compiled_plan(build, coarsen="on"), mixed_signature)
        off = makespan_bounds(compiled_plan(build, coarsen="off"), mixed_signature)
        # Bit-stable, not merely close: the coarse walk must reproduce
        # the flat kernel's floats exactly.
        assert on.rank_lo.tolist() == off.rank_lo.tolist()
        assert on.rank_hi.tolist() == off.rank_hi.tolist()
        assert on.sampled_edges == off.sampled_edges
        assert on.q_bounded_edges == off.q_bounded_edges


class TestCertificate:
    def test_mixed_signature_is_quantile_bounded(self, build, mixed_signature):
        bounds = makespan_bounds(compiled_plan(build), mixed_signature)
        assert not bounds.absolute
        assert bounds.q_bounded_edges > 0
        assert bounds.makespan_hi >= bounds.makespan_lo >= 0.0

    def test_empirical_signature_is_absolute(self, build):
        sig = MachineSignature(
            os_noise=Empirical([10.0, 20.0, 35.0]),
            latency=Empirical([5.0, 8.0]),
            per_byte=Constant(0.01),
            name="measured",
        )
        bounds = makespan_bounds(compiled_plan(build), sig)
        assert bounds.absolute
        assert bounds.q_bounded_edges == 0

    def test_edge_intervals_ordered(self, build, mixed_signature):
        iv = edge_intervals(compiled_plan(build), mixed_signature)
        assert (iv.lo <= iv.hi).all()
        assert (iv.lo >= 0.0).all()  # samplers clamp at zero
        assert iv.q_bounded_edges == int((iv.lo_q | iv.hi_q).sum())

    def test_as_dict_round_trips_the_summary(self, build, mixed_signature):
        bounds = makespan_bounds(compiled_plan(build), mixed_signature, scale=1.5)
        d = bounds.as_dict()
        assert d["makespan_hi"] == bounds.makespan_hi
        assert d["scale"] == 1.5
        assert d["absolute"] is False
        assert len(d["rank_lo"]) == len(bounds.rank_lo)

    def test_bad_mode_rejected(self, build, mixed_signature):
        with pytest.raises(ValueError, match="mode"):
            makespan_bounds(compiled_plan(build), mixed_signature, mode="bogus")
