"""Tests for the command-line entry points (invoked in-process)."""

import json

import pytest

from repro.cli import main_analyze, main_dot, main_microbench, main_sweep, main_trace


@pytest.fixture
def traced(tmp_path):
    """A small traced run plus a measured signature on disk."""
    rc = main_trace(
        [
            "--app",
            "token_ring",
            "--nprocs",
            "4",
            "--machine",
            "quiet",
            "--out",
            str(tmp_path),
            "--stem",
            "ring",
            "--param",
            "traversals=2",
            "--seed",
            "1",
        ]
    )
    assert rc == 0
    sig_path = tmp_path / "sig.json"
    rc = main_microbench(
        ["--machine", "noisy", "--out", str(sig_path), "--seed", "0"]
    )
    assert rc == 0
    return tmp_path, sig_path


class TestTrace:
    def test_produces_files(self, traced):
        tmp_path, _ = traced
        files = sorted(tmp_path.glob("ring.rank*.trace.jsonl"))
        assert len(files) == 4

    def test_binary_flag(self, tmp_path):
        main_trace(
            [
                "--app",
                "pipeline",
                "--nprocs",
                "3",
                "--out",
                str(tmp_path),
                "--binary",
                "--param",
                "items=3",
            ]
        )
        assert len(list(tmp_path.glob("pipeline.rank*.trace.bin"))) == 3

    def test_bad_param_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main_trace(
                ["--app", "token_ring", "--nprocs", "2", "--out", str(tmp_path), "--param", "oops"]
            )

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main_trace(["--app", "quicksort", "--nprocs", "2", "--out", str(tmp_path)])


class TestMicrobench:
    def test_signature_is_loadable_json(self, traced):
        _, sig_path = traced
        data = json.loads(sig_path.read_text())
        assert {"os_noise", "latency", "per_byte"} <= set(data)

    def test_fit_method(self, tmp_path):
        out = tmp_path / "fit.json"
        rc = main_microbench(["--machine", "noisy", "--out", str(out), "--method", "fit"])
        assert rc == 0
        assert out.exists()


class TestAnalyze:
    def test_incore_report(self, traced, capsys):
        tmp_path, sig_path = traced
        rc = main_analyze(
            ["--traces", str(tmp_path), "--stem", "ring", "--signature", str(sig_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "graph:" in out
        assert "critical path" in out
        assert "absorption ratio" in out
        assert "correctness: 0 order violation(s)" in out

    def test_streaming_engine(self, traced, capsys):
        tmp_path, sig_path = traced
        rc = main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--engine",
                "streaming",
            ]
        )
        assert rc == 0
        assert "streaming traversal" in capsys.readouterr().out

    def test_history_recorded(self, traced, capsys):
        tmp_path, sig_path = traced
        hist = tmp_path / "hist.jsonl"
        main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--history",
                str(hist),
                "--name",
                "cli-test",
            ]
        )
        lines = hist.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "cli-test"

    def test_requires_signature_source(self, traced):
        tmp_path, _ = traced
        with pytest.raises(SystemExit):
            main_analyze(["--traces", str(tmp_path), "--stem", "ring"])


class TestObservability:
    def test_profile_writes_valid_chrome_trace(self, traced, capsys):
        from repro.obs import validate_chrome_trace_file

        tmp_path, sig_path = traced
        profile = tmp_path / "profile.json"
        rc = main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--replicates",
                "4",
                "--profile",
                str(profile),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "graph:" in captured.out  # results still on stdout
        assert "profile written" in captured.err  # diagnostics on stderr

        obj = validate_chrome_trace_file(profile)
        names = {e["name"] for e in obj["traceEvents"]}
        assert {"analyze", "build_graph", "read_traces", "match_events",
                "compiled.compile", "compiled.sample", "compiled.propagate",
                "monte_carlo", "replicate_batch"} <= names

    def test_metrics_out(self, traced, capsys):
        tmp_path, sig_path = traced
        metrics_path = tmp_path / "metrics.json"
        rc = main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert rc == 0
        payload = json.loads(metrics_path.read_text())
        metrics = payload["metrics"]
        assert metrics["graph.nodes"] > 0
        assert metrics["trace.files_read"] >= 4
        assert metrics["traversal.propagations"] == 1

    def test_no_session_leaks_between_invocations(self, traced):
        from repro import obs

        tmp_path, sig_path = traced
        main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--profile",
                str(tmp_path / "p.json"),
            ]
        )
        assert not obs.enabled()

    def test_quiet_silences_diagnostics(self, traced, capsys):
        tmp_path, sig_path = traced
        rc = main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--quiet",
                "--profile",
                str(tmp_path / "p.json"),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "graph:" in captured.out
        assert "profile written" not in captured.err

    def test_sweep_profile(self, traced, capsys):
        from repro.obs import validate_chrome_trace_file

        tmp_path, sig_path = traced
        profile = tmp_path / "sweep-profile.json"
        rc = main_sweep(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--scales",
                "0,1",
                "--profile",
                str(profile),
            ]
        )
        assert rc == 0
        obj = validate_chrome_trace_file(profile)
        names = {e["name"] for e in obj["traceEvents"]}
        assert "sweep_scales" in names


class TestSweep:
    def test_table_and_slope(self, traced, capsys):
        tmp_path, sig_path = traced
        rc = main_sweep(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--signature",
                str(sig_path),
                "--scales",
                "0,1,2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scale=2" in out
        assert "slope" in out


class TestDot:
    def test_writes_dot_file(self, traced, capsys):
        tmp_path, _ = traced
        out = tmp_path / "g.dot"
        rc = main_dot(["--traces", str(tmp_path), "--stem", "ring", "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith('digraph "ring"')
        assert "cluster_rank3" in text

    def test_stdout_mode(self, traced, capsys):
        tmp_path, _ = traced
        main_dot(["--traces", str(tmp_path), "--stem", "ring"])
        assert "digraph" in capsys.readouterr().out


class TestReplay:
    def test_replay_table(self, traced, capsys):
        from repro.cli import main_replay

        tmp_path, _ = traced
        rc = main_replay(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--latency",
                "100",
                "--bandwidth",
                "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan:" in out
        assert "speedup" in out

    def test_analyze_prints_trace_stats(self, traced, capsys):
        from repro.cli import main_analyze

        tmp_path, sig_path = traced
        main_analyze(
            ["--traces", str(tmp_path), "--stem", "ring", "--signature", str(sig_path)]
        )
        assert "trace:" in capsys.readouterr().out

    def test_dot_seq_range(self, traced, capsys):
        from repro.cli import main_dot

        tmp_path, _ = traced
        out = tmp_path / "w.dot"
        main_dot(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--out",
                str(out),
                "--seq-range",
                "0:3",
            ]
        )
        text = out.read_text()
        # Window keeps only seqs 0..2: far fewer nodes than the full graph.
        assert text.count("label=") < 60


class TestMeasureFlow:
    def test_analyze_with_inline_measurement(self, traced, capsys):
        """--measure PRESET runs the microbenchmarks instead of loading a
        signature file."""
        tmp_path, _ = traced
        rc = main_analyze(
            [
                "--traces",
                str(tmp_path),
                "--stem",
                "ring",
                "--measure",
                "noisy",
                "--engine",
                "streaming",
            ]
        )
        assert rc == 0
        assert "max delay" in capsys.readouterr().out
