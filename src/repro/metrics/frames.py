"""Columnar trace/graph analytics: structure-of-arrays frames.

Pipit (arXiv:2306.11177) showed that the right substrate for scriptable
trace analysis is a columnar dataframe, not a list of event objects.
This module exposes both sides of the repro pipeline that way:

* :func:`trace_frame` — a trace set as one :class:`Frame` with a numpy
  column per :class:`~repro.trace.events.EventRecord` field (plus a
  derived ``duration``).  Building the frame is the single O(events)
  Python pass; every analysis on top of it (``repro.metrics.pop``,
  ``repro.metrics.timeline``, :func:`repro.trace.stats.trace_stats`)
  is pure vectorized numpy.
* :func:`node_frame` / :func:`edge_frame` — the built event graph as
  frames whose columns are **zero-copy views** over the
  :class:`~repro.core.compiled.CompiledPlan` structure-of-arrays
  (``np.shares_memory`` with the plan arrays; asserted in tests).

A :class:`Frame` is deliberately tiny: named homogeneous columns of
equal length, ``filter``/``select``/``sort_by``/``groupby``, and an
optional ``to_pandas()`` escape hatch.  It is not pandas — it is the
5% of pandas these analyses need, with no required dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from repro.trace.events import EventRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.builder import BuildResult
    from repro.core.compiled import CompiledPlan
    from repro.trace.reader import TraceSource

__all__ = [
    "Frame",
    "FrameGroupBy",
    "edge_frame",
    "node_frame",
    "trace_frame",
]


class Frame:
    """An immutable-shape, structure-of-arrays table.

    ``columns`` maps name → 1-D numpy array; all arrays share one
    length.  ``Frame`` never copies on construction — callers hand in
    views (that is the zero-copy contract of :func:`edge_frame` /
    :func:`node_frame`).  Row-subsetting operations (``filter``,
    ``sort_by``) use fancy indexing and therefore *do* copy, as in any
    columnar store.
    """

    __slots__ = ("_cols", "_n", "meta")

    def __init__(
        self, columns: Mapping[str, np.ndarray], meta: dict[str, Any] | None = None
    ) -> None:
        cols: dict[str, np.ndarray] = {}
        n = -1
        for name, arr in columns.items():
            a = np.asarray(arr)
            if a.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {a.shape}")
            if n < 0:
                n = len(a)
            elif len(a) != n:
                raise ValueError(
                    f"column {name!r} has length {len(a)}, expected {n} "
                    f"(all frame columns must match)"
                )
            cols[name] = a
        self._cols = cols
        self._n = max(n, 0)
        self.meta = dict(meta or {})

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(self._cols)

    def __contains__(self, name: object) -> bool:
        return name in self._cols

    def __getitem__(self, name: str) -> np.ndarray:
        """The column itself — a live view, never a copy."""
        try:
            return self._cols[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; frame has {', '.join(self._cols) or '(no columns)'}"
            ) from None

    def __repr__(self) -> str:
        return f"Frame({self._n} rows × {len(self._cols)} cols: {', '.join(self._cols)})"

    def row(self, i: int) -> dict[str, Any]:
        """Row ``i`` as a plain dict (scalar python values)."""
        return {name: arr[i].item() for name, arr in self._cols.items()}

    # -- relational ops -----------------------------------------------------
    def select(self, *names: str) -> "Frame":
        """Sub-frame with only ``names`` — columns stay views."""
        return Frame({n: self[n] for n in names}, meta=self.meta)

    def with_columns(self, **extra: np.ndarray) -> "Frame":
        """New frame with additional (or replaced) columns."""
        cols = dict(self._cols)
        cols.update(extra)
        return Frame(cols, meta=self.meta)

    def filter(self, mask: np.ndarray | Callable[["Frame"], np.ndarray]) -> "Frame":
        """Rows where ``mask`` is true.

        ``mask`` is a boolean array or a callable receiving the frame
        (``f.filter(lambda f: f["kind"] == EventKind.SEND)``).
        """
        m = np.asarray(mask(self) if callable(mask) else mask)
        if m.dtype != np.bool_ or m.shape != (self._n,):
            raise ValueError(f"mask must be bool of shape ({self._n},), got {m.dtype}{m.shape}")
        return Frame({n: a[m] for n, a in self._cols.items()}, meta=self.meta)

    def sort_by(self, *names: str) -> "Frame":
        """Stable sort by one or more columns (last key is primary in
        ``np.lexsort`` order, so keys are passed most- to least-significant)."""
        if not names:
            raise ValueError("sort_by needs at least one column name")
        order = np.lexsort(tuple(self[n] for n in reversed(names)))
        return Frame({n: a[order] for n, a in self._cols.items()}, meta=self.meta)

    def groupby(self, key: str) -> "FrameGroupBy":
        return FrameGroupBy(self, key)

    # -- interop ------------------------------------------------------------
    def to_dict(self) -> dict[str, np.ndarray]:
        return dict(self._cols)

    def to_pandas(self) -> Any:  # pragma: no cover - optional dependency
        """The frame as a ``pandas.DataFrame`` (optional import)."""
        try:
            import pandas as pd
        except ImportError as exc:
            raise ImportError(
                "to_pandas() requires pandas; install it or script "
                "against the numpy columns directly"
            ) from exc
        return pd.DataFrame(self._cols)


class FrameGroupBy:
    """Grouped view of a frame, produced by :meth:`Frame.groupby`.

    Aggregations are vectorized (stable argsort + ``ufunc.reduceat``);
    iterating yields ``(key_value, sub_frame)`` pairs in key order.
    """

    def __init__(self, frame: Frame, key: str) -> None:
        self._frame = frame
        self._key = key
        self._order = np.argsort(frame[key], kind="stable")
        sorted_keys = frame[key][self._order]
        if len(sorted_keys):
            starts = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
        else:
            starts = np.zeros(0, dtype=np.int64)
        self._starts = starts
        self.keys = sorted_keys[starts] if len(sorted_keys) else sorted_keys

    def __iter__(self) -> Iterator[tuple[Any, Frame]]:
        bounds = np.append(self._starts, len(self._order))
        for i, k in enumerate(self.keys):
            idx = self._order[bounds[i] : bounds[i + 1]]
            yield k.item(), Frame(
                {n: a[idx] for n, a in self._frame.to_dict().items()},
                meta=self._frame.meta,
            )

    def _reduce(self, ufunc: np.ufunc, names: tuple[str, ...]) -> Frame:
        cols: dict[str, np.ndarray] = {self._key: self.keys}
        for n in names or tuple(c for c in self._frame.columns if c != self._key):
            vals = self._frame[n][self._order]
            if len(self._starts):
                cols[n] = ufunc.reduceat(vals, self._starts)
            else:
                cols[n] = vals[:0]
        return Frame(cols, meta=self._frame.meta)

    def sum(self, *names: str) -> Frame:
        return self._reduce(np.add, names)

    def max(self, *names: str) -> Frame:
        return self._reduce(np.maximum, names)

    def min(self, *names: str) -> Frame:
        return self._reduce(np.minimum, names)

    def count(self) -> Frame:
        counts = np.diff(np.append(self._starts, len(self._order)))
        return Frame({self._key: self.keys, "count": counts}, meta=self._frame.meta)

    def mean(self, *names: str) -> Frame:
        s = self._reduce(np.add, names)
        counts = np.diff(np.append(self._starts, len(self._order)))
        cols = {self._key: s[self._key]}
        for n in s.columns:
            if n != self._key:
                cols[n] = s[n] / np.maximum(counts, 1)
        return Frame(cols, meta=self._frame.meta)


# ---------------------------------------------------------------------------
# Trace → frame
# ---------------------------------------------------------------------------

#: column name → (EventRecord attribute, dtype)
_EVENT_COLUMNS: tuple[tuple[str, str, type], ...] = (
    ("rank", "rank", np.int64),
    ("seq", "seq", np.int64),
    ("kind", "kind", np.uint8),
    ("t_start", "t_start", np.float64),
    ("t_end", "t_end", np.float64),
    ("peer", "peer", np.int64),
    ("tag", "tag", np.int64),
    ("nbytes", "nbytes", np.int64),
    ("req", "req", np.int64),
    ("root", "root", np.int64),
    ("coll_seq", "coll_seq", np.int64),
    ("recv_peer", "recv_peer", np.int64),
    ("recv_tag", "recv_tag", np.int64),
    ("recv_nbytes", "recv_nbytes", np.int64),
)


def trace_frame(trace: "TraceSource | list[EventRecord]") -> Frame:
    """A trace set (or flat event list) as one columnar :class:`Frame`.

    Columns: every scalar :class:`~repro.trace.events.EventRecord`
    field plus derived ``duration = t_end - t_start``.  Rows are
    ordered rank-major (rank 0's events in stream order, then rank 1's,
    …), matching :meth:`TraceSet.load_all` iteration.  Variable-length
    fields (``reqs``, ``completed``) are not columnized.

    This is the one O(events) Python pass in the metrics layer; all
    downstream metric math is vectorized over the returned columns.
    ``frame.meta`` carries ``nprocs`` and ``program`` when the source
    is a trace set.
    """
    meta: dict[str, Any] = {}
    if isinstance(trace, list):
        events: Iterator[EventRecord] = iter(trace)
        if trace:
            meta["nprocs"] = max(ev.rank for ev in trace) + 1
    else:
        meta["nprocs"] = trace.nprocs
        try:
            meta["program"] = trace.meta(0).program
        except (KeyError, IndexError):  # pragma: no cover - defensive
            pass

        def _iter_all(src: "TraceSource") -> Iterator[EventRecord]:
            for rank in range(src.nprocs):
                yield from src.events_of(rank)

        events = _iter_all(trace)

    raw: list[list[Any]] = [[] for _ in _EVENT_COLUMNS]
    for ev in events:
        for slot, (_, attr, _dt) in zip(raw, _EVENT_COLUMNS):
            slot.append(getattr(ev, attr))
    cols = {
        name: np.array(vals, dtype=dt) for (name, _, dt), vals in zip(_EVENT_COLUMNS, raw)
    }
    cols["duration"] = cols["t_end"] - cols["t_start"]
    return Frame(cols, meta=meta)


# ---------------------------------------------------------------------------
# Graph → frames (zero-copy over CompiledPlan arrays)
# ---------------------------------------------------------------------------


def _as_plan(source: "BuildResult | CompiledPlan") -> "CompiledPlan":
    from repro.core.compiled import CompiledPlan, compiled_plan

    if isinstance(source, CompiledPlan):
        return source
    return compiled_plan(source)


def node_frame(source: "BuildResult | CompiledPlan") -> Frame:
    """The built graph's nodes as a frame.

    Every column except the derived ``node_id`` is a **zero-copy view**
    of the corresponding :class:`CompiledPlan` array (``node_rank``,
    ``node_seq``, ``node_phase``, ``node_kind``, ``node_t_local``) —
    ``np.shares_memory`` holds, so a million-node graph costs nothing
    to expose.  Virtual nodes carry ``t_local = NaN``.
    """
    plan = _as_plan(source)
    return Frame(
        {
            "node_id": np.arange(plan.n_nodes, dtype=np.int64),
            "rank": plan.node_rank,
            "seq": plan.node_seq,
            "phase": plan.node_phase,
            "kind": plan.node_kind,
            "t_local": plan.node_t_local,
        },
        meta={"nprocs": plan.nprocs},
    )


def edge_frame(source: "BuildResult | CompiledPlan") -> Frame:
    """The built graph's edges as a frame.

    ``src``/``dst``/``weight``/``delta_kind``/``is_local``/``nbytes``
    are zero-copy views of the plan arrays (``edge_src``, ``edge_dst``,
    ``edge_weight``, ``edge_kind``, ``edge_is_local``,
    ``edge_nbytes``); ``edge_id`` is derived.
    """
    plan = _as_plan(source)
    return Frame(
        {
            "edge_id": np.arange(plan.n_edges, dtype=np.int64),
            "src": plan.edge_src,
            "dst": plan.edge_dst,
            "weight": plan.edge_weight,
            "delta_kind": plan.edge_kind,
            "is_local": plan.edge_is_local,
            "nbytes": plan.edge_nbytes,
        },
        meta={"nprocs": plan.nprocs},
    )
