"""Per-rule fixtures for the graph-level rules (MPG1xx).

MPG101/104/105 are exercised on hand-built graphs (the builder refuses
to produce these defects, which is the point — the linter must catch
graphs from any source); MPG102/103 are exercised end-to-end through
``lint_run`` on traces the matcher rejects.
"""

from __future__ import annotations

import math

from repro.core.graph import EdgeKind, MessagePassingGraph, Phase
from repro.lint import Severity, lint_build, lint_run
from repro.trace.events import EventKind
from tests.lint.helpers import memory_trace, wrap


def rule_ids(report):
    return {f.rule_id for f in report.findings}


def chain_graph(n=3):
    """A one-rank chain of subevent nodes: n0 -> n1 -> ... (valid DAG)."""
    g = MessagePassingGraph(1)
    ids = [
        g.add_node(0, seq, Phase.START if seq % 2 == 0 else Phase.END, EventKind.INIT, float(seq))
        for seq in range(n)
    ]
    for a, b in zip(ids, ids[1:]):
        g.add_edge(a, b, EdgeKind.LOCAL, 1.0)
    return g, ids


class TestMPG101GraphCycle:
    def test_cycle_fires_exactly_mpg101(self):
        g, ids = chain_graph(3)
        g.add_edge(ids[-1], ids[0], EdgeKind.MESSAGE, 0.0)  # closes the loop
        report = lint_build(g)
        assert rule_ids(report) == {"MPG101"}
        (f,) = report.findings
        assert f.severity == Severity.ERROR
        assert "not a DAG" in f.message
        assert "r0#" in f.message  # names concrete cycle members

    def test_dag_is_clean(self):
        g, _ = chain_graph(3)
        report = lint_build(g)
        assert report.findings == []
        assert report.graph_checked


class TestMPG102UnmatchedEndpoint:
    def test_send_without_receive(self):
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=7, nbytes=64))])
        t1 = wrap(1, [])
        report = lint_run(memory_trace(t0, t1))
        assert rule_ids(report) == {"MPG102"}
        (f,) = report.findings
        assert f.severity == Severity.ERROR
        assert "0->1 tag 7" in f.message
        assert "1 send(s) but 0 receive(s)" in f.message

    def test_receive_without_send(self):
        t0 = wrap(0, [])
        t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=64))])
        report = lint_run(memory_trace(t0, t1))
        assert rule_ids(report) == {"MPG102"}
        assert "0 send(s) but 1 receive(s)" in report.findings[0].message


class TestMPG103CollectiveMismatch:
    def test_count_mismatch(self):
        t0 = wrap(0, [(EventKind.BARRIER, 2.0, 3.0, dict(coll_seq=0))])
        t1 = wrap(1, [])
        report = lint_run(memory_trace(t0, t1))
        assert rule_ids(report) == {"MPG103"}
        (f,) = report.findings
        assert f.rank == 1

    def test_root_mismatch(self):
        t0 = wrap(0, [(EventKind.BCAST, 2.0, 3.0, dict(coll_seq=0, root=0, nbytes=8))])
        t1 = wrap(1, [(EventKind.BCAST, 2.0, 3.0, dict(coll_seq=0, root=1, nbytes=8))])
        report = lint_run(memory_trace(t0, t1))
        assert "MPG103" in rule_ids(report)
        assert any("root" in f.message for f in report.findings)


class TestMPG104InvalidEdgeWeight:
    def test_nan_local_edge(self):
        g, ids = chain_graph(3)
        g.add_edge(ids[0], ids[2], EdgeKind.LOCAL, math.nan)
        report = lint_build(g)
        assert rule_ids(report) == {"MPG104"}
        (f,) = report.findings
        assert f.severity == Severity.ERROR
        assert f.edge == (ids[0], ids[2])

    def test_nan_message_edge(self):
        g, ids = chain_graph(3)
        g.add_edge(ids[0], ids[2], EdgeKind.MESSAGE, math.nan)
        report = lint_build(g)
        assert rule_ids(report) == {"MPG104"}

    def test_zero_weight_message_edge_is_fine(self):
        g, ids = chain_graph(3)
        g.add_edge(ids[0], ids[2], EdgeKind.MESSAGE, 0.0)
        report = lint_build(g)
        assert report.findings == []


class TestMPG105OrphanNode:
    def test_isolated_virtual_node(self):
        g, _ = chain_graph(3)
        orphan = g.add_node(-1, -1, Phase.VIRTUAL, EventKind.BARRIER, math.nan, label="hub")
        report = lint_build(g)
        assert rule_ids(report) == {"MPG105"}
        (f,) = report.findings
        assert f.severity == Severity.WARNING
        assert f.node == orphan
        assert "hub" in f.message

    def test_isolated_subevent(self):
        g, _ = chain_graph(2)
        g.add_node(0, 5, Phase.START, EventKind.SEND, 9.0)
        report = lint_build(g)
        assert rule_ids(report) == {"MPG105"}


class TestCleanRun:
    def test_matched_traces_pass_all_graph_rules(self):
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=64))])
        t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=64))])
        report = lint_run(memory_trace(t0, t1))
        assert report.findings == []
        assert report.graph_checked
        assert set(report.rules_run) >= {"MPG001", "MPG101", "MPG105"}
