"""repro.serve — analysis-as-a-service daemon.

A long-running asyncio HTTP daemon (``repro-serve``) exposing the
suite's analyses as POST endpoints, plus the matching client
(``repro-client``).  Three ideas carry the design (see
``docs/SERVING.md``):

* **Coalescing** (:mod:`repro.serve.scheduler`): concurrent requests
  sharing a build digest pay for one graph build and one plan compile;
  live builds sit in a bounded LRU keyed by trace-content digests.
* **Bit-identity** (:mod:`repro.serve.handlers`): every response is
  byte-equal to the corresponding library/CLI result — the daemon adds
  caching and transport, never a different answer.
* **Containment** (:mod:`repro.serve.daemon`): handler failures become
  structured error envelopes (``repro-serve-result/1``), worker-pool
  deaths degrade through the existing :class:`~repro.core.parallel.
  FaultPolicy`, and the event loop survives everything a request does.
"""

from repro.serve.client import (
    ServeClient,
    render_analyze,
    render_diagnose,
    render_metrics,
    render_sweep,
    render_verify,
    request_json,
)
from repro.serve.daemon import ReproServer, ServeConfig, serve
from repro.serve.scheduler import BuildCache, CacheEntry
from repro.serve.wire import (
    ENDPOINTS,
    ERROR_CODES,
    REQUEST_SCHEMA,
    RESULT_SCHEMA,
    ServeError,
    error_envelope,
    ok_envelope,
    validate_request,
    validate_result,
)

__all__ = [
    "ENDPOINTS",
    "ERROR_CODES",
    "REQUEST_SCHEMA",
    "RESULT_SCHEMA",
    "BuildCache",
    "CacheEntry",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "error_envelope",
    "ok_envelope",
    "render_analyze",
    "render_diagnose",
    "render_metrics",
    "render_sweep",
    "render_verify",
    "request_json",
    "serve",
    "validate_request",
    "validate_result",
]
