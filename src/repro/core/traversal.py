"""Delta propagation over the message-passing graph (§4.2, §6).

Two engines with **bit-identical results** (deterministic per-edge
sampling, see :mod:`repro.core.perturb`):

:func:`propagate`
    In-core: one topological pass over a built
    :class:`~repro.core.graph.MessagePassingGraph`, recording the delay
    of every node and the sampled delta of every edge (what the
    critical-path and absorption analyses consume).

:class:`StreamingTraversal`
    Windowed: streams the per-rank traces through the same subgraph
    templates without ever materializing the graph — the paper's answer
    to "arbitrarily large trace files" (§1 difference (3), §6).  Memory
    is bounded by the lookahead window and by in-flight (unconsumed)
    message contributions, not by trace length.

Delay semantics: every node carries ``D(v) = t'(v) − t(v)`` on its own
rank's local clock; ``D(v) = max over in-edges (D(u) + δ_eff)`` where
``δ_eff`` is the edge's sampled perturbation.  Two application modes:

``additive`` (default, §4.2 "the change is additively propagated")
    ``δ_eff = max(δ, −w)`` — deltas add on top of the observed edge
    weight ``w``; negative deltas (the §7 reduced-noise exploration) are
    clamped so no interval goes negative, preserving event order (§4.3).
``threshold`` (Eq. 1 literal)
    ``δ_eff = max(0, δ − w)`` — the perturbed interval is
    ``max(observed, δ)``, matching the ``t_ss + δ_os1`` form of Eq. (1).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro import obs
from repro.core import primitives as _prim
from repro.core.builder import BuildResult
from repro.core.diagnostics import warn
from repro.core.graph import DeltaKind, DeltaSpec, EdgeKind, MessagePassingGraph, Phase
from repro.core.matching import CollectiveGroup, MatchError
from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig, collective_edges, gap_edge, intra_event_edge, sub
from repro.trace.events import COLLECTIVE_KINDS, EventKind, EventRecord

__all__ = [
    "TraversalResult",
    "propagate",
    "propagate_absolute",
    "propagate_presampled",
    "sample_edge_deltas",
    "longest_weighted_path",
    "StreamingTraversal",
    "MODES",
]

MODES = ("additive", "threshold")


@dataclass
class TraversalResult:
    """Outcome of one perturbation propagation.

    ``final_delay[r]`` is rank r's runtime increase (its FINALIZE END
    delay); delays are cross-rank comparable even though timestamps are
    not, because they are *differences* on each rank's own clock.
    """

    final_delay: list
    final_local_times: list
    mode: str
    clamped_edges: int = 0
    warnings: list = field(default_factory=list)
    # In-core extras (None for streaming):
    node_delay: list | None = None
    edge_delta: list | None = None

    @property
    def max_delay(self) -> float:
        return max(self.final_delay)

    @property
    def mean_delay(self) -> float:
        return sum(self.final_delay) / len(self.final_delay)


class _DeltaApplier:
    """Shared δ_eff arithmetic (sampling + mode + clamping)."""

    def __init__(self, spec: PerturbationSpec, mode: str):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.spec = spec
        self.mode = mode
        self.clamped = 0

    def effective(self, delta: DeltaSpec, weight: float) -> float:
        raw = self.spec.sample(delta, weight)
        if self.mode == "threshold":
            return max(0.0, raw - weight)
        if raw < -weight:
            self.clamped += 1
            return -weight
        return raw


# ---------------------------------------------------------------------------
# In-core propagation
# ---------------------------------------------------------------------------

def propagate(
    build: BuildResult, spec: PerturbationSpec, mode: str = "additive"
) -> TraversalResult:
    """Propagate sampled perturbations over a built graph (in-core)."""
    g = build.graph
    applier = _DeltaApplier(spec, mode)
    with obs.span("propagate", mode=mode):
        edge_delta = [applier.effective(e.delta, e.weight) for e in g.edges]
        edges = g.edges
        D = [0.0] * len(g.nodes)
        for v in g.topological_order():
            ins = g.in_edge_ids(v)
            if ins:
                D[v] = max(D[edges[ei].src] + edge_delta[ei] for ei in ins)
        final_delay, final_times = _finals_from_graph(g, D)
        obs.span_add("traversal.propagations")
        if applier.clamped:
            obs.span_add("traversal.clamped_edges", applier.clamped)
    return TraversalResult(
        final_delay=final_delay,
        final_local_times=final_times,
        mode=mode,
        clamped_edges=applier.clamped,
        node_delay=D,
        edge_delta=edge_delta,
    )


def propagate_absolute(
    build: BuildResult,
    spec: PerturbationSpec,
    mode: str = "additive",
    transfer_estimate=None,
) -> TraversalResult:
    """Absolute-timestamp recomputation with slack absorption (extension).

    Requires a build with ``absolute_weights=True`` — i.e. traces whose
    clocks are globally trusted (our simulator's validation runs; real
    clusters cannot provide this, which is why the paper's model works
    in deltas, §4.1).  Nodes are re-timed as

        t'(v) = max(over in-edges) t'(u) + w(u→v) + δ_eff(u→v)

    with message-edge weights taken from the observed cross-rank lags.
    Unlike the delta model, a perturbation smaller than a receiver's
    original waiting slack is *absorbed*: the receive completes when it
    originally did.  With zero deltas the original timestamps are
    reproduced exactly.

    Data-edge weights need care: the observed lag of a transfer whose
    receive was posted *late* includes the receiver's lateness, not just
    the causal transfer time, and using it verbatim forfeits exactly the
    slack absorption this mode exists for.  ``transfer_estimate`` — a
    callable ``(src, dst, nbytes) -> cycles`` returning the causal
    send-START→receive-END time (injection + latency + payload + receive
    overhead) — tightens those weights; without it a per-channel
    minimum-observed-lag heuristic is used (exact whenever at least one
    transfer on the channel found its receiver waiting).
    """
    if not build.config.absolute_weights:
        raise ValueError(
            "propagate_absolute requires a build with absolute_weights=True "
            "(globally trusted clocks)"
        )
    if mode != "additive":
        raise ValueError("propagate_absolute supports additive mode only")
    g = build.graph

    data_kinds = (DeltaKind.TRANSFER_OS, DeltaKind.TRANSFER)
    channel_min: dict[tuple, float] = {}
    if transfer_estimate is None:
        for e in g.edges:
            if e.kind == EdgeKind.MESSAGE and e.delta.kind in data_kinds:
                key = (e.delta.src, e.delta.dst)
                channel_min[key] = min(channel_min.get(key, math.inf), e.weight)

    def causal_weight(e) -> float:
        if e.kind == EdgeKind.LOCAL or e.delta.kind not in data_kinds:
            return e.weight
        if transfer_estimate is not None:
            return min(e.weight, transfer_estimate(e.delta.src, e.delta.dst, e.delta.nbytes))
        return min(e.weight, channel_min.get((e.delta.src, e.delta.dst), e.weight))

    weights = [causal_weight(e) for e in g.edges]

    # Delta application differs from the clock-free model: message edges
    # carry *signed* observed lags as weights, so the zero-floor clamp
    # must compare against local-edge weights only (a negative-lag ack
    # edge is a slack constraint, not a shrinkable interval).
    clamped = 0
    edge_delta = []
    for e in g.edges:
        raw = spec.sample(e.delta, e.weight if e.kind == EdgeKind.LOCAL else 0.0)
        if e.kind == EdgeKind.LOCAL and raw < -e.weight:
            clamped += 1
            edge_delta.append(-e.weight)
        else:
            edge_delta.append(raw)
    edges = g.edges
    t_new = [0.0] * len(g.nodes)
    for v in g.topological_order():
        node = g.nodes[v]
        base = node.t_local if not node.is_virtual else -math.inf
        ins = g.in_edge_ids(v)
        if ins:
            incoming = max(t_new[edges[ei].src] + weights[ei] + edge_delta[ei] for ei in ins)
            t_new[v] = max(base, incoming) if not node.is_virtual else incoming
        else:
            t_new[v] = base if not node.is_virtual else 0.0
    # Report per-rank delays relative to the original finalize times.
    final_delay: list[float] = []
    final_times: list[float] = []
    node_delay = [
        (t_new[n.node_id] - n.t_local) if not n.is_virtual else 0.0 for n in g.nodes
    ]
    for rank in range(g.nprocs):
        nid = g.final_node_of(rank)
        if nid is None:
            final_delay.append(0.0)
            final_times.append(0.0)
            continue
        final_delay.append(t_new[nid] - g.nodes[nid].t_local)
        final_times.append(t_new[nid])
    return TraversalResult(
        final_delay=final_delay,
        final_local_times=final_times,
        mode=f"absolute-{mode}",
        clamped_edges=clamped,
        node_delay=node_delay,
        edge_delta=edge_delta,
    )


def sample_edge_deltas(build: BuildResult, spec: PerturbationSpec) -> list:
    """Raw (unscaled, unclamped) per-edge delta samples for a build.

    Because deterministic sampling makes every scale of the same
    ``(signature, seed)`` draw the *same* base values, a noise-scale
    ladder can sample once and re-propagate cheaply with
    :func:`propagate_presampled` — the §6 sweep fast path.
    """
    base = spec.scaled(1.0)
    return [base.sample(e.delta, e.weight) for e in build.graph.edges]


def propagate_presampled(
    build: BuildResult,
    raw_deltas: Sequence[float],
    scale: float = 1.0,
    mode: str = "additive",
) -> TraversalResult:
    """Propagate pre-sampled raw deltas at the given scale.

    Exactly equivalent to ``propagate(build, spec.scaled(scale), mode)``
    when ``raw_deltas`` came from :func:`sample_edge_deltas` with the
    same spec — verified by tests — but skips the per-edge RNG work.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    g = build.graph
    if len(raw_deltas) != len(g.edges):
        raise ValueError("raw_deltas length does not match edge count")
    with obs.span("propagate_presampled", mode=mode, scale=scale):
        clamped = 0
        edge_delta = []
        for raw, e in zip(raw_deltas, g.edges):
            value = raw * scale
            if mode == "threshold":
                edge_delta.append(max(0.0, value - e.weight))
            elif value < -e.weight:
                clamped += 1
                edge_delta.append(-e.weight)
            else:
                edge_delta.append(value)
        edges = g.edges
        D = [0.0] * len(g.nodes)
        for v in g.topological_order():
            ins = g.in_edge_ids(v)
            if ins:
                D[v] = max(D[edges[ei].src] + edge_delta[ei] for ei in ins)
        final_delay, final_times = _finals_from_graph(g, D)
        obs.span_add("traversal.propagations")
        if clamped:
            obs.span_add("traversal.clamped_edges", clamped)
    return TraversalResult(
        final_delay=final_delay,
        final_local_times=final_times,
        mode=mode,
        clamped_edges=clamped,
        node_delay=D,
        edge_delta=edge_delta,
    )


def _finals_from_graph(g: MessagePassingGraph, D: Sequence[float]) -> tuple[list, list]:
    final_delay: list[float] = []
    final_times: list[float] = []
    for rank in range(g.nprocs):
        nid = g.final_node_of(rank)
        if nid is None:
            final_delay.append(0.0)
            final_times.append(0.0)
            continue
        final_delay.append(D[nid])
        final_times.append(g.nodes[nid].t_local + D[nid])
    return final_delay, final_times


def longest_weighted_path(
    build: BuildResult, costs: Sequence[float]
) -> tuple[list, list]:
    """Longest weighted path to every node, with predecessor tracking.

    ``costs[ei]`` is edge ``ei``'s effective cost (for diagnosis: the
    observed weight, optionally plus a sampled delta).  Returns
    ``(L, pred)``: ``L[v]`` is the cost of the heaviest path from any
    source to ``v`` (0.0 for sources) and ``pred[v]`` the in-edge id
    binding that maximum (-1 for sources) — so the path itself is
    recoverable by backtracking, not just its length.

    Ties break toward the *first* in-edge in ``g.in_edge_ids`` order,
    which is exactly the tie-break of the compiled level-schedule kernel
    (:meth:`repro.core.compiled.CompiledPlan.longest_path`); the two
    engines therefore recover bit-identical paths.
    """
    g = build.graph
    if len(costs) != len(g.edges):
        raise ValueError("costs length does not match edge count")
    edges = g.edges
    L = [0.0] * len(g.nodes)
    pred = [-1] * len(g.nodes)
    with obs.span("longest_path", engine="incore"):
        for v in g.topological_order():
            best = -math.inf
            binding = -1
            for ei in g.in_edge_ids(v):
                c = L[edges[ei].src] + costs[ei]
                if c > best:
                    best = c
                    binding = ei
            if binding >= 0:
                L[v] = best
                pred[v] = binding
    return L, pred


# ---------------------------------------------------------------------------
# Streaming (windowed) traversal
# ---------------------------------------------------------------------------


class _Mailboxes:
    """Cross-rank delay contributions in flight.

    ``data[(src, dst, tag)]`` — FIFO-indexed (value, sender_seq) pairs
    published by send starts; ``ack[...]`` — finished contributions
    published by receive completions.  Entries are deleted on
    consumption so memory tracks only unmatched traffic.
    """

    def __init__(self) -> None:
        self.data: dict[tuple, tuple] = {}
        self.ack: dict[tuple, float] = {}

    def size(self) -> int:
        return len(self.data) + len(self.ack)


class _CollState:
    """One collective instance being assembled across ranks."""

    def __init__(self, nprocs: int):
        self.entries: dict[int, tuple] = {}  # rank -> (D_start, key, ev)
        self.exits: list | None = None
        self.consumed = 0
        self.nprocs = nprocs

    def full(self) -> bool:
        return len(self.entries) == self.nprocs


def _eval_collective(
    group: CollectiveGroup,
    d_start: Sequence[float],
    events: Sequence[EventRecord],
    nprocs: int,
    config: BuildConfig,
    applier: _DeltaApplier,
) -> list[float]:
    """Per-rank END-subevent delay of one collective instance.

    Evaluates the *same* edge templates the in-core builder materializes
    (identical DeltaSpecs, identical uids) over a scratch endpoint→delay
    map, so streaming and in-core agree bit-for-bit.  END values are
    seeded with each rank's intra-event path (S→E local edge) before the
    template edges run, because reduce-style fan-out edges re-read the
    root's END and must see its *full* delay, intra path included.
    """
    edges = collective_edges(group, nprocs, config)
    starts = [sub(r, group.members[r][1], Phase.START) for r in range(nprocs)]
    ends = [sub(r, group.members[r][1], Phase.END) for r in range(nprocs)]

    # Kahn evaluation over the template's endpoint micro-graph: an edge may
    # fire only once its source value is FINAL (all of the source's own
    # in-edges fired), otherwise a fan-out edge could read a partially
    # accumulated hub.  END values are seeded with the rank's intra-event
    # path (S→E local edge) because reduce-style fan-out re-reads the
    # root's END and must see its full delay.
    values: dict[tuple, float] = {}
    indegree: dict[tuple, int] = {}
    out_by_src: dict[tuple, list] = {}
    for et in edges:
        indegree[et.dst] = indegree.get(et.dst, 0) + 1
        indegree.setdefault(et.src, indegree.get(et.src, 0))
        out_by_src.setdefault(et.src, []).append(et)
    for r in range(nprocs):
        values[starts[r]] = d_start[r]
        intra = intra_event_edge(events[r])
        values[ends[r]] = d_start[r] + applier.effective(intra.delta, intra.weight)
        indegree.setdefault(starts[r], 0)
        indegree.setdefault(ends[r], 0)

    ready = [ep for ep, deg in indegree.items() if deg == 0]
    fired = 0
    while ready:
        ep = ready.pop()
        for et in out_by_src.get(ep, ()):
            contrib = values[ep] + applier.effective(et.delta, et.weight)
            prev = values.get(et.dst, -math.inf)
            values[et.dst] = max(prev, contrib)
            indegree[et.dst] -= 1
            fired += 1
            if indegree[et.dst] == 0:
                ready.append(et.dst)
    if fired != len(edges):
        raise MatchError("collective template has a cycle (internal error)")
    return [values[ends[r]] for r in range(nprocs)]


class StreamingTraversal:
    """Windowed, never-in-core perturbation traversal (§6).

    Parameters
    ----------
    spec:
        Perturbation sampling policy.
    config:
        Graph-semantics knobs (must match any in-core build being
        compared against).
    mode:
        ``"additive"`` or ``"threshold"`` (see module docstring).
    window:
        Maximum number of events any rank may run ahead of the
        least-advanced unfinished rank.  Corresponds to the tunable
        trace buffer of §4; automatically doubled (with a warning) if a
        run's matching distance exceeds it.
    """

    def __init__(
        self,
        spec: PerturbationSpec,
        config: BuildConfig | None = None,
        mode: str = "additive",
        window: int = 4096,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.spec = spec
        self.config = config or BuildConfig()
        self.mode = mode
        self.window = window
        self.max_mailbox = 0  # high-water mark, reported for ABL2

    # -- public API -------------------------------------------------------------
    def run(self, trace_set) -> TraversalResult:
        with obs.span("streaming_traversal", mode=self.mode, window=self.window):
            result = self._run(trace_set)
            obs.span_add("traversal.propagations")
            obs.gauge_max("window.occupancy_hwm", self.max_mailbox)
            if result.clamped_edges:
                obs.span_add("traversal.clamped_edges", result.clamped_edges)
            return result

    def _run(self, trace_set) -> TraversalResult:
        nprocs = trace_set.nprocs
        applier = _DeltaApplier(self.spec, self.mode)
        mail = _Mailboxes()
        colls: dict[int, _CollState] = {}
        warnings: list[str] = []
        window = self.window

        final_delay = [0.0] * nprocs
        final_time = [0.0] * nprocs
        consumed = [0] * nprocs
        done = [False] * nprocs

        procs = [
            self._rank_proc(rank, trace_set.events_of(rank), nprocs, applier, mail, colls, warnings)
            for rank in range(nprocs)
        ]
        needs: list = [None] * nprocs
        # Prime every generator to its first need (or completion).
        for rank, proc in enumerate(procs):
            needs[rank] = self._advance(proc, _PRIME, rank, final_delay, final_time, done, consumed)

        while not all(done):
            progressed = False
            capped = False
            floor = min(consumed[r] for r in range(nprocs) if not done[r])
            for rank in range(nprocs):
                if done[rank]:
                    continue
                if consumed[rank] - floor > window:
                    capped = True
                    continue
                value = self._satisfy(needs[rank], rank, mail, colls, nprocs, applier)
                if value is _UNMET:
                    continue
                needs[rank] = self._advance(
                    procs[rank], value, rank, final_delay, final_time, done, consumed
                )
                progressed = True
            self.max_mailbox = max(self.max_mailbox, mail.size())
            if not progressed:
                if capped:
                    warnings.append(
                        warn(
                            f"window {window} too small for matching distance; doubling",
                            code="window-doubled",
                        )
                    )
                    window *= 2
                    continue
                blocked = [
                    f"rank {r}: waiting on {needs[r]!r}" for r in range(nprocs) if not done[r]
                ]
                raise MatchError("streaming traversal stalled:\n" + "\n".join(blocked))

        return TraversalResult(
            final_delay=final_delay,
            final_local_times=final_time,
            mode=self.mode,
            clamped_edges=applier.clamped,
            warnings=warnings,
        )

    # -- scheduler helpers --------------------------------------------------------
    def _advance(self, proc, value, rank, final_delay, final_time, done, consumed):
        try:
            need = next(proc) if value is _PRIME else proc.send(value)
        except StopIteration as stop:
            d, t, n = stop.value
            final_delay[rank] = d
            final_time[rank] = t
            consumed[rank] = n
            done[rank] = True
            return None
        consumed[rank] = need[-1]  # every need carries the rank's event count
        return need

    def _satisfy(self, need, rank, mail, colls, nprocs, applier):
        kind = need[0]
        if kind == "data":
            key = need[1]
            if key in mail.data:
                return mail.data.pop(key)
            return _UNMET
        if kind == "ack":
            key = need[1]
            if key in mail.ack:
                return mail.ack.pop(key)
            return _UNMET
        if kind == "coll":
            ordinal, group_builder = need[1], need[2]
            st = colls.get(ordinal)
            if st is None or not st.full():
                return _UNMET
            if st.exits is None:
                group, d_start, events = group_builder(st)
                st.exits = _eval_collective(group, d_start, events, nprocs, self.config, applier)
            value = st.exits[rank]
            st.consumed += 1
            if st.consumed == nprocs:
                del colls[ordinal]
            return value
        raise AssertionError(f"unknown need {need!r}")  # pragma: no cover

    # -- per-rank event processor ---------------------------------------------------
    def _rank_proc(
        self,
        rank: int,
        events: Iterator[EventRecord],
        nprocs: int,
        applier: _DeltaApplier,
        mail: _Mailboxes,
        colls: dict,
        warnings: list,
    ):
        """Generator: walks one rank's events computing START/END delays.

        Yields *needs* — ("data", key, n), ("ack", key, n), ("coll",
        ordinal, group_builder, n) — and receives the satisfied value.
        Returns (final_delay, final_local_time, events_consumed).
        """
        cfg = self.config
        send_idx: dict[tuple, int] = defaultdict(int)
        recv_idx: dict[tuple, int] = defaultdict(int)
        req_state: dict[int, tuple] = {}
        coll_counter = 0
        prev: EventRecord | None = None
        d_prev_end = 0.0
        n = 0
        last_t_end = 0.0

        for ev in events:
            n += 1
            last_t_end = ev.t_end
            if prev is not None:
                et = gap_edge(prev, ev)
                d_start = d_prev_end + applier.effective(et.delta, et.weight)
            else:
                d_start = 0.0
            intra = intra_event_edge(ev)
            local_end = d_start + applier.effective(intra.delta, intra.weight)
            kind = ev.kind
            d_end = local_end

            if kind == EventKind.SEND:
                ch = (rank, ev.peer, ev.tag)
                k = send_idx[ch]
                send_idx[ch] += 1
                mail.data[("d",) + ch + (k,)] = d_start
                if cfg.models_ack(ev.nbytes):
                    ack = yield ("ack", ("a",) + ch + (k,), n)
                    d_end = max(local_end, ack)

            elif kind == EventKind.RECV:
                ch = (ev.peer, rank, ev.tag)
                k = recv_idx[ch]
                recv_idx[ch] += 1
                d_src = yield ("data", ("d",) + ch + (k,), n)
                data_delta = DeltaSpec(
                    DeltaKind.TRANSFER_OS,
                    rank=rank,
                    src=ev.peer,
                    dst=rank,
                    nbytes=ev.nbytes,
                    uid=(_prim._UID_DATA, ev.peer, rank, ev.tag, k),
                )
                d_end = max(local_end, d_src + applier.effective(data_delta, 0.0))
                if cfg.models_ack(ev.nbytes):
                    ack_delta = DeltaSpec(
                        DeltaKind.LATENCY,
                        src=rank,
                        dst=ev.peer,
                        uid=(_prim._UID_ACK, ev.peer, rank, ev.tag, k),
                    )
                    mail.ack[("a",) + ch + (k,)] = d_end + applier.effective(ack_delta, 0.0)

            elif kind == EventKind.ISEND:
                ch = (rank, ev.peer, ev.tag)
                k = send_idx[ch]
                send_idx[ch] += 1
                mail.data[("d",) + ch + (k,)] = d_start
                if cfg.models_ack(ev.nbytes):
                    req_state[ev.req] = ("ack", ("a",) + ch + (k,))
                else:
                    req_state[ev.req] = ("done",)

            elif kind == EventKind.IRECV:
                # The data contribution lands at the *completing wait*
                # (Fig. 3), so only a claim is recorded here; consuming the
                # mailbox at the wait keeps receivers from blocking at the
                # posting call (which would deadlock irecv-before-isend
                # exchange patterns).  Channel-FIFO pairing is preserved
                # because the claim captures the channel ordinal now.
                ch = (ev.peer, rank, ev.tag)
                k = recv_idx[ch]
                recv_idx[ch] += 1
                data_delta = DeltaSpec(
                    DeltaKind.TRANSFER_OS,
                    rank=rank,
                    src=ev.peer,
                    dst=rank,
                    nbytes=ev.nbytes,
                    uid=(_prim._UID_DATA, ev.peer, rank, ev.tag, k),
                )
                req_state[ev.req] = ("claim", ("d",) + ch + (k,), data_delta)
                if cfg.models_ack(ev.nbytes):
                    # Rendezvous ack restarts at the posting subevent
                    # (IRECV END) — publish eagerly so the sender's wait
                    # never depends on this rank's own completion order.
                    rdv_delta = DeltaSpec(
                        DeltaKind.ROUNDTRIP,
                        rank=rank,
                        src=ev.peer,
                        dst=rank,
                        nbytes=ev.nbytes,
                        uid=(_prim._UID_ACK, ev.peer, rank, ev.tag, k),
                    )
                    mail.ack[("a",) + ch + (k,)] = local_end + applier.effective(rdv_delta, 0.0)

            elif kind.is_completion:
                for rid in ev.completed:
                    state = req_state.pop(rid, None)
                    if state is None:
                        raise MatchError(
                            f"rank {rank} event #{ev.seq} completes unknown request {rid}"
                        )
                    if state[0] == "claim":
                        d_src = yield ("data", state[1], n)
                        d_end = max(d_end, d_src + applier.effective(state[2], 0.0))
                    elif state[0] == "ack":
                        ack = yield ("ack", state[1], n)
                        d_end = max(d_end, ack)
                    # ("done",): eager isend — nothing lands here.

            elif kind == EventKind.SENDRECV:
                ch_s = (rank, ev.peer, ev.tag)
                ks = send_idx[ch_s]
                send_idx[ch_s] += 1
                mail.data[("d",) + ch_s + (ks,)] = d_start
                ch_r = (ev.recv_peer, rank, ev.recv_tag)
                kr = recv_idx[ch_r]
                recv_idx[ch_r] += 1
                if cfg.models_ack(ev.recv_nbytes):
                    # Publish the recv-half rendezvous ack BEFORE blocking on
                    # the data need: its source is this event's START (see
                    # transfer_edges), so it only requires d_start — and
                    # publishing first keeps mutual sendrecv deadlock-free.
                    rdv_delta = DeltaSpec(
                        DeltaKind.ROUNDTRIP,
                        rank=rank,
                        src=ev.recv_peer,
                        dst=rank,
                        nbytes=ev.recv_nbytes,
                        uid=(_prim._UID_ACK, ev.recv_peer, rank, ev.recv_tag, kr),
                    )
                    mail.ack[("a",) + ch_r + (kr,)] = d_start + applier.effective(rdv_delta, 0.0)
                d_src = yield ("data", ("d",) + ch_r + (kr,), n)
                data_delta = DeltaSpec(
                    DeltaKind.TRANSFER_OS,
                    rank=rank,
                    src=ev.recv_peer,
                    dst=rank,
                    nbytes=ev.recv_nbytes,
                    uid=(_prim._UID_DATA, ev.recv_peer, rank, ev.recv_tag, kr),
                )
                d_end = max(local_end, d_src + applier.effective(data_delta, 0.0))
                if cfg.models_ack(ev.nbytes):
                    ack = yield ("ack", ("a",) + ch_s + (ks,), n)
                    d_end = max(d_end, ack)

            elif kind in COLLECTIVE_KINDS:
                ordinal = ev.coll_seq if ev.coll_seq >= 0 else coll_counter
                coll_counter += 1
                st = colls.setdefault(ordinal, _CollState(nprocs))
                st.entries[rank] = (d_start, (rank, ev.seq), ev)

                def build_group(state: _CollState, _ordinal=ordinal):
                    members = []
                    d_start_all = []
                    evs = []
                    kinds = set()
                    roots = set()
                    nbytes = 0
                    for r in range(nprocs):
                        d, key, e = state.entries[r]
                        members.append(key)
                        d_start_all.append(d)
                        evs.append(e)
                        kinds.add(e.kind)
                        roots.add(e.root)
                        nbytes = max(nbytes, e.nbytes)
                    if len(kinds) != 1 or len(roots) != 1:
                        raise MatchError(
                            f"collective #{_ordinal}: inconsistent kind/root across ranks"
                        )
                    group = CollectiveGroup(
                        ordinal=_ordinal,
                        kind=next(iter(kinds)),
                        root=next(iter(roots)),
                        nbytes=nbytes,
                        members=tuple(members),
                    )
                    return group, d_start_all, evs

                cross = yield ("coll", ordinal, build_group, n)
                d_end = max(local_end, cross)

            # INIT / FINALIZE and non-completing TEST: purely local.

            prev = ev
            d_prev_end = d_end

        leftovers = [rid for rid, st in req_state.items() if st[0] != "done"]
        if leftovers:
            warnings.append(
                warn(
                    f"rank {rank}: {len(leftovers)} request(s) never completed; their "
                    f"transfer delays were dropped (§4.3 asynchronous case)",
                    code="uncompleted-requests",
                    rank=rank,
                    count=len(leftovers),
                )
            )
        return (d_prev_end, last_t_end + d_prev_end, n)


_UNMET = object()
_PRIME = object()
