"""Certified makespan bounds by interval abstract interpretation.

Instead of *sampling* the perturbed graph (Monte-Carlo, §5) this module
propagates guaranteed per-edge delay **intervals** through the exact
same compiled level schedule, producing per-rank and makespan bounds
``[lo, hi]`` that every possible replicate is contained in — without
drawing a single sample.

Soundness argument, end to end:

1. Every primitive draw the perturbation engine makes is clamped at
   zero (:class:`~repro.noise.signature.MachineSignature` samplers), so
   its value lies in the clamped support interval of its distribution
   (:func:`~repro.verify.intervals.support_interval`; quantile-bounded
   for unbounded families — the one explicit soundness caveat).
2. A :class:`~repro.core.perturb.PerturbationSpec` composes draws per
   edge with sums and nonnegative integer multiplicities only
   (:meth:`~repro.core.perturb.PerturbationSpec.sample`), then scales —
   all interval-monotone, mirrored exactly by :func:`edge_intervals`.
3. The mode transfer (:func:`repro.core.compiled._apply_mode_w`) and
   the level-schedule kernel use only ``+``/``max``/floor-clamps, which
   are monotone in IEEE float arithmetic.  Propagating the ``lo`` and
   ``hi`` rows through the *same* kernel a replicate would take
   therefore brackets every replicate's per-rank delay exactly — no
   epsilon, no tolerance.

When the plan carries a :class:`~repro.core.coarsen.CoarseIR` the
interval rows run through :meth:`CompiledPlan._coarse_run` — the phase-
template walk whose contract is "any execution order yields the flat
engine's exact floats" — so bounds are bit-stable across
``--coarsen on/off`` by construction, and million-event stress traces
verify in seconds instead of walking a million flat levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.compiled import CompiledPlan, _apply_mode_w
from repro.core.graph import DeltaKind
from repro.core.traversal import MODES
from repro.noise.signature import MachineSignature
from repro.verify.intervals import DEFAULT_QUANTILE, Interval, support_interval

__all__ = ["EdgeIntervals", "MakespanBounds", "edge_intervals", "makespan_bounds"]


@dataclass(frozen=True)
class EdgeIntervals:
    """Per-edge raw-delta enclosures (pre mode transfer).

    ``lo``/``hi`` have length ``n_edges``; ``lo_q``/``hi_q`` flag
    endpoints that are quantile-bounded rather than absolute.
    """

    lo: np.ndarray
    hi: np.ndarray
    lo_q: np.ndarray
    hi_q: np.ndarray
    quantile: float

    @property
    def q_bounded_edges(self) -> int:
        return int((self.lo_q | self.hi_q).sum())


@dataclass(frozen=True)
class MakespanBounds:
    """A certified per-rank / makespan delay enclosure.

    ``rank_lo``/``rank_hi`` have length ``nprocs``.  ``q_bounded_edges``
    counts edges whose interval is quantile-bounded: when zero the
    certificate is absolute, otherwise it holds up to ``quantile`` per
    affected draw (see :mod:`repro.verify.intervals`).
    """

    rank_lo: np.ndarray
    rank_hi: np.ndarray
    quantile: float
    q_bounded_edges: int
    sampled_edges: int
    scale: float
    mode: str
    coarse: bool

    @property
    def makespan_lo(self) -> float:
        return float(self.rank_lo.max()) if len(self.rank_lo) else 0.0

    @property
    def makespan_hi(self) -> float:
        return float(self.rank_hi.max()) if len(self.rank_hi) else 0.0

    @property
    def absolute(self) -> bool:
        """True when no endpoint needed the finite-support policy."""
        return self.q_bounded_edges == 0

    def contains(self, samples: np.ndarray) -> np.ndarray:
        """Per-replicate containment of a (R, nprocs) delay matrix.

        NaN rows (skipped replicates under fault policies) count as
        contained — there is nothing to check.
        """
        s = np.asarray(samples, dtype=float)
        if s.ndim != 2 or s.shape[1] != len(self.rank_lo):
            raise ValueError(
                f"samples must be (replicates, {len(self.rank_lo)}), got {s.shape}"
            )
        ok = (s >= self.rank_lo[None, :]) & (s <= self.rank_hi[None, :])
        return np.where(np.isnan(s).any(axis=1), True, ok.all(axis=1))

    def violations(self, samples: np.ndarray) -> list[int]:
        """Replicate indices falling outside the enclosure."""
        return [int(i) for i in np.nonzero(~self.contains(samples))[0]]

    def as_dict(self) -> dict[str, Any]:
        return {
            "makespan_lo": self.makespan_lo,
            "makespan_hi": self.makespan_hi,
            "rank_lo": [float(v) for v in self.rank_lo],
            "rank_hi": [float(v) for v in self.rank_hi],
            "quantile": self.quantile,
            "absolute": self.absolute,
            "q_bounded_edges": self.q_bounded_edges,
            "sampled_edges": self.sampled_edges,
            "scale": self.scale,
            "mode": self.mode,
            "coarse": self.coarse,
        }


def _interval_table(
    intervals: list[Interval],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    lo = np.array([iv.lo for iv in intervals], dtype=np.float64)
    hi = np.array([iv.hi for iv in intervals], dtype=np.float64)
    lo_q = np.array([iv.lo_q for iv in intervals], dtype=np.bool_)
    hi_q = np.array([iv.hi_q for iv in intervals], dtype=np.bool_)
    return lo, hi, lo_q, hi_q


def edge_intervals(
    plan: CompiledPlan,
    signature: MachineSignature,
    scale: float = 1.0,
    quantile: float = DEFAULT_QUANTILE,
) -> EdgeIntervals:
    """Raw-delta enclosure per edge, mirroring ``PerturbationSpec.sample``
    delta-kind by delta-kind over the plan's structure-of-arrays columns."""
    n = plan.n_edges
    out_lo = np.zeros(n, dtype=np.float64)
    out_hi = np.zeros(n, dtype=np.float64)
    out_loq = np.zeros(n, dtype=np.bool_)
    out_hiq = np.zeros(n, dtype=np.bool_)
    ids = plan.sampled_ids
    m = len(ids)
    if m == 0:
        return EdgeIntervals(out_lo, out_hi, out_loq, out_hiq, quantile)

    P = plan.nprocs
    # Primitive enclosures, clamped at zero exactly like the signature
    # samplers (sample_os / sample_latency / sample_transfer).
    os_tab = _interval_table(
        [support_interval(signature.os_noise_for(r), quantile).clamp_min(0.0) for r in range(P)]
    )
    lat_default = support_interval(signature.latency, quantile).clamp_min(0.0)
    lat_lo = np.full((P, P), lat_default.lo, dtype=np.float64)
    lat_hi = np.full((P, P), lat_default.hi, dtype=np.float64)
    lat_loq = np.full((P, P), lat_default.lo_q, dtype=np.bool_)
    lat_hiq = np.full((P, P), lat_default.hi_q, dtype=np.bool_)
    for (s, d), dist in signature.latency_by_link.items():
        if 0 <= s < P and 0 <= d < P:
            iv = support_interval(dist, quantile).clamp_min(0.0)
            lat_lo[s, d], lat_hi[s, d] = iv.lo, iv.hi
            lat_loq[s, d], lat_hiq[s, d] = iv.lo_q, iv.hi_q
    pb = support_interval(signature.per_byte, quantile).clamp_min(0.0)

    # Delta metadata columns for the sampled edges (the plan keeps the
    # DeltaSpec list; these small gathers are the only per-edge Python).
    deltas = plan.deltas
    d_rank = np.fromiter((deltas[i].rank for i in ids), dtype=np.int64, count=m)
    d_src = np.fromiter((deltas[i].src for i in ids), dtype=np.int64, count=m)
    d_dst = np.fromiter((deltas[i].dst for i in ids), dtype=np.int64, count=m)
    d_rounds = np.fromiter((deltas[i].rounds for i in ids), dtype=np.int64, count=m)
    nbytes = plan.edge_nbytes[ids].astype(np.float64)
    kind = plan.edge_kind[ids]

    rk = np.clip(d_rank, 0, P - 1)
    sk = np.clip(d_src, 0, P - 1)
    dk = np.clip(d_dst, 0, P - 1)
    os_lo_e, os_hi_e = os_tab[0][rk], os_tab[1][rk]
    os_loq_e, os_hiq_e = os_tab[2][rk], os_tab[3][rk]
    lat_lo_e, lat_hi_e = lat_lo[sk, dk], lat_hi[sk, dk]
    lat_loq_e, lat_hiq_e = lat_loq[sk, dk], lat_hiq[sk, dk]
    rev_lo_e, rev_hi_e = lat_lo[dk, sk], lat_hi[dk, sk]
    rev_loq_e, rev_hiq_e = lat_loq[dk, sk], lat_hiq[dk, sk]
    has_bytes = nbytes > 0
    tr_lo_e = np.where(has_bytes, pb.lo * nbytes, 0.0)
    tr_hi_e = np.where(has_bytes, pb.hi * nbytes, 0.0)
    tr_loq_e = has_bytes & pb.lo_q
    tr_hiq_e = has_bytes & pb.hi_q

    # OS draw multiplicity: sample_os_interval sums os_draws(weight)
    # independent clamped draws under the interval-scaled extension.
    if signature.os_quantum > 0.0:
        w = plan.edge_weight[ids]
        draws = np.where(w <= 0.0, 1.0, np.maximum(1.0, np.ceil(w / signature.os_quantum)))
    else:
        draws = np.ones(m, dtype=np.float64)

    lo = np.zeros(m, dtype=np.float64)
    hi = np.zeros(m, dtype=np.float64)
    loq = np.zeros(m, dtype=np.bool_)
    hiq = np.zeros(m, dtype=np.bool_)

    def add(
        mask: np.ndarray,
        c_lo: np.ndarray,
        c_hi: np.ndarray,
        c_loq: np.ndarray,
        c_hiq: np.ndarray,
    ) -> None:
        lo[mask] += c_lo[mask]
        hi[mask] += c_hi[mask]
        loq[mask] |= c_loq[mask]
        hiq[mask] |= c_hiq[mask]

    k_os = kind == int(DeltaKind.OS)
    if k_os.any():
        add(k_os, draws * os_lo_e, draws * os_hi_e, os_loq_e, os_hiq_e)
    k_lat = kind == int(DeltaKind.LATENCY)
    if k_lat.any():
        add(k_lat, lat_lo_e, lat_hi_e, lat_loq_e, lat_hiq_e)
    k_tr = kind == int(DeltaKind.TRANSFER)
    if k_tr.any():
        add(k_tr, lat_lo_e + tr_lo_e, lat_hi_e + tr_hi_e, lat_loq_e | tr_loq_e,
            lat_hiq_e | tr_hiq_e)
    k_tros = kind == int(DeltaKind.TRANSFER_OS)
    if k_tros.any():
        add(
            k_tros,
            lat_lo_e + tr_lo_e + os_lo_e,
            lat_hi_e + tr_hi_e + os_hi_e,
            lat_loq_e | tr_loq_e | os_loq_e,
            lat_hiq_e | tr_hiq_e | os_hiq_e,
        )
    k_rt = kind == int(DeltaKind.ROUNDTRIP)
    if k_rt.any():
        add(
            k_rt,
            lat_lo_e + tr_lo_e + os_lo_e + rev_lo_e,
            lat_hi_e + tr_hi_e + os_hi_e + rev_hi_e,
            lat_loq_e | tr_loq_e | os_loq_e | rev_loq_e,
            lat_hiq_e | tr_hiq_e | os_hiq_e | rev_hiq_e,
        )
    k_cf = kind == int(DeltaKind.COLL_FANIN)
    if k_cf.any():
        rounds = d_rounds.astype(np.float64)
        add(
            k_cf,
            rounds * (os_lo_e + lat_lo_e + tr_lo_e),
            rounds * (os_hi_e + lat_hi_e + tr_hi_e),
            os_loq_e | lat_loq_e | tr_loq_e,
            os_hiq_e | lat_hiq_e | tr_hiq_e,
        )

    # Global scale last, exactly like PerturbationSpec.sample; a negative
    # scale flips every interval and its per-side flags.
    if scale >= 0.0:
        out_lo[ids], out_hi[ids] = lo * scale, hi * scale
        out_loq[ids], out_hiq[ids] = loq, hiq
    else:
        out_lo[ids], out_hi[ids] = hi * scale, lo * scale
        out_loq[ids], out_hiq[ids] = hiq, loq
    return EdgeIntervals(out_lo, out_hi, out_loq, out_hiq, quantile)


def makespan_bounds(
    plan: CompiledPlan,
    signature: MachineSignature,
    scale: float = 1.0,
    mode: str = "additive",
    quantile: float = DEFAULT_QUANTILE,
) -> MakespanBounds:
    """Propagate the lo/hi interval rows through the compiled schedule.

    Takes the coarse phase-template walk when the plan has one (bit-
    identical to the flat kernel by the ``_coarse_run`` contract), the
    flat level schedule otherwise — so the resulting floats do not
    depend on the ``coarsen`` setting at all.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    with obs.span("verify.bounds", edges=plan.n_edges, quantile=quantile):
        iv = edge_intervals(plan, signature, scale=scale, quantile=quantile)
        raw2 = np.vstack([iv.lo, iv.hi])
        coarse = plan.coarse is not None
        if coarse:
            ir = plan.coarse
            eff_s, _ = _apply_mode_w(
                raw2[:, ir.static_eids], plan.edge_weight[ir.static_eids], mode
            )

            def tmpl_eff(j0: int, j1: int) -> tuple[np.ndarray, np.ndarray]:
                cols = ir.run_edge_ids[j0:j1].reshape(-1)
                return _apply_mode_w(raw2[:, cols], plan.edge_weight[cols], mode)

            delays, _ = plan._coarse_run(2, eff_s, tmpl_eff)
        else:
            eff, _ = plan.apply_mode(raw2, mode)
            delays = plan.finals(plan.kernel(eff))
        return MakespanBounds(
            rank_lo=delays[0].copy(),
            rank_hi=delays[1].copy(),
            quantile=quantile,
            q_bounded_edges=iv.q_bounded_edges,
            sampled_edges=int(len(plan.sampled_ids)),
            scale=scale,
            mode=mode,
            coarse=coarse,
        )
