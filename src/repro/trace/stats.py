"""Descriptive statistics of trace sets.

Before perturbing anything, an analyst wants the shape of the run: how
much of each rank's time is computation vs messaging (the Fig. 1
decomposition, aggregated), who talks to whom and how much, which
primitives dominate.  These are also the numbers one sanity-checks a
substitute workload against when standing in for a proprietary trace.

Since the columnar layer landed, all aggregation goes through
:mod:`repro.metrics.frames` — one vectorized code path shared with the
POP metrics engine (the per-event Python loops this module used to
carry are gone; :func:`repro.metrics.pop.rank_activity` supplies the
time decomposition, numpy ``bincount``/``add.at`` the traffic).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.metrics.frames import Frame, trace_frame
from repro.metrics.pop import rank_activity
from repro.trace.events import EventKind

__all__ = ["RankStats", "TraceStats", "stats_from_frame", "trace_stats"]


@dataclass(frozen=True)
class RankStats:
    """One rank's time and traffic decomposition."""

    rank: int
    events: int
    runtime: float  # first START to last END, local clock
    compute_time: float  # sum of gaps between events
    message_time: float  # sum of event durations
    bytes_sent: int
    bytes_received: int
    messages_sent: int
    messages_received: int
    by_kind: dict

    @property
    def compute_fraction(self) -> float:
        return self.compute_time / self.runtime if self.runtime else 0.0

    @property
    def message_fraction(self) -> float:
        return self.message_time / self.runtime if self.runtime else 0.0


@dataclass
class TraceStats:
    """Whole-run statistics."""

    ranks: list
    comm_matrix: np.ndarray  # bytes sent [src, dst]
    kind_counts: Counter

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.ranks)

    @property
    def total_bytes(self) -> int:
        return int(self.comm_matrix.sum())

    def heaviest_channel(self) -> tuple[int, int, int]:
        """(src, dst, bytes) of the busiest directed pair."""
        idx = int(np.argmax(self.comm_matrix))
        src, dst = divmod(idx, self.nprocs)
        return src, dst, int(self.comm_matrix[src, dst])

    def mean_compute_fraction(self) -> float:
        return float(np.mean([r.compute_fraction for r in self.ranks]))

    def summary(self) -> str:
        src, dst, nbytes = self.heaviest_channel()
        return (
            f"{self.nprocs} ranks, {self.total_events} events, "
            f"{self.total_bytes:,} bytes total; "
            f"mean compute fraction {self.mean_compute_fraction():.1%}; "
            f"busiest channel {src}->{dst} ({nbytes:,} B)"
        )


# Events with a send half / a receive half (SENDRECV has both; its
# receive side lives in the recv_* columns).
_SEND_KINDS = (int(EventKind.SEND), int(EventKind.ISEND), int(EventKind.SENDRECV))
_RECV_KINDS = (int(EventKind.RECV), int(EventKind.IRECV))
_N_KINDS = max(int(k) for k in EventKind) + 1


def stats_from_frame(frame: Frame, nprocs: int | None = None) -> TraceStats:
    """Per-rank and whole-run statistics from a columnar event frame."""
    act = rank_activity(frame, nprocs)
    nprocs = act.nprocs
    rank = frame["rank"]
    kind = frame["kind"]
    peer = frame["peer"]
    nbytes = frame["nbytes"]

    by_kind = np.bincount(
        rank * _N_KINDS + kind, minlength=nprocs * _N_KINDS
    ).reshape(nprocs, _N_KINDS)
    totals = by_kind.sum(axis=0)
    kind_counts = Counter(
        {EventKind(k).name: int(c) for k, c in enumerate(totals) if c}
    )

    send = np.isin(kind, _SEND_KINDS) & (peer >= 0) & (peer < nprocs)
    comm = np.zeros((nprocs, nprocs), dtype=np.int64)
    np.add.at(comm, (rank[send], peer[send]), nbytes[send])
    sent_b = comm.sum(axis=1)
    sent_n = np.bincount(rank[send], minlength=nprocs)

    recv = np.isin(kind, _RECV_KINDS)
    sendrecv = kind == int(EventKind.SENDRECV)
    recv_b = np.zeros(nprocs, dtype=np.int64)
    np.add.at(recv_b, rank[recv], nbytes[recv])
    np.add.at(recv_b, rank[sendrecv], frame["recv_nbytes"][sendrecv])
    recv_n = np.bincount(rank[recv | sendrecv], minlength=nprocs)

    ranks = [
        RankStats(
            rank=r,
            events=int(act.events[r]),
            runtime=float(act.runtime[r]),
            compute_time=float(act.useful[r]),
            message_time=float(act.comm[r]),
            bytes_sent=int(sent_b[r]),
            bytes_received=int(recv_b[r]),
            messages_sent=int(sent_n[r]),
            messages_received=int(recv_n[r]),
            by_kind={
                EventKind(k).name: int(c) for k, c in enumerate(by_kind[r]) if c
            },
        )
        for r in range(nprocs)
    ]
    return TraceStats(ranks=ranks, comm_matrix=comm, kind_counts=kind_counts)


def trace_stats(trace_set) -> TraceStats:
    """Compute per-rank and whole-run statistics (one columnar pass)."""
    return stats_from_frame(trace_frame(trace_set), nprocs=trace_set.nprocs)
