"""Rule-based static analysis of traces and message-passing graphs.

A pre-flight pass over the paper's silent input assumptions: per-rank
monotone timestamps, order-based matching that actually pairs up, and a
graph that is a DAG (§4.1, §4.3).  The rule pack spans both layers —
``MPG0xx`` rules inspect raw per-rank event streams, ``MPG1xx`` rules
the built graph — and every rule shares its diagnostic ``code`` with
the runtime error vocabulary of :mod:`repro.core.diagnostics`, so a
lint finding and a builder crash name the same defect.

Typical use::

    from repro import lint

    report = lint.lint_run(trace_set)
    if not report.ok:
        print(lint.render_text(report))

The ``repro-lint`` CLI renders reports as text, JSON, or SARIF 2.1.0
(for GitHub code scanning); ``repro-analyze --lint {off,warn,strict}``
runs the same pass before graph building, logging findings (warn) or
refusing to analyze a defective trace set (strict).
"""

from repro.lint.engine import LintContext, LintReport, lint_build, lint_run, lint_traces
from repro.lint.model import Finding, LintConfig, Rule, Severity
from repro.lint.registry import all_rules, get_rule, rule_for_code
from repro.lint.report import (
    render_json,
    render_sarif,
    render_text,
    report_to_dict,
    report_to_sarif,
    severity_histogram,
    write_report,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_build",
    "lint_run",
    "lint_traces",
    "render_json",
    "render_sarif",
    "render_text",
    "report_to_dict",
    "report_to_sarif",
    "rule_for_code",
    "severity_histogram",
    "write_report",
]
