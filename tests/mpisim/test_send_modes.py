"""Tests for the MPI_Send mode family (§3.1.1's three blocking forms)."""

import pytest

from repro.mpisim import Compute, Machine, NetworkModel, Recv, Send, SimError, run
from repro.trace.events import EventKind

NET = NetworkModel(
    latency=100.0, bandwidth=1.0, send_overhead=10.0, recv_overhead=10.0, eager_threshold=1000
)


def go(prog, p=2, seed=0):
    return run(prog, machine=Machine(nprocs=p, network=NET), seed=seed)


def send_event(res, rank=0):
    return next(e for e in res.trace.events_of(rank) if e.kind == EventKind.SEND)


class TestSynchronous:
    def test_ssend_waits_even_below_threshold(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=10, mode="synchronous")  # tiny but sync
            else:
                yield Compute(50_000.0)
                yield Recv(source=0)

        res = go(prog)
        send = send_event(res)
        assert send.t_end > 50_000.0  # waited for the late receiver

    def test_standard_same_size_is_eager(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=10)  # standard, below threshold
            else:
                yield Compute(50_000.0)
                yield Recv(source=0)

        res = go(prog)
        assert send_event(res).t_end == pytest.approx(20.0)


class TestBuffered:
    def test_bsend_completes_locally_even_above_threshold(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=100_000, mode="buffered")
            else:
                yield Compute(500_000.0)
                yield Recv(source=0)

        res = go(prog)
        assert send_event(res).t_end == pytest.approx(20.0)

    def test_standard_same_size_is_sync(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=100_000)
            else:
                yield Compute(500_000.0)
                yield Recv(source=0)

        res = go(prog)
        assert send_event(res).t_end > 500_000.0


class TestReady:
    def test_rsend_ok_when_recv_posted(self):
        def prog(me):
            if me.rank == 0:
                yield Compute(10_000.0)  # give the receiver time to post
                yield Send(dest=1, nbytes=10, mode="ready")
            else:
                yield Recv(source=0)

        res = go(prog)
        assert send_event(res).duration == pytest.approx(10.0)  # eager-like

    def test_rsend_erroneous_without_posted_recv(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=10, mode="ready")
            else:
                yield Compute(10_000.0)
                yield Recv(source=0)

        with pytest.raises(SimError, match="ready-mode"):
            go(prog)

    def test_rsend_respects_tag_matching(self):
        def prog(me):
            if me.rank == 0:
                yield Compute(10_000.0)
                yield Send(dest=1, nbytes=10, tag=7, mode="ready")
            else:
                yield Recv(source=0, tag=9)  # wrong tag posted

        with pytest.raises(SimError):
            go(prog)


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="send mode"):
        Send(dest=1, mode="telepathic")
