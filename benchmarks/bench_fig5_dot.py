"""FIG5 — the Appendix A message-passing graph, as Graphviz DOT.

"We show a message-passing graph generated from a real trace generated
by a simple sequence of blocking communications between a small set of
processors ... visualized using Graphviz."  We trace exactly such a
program (3 ranks, blocking primitives only), build the graph, and emit
the DOT source — the figure's artifact.
"""

import re


from benchmarks._common import bench_timings, emit
from repro.core import build_graph, to_dot
from repro.mpisim import Compute, Recv, Send, run


def blocking_prog(me):
    """A simple sequence of blocking communications (Appendix A)."""
    if me.rank == 0:
        yield Compute(1_000.0)
        yield Send(dest=1, nbytes=256)
        yield Recv(source=2)
    elif me.rank == 1:
        yield Recv(source=0)
        yield Compute(2_000.0)
        yield Send(dest=2, nbytes=256)
    else:
        yield Recv(source=1)
        yield Send(dest=0, nbytes=256)


def test_fig5_dot_export(benchmark):
    trace = run(blocking_prog, nprocs=3, seed=0).trace
    build = build_graph(trace)
    dot = benchmark(to_dot, build.graph, "fig5")
    edges = re.findall(r"n\d+ -> n\d+", dot)
    emit(
        "fig5_graph",
        dot,
        params={"nprocs": 3, "program": "blocking_prog"},
        timings=bench_timings(benchmark),
        metrics={"nodes": len(build.graph.nodes), "edges": len(edges)},
    )

    # Structure of the figure: one cluster per rank, dashed message edges
    # pairing each blocking send with its receive, solid local chains.
    assert dot.count("subgraph cluster_rank") == 3
    assert len(edges) == len(build.graph.edges)
    dashed = [l for l in dot.splitlines() if "->" in l and "dashed" in l]
    # 3 transfers × (data + ack) = 6 message edges.
    assert len(dashed) == 6
