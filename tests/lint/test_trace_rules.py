"""Per-rule fixtures for the trace-level rules (MPG0xx).

Each corrupted fixture seeds exactly one defect class, and the test
asserts the report contains findings of exactly that rule id — the
rule pack must neither miss its defect nor cross-fire on another's.
"""

from __future__ import annotations

from repro.lint import LintConfig, Severity, lint_traces
from repro.trace.events import EventKind
from tests.lint.helpers import compute_only, ev, memory_trace, wrap


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestMPG001OverlappingEvents:
    def test_overlap_fires_exactly_mpg001(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 5.0),
            ev(0, 1, EventKind.FINALIZE, 3.0, 6.0),  # starts before INIT ended
        ]
        report = lint_traces(memory_trace(events))
        assert rule_ids(report) == {"MPG001"}
        (f,) = report.findings
        assert f.severity == Severity.ERROR
        assert f.rank == 0 and f.seq == 1

    def test_monotone_trace_is_clean(self):
        report = lint_traces(memory_trace(compute_only(0)))
        assert report.findings == []
        assert report.ok


class TestMPG002NegativeTimestamp:
    def test_negative_time_with_zero_declared_offset(self):
        # MemoryTrace metas declare clock_offset 0, which cannot explain
        # negative local time.
        events = [
            ev(0, 0, EventKind.INIT, -5.0, -4.0),
            ev(0, 1, EventKind.FINALIZE, -4.0, -3.0),
        ]
        report = lint_traces(memory_trace(events))
        assert rule_ids(report) == {"MPG002"}
        assert all(f.severity == Severity.ERROR for f in report.findings)

    def test_non_finite_time(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 1, EventKind.FINALIZE, 2.0, float("inf")),
        ]
        report = lint_traces(memory_trace(events))
        assert "MPG002" in rule_ids(report)

    def test_negative_time_with_declared_negative_offset_is_legitimate(self, tmp_path):
        # A file-backed trace whose header declares a negative clock
        # offset makes negative local time expected (§4.1).
        from repro.trace.reader import TraceSet
        from repro.trace.writer import TraceSetWriter

        with TraceSetWriter(tmp_path, "neg", nprocs=1, clock_params={0: (-100.0, 0.0)}) as w:
            w.record(ev(0, 0, EventKind.INIT, -90.0, -89.0))
            w.record(ev(0, 1, EventKind.FINALIZE, -80.0, -79.0))
        report = lint_traces(TraceSet.open(tmp_path, "neg"))
        assert "MPG002" not in rule_ids(report)


class TestMPG003TruncatedTrace:
    def test_sequence_gap(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 2, EventKind.FINALIZE, 1.0, 2.0),  # seq 1 lost
        ]
        report = lint_traces(memory_trace(events))
        assert rule_ids(report) == {"MPG003"}

    def test_empty_rank(self):
        report = lint_traces(memory_trace(compute_only(0), []))
        assert rule_ids(report) == {"MPG003"}
        (f,) = report.findings
        assert f.rank == 1


class TestMPG004MissingFraming:
    def test_missing_finalize(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 1, EventKind.BARRIER, 1.0, 2.0, coll_seq=0),
        ]
        report = lint_traces(memory_trace(events))
        assert rule_ids(report) == {"MPG004"}
        assert all(f.severity == Severity.WARNING for f in report.findings)

    def test_missing_init(self):
        events = [
            ev(0, 0, EventKind.BARRIER, 0.0, 1.0, coll_seq=0),
            ev(0, 1, EventKind.FINALIZE, 1.0, 2.0),
        ]
        report = lint_traces(memory_trace(events))
        assert rule_ids(report) == {"MPG004"}


class TestMPG005WaitWithoutRequest:
    def test_wait_on_unknown_request(self):
        inner = [(EventKind.WAIT, 2.0, 3.0, dict(reqs=(9,), completed=(9,)))]
        report = lint_traces(memory_trace(wrap(0, inner)))
        assert rule_ids(report) == {"MPG005"}
        (f,) = report.findings
        assert f.severity == Severity.ERROR

    def test_double_completion(self):
        t0 = wrap(
            0,
            [
                (EventKind.ISEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8, req=1)),
                (EventKind.WAIT, 3.0, 4.0, dict(reqs=(1,), completed=(1,))),
                (EventKind.WAIT, 4.0, 5.0, dict(reqs=(1,), completed=(1,))),
            ],
        )
        t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=8))])
        report = lint_traces(memory_trace(t0, t1))
        assert rule_ids(report) == {"MPG005"}
        assert "already-retired" in report.findings[0].message

    def test_missing_request_id(self):
        t0 = wrap(
            0,
            [
                (EventKind.ISEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8, req=-1)),
            ],
        )
        t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=8))])
        report = lint_traces(memory_trace(t0, t1))
        assert "MPG005" in rule_ids(report)


class TestMPG006UncompletedRequest:
    def test_irecv_never_waited(self):
        t0 = wrap(
            0,
            [
                (EventKind.ISEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8, req=1)),
                (EventKind.WAIT, 3.0, 4.0, dict(reqs=(1,), completed=(1,))),
            ],
        )
        t1 = wrap(1, [(EventKind.IRECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=8, req=5))])
        report = lint_traces(memory_trace(t0, t1))
        assert rule_ids(report) == {"MPG006"}
        (f,) = report.findings
        assert f.severity == Severity.WARNING and f.rank == 1


class TestMPG007ClockSkewOutlier:
    def test_outlier_span_flagged(self):
        report = lint_traces(
            memory_trace(compute_only(0, 100.0), compute_only(1, 110.0), compute_only(2, 900.0))
        )
        assert rule_ids(report) == {"MPG007"}
        (f,) = report.findings
        assert f.rank == 2 and f.severity == Severity.WARNING

    def test_two_ranks_never_flagged(self):
        # no quorum to call either rank the outlier
        report = lint_traces(memory_trace(compute_only(0, 100.0), compute_only(1, 900.0)))
        assert report.findings == []

    def test_tolerance_is_configurable(self):
        traces = [compute_only(0, 100.0), compute_only(1, 100.0), compute_only(2, 160.0)]
        loose = lint_traces(memory_trace(*traces), LintConfig(skew_tolerance=2.0))
        tight = lint_traces(memory_trace(*traces), LintConfig(skew_tolerance=0.25))
        assert loose.findings == []
        assert rule_ids(tight) == {"MPG007"}
