"""Tests for the bundled workloads: every app must run to completion on
the simulator, produce a valid trace, and match its expected message
structure."""

import pytest

from repro.apps import (
    ALL_APPS,
    AllreduceIterParams,
    ButterflyParams,
    MasterWorkerParams,
    PipelineParams,
    RandomSparseParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    butterfly_allreduce,
    master_worker,
    neighbor_sets,
    pipeline,
    random_sparse,
    stencil1d,
    token_ring,
)
from repro.mpisim import run
from repro.trace.events import EventKind
from repro.trace.validate import validate_traces


def count(trace, rank, kind):
    return sum(1 for e in trace.events_of(rank) if e.kind == kind)


@pytest.mark.parametrize(
    "name,factory,params,p",
    [
        ("token_ring", token_ring, TokenRingParams(traversals=2), 5),
        ("stencil1d", stencil1d, StencilParams(iterations=3), 5),
        ("stencil1d-open", stencil1d, StencilParams(iterations=2, periodic=False), 4),
        ("master_worker", master_worker, MasterWorkerParams(tasks=9), 4),
        ("allreduce_iter", allreduce_iter, AllreduceIterParams(iterations=4), 6),
        ("butterfly", butterfly_allreduce, ButterflyParams(iterations=2), 8),
        ("pipeline", pipeline, PipelineParams(items=5), 4),
        ("random_sparse", random_sparse, RandomSparseParams(iterations=2), 6),
    ],
)
def test_app_runs_and_traces_validate(name, factory, params, p):
    res = run(factory(params), nprocs=p, seed=1)
    assert res.makespan > 0
    report = validate_traces(res.trace)
    assert report.ok, f"{name}: {[str(e) for e in report.errors[:3]]}"


@pytest.mark.parametrize("name", sorted(ALL_APPS))
def test_registry_default_params_run(name):
    factory, params_cls = ALL_APPS[name]
    p = 8 if name == "butterfly_allreduce" else 4
    res = run(factory(params_cls()), nprocs=p, seed=0)
    assert validate_traces(res.trace).ok


class TestTokenRing:
    def test_message_count(self):
        T, p = 3, 6
        res = run(token_ring(TokenRingParams(traversals=T)), nprocs=p, seed=0)
        for rank in range(p):
            assert count(res.trace, rank, EventKind.SEND) == T
            assert count(res.trace, rank, EventKind.RECV) == T

    def test_single_rank_degenerates_to_compute(self):
        res = run(token_ring(TokenRingParams(traversals=3)), nprocs=1, seed=0)
        assert count(res.trace, 0, EventKind.SEND) == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            TokenRingParams(traversals=0)
        with pytest.raises(ValueError):
            TokenRingParams(token_bytes=-1)
        with pytest.raises(ValueError):
            TokenRingParams(compute_cycles=-1.0)


class TestStencil:
    def test_periodic_message_count(self):
        it, p = 4, 5
        res = run(stencil1d(StencilParams(iterations=it)), nprocs=p, seed=0)
        for rank in range(p):
            assert count(res.trace, rank, EventKind.ISEND) == 2 * it
            assert count(res.trace, rank, EventKind.IRECV) == 2 * it
            assert count(res.trace, rank, EventKind.WAITALL) == it

    def test_open_boundary_ranks_fewer_messages(self):
        it, p = 3, 4
        res = run(stencil1d(StencilParams(iterations=it, periodic=False)), nprocs=p, seed=0)
        assert count(res.trace, 0, EventKind.ISEND) == it  # only right neighbor
        assert count(res.trace, 1, EventKind.ISEND) == 2 * it

    def test_param_validation(self):
        with pytest.raises(ValueError):
            StencilParams(iterations=0)
        with pytest.raises(ValueError):
            StencilParams(halo_bytes=-1)


class TestMasterWorker:
    def test_task_conservation(self):
        tasks, p = 13, 4
        res = run(master_worker(MasterWorkerParams(tasks=tasks)), nprocs=p, seed=0)
        # Results received by master == tasks dispatched.
        results = sum(
            1
            for e in res.trace.events_of(0)
            if e.kind == EventKind.RECV and e.tag == 2
        )
        assert results == tasks
        # Every worker got exactly one stop message (tag 3).
        stops = sum(
            1 for e in res.trace.events_of(0) if e.kind == EventKind.SEND and e.tag == 3
        )
        assert stops == p - 1

    def test_fewer_tasks_than_workers(self):
        res = run(master_worker(MasterWorkerParams(tasks=2)), nprocs=6, seed=0)
        assert validate_traces(res.trace).ok

    def test_wildcard_sources_resolved(self):
        res = run(master_worker(MasterWorkerParams(tasks=8)), nprocs=4, seed=0)
        for e in res.trace.events_of(0):
            if e.kind == EventKind.RECV:
                assert e.peer >= 1  # resolved, not ANY_SOURCE


class TestButterfly:
    def test_power_of_two_enforced(self):
        import pytest


        with pytest.raises((ValueError, RuntimeError)):
            run(butterfly_allreduce(ButterflyParams(iterations=1)), nprocs=6, seed=0)

    def test_stage_count(self):
        it, p = 2, 8
        res = run(butterfly_allreduce(ButterflyParams(iterations=it)), nprocs=p, seed=0)
        for rank in range(p):
            assert count(res.trace, rank, EventKind.SENDRECV) == it * 3  # log2(8)


class TestPipeline:
    def test_endpoint_roles(self):
        items, p = 6, 4
        res = run(pipeline(PipelineParams(items=items)), nprocs=p, seed=0)
        assert count(res.trace, 0, EventKind.RECV) == 0
        assert count(res.trace, 0, EventKind.SEND) == items
        assert count(res.trace, p - 1, EventKind.RECV) == items
        assert count(res.trace, p - 1, EventKind.SEND) == 0

    def test_middle_stage_forwards(self):
        res = run(pipeline(PipelineParams(items=5)), nprocs=4, seed=0)
        assert count(res.trace, 1, EventKind.RECV) == 5
        assert count(res.trace, 1, EventKind.SEND) == 5


class TestRandomSparse:
    def test_topology_deterministic(self):
        params = RandomSparseParams(degree=3, topology_seed=42)
        assert neighbor_sets(8, params) == neighbor_sets(8, params)

    def test_out_degree_respected(self):
        params = RandomSparseParams(degree=3)
        topo = neighbor_sets(10, params)
        for row in topo:
            assert len(row) == 3
            assert len({d for d, _ in row}) == 3

    def test_degree_capped_for_tiny_p(self):
        params = RandomSparseParams(degree=5)
        topo = neighbor_sets(3, params)
        for r, row in enumerate(topo):
            assert len(row) == 2
            assert all(d != r for d, _ in row)

    def test_message_counts_match_topology(self):
        params = RandomSparseParams(iterations=2, degree=2)
        p = 5
        topo = neighbor_sets(p, params)
        res = run(random_sparse(params), nprocs=p, seed=0)
        for rank in range(p):
            assert count(res.trace, rank, EventKind.ISEND) == 2 * len(topo[rank])


class TestStencil2D:
    def test_grid_shape(self):
        from repro.apps import grid_shape

        assert grid_shape(1) == (1, 1)
        assert grid_shape(6) == (2, 3)
        assert grid_shape(12) == (3, 4)
        assert grid_shape(16) == (4, 4)
        assert grid_shape(7) == (1, 7)
        with pytest.raises(ValueError):
            grid_shape(0)

    def test_runs_and_validates(self):
        from repro.apps import Stencil2DParams, stencil2d

        res = run(stencil2d(Stencil2DParams(iterations=3)), nprocs=6, seed=0)
        assert validate_traces(res.trace).ok

    def test_interior_vs_corner_neighbor_counts(self):
        from repro.apps import Stencil2DParams, stencil2d

        it = 2
        res = run(stencil2d(Stencil2DParams(iterations=it)), nprocs=9, seed=0)  # 3x3 grid
        # corner rank 0 has 2 neighbors; center rank 4 has 4.
        assert count(res.trace, 0, EventKind.ISEND) == 2 * it
        assert count(res.trace, 4, EventKind.ISEND) == 4 * it

    def test_periodic_all_ranks_four_neighbors(self):
        from repro.apps import Stencil2DParams, stencil2d

        res = run(stencil2d(Stencil2DParams(iterations=2, periodic=True)), nprocs=9, seed=0)
        for rank in range(9):
            assert count(res.trace, rank, EventKind.ISEND) == 8

    def test_noise_front_spreads_like_a_diamond(self):
        """A single noisy rank's delay reaches grid neighbors first —
        the 2-D analogue of §4.2's propagation regions."""
        from repro.apps import Stencil2DParams, stencil2d
        from repro.core import PerturbationSpec, build_graph, propagate
        from repro.noise import Constant, MachineSignature

        p = 9  # 3x3, center rank 4
        trace = run(
            stencil2d(Stencil2DParams(iterations=1, interior_cycles=10_000.0)),
            nprocs=p,
            seed=0,
        ).trace
        build = build_graph(trace)
        sig = MachineSignature(os_noise_by_rank={4: Constant(50_000.0)})
        res = propagate(build, PerturbationSpec(sig, seed=0))
        # After one step, the center's noise reaches its 4 face neighbors
        # but not the corners (diagonals need two hops).
        neighbors = {1, 3, 5, 7}
        corners = {0, 2, 6, 8}
        for r in neighbors:
            assert res.final_delay[r] > 0
        for r in corners:
            assert res.final_delay[r] == 0.0

    def test_equality_across_engines(self):
        from repro.apps import Stencil2DParams, stencil2d
        from repro.core import PerturbationSpec
        from repro.noise import Exponential, MachineSignature
        from tests.conftest import assert_engines_agree

        trace = run(stencil2d(Stencil2DParams(iterations=3)), nprocs=6, seed=1).trace
        sig = MachineSignature(os_noise=Exponential(90.0), latency=Exponential(35.0))
        assert_engines_agree(trace, PerturbationSpec(sig, seed=4))


class TestFFTTranspose:
    def test_runs_and_validates(self):
        from repro.apps import FFTTransposeParams, fft_transpose

        res = run(fft_transpose(FFTTransposeParams(stages=3)), nprocs=6, seed=0)
        assert validate_traces(res.trace).ok
        assert count(res.trace, 0, EventKind.ALLTOALL) == 3

    def test_bandwidth_bound_scaling(self):
        """Transpose time scales with block size: quadrupling the payload
        must visibly grow the makespan (bisection-bandwidth-bound)."""
        from repro.apps import FFTTransposeParams, fft_transpose

        small = run(
            fft_transpose(FFTTransposeParams(stages=3, block_bytes=1_000)), nprocs=8, seed=0
        ).makespan
        big = run(
            fft_transpose(FFTTransposeParams(stages=3, block_bytes=400_000)), nprocs=8, seed=0
        ).makespan
        assert big > small * 2

    def test_param_validation(self):
        from repro.apps import FFTTransposeParams

        with pytest.raises(ValueError):
            FFTTransposeParams(stages=0)
        with pytest.raises(ValueError):
            FFTTransposeParams(block_bytes=-1)
