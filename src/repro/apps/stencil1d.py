"""1-D halo-exchange stencil with nonblocking communication.

The canonical latency-hiding pattern the paper's §3.1.3 motivates:
post irecvs for both halos, isend both boundary slabs, overlap the
interior computation, then Waitall before touching the halos.  Exercises
the Fig. 3 (nonblocking + wait) subgraph on every edge of the process
line/ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Compute, Irecv, Isend, Op, RankInfo, Waitall

__all__ = ["StencilParams", "stencil1d", "stress_params"]


@dataclass(frozen=True)
class StencilParams:
    """Configuration of the halo-exchange stencil.

    iterations:
        Time steps.
    halo_bytes:
        Size of each boundary slab.
    interior_cycles:
        Overlappable interior computation per step.
    boundary_cycles:
        Post-exchange boundary computation per step.
    periodic:
        Ring (True) or open line (False) topology.
    """

    iterations: int = 10
    halo_bytes: int = 2048
    interior_cycles: float = 40_000.0
    boundary_cycles: float = 4_000.0
    periodic: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.halo_bytes < 0 or self.interior_cycles < 0 or self.boundary_cycles < 0:
            raise ValueError("sizes and cycle counts must be >= 0")


_LEFT_TAG = 11
_RIGHT_TAG = 12


def stress_params(iterations: int = 52_000) -> StencilParams:
    """Iteration-scaled million-event stress configuration.

    A periodic ring rank traces five events per step, so 4 ranks at the
    default 52 000 iterations yield a 1 040 008-event trace that builds
    into a ~2.1M-node, ~2.9M-edge graph with 520 003 flat levels — the
    >= 1M-event iterative workload the coarsening benchmark
    (``benchmarks/bench_perf_coarsen.py``) and the coarsen-scale CI job
    exercise.  Deep and narrow on purpose: the flat engine's cost is
    dominated by per-level dispatch overhead, which is exactly what
    phase coarsening amortizes into one shared template.
    """
    return StencilParams(iterations=iterations)


def stencil1d(params: StencilParams = StencilParams()):
    """Rank program factory for the nonblocking 1-D stencil."""

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        if params.periodic:
            left = (me.rank - 1) % p if p > 1 else None
            right = (me.rank + 1) % p if p > 1 else None
        else:
            left = me.rank - 1 if me.rank > 0 else None
            right = me.rank + 1 if me.rank < p - 1 else None
        if left == me.rank or right == me.rank:  # p == 1 periodic
            left = right = None
        for _ in range(params.iterations):
            requests = []
            if left is not None:
                requests.append((yield Irecv(source=left, tag=_RIGHT_TAG)))
            if right is not None:
                requests.append((yield Irecv(source=right, tag=_LEFT_TAG)))
            if right is not None:
                requests.append(
                    (yield Isend(dest=right, nbytes=params.halo_bytes, tag=_RIGHT_TAG))
                )
            if left is not None:
                requests.append(
                    (yield Isend(dest=left, nbytes=params.halo_bytes, tag=_LEFT_TAG))
                )
            yield Compute(params.interior_cycles)
            if requests:
                yield Waitall(requests)
            yield Compute(params.boundary_cycles)

    return program
