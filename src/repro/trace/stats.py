"""Descriptive statistics of trace sets.

Before perturbing anything, an analyst wants the shape of the run: how
much of each rank's time is computation vs messaging (the Fig. 1
decomposition, aggregated), who talks to whom and how much, which
primitives dominate.  These are also the numbers one sanity-checks a
substitute workload against when standing in for a proprietary trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.trace.events import EventKind, EventRecord

__all__ = ["RankStats", "TraceStats", "trace_stats"]


@dataclass(frozen=True)
class RankStats:
    """One rank's time and traffic decomposition."""

    rank: int
    events: int
    runtime: float  # first START to last END, local clock
    compute_time: float  # sum of gaps between events
    message_time: float  # sum of event durations
    bytes_sent: int
    bytes_received: int
    messages_sent: int
    messages_received: int
    by_kind: dict

    @property
    def compute_fraction(self) -> float:
        return self.compute_time / self.runtime if self.runtime else 0.0

    @property
    def message_fraction(self) -> float:
        return self.message_time / self.runtime if self.runtime else 0.0


@dataclass
class TraceStats:
    """Whole-run statistics."""

    ranks: list
    comm_matrix: np.ndarray  # bytes sent [src, dst]
    kind_counts: Counter

    @property
    def nprocs(self) -> int:
        return len(self.ranks)

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.ranks)

    @property
    def total_bytes(self) -> int:
        return int(self.comm_matrix.sum())

    def heaviest_channel(self) -> tuple[int, int, int]:
        """(src, dst, bytes) of the busiest directed pair."""
        idx = int(np.argmax(self.comm_matrix))
        src, dst = divmod(idx, self.nprocs)
        return src, dst, int(self.comm_matrix[src, dst])

    def mean_compute_fraction(self) -> float:
        return float(np.mean([r.compute_fraction for r in self.ranks]))

    def summary(self) -> str:
        src, dst, nbytes = self.heaviest_channel()
        return (
            f"{self.nprocs} ranks, {self.total_events} events, "
            f"{self.total_bytes:,} bytes total; "
            f"mean compute fraction {self.mean_compute_fraction():.1%}; "
            f"busiest channel {src}->{dst} ({nbytes:,} B)"
        )


def _sent(ev: EventRecord) -> tuple[int, int] | None:
    """(dst, nbytes) of the event's send half, if any."""
    if ev.kind in (EventKind.SEND, EventKind.ISEND, EventKind.SENDRECV):
        return ev.peer, ev.nbytes
    return None


def _received(ev: EventRecord) -> tuple[int, int] | None:
    """(src, nbytes) of the event's receive half, if any."""
    if ev.kind in (EventKind.RECV, EventKind.IRECV):
        return ev.peer, ev.nbytes
    if ev.kind == EventKind.SENDRECV:
        return ev.recv_peer, ev.recv_nbytes
    return None


def trace_stats(trace_set) -> TraceStats:
    """Compute per-rank and whole-run statistics (one streaming pass)."""
    nprocs = trace_set.nprocs
    comm = np.zeros((nprocs, nprocs), dtype=np.int64)
    kind_counts: Counter = Counter()
    ranks = []
    for rank in range(nprocs):
        events = 0
        compute = 0.0
        message = 0.0
        first_start = None
        last_end = 0.0
        prev_end = None
        sent_b = recv_b = sent_n = recv_n = 0
        by_kind: Counter = Counter()
        for ev in trace_set.events_of(rank):
            events += 1
            by_kind[ev.kind.name] += 1
            kind_counts[ev.kind.name] += 1
            if first_start is None:
                first_start = ev.t_start
            if prev_end is not None:
                compute += ev.t_start - prev_end
            message += ev.duration
            prev_end = ev.t_end
            last_end = ev.t_end
            s = _sent(ev)
            if s is not None and 0 <= s[0] < nprocs:
                sent_b += s[1]
                sent_n += 1
                comm[rank, s[0]] += s[1]
            r = _received(ev)
            if r is not None:
                recv_b += r[1]
                recv_n += 1
        ranks.append(
            RankStats(
                rank=rank,
                events=events,
                runtime=(last_end - first_start) if first_start is not None else 0.0,
                compute_time=compute,
                message_time=message,
                bytes_sent=sent_b,
                bytes_received=recv_b,
                messages_sent=sent_n,
                messages_received=recv_n,
                by_kind=dict(by_kind),
            )
        )
    return TraceStats(ranks=ranks, comm_matrix=comm, kind_counts=kind_counts)
