"""Tests for per-rank local clocks (§4.1 motivation)."""

import pytest

from repro.mpisim.clock import LocalClock, perfect_clocks, random_clocks


class TestLocalClock:
    def test_identity_default(self):
        c = LocalClock()
        assert c.to_local(123.0) == 123.0
        assert c.to_global(123.0) == 123.0

    def test_offset(self):
        c = LocalClock(offset=100.0)
        assert c.to_local(5.0) == 105.0
        assert c.to_global(105.0) == 5.0

    def test_drift(self):
        c = LocalClock(drift=0.5)
        assert c.to_local(10.0) == 15.0
        assert c.to_global(15.0) == pytest.approx(10.0)

    def test_round_trip(self):
        c = LocalClock(offset=-1e6, drift=1e-4)
        for t in (0.0, 1.0, 1e9, 123.456):
            assert c.to_global(c.to_local(t)) == pytest.approx(t, rel=1e-9, abs=1e-6)

    def test_monotone_for_drift_above_minus_one(self):
        c = LocalClock(offset=50.0, drift=-0.9)
        assert c.to_local(10.0) < c.to_local(20.0)

    def test_rejects_backwards_clock(self):
        with pytest.raises(ValueError):
            LocalClock(drift=-1.0)
        with pytest.raises(ValueError):
            LocalClock(drift=-2.0)


class TestFactories:
    def test_perfect(self):
        clocks = perfect_clocks(4)
        assert len(clocks) == 4
        assert all(c.offset == 0.0 and c.drift == 0.0 for c in clocks)

    def test_random_within_bounds(self):
        clocks = random_clocks(16, seed=1, max_offset=1000.0, max_drift=1e-3)
        assert len(clocks) == 16
        for c in clocks:
            assert -1000.0 <= c.offset <= 1000.0
            assert -1e-3 <= c.drift <= 1e-3

    def test_random_deterministic(self):
        a = random_clocks(4, seed=7)
        b = random_clocks(4, seed=7)
        assert a == b

    def test_random_varies(self):
        clocks = random_clocks(8, seed=0)
        offsets = {c.offset for c in clocks}
        assert len(offsets) == 8  # astronomically unlikely to collide
