"""Tests for absolute-mode propagation (the slack-absorbing extension).

Only valid for builds over globally-clocked traces
(``BuildConfig(absolute_weights=True)``); used to validate the paper's
delta model against a stronger recomputation.
"""

import pytest

from repro.core import (
    BuildConfig,
    PerturbationSpec,
    build_graph,
    propagate,
    propagate_absolute,
)
from repro.mpisim import Compute, Machine, Recv, Send, run
from repro.noise import Constant, Exponential, MachineSignature

ABS = BuildConfig(absolute_weights=True)


def abs_build(prog, p, seed=0):
    # Default Machine: perfect (globally consistent) clocks.
    trace = run(prog, nprocs=p, seed=seed).trace
    return build_graph(trace, ABS)


def ring3(me):
    p = me.size
    for _ in range(3):
        yield Compute(10_000.0)
        if me.rank == 0:
            yield Send(dest=1, nbytes=128)
            yield Recv(source=p - 1)
        else:
            yield Recv(source=me.rank - 1)
            yield Send(dest=(me.rank + 1) % p, nbytes=128)


class TestZeroIdentity:
    def test_reproduces_original_timestamps(self):
        build = abs_build(ring3, 4)
        res = propagate_absolute(build, PerturbationSpec(MachineSignature(), seed=0))
        g = build.graph
        for n in g.nodes:
            if not n.is_virtual:
                assert res.node_delay[n.node_id] == pytest.approx(0.0, abs=1e-6)
        assert res.final_delay == [pytest.approx(0.0, abs=1e-6)] * 4

    def test_requires_absolute_build(self, ring_trace):
        build = build_graph(ring_trace)  # default: clock-free weights
        with pytest.raises(ValueError, match="absolute_weights"):
            propagate_absolute(build, PerturbationSpec(MachineSignature(), seed=0))


class TestSlackAbsorption:
    def test_waiting_receiver_still_delayed_by_sender(self):
        """A receiver that was genuinely *waiting* for the message has no
        slack against sender delays: the arrival path was binding in the
        original run, so both models must propagate the sender's noise."""

        def prog(me):
            if me.rank == 0:
                yield Compute(50_000.0)
                yield Send(dest=1, nbytes=64)
            else:
                yield Recv(source=0)  # posted at ~t=10, data arrives ~t>50k

        trace = run(prog, nprocs=2, seed=0).trace
        sig = MachineSignature(os_noise_by_rank={0: Constant(1_000.0)})
        spec = PerturbationSpec(sig, seed=0)

        delta_res = propagate(build_graph(trace), spec)
        abs_res = propagate_absolute(build_graph(trace, ABS), spec)
        assert delta_res.final_delay[1] > 0
        assert abs_res.final_delay[1] > 0
        assert abs_res.final_delay[0] == pytest.approx(delta_res.final_delay[0], rel=0.5)

    def test_late_receiver_absorbs_network_perturbation(self):
        """The receive was posted long after the data arrived (eager):
        extra latency smaller than that lateness is fully absorbed in
        absolute mode, fully propagated in delta mode."""

        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=64)
            else:
                yield Compute(100_000.0)
                yield Recv(source=0)  # message arrived ~99k cycles ago

        trace = run(prog, nprocs=2, seed=0).trace
        sig = MachineSignature(latency=Constant(5_000.0))
        spec = PerturbationSpec(sig, seed=0)

        delta_res = propagate(build_graph(trace), spec)
        # Single message on the channel -> the per-channel heuristic has no
        # tight lag to learn from; supply the causal transfer time from the
        # known machine (default network: o_s 200 + lat 1000 + d/bw + o_r 200).
        estimate = lambda src, dst, nbytes: 200.0 + 1000.0 + nbytes / 1.0 + 200.0
        abs_res = propagate_absolute(
            build_graph(trace, ABS), spec, transfer_estimate=estimate
        )
        assert delta_res.final_delay[1] >= 5_000.0  # conservative
        assert abs_res.final_delay[1] == pytest.approx(0.0, abs=1e-6)  # absorbed

    def test_absolute_never_exceeds_delta(self):
        """Slack absorption can only reduce predicted delays."""
        build_d = abs_build(ring3, 4)
        sig = MachineSignature(os_noise=Exponential(200.0), latency=Exponential(80.0))
        spec = PerturbationSpec(sig, seed=7)
        delta_res = propagate(build_d, spec)
        abs_res = propagate_absolute(build_d, spec)
        for a, d in zip(abs_res.final_delay, delta_res.final_delay):
            assert a <= d + 1e-6


class TestAgainstGroundTruth:
    def test_absolute_at_least_as_accurate_as_delta(self):
        """For a synchronous ring under constant machine noise, the
        absolute recomputation should land no further from ground truth
        than the delta model."""
        from repro.mpisim import NetworkModel
        from repro.noise import DistributionNoise

        net = NetworkModel(latency=800.0, bandwidth=4.0, send_overhead=100.0, recv_overhead=100.0)
        quiet = Machine(nprocs=5, network=net)
        noisy = Machine(nprocs=5, network=net, noise=DistributionNoise(Constant(400.0)))
        base = run(ring3, machine=quiet, seed=0)
        actual = run(ring3, machine=noisy, seed=0).makespan - base.makespan

        sig = MachineSignature(os_noise=Constant(400.0))
        spec = PerturbationSpec(sig, seed=0)
        delta_res = propagate(build_graph(base.trace), spec)
        abs_res = propagate_absolute(build_graph(base.trace, ABS), spec)
        delta_err = abs(delta_res.max_delay - actual)
        abs_err = abs(abs_res.max_delay - actual)
        assert abs_err <= delta_err + 1e-6
