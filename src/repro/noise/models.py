"""Synthetic operating-system noise generators.

These play the role of the *physical machine* in our reproduction: the
simulator (:mod:`repro.mpisim`) asks a noise model how much extra time a
compute or messaging phase loses to the OS, exactly the way a real node
loses cycles to kernel daemons.  The microbenchmarks of §5.1 then probe
these generators — without being told their parameters — and the fitted
or empirical distributions they recover are what parameterizes the
graph-perturbation analysis.  That closes the paper's loop:
machine → microbenchmark → signature → analysis.

A noise model answers one question::

    delay(rng, t_start, duration) -> float

"how much total interference does a phase of ``duration`` cycles
starting at local time ``t_start`` suffer?"  Time-dependence matters:
periodic daemons hit phases that overlap their firing times, which is
what the FTQ benchmark is designed to detect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro._util import check_nonnegative, check_positive
from repro.noise.distributions import RandomVariable

__all__ = [
    "NoiseModel",
    "NoNoise",
    "RandomPreemption",
    "PeriodicDaemon",
    "DistributionNoise",
    "CompositeNoise",
    "NO_NOISE",
]


@runtime_checkable
class NoiseModel(Protocol):
    """Protocol for OS-interference generators."""

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        """Total extra cycles lost in the phase ``[t_start, t_start+duration)``."""


@dataclass(frozen=True)
class NoNoise:
    """The idealized noiseless lightweight-kernel node."""

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        return 0.0


NO_NOISE = NoNoise()


@dataclass(frozen=True)
class RandomPreemption:
    """Memoryless preemptions: Poisson arrivals, random cost each.

    ``rate`` is expected preemptions per cycle (tiny numbers — e.g.
    ``1e-6`` means one preemption per million cycles); ``cost`` is the
    per-preemption delay distribution.
    """

    rate: float
    cost: RandomVariable

    def __post_init__(self) -> None:
        check_nonnegative("RandomPreemption rate", self.rate)

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        if duration <= 0 or self.rate == 0.0:
            return 0.0
        hits = rng.poisson(self.rate * duration)
        if hits == 0:
            return 0.0
        return float(np.sum(np.maximum(self.cost.sample_n(rng, hits), 0.0)))


@dataclass(frozen=True)
class PeriodicDaemon:
    """A daemon firing every ``period`` cycles with phase ``phase``.

    Each firing inside the phase window costs a draw from ``cost``.
    This is the canonical structure FTQ exposes as periodic dips in
    work-per-quantum (Sottile & Minnich 2004).
    """

    period: float
    cost: RandomVariable
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_positive("PeriodicDaemon period", self.period)
        check_nonnegative("PeriodicDaemon phase", self.phase)

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        if duration <= 0:
            return 0.0
        # Daemon fires at phase + k*period; count firings in [t_start, t_start+duration).
        first = math.ceil((t_start - self.phase) / self.period)
        last = math.ceil((t_start + duration - self.phase) / self.period) - 1
        hits = last - first + 1
        if hits <= 0:
            return 0.0
        return float(np.sum(np.maximum(self.cost.sample_n(rng, hits), 0.0)))

    def firings(self, t_start: float, duration: float) -> np.ndarray:
        """Local times of daemon firings inside the window (for tests)."""
        first = math.ceil((t_start - self.phase) / self.period)
        last = math.ceil((t_start + duration - self.phase) / self.period) - 1
        if last < first:
            return np.empty(0, dtype=float)
        ks = np.arange(first, last + 1, dtype=float)
        return self.phase + ks * self.period


@dataclass(frozen=True)
class DistributionNoise:
    """Stateless per-phase noise: one draw from ``dist`` per phase,
    optionally scaled by phase duration.

    With ``per_cycle=True`` the draw is interpreted as noise *per cycle*
    of work (useful for modeling slowdown factors); otherwise it is an
    absolute per-phase delay — which matches how the paper attaches one
    δ_os sample per local edge.
    """

    dist: RandomVariable
    per_cycle: bool = False

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        if duration <= 0:
            return 0.0
        draw = max(self.dist.sample(rng), 0.0)
        return draw * duration if self.per_cycle else draw


@dataclass(frozen=True)
class CompositeNoise:
    """Sum of independent noise sources (daemons + preemptions + ...)."""

    parts: tuple

    def __init__(self, parts: Sequence[NoiseModel]):
        object.__setattr__(self, "parts", tuple(parts))

    def delay(self, rng: np.random.Generator, t_start: float, duration: float) -> float:
        return float(sum(p.delay(rng, t_start, duration) for p in self.parts))
