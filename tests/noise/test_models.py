"""Tests for the synthetic OS-noise generators."""

import numpy as np
import pytest

from repro.noise.distributions import Constant, Exponential
from repro.noise.models import (
    NO_NOISE,
    CompositeNoise,
    DistributionNoise,
    NoiseModel,
    NoNoise,
    PeriodicDaemon,
    RandomPreemption,
)


class TestNoNoise:
    def test_always_zero(self, rng):
        assert NO_NOISE.delay(rng, 0.0, 1e9) == 0.0
        assert NoNoise().delay(rng, 123.0, 456.0) == 0.0

    def test_protocol(self):
        assert isinstance(NO_NOISE, NoiseModel)


class TestRandomPreemption:
    def test_expected_total(self, rng):
        # rate*duration*mean_cost expected loss.
        model = RandomPreemption(rate=1e-4, cost=Constant(500.0))
        total = sum(model.delay(rng, 0.0, 100_000.0) for _ in range(200))
        expected = 200 * 1e-4 * 100_000.0 * 500.0
        assert total == pytest.approx(expected, rel=0.1)

    def test_zero_rate(self, rng):
        assert RandomPreemption(0.0, Constant(1.0)).delay(rng, 0.0, 1e6) == 0.0

    def test_zero_duration(self, rng):
        assert RandomPreemption(1.0, Constant(1.0)).delay(rng, 0.0, 0.0) == 0.0

    def test_negative_costs_clamped(self, rng):
        model = RandomPreemption(rate=1e-3, cost=Constant(-100.0))
        assert model.delay(rng, 0.0, 100_000.0) == 0.0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            RandomPreemption(-1.0, Constant(1.0))


class TestPeriodicDaemon:
    def test_firings_in_window(self):
        d = PeriodicDaemon(period=100.0, cost=Constant(5.0))
        assert list(d.firings(0.0, 250.0)) == [0.0, 100.0, 200.0]
        assert list(d.firings(50.0, 100.0)) == [100.0]
        assert list(d.firings(101.0, 50.0)) == []

    def test_phase_shifts_firings(self):
        d = PeriodicDaemon(period=100.0, cost=Constant(5.0), phase=30.0)
        assert list(d.firings(0.0, 100.0)) == [30.0]

    def test_delay_counts_firings(self, rng):
        d = PeriodicDaemon(period=100.0, cost=Constant(7.0))
        assert d.delay(rng, 0.0, 250.0) == pytest.approx(3 * 7.0)
        assert d.delay(rng, 101.0, 50.0) == 0.0

    def test_time_dependence(self, rng):
        """Unlike memoryless noise, a daemon hits specific windows —
        the structure FTQ detects."""
        d = PeriodicDaemon(period=1000.0, cost=Constant(50.0))
        hit = d.delay(rng, 990.0, 20.0)  # spans t=1000
        miss = d.delay(rng, 1010.0, 20.0)
        assert hit == 50.0
        assert miss == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PeriodicDaemon(0.0, Constant(1.0))
        with pytest.raises(ValueError):
            PeriodicDaemon(10.0, Constant(1.0), phase=-1.0)


class TestDistributionNoise:
    def test_per_phase(self, rng):
        m = DistributionNoise(Constant(25.0))
        assert m.delay(rng, 0.0, 100.0) == 25.0
        assert m.delay(rng, 0.0, 1e9) == 25.0  # not duration-scaled

    def test_per_cycle(self, rng):
        m = DistributionNoise(Constant(0.01), per_cycle=True)
        assert m.delay(rng, 0.0, 1000.0) == pytest.approx(10.0)

    def test_zero_duration(self, rng):
        assert DistributionNoise(Constant(5.0)).delay(rng, 0.0, 0.0) == 0.0

    def test_negative_draws_clamped(self, rng):
        assert DistributionNoise(Constant(-5.0)).delay(rng, 0.0, 10.0) == 0.0


class TestCompositeNoise:
    def test_sums_components(self, rng):
        c = CompositeNoise(
            [DistributionNoise(Constant(10.0)), DistributionNoise(Constant(3.0))]
        )
        assert c.delay(rng, 0.0, 100.0) == 13.0

    def test_empty_composite(self, rng):
        assert CompositeNoise([]).delay(rng, 0.0, 100.0) == 0.0

    def test_mixed_models(self, rng):
        c = CompositeNoise(
            [
                PeriodicDaemon(period=100.0, cost=Constant(5.0)),
                RandomPreemption(rate=0.0, cost=Exponential(1.0)),
            ]
        )
        assert c.delay(rng, 0.0, 250.0) == pytest.approx(15.0)


def test_models_are_deterministic_per_generator():
    m = RandomPreemption(rate=1e-3, cost=Exponential(100.0))
    a = [m.delay(np.random.default_rng(9), t * 1000.0, 1000.0) for t in range(20)]
    b = [m.delay(np.random.default_rng(9), t * 1000.0, 1000.0) for t in range(20)]
    assert a == b
