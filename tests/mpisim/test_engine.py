"""Behavioural tests for the discrete-event MPI engine.

Numeric expectations use a network with latency=100, bandwidth=1,
send/recv overhead=10, eager threshold 1000, call_overhead=10, and no
noise, so timings can be computed by hand from the protocol rules in
the engine docstring.
"""

import pytest

from repro.mpisim import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Irecv,
    Isend,
    Machine,
    NetworkModel,
    Recv,
    Send,
    Sendrecv,
    SimDeadlock,
    SimError,
    Test as MpiTest,
    Wait,
    Waitall,
    Waitsome,
    run,
)
from repro.noise import Constant, DistributionNoise, Exponential, RandomPreemption
from repro.trace.events import EventKind

NET = NetworkModel(
    latency=100.0, bandwidth=1.0, send_overhead=10.0, recv_overhead=10.0, eager_threshold=1000
)


def machine(p, noise=None):
    return Machine(nprocs=p, network=NET, noise=noise or (), name="t") if noise else Machine(
        nprocs=p, network=NET, name="t"
    )


def go(program, p, noise=None, seed=0):
    m = Machine(nprocs=p, network=NET, noise=noise, name="t") if noise is not None else Machine(
        nprocs=p, network=NET, name="t"
    )
    return run(program, machine=m, seed=seed)


def events_of(res, rank, kind=None):
    evs = list(res.trace.events_of(rank))
    if kind is not None:
        evs = [e for e in evs if e.kind == kind]
    return evs


class TestEagerPointToPoint:
    def test_eager_send_completes_locally(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=100)
                yield Compute(5.0)
            else:
                yield Compute(100_000.0)  # receiver busy long after send
                yield Recv(source=0)

        res = go(prog, 2)
        send = events_of(res, 0, EventKind.SEND)[0]
        # INIT ends at 10; send runs 10..20 (overhead only): buffered.
        assert send.t_start == pytest.approx(10.0)
        assert send.t_end == pytest.approx(20.0)

    def test_recv_waits_for_arrival(self):
        def prog(me):
            if me.rank == 0:
                yield Compute(1000.0)
                yield Send(dest=1, nbytes=100)
            else:
                yield Recv(source=0)

        res = go(prog, 2)
        recv = events_of(res, 1, EventKind.RECV)[0]
        # send starts 1010, injects till 1020, wire 100+100=200 -> 1220,
        # recv overhead 10 -> ends 1230.
        assert recv.t_start == pytest.approx(10.0)
        assert recv.t_end == pytest.approx(1230.0)

    def test_late_recv_pays_only_overhead(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=0)
            else:
                yield Compute(50_000.0)
                yield Recv(source=0)

        res = go(prog, 2)
        recv = events_of(res, 1, EventKind.RECV)[0]
        assert recv.t_start == pytest.approx(50_010.0)
        assert recv.t_end == pytest.approx(50_020.0)  # message already there


class TestRendezvous:
    def test_sync_send_blocks_for_receiver(self):
        def prog(me):
            if me.rank == 0:
                yield Send(dest=1, nbytes=5000)  # above threshold
            else:
                yield Compute(10_000.0)
                yield Recv(source=0)

        res = go(prog, 2)
        send = events_of(res, 0, EventKind.SEND)[0]
        recv = events_of(res, 1, EventKind.RECV)[0]
        # transfer starts max(20, 10010)=10010; arrival 10010+100+5000=15110
        # recv_end 15120; send_end = 15120 + 100 (ack latency) = 15220.
        assert recv.t_end == pytest.approx(15_120.0)
        assert send.t_end == pytest.approx(15_220.0)

    def test_sync_send_faster_when_receiver_ready(self):
        def prog(me):
            if me.rank == 0:
                yield Compute(1_000.0)
                yield Send(dest=1, nbytes=5000)
            else:
                yield Recv(source=0)

        res = go(prog, 2)
        send = events_of(res, 0, EventKind.SEND)[0]
        # start 1010, ready 1020, arrival 1020+5100=6120, recv_end 6130,
        # send_end 6230.
        assert send.t_end == pytest.approx(6_230.0)


class TestNonblocking:
    def test_isend_returns_immediately(self):
        def prog(me):
            if me.rank == 0:
                r = yield Isend(dest=1, nbytes=100)
                yield Compute(42.0)
                yield Wait(r)
            else:
                yield Recv(source=0)

        res = go(prog, 2)
        isend = events_of(res, 0, EventKind.ISEND)[0]
        assert isend.duration == pytest.approx(10.0)
        wait = events_of(res, 0, EventKind.WAIT)[0]
        assert wait.completed == (isend.req,)

    def test_wait_blocks_until_message(self):
        def prog(me):
            if me.rank == 0:
                yield Compute(10_000.0)
                yield Send(dest=1, nbytes=100)
            else:
                r = yield Irecv(source=0)
                yield Wait(r)

        res = go(prog, 2)
        wait = events_of(res, 1, EventKind.WAIT)[0]
        # arrival: 10010+10(inject) + 200(wire) = 10220; +10 recv o = 10230;
        # wait end = 10230 + 10 call overhead.
        assert wait.t_end == pytest.approx(10_240.0)

    def test_waitall_gathers_all(self):
        def prog(me):
            if me.rank == 0:
                reqs = []
                for tag in range(3):
                    reqs.append((yield Irecv(source=1, tag=tag)))
                statuses = yield Waitall(reqs)
                assert [s.tag for s in statuses] == [0, 1, 2]
            else:
                for tag in range(3):
                    yield Compute(1000.0)
                    yield Send(dest=0, nbytes=10, tag=tag)

        res = go(prog, 2)
        wall = events_of(res, 0, EventKind.WAITALL)[0]
        assert len(wall.completed) == 3

    def test_waitsome_returns_first_available(self):
        def prog(me):
            if me.rank == 0:
                fast = yield Irecv(source=1, tag=1)
                slow = yield Irecv(source=1, tag=2)
                done = yield Waitsome([fast, slow])
                assert done == [fast]
                yield Waitall([slow])
            else:
                yield Send(dest=0, nbytes=10, tag=1)
                yield Compute(100_000.0)
                yield Send(dest=0, nbytes=10, tag=2)

        go(prog, 2)

    def test_test_polls_without_blocking(self):
        def prog(me):
            if me.rank == 0:
                r = yield Irecv(source=1)
                done, st = yield MpiTest(r)
                assert not done and st is None
                yield Compute(200_000.0)
                done, st = yield MpiTest(r)
                assert done and st.nbytes == 10
            else:
                yield Compute(50_000.0)
                yield Send(dest=0, nbytes=10)

        go(prog, 2)

    def test_wildcard_irecv_resolved_in_trace(self):
        def prog(me):
            if me.rank == 0:
                r = yield Irecv(source=ANY_SOURCE)
                st = yield Wait(r)
                assert st.source == 2
            elif me.rank == 2:
                yield Compute(1000.0)
                yield Send(dest=0, nbytes=77)

        res = go(prog, 3)
        irecv = events_of(res, 0, EventKind.IRECV)[0]
        assert irecv.peer == 2  # patched with resolved source
        assert irecv.nbytes == 77


class TestSendrecv:
    def test_mutual_exchange_no_deadlock(self):
        def prog(me):
            st = yield Sendrecv(
                dest=1 - me.rank, send_nbytes=5000, source=1 - me.rank
            )
            assert st.nbytes == 5000

        res = go(prog, 2)
        for rank in range(2):
            srs = events_of(res, rank, EventKind.SENDRECV)
            assert len(srs) == 1
            assert srs[0].recv_peer == 1 - rank

    def test_sendrecv_shift(self):
        def prog(me):
            p = me.size
            yield Sendrecv(dest=(me.rank + 1) % p, send_nbytes=64, source=(me.rank - 1) % p)

        res = go(prog, 5)
        assert all(t > 0 for t in res.finish_times)


class TestCollectivesInEngine:
    def test_barrier_synchronizes(self):
        def prog(me):
            yield Compute(1000.0 * (me.rank + 1))
            yield Barrier()

        res = go(prog, 4)
        barriers = [events_of(res, r, EventKind.BARRIER)[0] for r in range(4)]
        slowest_entry = max(b.t_start for b in barriers)
        assert all(b.t_end > slowest_entry for b in barriers)
        assert all(b.coll_seq == 0 for b in barriers)

    def test_collective_ordinals_increment(self):
        def prog(me):
            yield Barrier()
            yield Allreduce(nbytes=8)
            yield Barrier()

        res = go(prog, 3)
        colls = [e for e in events_of(res, 0) if e.kind.is_collective]
        assert [c.coll_seq for c in colls] == [0, 1, 2]

    def test_mismatched_collectives_detected(self):
        def prog(me):
            if me.rank == 0:
                yield Barrier()
            else:
                yield Allreduce(nbytes=8)

        with pytest.raises(SimError, match="called"):
            go(prog, 2)

    def test_root_mismatch_detected(self):
        def prog(me):
            yield Bcast(root=me.rank, nbytes=8)

        with pytest.raises(SimError, match="root mismatch"):
            go(prog, 2)


class TestErrorsAndDiagnostics:
    def test_deadlock_reports_blockers(self):
        def prog(me):
            yield Recv(source=1 - me.rank)

        with pytest.raises(SimDeadlock) as exc:
            go(prog, 2)
        assert "Recv" in str(exc.value)

    def test_self_send_rejected(self):
        def prog(me):
            yield Send(dest=me.rank, nbytes=1)

        with pytest.raises(SimError, match="self-send"):
            go(prog, 2)

    def test_peer_out_of_range(self):
        def prog(me):
            yield Send(dest=99, nbytes=1)

        with pytest.raises(SimError, match="out of range"):
            go(prog, 2)

    def test_wait_on_foreign_request(self):
        def prog(me):
            if me.rank == 0:
                r = yield Isend(dest=1, nbytes=10)
                yield Wait(r)
            else:
                r = yield Irecv(source=0)
                yield Wait(r)

        # sanity: legal version passes
        go(prog, 2)

        def bad(me):
            yield Wait(object())

        with pytest.raises(SimError, match="non-request"):
            go(bad, 1)

    def test_max_events_guard(self):
        def prog(me):
            while True:
                yield Compute(1.0)

        m = Machine(nprocs=1, network=NET)
        with pytest.raises(SimError, match="max_events"):
            run(prog, machine=m, max_events=100)

    def test_non_op_yield_rejected(self):
        def prog(me):
            yield "not an op"

        with pytest.raises(SimError, match="non-op"):
            go(prog, 1)


class TestDeterminismAndNoise:
    def test_identical_seeds_identical_runs(self):
        def prog(me):
            for _ in range(5):
                yield Compute(1000.0)
                yield Allreduce(nbytes=8)

        noise = RandomPreemption(rate=1e-3, cost=Exponential(50.0))
        m = Machine(nprocs=4, network=NET, noise=noise)
        a = run(prog, machine=m, seed=11)
        b = run(prog, machine=m, seed=11)
        assert a.finish_times == b.finish_times

    def test_different_seeds_differ(self):
        def prog(me):
            for _ in range(5):
                yield Compute(1000.0)
                yield Allreduce(nbytes=8)

        noise = RandomPreemption(rate=1e-3, cost=Exponential(50.0))
        m = Machine(nprocs=4, network=NET, noise=noise)
        a = run(prog, machine=m, seed=11)
        b = run(prog, machine=m, seed=12)
        assert a.finish_times != b.finish_times

    def test_noise_slows_compute(self):
        def prog(me):
            yield Compute(100_000.0)

        quiet = run(prog, machine=Machine(nprocs=1, network=NET), seed=0)
        noisy = run(
            prog,
            machine=Machine(
                nprocs=1, network=NET, noise=DistributionNoise(Constant(0.5), per_cycle=True)
            ),
            seed=0,
        )
        assert noisy.makespan == pytest.approx(quiet.makespan + 50_000.0)

    def test_per_rank_noise_list(self):
        def prog(me):
            yield Compute(10_000.0)
            yield Barrier()

        m = Machine(
            nprocs=2,
            network=NET,
            noise=(DistributionNoise(Constant(5_000.0)), DistributionNoise(Constant(0.0))),
        )
        res = run(prog, machine=m, seed=0)
        # Rank 0's noise delays its barrier entry; both exits reflect it.
        assert res.finish_times[1] > 10_000.0


class TestTraceWellFormedness:
    def test_every_rank_init_finalize(self, ring_trace):
        for rank in range(ring_trace.nprocs):
            evs = list(ring_trace.events_of(rank))
            assert evs[0].kind == EventKind.INIT
            assert evs[-1].kind == EventKind.FINALIZE

    def test_seq_dense_and_times_monotone(self, ring_trace):
        for rank in range(ring_trace.nprocs):
            prev_end = -1.0
            for i, ev in enumerate(ring_trace.events_of(rank)):
                assert ev.seq == i
                assert ev.t_start >= prev_end
                prev_end = ev.t_end
