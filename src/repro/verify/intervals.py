"""Symbolic support intervals for perturbation distributions.

The interval abstract interpretation (see :mod:`repro.verify.bounds`)
needs, for every primitive random variable a :class:`~repro.core.
perturb.PerturbationSpec` can draw from, a guaranteed ``[lo, hi]``
enclosure of its support.  Bounded families (Constant, Uniform,
Empirical, ...) have exact supports.  Unbounded families (Exponential,
Normal, ...) do not — for those we adopt an explicit *finite-support
policy*: the interval encloses all mass up to a per-draw quantile ``q``
(default ``1 - 1e-12``) and the affected side is flagged
``quantile-bounded``, making the derived makespan bound "sound up to q"
rather than absolute.  The flag is propagated through every interval
combinator so a report can state exactly which certificates are
conditional.

Quantile formulas mirror the *samplers* in
:mod:`repro.noise.distributions`, not just the textbook family — e.g.
:class:`~repro.noise.distributions.TruncatedNormal` draws by inverse
CDF restricted to the surviving tail mass, so its quantile-bounded hi
is ``ppf(cdf(alpha) + q * (1 - cdf(alpha)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.noise.distributions import (
    BernoulliSpike,
    Constant,
    Exponential,
    Gamma,
    LogNormal,
    Mixture,
    Normal,
    Pareto,
    RandomVariable,
    Scaled,
    Shifted,
    TruncatedNormal,
    Uniform,
    Weibull,
)
from repro.noise.empirical import Empirical

__all__ = ["DEFAULT_QUANTILE", "Interval", "support_interval"]

#: Per-draw tail quantile used to bound unbounded families.  At
#: ``1 - 1e-12`` a million-draw replicate exceeds some per-draw bound
#: with probability < 1e-6 — and the certificate says so explicitly.
DEFAULT_QUANTILE = 1.0 - 1e-12


@dataclass(frozen=True)
class Interval:
    """A support enclosure ``[lo, hi]`` with per-side soundness flags.

    ``lo_q``/``hi_q`` record that the corresponding endpoint is
    quantile-bounded (covers mass up to ``q``) rather than an absolute
    support bound.  Flags ride along per *side* because negation
    (``Scaled`` with a negative factor, negative spec scales) swaps
    which side the truncated tail lands on.
    """

    lo: float
    hi: float
    lo_q: bool = False
    hi_q: bool = False

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def quantile_bounded(self) -> bool:
        return self.lo_q or self.hi_q

    def shift(self, offset: float) -> "Interval":
        return Interval(self.lo + offset, self.hi + offset, self.lo_q, self.hi_q)

    def scale(self, factor: float) -> "Interval":
        """Multiply by a constant; a negative factor flips the interval
        and the per-side flags with it."""
        if factor >= 0:
            return Interval(self.lo * factor, self.hi * factor, self.lo_q, self.hi_q)
        return Interval(self.hi * factor, self.lo * factor, self.hi_q, self.lo_q)

    def clamp_min(self, floor: float = 0.0) -> "Interval":
        """Enclosure of ``max(X, floor)`` (the signature samplers clamp
        every draw at zero).  A clamped endpoint is exact."""
        lo, lo_q = (floor, False) if self.lo < floor else (self.lo, self.lo_q)
        hi, hi_q = (floor, False) if self.hi < floor else (self.hi, self.hi_q)
        return Interval(lo, hi, lo_q, hi_q)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (mixture components)."""
        if self.lo < other.lo:
            lo, lo_q = self.lo, self.lo_q
        elif other.lo < self.lo:
            lo, lo_q = other.lo, other.lo_q
        else:
            lo, lo_q = self.lo, self.lo_q and other.lo_q
        if self.hi > other.hi:
            hi, hi_q = self.hi, self.hi_q
        elif other.hi > self.hi:
            hi, hi_q = other.hi, other.hi_q
        else:
            hi, hi_q = self.hi, self.hi_q and other.hi_q
        return Interval(lo, hi, lo_q, hi_q)


def _check_q(q: float) -> None:
    if not 0.5 <= q < 1.0:
        raise ValueError(f"quantile must be in [0.5, 1), got {q}")


def support_interval(dist: RandomVariable, q: float = DEFAULT_QUANTILE) -> Interval:
    """Guaranteed (or quantile-bounded) support enclosure of one draw.

    Raises :class:`TypeError` for families this analysis does not know —
    a sound verifier must refuse rather than guess.
    """
    _check_q(q)
    if isinstance(dist, Constant):
        return Interval(dist.value, dist.value)
    if isinstance(dist, Uniform):
        return Interval(dist.low, dist.high)
    if isinstance(dist, Empirical):
        values = [float(s) for s in dist.samples]
        return Interval(min(values), max(values))
    if isinstance(dist, Exponential):
        # ppf(q) = -mean * log(1 - q)
        return Interval(0.0, -dist.mean_value * math.log1p(-q), hi_q=True)
    if isinstance(dist, Normal):
        if dist.sigma == 0.0:
            return Interval(dist.mu, dist.mu)
        from scipy.stats import norm

        z = float(norm.ppf(q))
        return Interval(dist.mu - dist.sigma * z, dist.mu + dist.sigma * z, lo_q=True, hi_q=True)
    if isinstance(dist, TruncatedNormal):
        from scipy.stats import norm

        a = (dist.lower - dist.mu) / dist.sigma
        lo_mass = float(norm.cdf(a))
        # Sampler: u ~ Uniform(cdf(a), 1); x = mu + sigma * ppf(u).
        hi = dist.mu + dist.sigma * float(norm.ppf(lo_mass + q * (1.0 - lo_mass)))
        return Interval(dist.lower, hi, hi_q=True)
    if isinstance(dist, LogNormal):
        if dist.sigma == 0.0:
            v = math.exp(dist.mu)
            return Interval(v, v)
        from scipy.stats import norm

        return Interval(0.0, math.exp(dist.mu + dist.sigma * float(norm.ppf(q))), hi_q=True)
    if isinstance(dist, Gamma):
        from scipy.stats import gamma as gamma_dist

        return Interval(0.0, float(gamma_dist.ppf(q, dist.shape, scale=dist.scale)), hi_q=True)
    if isinstance(dist, Weibull):
        # ppf(q) = scale * (-log(1 - q)) ** (1/shape)
        return Interval(0.0, dist.scale * (-math.log1p(-q)) ** (1.0 / dist.shape), hi_q=True)
    if isinstance(dist, Pareto):
        # Sampler: minimum * (1 + pareto(alpha)); ppf(q) = minimum * (1-q)^(-1/alpha)
        return Interval(dist.minimum, dist.minimum * (1.0 - q) ** (-1.0 / dist.alpha), hi_q=True)
    if isinstance(dist, BernoulliSpike):
        if dist.p == 0.0:
            return Interval(0.0, 0.0)
        spike = support_interval(dist.spike, q)
        if dist.p == 1.0:
            return spike
        return spike.hull(Interval(0.0, 0.0))
    if isinstance(dist, Mixture):
        out: Interval | None = None
        for comp in dist.components:
            iv = support_interval(comp, q)
            out = iv if out is None else out.hull(iv)
        assert out is not None  # Mixture guarantees non-empty components
        return out
    if isinstance(dist, Shifted):
        return support_interval(dist.base, q).shift(dist.offset)
    if isinstance(dist, Scaled):
        return support_interval(dist.base, q).scale(dist.factor)
    raise TypeError(
        f"no support interval known for distribution family "
        f"{type(dist).__name__}; static bounds would be unsound"
    )
