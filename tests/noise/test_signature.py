"""Tests for machine signatures (§5)."""

import numpy as np
import pytest

from repro.noise.distributions import Constant, Exponential, Normal
from repro.noise.signature import MachineSignature


@pytest.fixture
def sig():
    return MachineSignature(
        os_noise=Constant(100.0),
        latency=Constant(50.0),
        per_byte=Constant(0.01),
        os_noise_by_rank={2: Constant(999.0)},
        latency_by_link={(0, 1): Constant(5.0)},
        name="test",
    )


class TestLookups:
    def test_default_os(self, sig):
        assert sig.os_noise_for(0).value == 100.0

    def test_rank_override(self, sig):
        assert sig.os_noise_for(2).value == 999.0

    def test_default_latency(self, sig):
        assert sig.latency_for(1, 0).value == 50.0

    def test_link_override_directed(self, sig):
        assert sig.latency_for(0, 1).value == 5.0
        assert sig.latency_for(1, 0).value == 50.0  # override is directed


class TestSampling:
    def test_sample_os(self, sig, rng):
        assert sig.sample_os(rng, 0) == 100.0
        assert sig.sample_os(rng, 2) == 999.0

    def test_sample_latency(self, sig, rng):
        assert sig.sample_latency(rng, 0, 1) == 5.0

    def test_sample_transfer_scales_with_bytes(self, sig, rng):
        assert sig.sample_transfer(rng, 1000) == pytest.approx(10.0)
        assert sig.sample_transfer(rng, 0) == 0.0

    def test_negative_draws_clamped(self, rng):
        s = MachineSignature(os_noise=Constant(-5.0), latency=Normal(-100.0, 0.0))
        assert s.sample_os(rng, 0) == 0.0
        assert s.sample_latency(rng, 0, 1) == 0.0


class TestDerived:
    def test_scaled(self, sig, rng):
        s2 = sig.scaled(3.0)
        assert s2.sample_os(rng, 0) == 300.0
        assert s2.sample_os(rng, 2) == pytest.approx(999.0 * 3)
        assert s2.sample_latency(rng, 0, 1) == 15.0
        assert "x3" in s2.name

    def test_quiet(self, sig, rng):
        q = sig.quiet()
        assert q.sample_os(rng, 0) == 0.0
        assert q.sample_latency(rng, 0, 1) == 0.0
        assert q.sample_transfer(rng, 10_000) == 0.0


class TestSerialization:
    def test_dict_round_trip(self, sig):
        restored = MachineSignature.from_dict(sig.to_dict())
        assert restored.name == sig.name
        assert restored.os_noise_for(2).value == 999.0
        assert restored.latency_for(0, 1).value == 5.0
        assert restored.to_dict() == sig.to_dict()

    def test_file_round_trip(self, sig, tmp_path):
        path = tmp_path / "sig.json"
        sig.save(path)
        restored = MachineSignature.load(path)
        assert restored.to_dict() == sig.to_dict()

    def test_round_trip_with_random_dists(self, tmp_path, rng):
        sig = MachineSignature(
            os_noise=Exponential(80.0), latency=Normal(40.0, 5.0), name="rand"
        )
        path = tmp_path / "s.json"
        sig.save(path)
        restored = MachineSignature.load(path)
        a = restored.os_noise.sample_n(np.random.default_rng(1), 8)
        b = sig.os_noise.sample_n(np.random.default_rng(1), 8)
        assert np.array_equal(a, b)


def test_default_signature_is_silent(rng):
    s = MachineSignature()
    assert s.sample_os(rng, 0) == 0.0
    assert s.sample_latency(rng, 3, 4) == 0.0
    assert s.sample_transfer(rng, 10**9) == 0.0
