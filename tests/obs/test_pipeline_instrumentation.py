"""End-to-end instrumentation: pipeline spans/metrics, and the parallel
backend's worker-metric merge equalling the serial totals."""

import numpy as np
import pytest

from repro import obs
from repro.core import (
    PerturbationSpec,
    StreamingTraversal,
    build_graph,
    monte_carlo,
    propagate,
)
from repro.noise import Exponential, MachineSignature


def spec(seed=0):
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(100.0), latency=Exponential(40.0)),
        seed=seed,
    )


def test_build_and_propagate_record_spans(ring_trace):
    with obs.observed("unit") as session:
        build = build_graph(ring_trace)
        propagate(build, spec())
    names = {s.name for s in session.completed_spans()}
    assert {"build_graph", "read_traces", "match_events", "materialize_graph",
            "propagate"} <= names
    m = session.metrics
    assert m.counter("graph.nodes").value == len(build.graph.nodes)
    assert m.counter("graph.edges").value == len(build.graph.edges)
    assert m.counter("match.transfers").value > 0
    assert m.counter("traversal.propagations").value == 1
    # The build span carries its node/edge counters.
    build_span = next(s for s in session.spans if s.name == "build_graph")
    assert build_span.counters["graph.nodes"] == len(build.graph.nodes)


def test_streaming_traversal_records_window_hwm(ring_trace):
    with obs.observed("unit") as session:
        engine = StreamingTraversal(spec())
        engine.run(ring_trace)
    names = {s.name for s in session.completed_spans()}
    assert "streaming_traversal" in names
    hwm = session.metrics.gauge("window.occupancy_hwm", "max").value
    assert hwm == engine.max_mailbox


def test_disabled_results_identical(ring_trace):
    """Instrumentation must not perturb the computation itself."""
    build = build_graph(ring_trace)
    baseline = propagate(build, spec())
    with obs.observed("unit"):
        build2 = build_graph(ring_trace)
        observed = propagate(build2, spec())
    assert baseline.final_delay == observed.final_delay
    assert np.array_equal(baseline.node_delay, observed.node_delay)


def test_parallel_metrics_merge_equals_serial(ring_build):
    """--jobs 2 merged worker metrics must equal the serial totals."""
    n = 8
    with obs.observed("serial") as serial_session:
        serial = monte_carlo(ring_build, spec(), replicates=n, jobs=0)
    with obs.observed("parallel") as parallel_session:
        parallel = monte_carlo(ring_build, spec(), replicates=n, jobs=2)

    # Determinism contract first: same samples either way.
    assert np.array_equal(serial.samples, parallel.samples)

    sm, pm = serial_session.metrics, parallel_session.metrics
    assert sm.counter("mc.replicates").value == n
    assert pm.counter("mc.replicates").value == n
    assert (
        pm.counter("traversal.propagations").value
        == sm.counter("traversal.propagations").value
    )

    # Pool fell back to serial (restricted platform)?  Then no worker
    # tracks; otherwise batch spans arrive tagged with worker pids and
    # their per-span replicate counts sum to n.
    if parallel_session.workers:
        batch_spans = [
            s for s in parallel_session.completed_spans() if s.name == "replicate_batch"
        ]
        assert sum(s.attrs["n"] for s in batch_spans) == n
        assert {s.pid for s in batch_spans} <= set(parallel_session.workers)


def test_worker_sessions_do_not_leak(ring_build):
    """Observability in a pool run must not activate a parent session,
    and a disabled parallel run records nothing."""
    monte_carlo(ring_build, spec(), replicates=4, jobs=2)
    assert not obs.enabled()


@pytest.fixture(scope="module")
def ring_build(ring_trace):
    return build_graph(ring_trace)
