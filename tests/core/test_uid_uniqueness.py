"""Global uid uniqueness — the invariant deterministic sampling rests on.

If two perturbation-carrying edges ever shared a (kind, uid) pair, their
deltas would silently be *identical* (perfectly correlated noise), which
is statistically wrong and extremely hard to notice downstream.  This
guard checks every edge of representative builds.
"""

import pytest

from repro.core import BuildConfig, build_graph
from repro.core.graph import DeltaKind
from repro.mpisim import run

from tests.conftest import plan_program

PLANS = {
    "mixed": [
        ("compute", 1000),
        ("ring", 512),
        ("nb", 256),
        ("xchg", 64),
        ("allreduce", 32),
        ("barrier",),
        ("bcast", 1, 64),
        ("reduce", 0, 64),
        ("scan", 16),
        ("rscatter", 16),
        ("ring", 512),
    ],
    "repeat-channels": [("ring", 100)] * 6 + [("nb", 100)] * 4,
}


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("mode", ["hub", "butterfly"])
def test_no_uid_collisions(plan_name, mode):
    trace = run(plan_program(PLANS[plan_name]), nprocs=5, seed=0).trace
    build = build_graph(trace, BuildConfig(collective_mode=mode))
    seen = {}
    for ei, e in enumerate(build.graph.edges):
        if e.delta.kind == DeltaKind.NONE:
            continue
        key = (e.delta.kind, e.delta.uid)
        assert key not in seen, (
            f"edges {seen[key]} and {ei} share sampling identity {key}: "
            f"their deltas would be silently correlated"
        )
        seen[key] = ei
    assert seen  # the plans must actually exercise perturbed edges


def test_uid_namespaces_distinct_across_templates(stencil_trace):
    """Data and ack edges of the same transfer share (src, dst, tag, k)
    but must live in different uid namespaces."""
    build = build_graph(stencil_trace)
    first_elems = {
        e.delta.uid[0]
        for e in build.graph.edges
        if e.delta.kind != DeltaKind.NONE
    }
    assert len(first_elems) >= 3  # gap, intra/data/ack/fanin namespaces in play
