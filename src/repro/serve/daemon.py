"""The analysis daemon: a long-running asyncio HTTP server.

Transport is stdlib-only (``asyncio.start_server`` + hand-rolled
HTTP/1.1 with ``Connection: close``) — the daemon adds no dependency
the library does not already carry.  Endpoints:

===========================  ==============================================
``POST /v1/analyze``         Monte-Carlo replicate distribution
``POST /v1/sweep``           noise-scale ladder
``POST /v1/diagnose``        MPG2xx diagnosis report
``POST /v1/metrics``         POP efficiency report
``POST /v1/verify``          MPG3xx verification report
``GET /healthz``             liveness + config echo
``GET /metricsz``            aggregated obs metrics + span histogram
===========================  ==============================================

Request lifecycle: parse → validate (:mod:`repro.serve.wire`) → admit
(bounded in-flight count, else 429) → resolve the build through the
coalescing cache (:mod:`repro.serve.scheduler`) → run the endpoint body
in a worker thread (:mod:`repro.serve.handlers`) under the per-job
timeout → envelope.  Every job runs inside its own obs session
(:func:`repro.obs.session_scope`), whose spans and metrics are absorbed
into the daemon-wide session at completion — ``/metricsz`` is the
aggregate, and the span histogram is how tests *prove* coalescing
(two concurrent requests, one ``build_graph``, one
``compiled.compile``).

Failure containment: handler exceptions become structured error
envelopes; a request that kills its pool workers gets ``worker-lost``
and the daemon keeps serving; a poisoned connection is closed and
logged, never propagated to the accept loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro import obs
from repro.core.parallel import FaultPolicy
from repro.serve.handlers import HANDLERS, build_config_for, run_injection
from repro.serve.scheduler import BuildCache
from repro.serve.wire import (
    ENDPOINTS,
    ServeError,
    error_envelope,
    ok_envelope,
    validate_request,
)

__all__ = ["ReproServer", "ServeConfig", "serve"]

_LOG = logging.getLogger("repro.serve")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Largest accepted request body (64 MiB) — uploads are whole trace
#: sets, but unbounded reads would let one request exhaust memory.
MAX_BODY = 64 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration (one per server; see ``repro-serve``)."""

    host: str = "127.0.0.1"
    port: int = 8765
    trace_root: str | None = None
    cache_size: int = 8
    max_pending: int = 32
    job_timeout: float | None = None
    jobs: int | None = 0
    policy: FaultPolicy | None = None
    checkpoint: str | None = None
    allow_fault_injection: bool = False
    label: str = "repro-serve"

    def __post_init__(self) -> None:
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(f"job_timeout must be > 0 or None, got {self.job_timeout}")


@dataclass
class _ServerStats:
    started: float = field(default_factory=time.time)
    requests: int = 0
    errors: int = 0
    rejected: int = 0
    timeouts: int = 0
    active: int = 0


class ReproServer:
    """One daemon instance: cache, obs aggregate, and the accept loop."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.cache = BuildCache(config.cache_size, trace_root=config.trace_root)
        self.session = obs.Session(config.label)
        self.stats = _ServerStats()
        self._server: asyncio.AbstractServer | None = None

    # handler shims see these (duck-typed "server" argument)
    @property
    def jobs(self) -> int | None:
        return self.config.jobs

    @property
    def policy(self) -> FaultPolicy | None:
        return self.config.policy

    @property
    def checkpoint(self) -> str | None:
        return self.config.checkpoint

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return int(self._server.sockets[0].getsockname()[1])

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        _LOG.info(f"repro-serve listening on http://{self.config.host}:{self.port}")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.cache.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except asyncio.CancelledError:
            raise
        except Exception:
            # A connection must never take the accept loop down with it.
            _LOG.exception("unhandled connection error")
            status, payload = 500, error_envelope("internal", "unhandled server error")
        try:
            body = (json.dumps(payload) + "\n").encode()
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        try:
            request_line = (await reader.readline()).decode("latin-1").strip()
            parts = request_line.split()
            if len(parts) != 3:
                message = f"malformed request line {request_line!r}"
                return 400, error_envelope("bad-request", message)
            method, target, _version = parts
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY:
                return 400, error_envelope("bad-request", f"body exceeds {MAX_BODY} bytes")
            raw = await reader.readexactly(length) if length else b""
        except (asyncio.IncompleteReadError, UnicodeDecodeError, ValueError) as exc:
            return 400, error_envelope("bad-request", f"malformed HTTP request: {exc}")
        return await self._dispatch(method, target, raw)

    async def _dispatch(self, method: str, target: str, raw: bytes) -> tuple[int, dict]:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            if method != "GET":
                return 405, error_envelope("method-not-allowed", "/healthz is GET-only")
            return 200, self._healthz()
        if target == "/metricsz":
            if method != "GET":
                return 405, error_envelope("method-not-allowed", "/metricsz is GET-only")
            return 200, self._metricsz()
        if not target.startswith("/v1/"):
            return 404, error_envelope("not-found", f"no route for {target!r}")
        kind = target[len("/v1/") :]
        if kind not in ENDPOINTS:
            return 404, error_envelope(
                "not-found", f"unknown endpoint {kind!r}; choose from {', '.join(ENDPOINTS)}"
            )
        if method != "POST":
            return 405, error_envelope("method-not-allowed", f"/v1/{kind} is POST-only", kind)
        try:
            payload = json.loads(raw.decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, error_envelope("bad-request", f"request body is not JSON: {exc}", kind)
        return await self._run_job(kind, payload)

    # -- job execution ------------------------------------------------------
    async def _run_job(self, kind: str, payload: Any) -> tuple[int, dict]:
        if self.stats.active >= self.config.max_pending:
            self.stats.rejected += 1
            self.session.metrics.counter("serve.rejected").inc()
            return 429, error_envelope(
                "overloaded",
                f"{self.stats.active} job(s) in flight (max_pending={self.config.max_pending})",
                kind,
            )
        self.stats.active += 1
        self.stats.requests += 1
        request_session = obs.Session(f"{self.config.label}.{kind}")
        t0 = time.perf_counter()
        try:
            with obs.session_scope(session=request_session):
                with obs.span("serve.request", kind=kind):
                    status, envelope = await self._execute(kind, payload)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            status, envelope = 504, error_envelope(
                "timeout", f"job exceeded {self.config.job_timeout}s", kind
            )
        except ServeError as exc:
            status, envelope = exc.status, error_envelope(exc.code, exc.message, kind)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: B036 - BrokenProcessPool et al.
            status, envelope = self._map_failure(kind, exc)
        finally:
            self.stats.active -= 1
            # Fold the request's spans/metrics into the daemon aggregate
            # (lock-guarded absorb; /metricsz reads the same registry).
            self.session.absorb(request_session.drain())
            m = self.session.metrics
            m.counter("serve.requests").inc()
            m.counter(f"serve.requests.{kind}").inc()
            m.timer("serve.request_seconds").observe(time.perf_counter() - t0)
        if status != 200:
            self.stats.errors += 1
            self.session.metrics.counter("serve.errors").inc()
        return status, envelope

    async def _execute(self, kind: str, payload: Any) -> tuple[int, dict]:
        request = validate_request(payload, kind)
        if request["inject"] is not None and not self.config.allow_fault_injection:
            raise ServeError(
                "forbidden", "fault injection is disabled (start with --allow-fault-injection)"
            )

        async def job() -> tuple[int, dict]:
            if request["inject"] is not None:
                await asyncio.to_thread(run_injection, request["inject"])
            config = build_config_for(request["params"])
            entry, cached = await self.cache.entry_for(request, config)
            self.session.metrics.counter(
                "serve.cache_hits" if cached else "serve.cache_misses"
            ).inc()
            result = await asyncio.to_thread(HANDLERS[kind], entry, request, self)
            build_info = {"key": entry.key, "digest": entry.digest, "cached": cached}
            return 200, ok_envelope(kind, result, build_info)

        if self.config.job_timeout is None:
            return await job()
        return await asyncio.wait_for(job(), self.config.job_timeout)

    def _map_failure(self, kind: str, exc: BaseException) -> tuple[int, dict]:
        """Structured error for an unplanned handler failure."""
        from concurrent.futures.process import BrokenProcessPool

        if isinstance(exc, BrokenProcessPool):
            _LOG.error(f"{kind}: worker pool died: {exc}")
            return 500, error_envelope(
                "worker-lost",
                "a worker process died and the fault policy gave up; "
                "the daemon is still serving",
                kind,
            )
        if isinstance(exc, RuntimeError) and "inject=error" in str(exc):
            return 500, error_envelope("fault-injected", str(exc), kind)
        if isinstance(exc, (ValueError, KeyError, TypeError)):
            _LOG.warning(f"{kind}: rejected input: {exc}")
            return 400, error_envelope("input-error", f"{type(exc).__name__}: {exc}", kind)
        _LOG.exception(f"{kind}: handler failed")
        return 500, error_envelope("internal", f"{type(exc).__name__}: {exc}", kind)

    # -- probes -------------------------------------------------------------
    def _healthz(self) -> dict:
        return {
            "schema": "repro-serve-health/1",
            "ok": True,
            "label": self.config.label,
            "uptime_seconds": time.time() - self.stats.started,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "active": self.stats.active,
            "cache": self.cache.stats(),
            "config": {
                "cache_size": self.config.cache_size,
                "max_pending": self.config.max_pending,
                "job_timeout": self.config.job_timeout,
                "jobs": self.config.jobs,
                "allow_fault_injection": self.config.allow_fault_injection,
            },
        }

    def _metricsz(self) -> dict:
        spans: dict[str, int] = {}
        for record in self.session.completed_spans():
            spans[record.name] = spans.get(record.name, 0) + 1
        return {
            "schema": "repro-serve-metrics/1",
            "label": self.config.label,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "rejected": self.stats.rejected,
            "timeouts": self.stats.timeouts,
            "cache": self.cache.stats(),
            "metrics": self.session.metrics.as_dict(),
            "spans": dict(sorted(spans.items())),
        }


async def serve(config: ServeConfig, ready: Callable[[ReproServer], Any] | None = None) -> None:
    """Run one daemon until cancelled (the ``repro-serve`` body).

    ``ready`` is called with the listening server (tests use it to grab
    the ephemeral port); it may be a coroutine function.
    """
    server = ReproServer(config)
    await server.start()
    if ready is not None:
        maybe: Any = ready(server)
        if isinstance(maybe, Awaitable):
            await maybe
    try:
        await server.serve_forever()
    finally:
        await server.stop()
