"""Hand-rolled butterfly (recursive-doubling) allreduce over point-to-point.

The explicit O(log p) pairwise realization of a global reduction the
paper describes in §3.2 ("a butterfly messaging topology can be used to
require each processor to send and receive O(log(p)) messages").
Implemented over Sendrecv so the traced graph contains the *actual*
butterfly — the exact structure the Fig. 4 hub model approximates.
Requires a power-of-two process count; the factory validates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Compute, Op, RankInfo, Sendrecv

__all__ = ["ButterflyParams", "butterfly_allreduce"]


@dataclass(frozen=True)
class ButterflyParams:
    """Configuration of the hand-rolled butterfly reduction.

    iterations:
        Repeated reductions (with local compute between them).
    payload_bytes:
        Bytes exchanged per butterfly stage.
    compute_cycles:
        Work between reductions.
    op_cycles:
        Local combine cost per received partial result.
    """

    iterations: int = 5
    payload_bytes: int = 64
    compute_cycles: float = 20_000.0
    op_cycles: float = 200.0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.compute_cycles < 0 or self.op_cycles < 0:
            raise ValueError("cycle counts must be >= 0")


def butterfly_allreduce(params: ButterflyParams = ButterflyParams()):
    """Rank program factory; ``me.size`` must be a power of two."""

    def program(me: RankInfo) -> Iterator[Op]:
        p = me.size
        if p & (p - 1):
            raise ValueError(f"butterfly_allreduce requires a power-of-two size, got {p}")
        stages = p.bit_length() - 1
        for _it in range(params.iterations):
            yield Compute(params.compute_cycles)
            for k in range(stages):
                partner = me.rank ^ (1 << k)
                yield Sendrecv(
                    dest=partner,
                    send_nbytes=params.payload_bytes,
                    source=partner,
                    send_tag=k,
                    recv_tag=k,
                )
                yield Compute(params.op_cycles)

    return program
