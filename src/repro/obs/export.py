"""Session exporters: structured JSONL and Chrome trace-event JSON.

The Chrome format is the `trace-event` JSON consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: a ``traceEvents``
list of complete (``"ph": "X"``) events with microsecond timestamps.
Each span becomes one event on its ``(pid, tid)`` track, so a
``--jobs N`` analysis shows the main pipeline phases on the parent
process track and per-replicate work on one track per worker — the
analyzer's own execution rendered in the paper's idiom.

The JSONL export is the scriptable twin: one JSON object per line
(``{"type": "span", ...}`` records, then one ``{"type": "metrics"}``
record), greppable and trivially loadable from pandas/jq.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

from repro._util import atomic_write_text
from repro.obs.session import Session, SpanRecord

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "write_metrics",
]


def _span_args(span: SpanRecord) -> dict:
    args = dict(span.attrs)
    if span.counters:
        args.update(span.counters)
    args["cpu_ms"] = round(span.cpu_time * 1e3, 3)
    return args


def chrome_trace_events(session: Session) -> list[dict]:
    """Flatten a session into trace-event dicts (sorted by timestamp)."""
    events: list[dict] = []
    tracks: set[tuple[int, int]] = set()
    for span in session.completed_spans():
        tracks.add((span.pid, span.tid))
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.t_start - session.epoch) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": _span_args(span),
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"]))
    meta: list[dict] = []
    for pid in sorted({p for p, _ in tracks}):
        name = session.label if pid == session.pid else f"{session.label}-worker"
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{name} (pid {pid})"},
            }
        )
    return meta + events


def to_chrome_trace(session: Session) -> dict:
    """The full Chrome trace object (``json.dump``-ready)."""
    return {
        "traceEvents": chrome_trace_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "label": session.label,
            "wall_epoch": session.wall_epoch,
            "workers": session.workers,
            "metrics": session.metrics.as_dict(),
        },
    }


def write_chrome_trace(session: Session, path: str | Path) -> Path:
    return atomic_write_text(path, json.dumps(to_chrome_trace(session)) + "\n")


def jsonl_records(session: Session) -> Iterator[dict]:
    """Span records then one metrics record, as plain dicts."""
    for span in session.completed_spans():
        d = span.to_dict()
        d["type"] = "span"
        d["duration_s"] = span.duration
        d["cpu_s"] = span.cpu_time
        yield d
    yield {
        "type": "metrics",
        "pid": session.pid,
        "workers": session.workers,
        "metrics": session.metrics.as_dict(),
    }


def write_jsonl(session: Session, path: str | Path) -> Path:
    text = "".join(json.dumps(rec) + "\n" for rec in jsonl_records(session))
    return atomic_write_text(path, text)


def write_metrics(session: Session, path: str | Path) -> Path:
    """Metrics-only JSON report (the ``--metrics-out`` artifact)."""
    payload = {
        "label": session.label,
        "pid": session.pid,
        "workers": session.workers,
        "host_cores": os.cpu_count(),
        "metrics": session.metrics.as_dict(),
    }
    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
