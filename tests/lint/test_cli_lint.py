"""CLI tests: the ``repro-lint`` entry point and the ``--lint``
pre-flight gate in ``repro-analyze`` / ``repro-sweep``.

The acceptance-critical pair: a seeded-defect trace set is refused by
``--lint strict``, while every bundled example app lints clean.
"""

from __future__ import annotations

import json

import pytest

from repro.apps import ALL_APPS
from repro.cli import main_analyze, main_lint, main_sweep, main_trace
from repro.lint import lint_run
from repro.mpisim import run
from repro.trace.events import EventKind
from repro.trace.writer import TraceSetWriter
from tests.lint.helpers import ev


@pytest.fixture(scope="module")
def clean_traces(tmp_path_factory):
    """A small clean token_ring trace set on disk."""
    d = tmp_path_factory.mktemp("clean")
    rc = main_trace(
        ["--app", "token_ring", "--nprocs", "4", "--out", str(d),
         "--stem", "ring", "--param", "traversals=2", "--seed", "1"]
    )
    assert rc == 0
    return d


@pytest.fixture(scope="module")
def defect_traces(tmp_path_factory):
    """A 2-rank trace set with a send that is never received (MPG102)."""
    d = tmp_path_factory.mktemp("defect")
    with TraceSetWriter(d, "bad", nprocs=2) as w:
        w.record(ev(0, 0, EventKind.INIT, 0.0, 1.0))
        w.record(ev(0, 1, EventKind.SEND, 1.0, 2.0, peer=1, tag=0, nbytes=64))
        w.record(ev(0, 2, EventKind.FINALIZE, 2.0, 3.0))
        w.record(ev(1, 0, EventKind.INIT, 0.0, 1.0))
        w.record(ev(1, 1, EventKind.FINALIZE, 1.0, 2.0))
    return d


@pytest.fixture(scope="module")
def unframed_traces(tmp_path_factory):
    """A trace whose only defect is a missing FINALIZE (MPG004, warning)."""
    d = tmp_path_factory.mktemp("unframed")
    with TraceSetWriter(d, "open", nprocs=1) as w:
        w.record(ev(0, 0, EventKind.INIT, 0.0, 1.0))
    return d


class TestReproLint:
    def test_list_rules(self, capsys):
        assert main_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert out.count("MPG") == 25  # full catalog, incl. MPG2xx diagnosis + MPG3xx verify
        assert "[overlapping-events]" in out
        assert "[graph-cycle]" in out
        assert "[anomalous-rank]" in out
        assert "[certified-bounds]" in out

    def test_clean_trace_exits_zero(self, clean_traces, capsys):
        rc = main_lint(["--traces", str(clean_traces), "--stem", "ring"])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_defect_trace_exits_nonzero(self, defect_traces, capsys):
        rc = main_lint(["--traces", str(defect_traces), "--stem", "bad"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "MPG102" in out
        assert "1 send(s) but 0 receive(s)" in out

    def test_json_report_to_file(self, defect_traces, tmp_path):
        out = tmp_path / "report.json"
        rc = main_lint(
            ["--traces", str(defect_traces), "--stem", "bad",
             "--format", "json", "--out", str(out)]
        )
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-lint-report/1"
        assert doc["summary"]["errors"] == 1
        assert doc["findings"][0]["rule"] == "MPG102"

    def test_sarif_report_to_file(self, defect_traces, tmp_path):
        out = tmp_path / "report.sarif"
        rc = main_lint(
            ["--traces", str(defect_traces), "--stem", "bad",
             "--format", "sarif", "--out", str(out)]
        )
        assert rc == 1
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "MPG102"

    def test_fail_on_never(self, defect_traces):
        rc = main_lint(
            ["--traces", str(defect_traces), "--stem", "bad", "--fail-on", "never"]
        )
        assert rc == 0

    def test_fail_on_warning(self, unframed_traces):
        relaxed = main_lint(["--traces", str(unframed_traces), "--stem", "open", "--trace-only"])
        strict = main_lint(
            ["--traces", str(unframed_traces), "--stem", "open", "--trace-only",
             "--fail-on", "warning"]
        )
        assert relaxed == 0
        assert strict == 1

    def test_disable_rule(self, unframed_traces):
        rc = main_lint(
            ["--traces", str(unframed_traces), "--stem", "open", "--trace-only",
             "--fail-on", "warning", "--disable", "MPG004,MPG006"]
        )
        assert rc == 0

    def test_severity_override(self, unframed_traces):
        rc = main_lint(
            ["--traces", str(unframed_traces), "--stem", "open", "--trace-only",
             "--severity", "MPG004=error"]
        )
        assert rc == 1

    def test_bad_severity_spec(self):
        with pytest.raises(SystemExit):
            main_lint(["--traces", "x", "--stem", "y", "--severity", "MPG004"])

    def test_requires_traces_and_stem(self):
        with pytest.raises(SystemExit):
            main_lint([])


class TestAnalyzeGating:
    def test_strict_blocks_defect_trace(self, defect_traces):
        with pytest.raises(SystemExit, match=r"repro-lint found .*MPG102"):
            main_analyze(
                ["--traces", str(defect_traces), "--stem", "bad",
                 "--measure", "noisy", "--lint", "strict"]
            )

    def test_sweep_strict_blocks_defect_trace(self, defect_traces):
        with pytest.raises(SystemExit, match="repro-lint found"):
            main_sweep(
                ["--traces", str(defect_traces), "--stem", "bad",
                 "--measure", "noisy", "--scales", "0,1", "--lint", "strict"]
            )

    def test_strict_passes_clean_trace(self, clean_traces, capsys):
        rc = main_analyze(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--measure", "noisy", "--engine", "streaming", "--lint", "strict"]
        )
        assert rc == 0
        assert "max delay" in capsys.readouterr().out

    def test_warn_mode_logs_but_proceeds(self, unframed_traces, caplog):
        # warn mode flags the unframed trace yet does not abort; the run
        # then fails later on its own merits (no signature), proving the
        # lint pass itself let it through.
        with pytest.raises(SystemExit):
            main_analyze(
                ["--traces", str(unframed_traces), "--stem", "open", "--lint", "warn"]
            )
        assert any("lint MPG004" in r.message for r in caplog.records)


APP_PARAMS = {
    "token_ring": {"traversals": 2},
    "stencil1d": {"iterations": 3},
    "stencil2d": {"iterations": 2},
    "master_worker": {"tasks": 9},
    "allreduce_iter": {"iterations": 4},
    "fft_transpose": {"stages": 2},
    "butterfly_allreduce": {"iterations": 2},
    "pipeline": {"items": 5},
    "random_sparse": {"iterations": 2},
}


class TestAllAppsLintClean:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_app_traces_have_zero_errors(self, name):
        factory, params_cls = ALL_APPS[name]
        params = params_cls(**APP_PARAMS.get(name, {}))
        nprocs = 8 if name == "butterfly_allreduce" else 4
        res = run(factory(params), nprocs=nprocs, seed=1)
        report = lint_run(res.trace)
        assert report.ok, f"{name}: {[f.message for f in report.errors[:3]]}"
        assert report.graph_checked

    def test_one_app_end_to_end_via_cli(self, clean_traces, tmp_path, capsys):
        out = tmp_path / "ring.sarif"
        rc = main_lint(
            ["--traces", str(clean_traces), "--stem", "ring",
             "--format", "sarif", "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"] == []
