"""Compiled graph plan: vectorized sampling + replicate-batched propagation.

The perturbation engine is the hot path of every experiment:
``monte_carlo``, sweeps, and ``rank_influence`` all call
:func:`~repro.core.traversal.propagate` once per replicate, re-walking
the Python object graph and re-hashing every edge uid through scalar
``_splitmix64`` — an R-replicate analysis does R interpreter-bound
traversals of *identical* topology.  A :class:`CompiledPlan` lowers a
:class:`~repro.core.builder.BuildResult` once into structure-of-arrays
form and then processes **all replicates simultaneously**:

* a level-ordered node table with CSR in-edge arrays (predecessor
  index, weight, delta-kind code, uid columns for hashing, message
  sizes for δ_t(d));
* a vectorized sampler — numpy-native splitmix64 over the uid columns,
  a vectorized PCG64 (XSL-RR 128/64) advancing one independent stream
  per edge, and ziggurat fast paths for the exponential / normal
  families — that reproduces :meth:`PerturbationSpec.sample` draws
  **bit-for-bit**;
* a propagation kernel carrying a ``(R, n_nodes)`` delay matrix
  through one topological pass (per-node max over in-edges vectorized
  across the replicate axis, both ``additive`` and ``threshold``
  modes).

Exactness strategy
------------------

``PerturbationSpec`` keys one PCG64 stream per edge from
``splitmix64``-mixed ``(seed, kind, *uid)`` and draws through numpy
``Generator`` methods.  The mix chain and the PCG64 LCG are replayed
here with uint64 array arithmetic (verified against
``BitGenerator.random_raw`` at runtime).  The ziggurat layer tables
numpy uses for ``standard_exponential`` / ``standard_normal`` are not
exported, so they are *harvested* at runtime: the PCG64 LCG is
invertible, so for any desired 64-bit output we can construct the
predecessor state, feed it to a real ``Generator``, and observe the
returned value and the number of raw draws consumed.  256 probes plus a
binary search per layer recover ``(w[idx], k[idx])`` exactly.  Lanes
whose every draw takes the single-draw ziggurat fast path (~98%) are
vectorized; the rest — rejection/tail branches, and any distribution
family outside the verified registry (Constant / Uniform / Exponential
/ Normal plus Shifted/Scaled combinators) — fall back to the scalar
``PerturbationSpec`` for that (edge, replicate) lane, so results are
unconditionally identical to :func:`propagate` for *any* signature.
If the runtime self-check fails (e.g. a future numpy changes its
bit-stream layout), the vectorized sampler disables itself and every
lane falls back — slower, never wrong.

Observability: the compiled path emits ``compiled.compile``,
``compiled.sample`` and ``compiled.propagate`` spans plus
``traversal.propagations`` / ``traversal.clamped_edges`` counters, so
``--profile`` output stays comparable with the reference engine.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.graph import DeltaKind, DeltaSpec, EdgeKind
from repro.core.perturb import PerturbationSpec
from repro.core.traversal import MODES, TraversalResult
from repro.noise.distributions import Constant, Exponential, Normal, Scaled, Shifted, Uniform
from repro.noise.signature import MachineSignature

__all__ = ["CompiledBatch", "CompiledPlan", "compiled_plan"]

_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF
_FNV_SEED = 0x811C9DC5
_TO_DOUBLE = 1.0 / 9007199254740992.0  # 2^-53

# PCG64 (XSL-RR 128/64) multiplier, split into 64-bit halves for the
# two-limb vectorized LCG step.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_PCG_MULT_HI = _U64(_PCG_MULT >> 64)
_PCG_MULT_LO = _U64(_PCG_MULT & _MASK64)
_MASK128 = (1 << 128) - 1
_PCG_INV_MULT = pow(_PCG_MULT, -1, 1 << 128)  # LCG step inverse (harvesting)


# ---------------------------------------------------------------------------
# Vectorized splitmix64 / _mix (must match repro.core.perturb exactly)
# ---------------------------------------------------------------------------


def _splitmix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.perturb._splitmix64` over uint64 arrays."""
    x = (x + _U64(0x9E3779B97F4A7C15)).astype(_U64, copy=False)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _mix_vec(columns: np.ndarray, lengths: np.ndarray | None = None) -> np.ndarray:
    """Vectorized :func:`repro.core.perturb._mix` over the rows of a padded
    uint64 matrix (``lengths[i]`` = how many leading columns row i uses)."""
    n, width = columns.shape
    h = np.full(n, _U64(_FNV_SEED), dtype=_U64)
    for j in range(width):
        if lengths is None:
            h = _splitmix64_vec(h ^ columns[:, j])
        else:
            m = lengths > j
            h[m] = _splitmix64_vec(h[m] ^ columns[m, j])
    return h


# ---------------------------------------------------------------------------
# Vectorized PCG64 (XSL-RR 128/64)
# ---------------------------------------------------------------------------


def _mulhi64(a: np.ndarray, b) -> np.ndarray:
    """High 64 bits of the 128-bit product of uint64 arrays (32-bit limbs)."""
    m32 = _U64(0xFFFFFFFF)
    s32 = _U64(32)
    ah, al = a >> s32, a & m32
    bh, bl = b >> s32, b & m32
    lo = al * bl
    t = ah * bl + (lo >> s32)
    w1 = (t & m32) + al * bh
    return ah * bh + (t >> s32) + (w1 >> s32)


def _pcg_next64(hi, lo, inc_hi, inc_lo):
    """One LCG step + XSL-RR output.  Returns ``(hi', lo', out)``."""
    nhi = hi * _PCG_MULT_LO + lo * _PCG_MULT_HI + _mulhi64(lo, _PCG_MULT_LO)
    nlo = lo * _PCG_MULT_LO
    lo2 = nlo + inc_lo
    hi2 = nhi + inc_hi + (lo2 < nlo).astype(_U64)
    rot = hi2 >> _U64(58)
    x = hi2 ^ lo2
    out = (x >> rot) | (x << ((_U64(64) - rot) & _U64(63)))
    return hi2, lo2, out


# ---------------------------------------------------------------------------
# Runtime ziggurat-table harvesting + backend self-check
# ---------------------------------------------------------------------------

_TABLES: dict | None = None


def _spec_state(k: int, s1: int, s2: int, s3: int) -> tuple[int, int]:
    """(state, inc) exactly as ``PerturbationSpec._rng`` would install them."""
    inc = ((((s2 << 64) | s3) << 1) | 1) & _MASK128
    return (k << 64) | s1, inc


class _Prober:
    """Drives a real ``Generator`` from constructed PCG64 states."""

    def __init__(self) -> None:
        self.bg = np.random.PCG64(0)
        self.template = self.bg.state
        self.gen = np.random.Generator(self.bg)

    def set_state(self, state128: int, inc128: int) -> None:
        st = dict(self.template)
        st["state"] = {"state": state128, "inc": inc128}
        st["has_uint32"] = 0
        st["uinteger"] = 0
        self.bg.state = st

    def probe(self, u0: int, draw, maxn: int = 4) -> tuple[float, int]:
        """Make the next raw output exactly ``u0`` (via the LCG inverse),
        call ``draw()``, and count how many raw draws it consumed."""
        s_pre = ((u0 - 1) * _PCG_INV_MULT) & _MASK128  # post-step (hi=0, lo=u0)
        self.set_state(s_pre, 1)
        value = draw()
        after = self.bg.state["state"]["state"]
        s = s_pre
        for n in range(1, maxn + 1):
            s = (s * _PCG_MULT + 1) & _MASK128
            if s == after:
                return value, n
        return value, -1


def _harvest_layers(probe_fn, payload_bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Recover ``(w, k)`` ziggurat tables for one family.

    ``probe_fn(idx, payload) -> (value, steps)``.  A 1-step probe is a
    primary accept; a 2-step probe is the boundary branch, which still
    returns ``payload * w[idx]`` exactly, so either yields ``w``.  The
    binary search uses ``steps == 1`` as the accept signal (``k[idx]``
    is the smallest rejected payload; a layer may accept its whole
    payload range, flagged with the ``2**payload_bits`` sentinel).
    """
    w = np.empty(256, dtype=np.float64)
    k = np.empty(256, dtype=np.uint64)
    top = 1 << payload_bits
    for idx in range(256):
        v, n = probe_fn(idx, 1)
        if n not in (1, 2):
            raise RuntimeError(f"layer {idx}: probe consumed {n} draws")
        w[idx] = v
        _, n = probe_fn(idx, top - 1)
        if n == 1:
            k[idx] = top
            continue
        lo, hi = 0, top
        while hi - lo > 1:
            mid = (lo + hi) // 2
            _, n = probe_fn(idx, mid)
            lo, hi = (mid, hi) if n == 1 else (lo, mid)
        k[idx] = hi
    return w, k


def _random_streams(n: int, seed: int):
    """``n`` spec-style stream keys (k, s1, s2, s3) for self-checks."""
    rng = np.random.default_rng(seed)
    return tuple(rng.integers(0, 1 << 64, size=n, dtype=_U64) for _ in range(4))


def _stream_state_arrays(k, s1, s2, s3):
    inc_hi = (s2 << _U64(1)) | (s3 >> _U64(63))
    inc_lo = (s3 << _U64(1)) | _U64(1)
    return k.copy(), s1.copy(), inc_hi, inc_lo


def _check_family(prober: _Prober, keys, u0, vec_values, accept, scalar_draw) -> bool:
    """Verify vectorized accepted-lane values against scalar draws."""
    k, s1, s2, s3 = keys
    idx = np.nonzero(accept)[0] if accept is not None else np.arange(len(u0))
    if accept is not None and len(idx) < len(u0) // 2:
        return False  # implausible accept rate: layout assumption broken
    for i in idx:
        prober.set_state(*_spec_state(int(k[i]), int(s1[i]), int(s2[i]), int(s3[i])))
        if scalar_draw(prober.gen) != vec_values[i]:
            return False
    return True


def _build_tables() -> dict:
    """Harvest + verify the vectorized sampling backend (once per process).

    Returns ``{"pcg": bool, "uniform": bool, "exp": (we, ke) | None,
    "norm": (wi, ki) | None}``.  Any check that fails simply disables
    its family — affected lanes take the exact scalar fallback.
    """
    out: dict = {"pcg": False, "uniform": False, "exp": None, "norm": None}
    prober = _Prober()
    keys = _random_streams(512, 0xC0FFEE)
    k, s1, s2, s3 = keys

    # 1. Raw-stream check: vectorized LCG vs BitGenerator.random_raw.
    hi, lo, ihi, ilo = _stream_state_arrays(k, s1, s2, s3)
    hi, lo, u0 = _pcg_next64(hi, lo, ihi, ilo)
    _, _, u1 = _pcg_next64(hi, lo, ihi, ilo)
    for i in range(0, 512, 31):
        prober.set_state(*_spec_state(int(k[i]), int(s1[i]), int(s2[i]), int(s3[i])))
        raw = prober.bg.random_raw(2)
        if int(raw[0]) != int(u0[i]) or int(raw[1]) != int(u1[i]):
            return out
    out["pcg"] = True

    # 2. Uniform double: out = (u >> 11) * 2^-53.
    d = (u0 >> _U64(11)).astype(np.float64) * _TO_DOUBLE
    vals = -2.5 + 7.0 * d
    out["uniform"] = _check_family(
        prober, keys, u0, vals, None, lambda g: g.uniform(-2.5, 4.5)
    )

    # 3. Exponential ziggurat: idx = (u >> 3) & 0xFF, payload = u >> 11.
    with contextlib.suppress(RuntimeError):  # layer harvest gives up on odd builds
        exp_tables = _harvest_layers(
            lambda idx, pay: prober.probe(((pay << 8) | idx) << 3, prober.gen.standard_exponential),
            payload_bits=53,
        )
        we, ke = exp_tables
        ri = u0 >> _U64(3)
        lidx = (ri & _U64(0xFF)).astype(np.intp)
        pay = ri >> _U64(8)
        x = pay.astype(np.float64) * we[lidx]
        acc = pay < ke[lidx]
        if _check_family(prober, keys, u0, x, acc, lambda g: g.standard_exponential()):
            out["exp"] = exp_tables

    # 4. Normal ziggurat: idx = u & 0xFF, sign = bit 8, rabs = 52 bits above.
    with contextlib.suppress(RuntimeError):
        norm_tables = _harvest_layers(
            lambda idx, rabs: prober.probe((rabs << 9) | idx, prober.gen.standard_normal),
            payload_bits=52,
        )
        wi, ki = norm_tables
        nidx = (u0 & _U64(0xFF)).astype(np.intp)
        r = u0 >> _U64(8)
        sign = (r & _U64(1)) != 0
        rabs = (r >> _U64(1)) & _U64(0x000FFFFFFFFFFFFF)
        z = rabs.astype(np.float64) * wi[nidx]
        z = np.where(sign, -z, z)
        acc = rabs < ki[nidx]
        if _check_family(prober, keys, u0, z, acc, lambda g: g.standard_normal()):
            out["norm"] = norm_tables
    return out


def _get_tables() -> dict:
    global _TABLES
    if _TABLES is None:
        with obs.span("compiled.harvest_tables"):
            _TABLES = _build_tables()
    return _TABLES


# ---------------------------------------------------------------------------
# Distribution registry (vectorizable families)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ConstDist:
    """0-draw distribution: always ``value`` (after combinator folding)."""

    value: float


@dataclass(frozen=True)
class _VecDist:
    """1-draw distribution with a verified vectorized fast path.

    ``family`` ∈ {"uniform", "exp", "norm"}; ``ops`` is the ordered
    Shifted/Scaled combinator chain applied after the family transform.
    """

    family: str
    p1: float
    p2: float = 0.0
    ops: tuple = ()


def _classify(dist, tables: dict):
    """Map a RandomVariable to its vectorized form, or None (unsupported)."""
    if isinstance(dist, Constant):
        return _ConstDist(dist.value)
    if isinstance(dist, Uniform):
        if not tables["uniform"]:
            return None
        return _VecDist("uniform", dist.low, dist.high - dist.low)
    if isinstance(dist, Exponential):
        if tables["exp"] is None:
            return None
        return _VecDist("exp", dist.mean_value)
    if isinstance(dist, Normal):
        if tables["norm"] is None:
            return None
        return _VecDist("norm", dist.mu, dist.sigma)
    if isinstance(dist, (Shifted, Scaled)):
        inner = _classify(dist.base, tables)
        if inner is None:
            return None
        op = ("+", dist.offset) if isinstance(dist, Shifted) else ("*", dist.factor)
        if isinstance(inner, _ConstDist):
            v = inner.value + op[1] if op[0] == "+" else inner.value * op[1]
            return _ConstDist(v)
        return _VecDist(inner.family, inner.p1, inner.p2, inner.ops + (op,))
    return None


def _eval_dist(d: _VecDist, u: np.ndarray, tables: dict):
    """Evaluate a vectorized distribution on raw uint64 draws.

    Returns ``(values, accept)`` — ``accept`` is None when every lane
    is exact (no rejection step possible, e.g. uniform).
    """
    if d.family == "uniform":
        v = (u >> _U64(11)).astype(np.float64) * _TO_DOUBLE
        v = d.p1 + d.p2 * v
        acc = None
    elif d.family == "exp":
        we, ke = tables["exp"]
        ri = u >> _U64(3)
        idx = (ri & _U64(0xFF)).astype(np.intp)
        pay = ri >> _U64(8)
        v = pay.astype(np.float64) * we[idx]
        acc = pay < ke[idx]
        v = d.p1 * v
    else:  # "norm"
        wi, ki = tables["norm"]
        idx = (u & _U64(0xFF)).astype(np.intp)
        r = u >> _U64(8)
        sign = (r & _U64(1)) != 0
        rabs = (r >> _U64(1)) & _U64(0x000FFFFFFFFFFFFF)
        v = rabs.astype(np.float64) * wi[idx]
        v = np.where(sign, -v, v)
        acc = rabs < ki[idx]
        v = d.p1 + d.p2 * v
    for op, c in d.ops:
        v = v + c if op == "+" else v * c
    return v, acc


# ---------------------------------------------------------------------------
# Draw programs (per-edge sampling recipes)
# ---------------------------------------------------------------------------


def _edge_program(sig: MachineSignature, delta: DeltaSpec, weight: float, classify):
    """The ordered primitive-draw recipe replaying ``spec.sample`` for one
    edge: a list of ``(dist, factor)`` steps (factor = nbytes for δ_t
    terms), or None when any step's family is unsupported."""
    kind = delta.kind
    os_d = classify(sig.os_noise_for(delta.rank))
    lat = classify(sig.latency_for(delta.src, delta.dst))
    pb = classify(sig.per_byte)
    steps: list | None
    if kind == DeltaKind.OS:
        if sig.os_draws(weight) != 1:
            return None  # interval-scaled multi-draw: scalar fallback
        steps = [(os_d, 1.0)]
    elif kind == DeltaKind.LATENCY:
        steps = [(lat, 1.0)]
    elif kind == DeltaKind.TRANSFER:
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
    elif kind == DeltaKind.TRANSFER_OS:
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
        steps.append((os_d, 1.0))
    elif kind == DeltaKind.ROUNDTRIP:
        lat_back = classify(sig.latency_for(delta.dst, delta.src))
        steps = [(lat, 1.0)]
        if delta.nbytes > 0:
            steps.append((pb, float(delta.nbytes)))
        steps.extend([(os_d, 1.0), (lat_back, 1.0)])
    elif kind == DeltaKind.COLL_FANIN:
        steps = []
        for _ in range(delta.rounds):
            steps.extend([(os_d, 1.0), (lat, 1.0)])
            if delta.nbytes > 0:
                steps.append((pb, float(delta.nbytes)))
    else:  # pragma: no cover - exhaustive over sampled kinds
        return None
    if any(d is None for d, _ in steps):
        return None
    return steps


class _Group:
    """Edges sharing one program shape, sampled lane-parallel.

    ``lanes`` indexes the supported-lane axis (for stream keys);
    ``edge_ids`` the global edge axis (for output columns).  Steps are
    ``("const", contrib_row)`` — no stream consumption — or
    ``("draw", _VecDist, factor_row | None)``.
    """

    __slots__ = ("lanes", "edge_ids", "steps")

    def __init__(self, lanes, edge_ids, steps):
        self.lanes = lanes
        self.edge_ids = edge_ids
        self.steps = steps


class _BoundSampler:
    """A CompiledPlan's sampler bound to one machine signature."""

    def __init__(self, plan: "CompiledPlan", signature: MachineSignature):
        self.plan = plan
        self.signature = signature
        self.tables = _get_tables()
        cache: dict = {}

        def classify(dist):
            key = id(dist)
            if key not in cache:
                cache[key] = _classify(dist, self.tables) if self.tables["pcg"] else None
            return cache[key]

        sup_lanes: list[int] = []  # edge ids with a vectorizable program
        programs: list = []
        unsup: list[int] = []
        for eid in plan.sampled_ids:
            delta = plan.deltas[eid]
            if not delta.uid:
                # scalar engine raises for uid-less sampled edges; defer
                # to it so the error (and message) is identical.
                unsup.append(eid)
                continue
            prog = _edge_program(signature, delta, plan.edge_weight[eid], classify)
            if prog is None:
                unsup.append(eid)
            else:
                sup_lanes.append(eid)
                programs.append(prog)
        self.unsup_ids = np.array(unsup, dtype=np.int64)
        self.lane_edge_ids = np.array(sup_lanes, dtype=np.int64)
        n_sup = len(sup_lanes)
        self.kind_u64 = plan.uid_kind[self.lane_edge_ids] if n_sup else np.empty(0, _U64)
        self.uid_mat = plan.uid_mat[self.lane_edge_ids] if n_sup else np.empty((0, 0), _U64)
        self.uid_len = plan.uid_len[self.lane_edge_ids] if n_sup else np.empty(0, np.int64)

        # Group lanes by program shape (the dist sequence; factors vary).
        by_shape: dict[tuple, list[int]] = {}
        for lane, prog in enumerate(programs):
            by_shape.setdefault(tuple(d for d, _ in prog), []).append(lane)
        self.groups: list[_Group] = []
        for shape, lanes in by_shape.items():
            lanes_arr = np.array(lanes, dtype=np.int64)
            steps = []
            for j, dist in enumerate(shape):
                factors = np.array([programs[i][j][1] for i in lanes], dtype=np.float64)
                if isinstance(dist, _ConstDist):
                    steps.append(("const", max(dist.value, 0.0) * factors))
                else:
                    fac = None if np.all(factors == 1.0) else factors
                    steps.append(("draw", dist, fac))
            self.groups.append(_Group(lanes_arr, self.lane_edge_ids[lanes_arr], steps))

    # -- sampling ---------------------------------------------------------------
    def _stream_keys(self, seeds_u64: np.ndarray):
        """Per-(replicate, lane) PCG64 state arrays, shape (R, n_sup)."""
        h = _splitmix64_vec(_U64(_FNV_SEED) ^ seeds_u64)[:, None]
        h = _splitmix64_vec(h ^ self.kind_u64[None, :])
        for j in range(self.uid_mat.shape[1]):
            cols = self.uid_len > j
            if not np.any(cols):
                break
            h[:, cols] = _splitmix64_vec(h[:, cols] ^ self.uid_mat[cols, j][None, :])
        k = h
        s1 = _splitmix64_vec(k)
        s2 = _splitmix64_vec(s1)
        s3 = _splitmix64_vec(s2)
        inc_hi = (s2 << _U64(1)) | (s3 >> _U64(63))
        inc_lo = (s3 << _U64(1)) | _U64(1)
        return k, s1, inc_hi, inc_lo

    def sample_raw(self, seeds: list[int], scale: float) -> np.ndarray:
        """(R, n_edges) matrix of per-edge deltas, row r drawn exactly as
        ``PerturbationSpec(signature, seed=seeds[r], scale=scale)`` would."""
        plan = self.plan
        R = len(seeds)
        raw = np.zeros((R, plan.n_edges), dtype=np.float64)
        fallback = 0
        if len(self.lane_edge_ids):
            seeds_u64 = np.array([s & _MASK64 for s in seeds], dtype=_U64)
            k, s1, inc_hi, inc_lo = self._stream_keys(seeds_u64)
            bad_cols: list[np.ndarray] = []  # per-group (R, n_g) reject masks
            for g in self.groups:
                hi = k[:, g.lanes]
                lo = s1[:, g.lanes]
                ihi = inc_hi[:, g.lanes]
                ilo = inc_lo[:, g.lanes]
                V = np.zeros((R, len(g.lanes)), dtype=np.float64)
                ok = np.ones((R, len(g.lanes)), dtype=bool)
                for step in g.steps:
                    if step[0] == "const":
                        V += step[1]
                        continue
                    _, dist, fac = step
                    hi, lo, u = _pcg_next64(hi, lo, ihi, ilo)
                    v, acc = _eval_dist(dist, u, self.tables)
                    np.maximum(v, 0.0, out=v)
                    if fac is not None:
                        v *= fac
                    V += v
                    if acc is not None:
                        ok &= acc
                raw[:, g.edge_ids] = V * scale
                bad_cols.append(~ok)
            # Exact per-lane fallback: any replicate/edge whose draw chain
            # left the verified fast path is resampled by the scalar spec.
            for g, bad in zip(self.groups, bad_cols):
                if not bad.any():
                    continue
                rows, cols = np.nonzero(bad)
                fallback += len(rows)
                spec = None
                last_row = -1
                for r, c in zip(rows, cols):
                    if r != last_row:
                        spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                        last_row = r
                    eid = int(g.edge_ids[c])
                    raw[r, eid] = spec.sample(plan.deltas[eid], plan.edge_weight[eid])
        if len(self.unsup_ids):
            fallback += R * len(self.unsup_ids)
            for r in range(R):
                spec = PerturbationSpec(self.signature, seed=seeds[r], scale=scale)
                for eid in self.unsup_ids:
                    raw[r, eid] = spec.sample(plan.deltas[eid], plan.edge_weight[eid])
        obs.span_add("compiled.lanes", R * plan.n_edges)
        if fallback:
            obs.span_add("compiled.fallback_lanes", fallback)
        return raw


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------


class _Level:
    """One rank of the level schedule: nodes whose in-edges all come from
    earlier levels, so the whole rank is a single vectorized gather+max."""

    __slots__ = ("nodes", "src", "eid", "segs", "sizes", "single")

    def __init__(self, nodes, src, eid, segs, single):
        self.nodes = nodes
        self.src = src
        self.eid = eid
        self.segs = segs
        # In-edges per node in this level (for expanding segment maxima
        # back to the edge axis in the predecessor-tracking kernel).
        self.sizes = np.diff(np.append(segs, len(eid)))
        self.single = single

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


@dataclass(frozen=True)
class CompiledBatch:
    """Replicate-batched propagation output.

    ``delays`` has shape (replicates, nprocs) — row r is exactly
    ``propagate(build, spec_with_seed_r, mode).final_delay``.
    """

    delays: np.ndarray
    clamped: np.ndarray  # (replicates,) per-replicate clamped-edge counts
    mode: str


class CompiledPlan:
    """A BuildResult lowered to structure-of-arrays form (see module doc).

    Compile once (topology is spec-independent), then reuse across
    replicates, sweep points and influence rows.  The plan is picklable
    — :class:`~repro.core.parallel.ProcessPoolBackend` ships these
    compact arrays to workers instead of the Python object graph.
    """

    def __init__(self, build: BuildResult):
        with obs.span("compiled.compile"):
            g = build.graph
            self.nprocs = g.nprocs
            self.n_nodes = len(g.nodes)
            self.n_edges = len(g.edges)
            edges = g.edges
            self.edge_weight = np.array([e.weight for e in edges], dtype=np.float64)
            self.edge_kind = np.array([int(e.delta.kind) for e in edges], dtype=np.uint8)
            self.deltas = [e.delta for e in edges]
            self.sampled_ids = np.nonzero(self.edge_kind != int(DeltaKind.NONE))[0]

            # Node/edge attribute columns — the structure-of-arrays substrate
            # that repro.metrics.frames hands out as zero-copy views.
            nodes = g.nodes
            self.node_rank = np.array([n.rank for n in nodes], dtype=np.int64)
            self.node_seq = np.array([n.seq for n in nodes], dtype=np.int64)
            self.node_phase = np.array([int(n.phase) for n in nodes], dtype=np.uint8)
            self.node_kind = np.array([int(n.kind) for n in nodes], dtype=np.uint8)
            self.node_t_local = np.array([n.t_local for n in nodes], dtype=np.float64)
            self.edge_src = np.array([e.src for e in edges], dtype=np.int64)
            self.edge_dst = np.array([e.dst for e in edges], dtype=np.int64)
            self.edge_is_local = np.array(
                [e.kind == EdgeKind.LOCAL for e in edges], dtype=np.bool_
            )
            self.edge_nbytes = np.array([e.delta.nbytes for e in edges], dtype=np.int64)

            # uid columns, premasked to uint64 exactly like perturb._mix.
            max_len = max((len(self.deltas[i].uid) for i in self.sampled_ids), default=0)
            self.uid_mat = np.zeros((self.n_edges, max_len), dtype=_U64)
            self.uid_len = np.zeros(self.n_edges, dtype=np.int64)
            self.uid_kind = np.zeros(self.n_edges, dtype=_U64)
            for i in self.sampled_ids:
                uid = self.deltas[i].uid
                self.uid_len[i] = len(uid)
                self.uid_kind[i] = int(self.deltas[i].kind) & _MASK64
                for j, v in enumerate(uid):
                    self.uid_mat[i, j] = v & _MASK64

            # Level schedule: level(v) = 1 + max level of predecessors.
            level = [0] * self.n_nodes
            for v in g.topological_order():
                ins = g.in_edge_ids(v)
                if ins:
                    level[v] = 1 + max(level[edges[ei].src] for ei in ins)
            by_level: dict[int, list[int]] = {}
            for v, lv in enumerate(level):
                if lv > 0:
                    by_level.setdefault(lv, []).append(v)
            self.levels: list[_Level] = []
            for lv in sorted(by_level):
                nodes = by_level[lv]
                src: list[int] = []
                eid: list[int] = []
                segs: list[int] = []
                for v in nodes:
                    segs.append(len(eid))
                    for ei in g.in_edge_ids(v):
                        src.append(edges[ei].src)
                        eid.append(ei)
                single = len(eid) == len(nodes)
                self.levels.append(
                    _Level(
                        np.array(nodes, dtype=np.int64),
                        np.array(src, dtype=np.int64),
                        np.array(eid, dtype=np.int64),
                        np.array(segs, dtype=np.int64),
                        single,
                    )
                )

            # Final (FINALIZE END) node per rank, rank-chain fallback as in
            # traversal._finals_from_graph; -1 = rank has no nodes at all.
            self.final_node = np.full(self.nprocs, -1, dtype=np.int64)
            self.final_t_local = np.zeros(self.nprocs, dtype=np.float64)
            for rank in range(self.nprocs):
                nid = g.final_node_of(rank)
                if nid is not None:
                    self.final_node[rank] = nid
                    self.final_t_local[rank] = g.nodes[nid].t_local
            obs.span_add("compiled.plans")
            self._samplers: list[tuple[MachineSignature, _BoundSampler]] = []
            self._tables = _get_tables()  # harvested once; rides the pickle

    # -- pickling (ship arrays, not caches) -------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_samplers"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        global _TABLES
        if _TABLES is None and state.get("_tables") is not None:
            _TABLES = state["_tables"]  # workers skip re-harvesting

    # -- sampling ---------------------------------------------------------------
    def bind(self, signature: MachineSignature) -> _BoundSampler:
        """Sampler for one signature (memoized; signatures are compared
        by identity first, then equality)."""
        for sig, sampler in self._samplers:
            if sig is signature or sig == signature:
                return sampler
        sampler = _BoundSampler(self, signature)
        self._samplers.append((signature, sampler))
        if len(self._samplers) > 8:
            self._samplers.pop(0)
        return sampler

    def sample_raw_batch(
        self, signature: MachineSignature, seeds: list[int], scale: float = 1.0
    ) -> np.ndarray:
        """(R, n_edges) sampled deltas (already scaled), bit-identical to
        per-replicate ``PerturbationSpec.sample`` over every edge."""
        with obs.span("compiled.sample", replicates=len(seeds)):
            return self.bind(signature).sample_raw(list(seeds), scale)

    # -- mode + kernel ----------------------------------------------------------
    def apply_mode(self, raw: np.ndarray, mode: str):
        """δ_eff per edge (same clamp semantics as ``_DeltaApplier``).

        Returns ``(eff, clamped)``; ``clamped`` counts additive-mode
        zero-floor clamps per replicate."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        w = self.edge_weight
        if mode == "threshold":
            return np.maximum(0.0, raw - w), np.zeros(raw.shape[0], dtype=np.int64)
        mask = raw < -w
        eff = np.where(mask, -w, raw)
        return eff, mask.sum(axis=1).astype(np.int64)

    def kernel(self, eff: np.ndarray) -> np.ndarray:
        """One topological pass for all replicates: (R, n_nodes) delays."""
        D = np.zeros((eff.shape[0], self.n_nodes), dtype=np.float64)
        for lv in self.levels:
            contrib = D[:, lv.src] + eff[:, lv.eid]
            if lv.single:
                D[:, lv.nodes] = contrib
            else:
                D[:, lv.nodes] = np.maximum.reduceat(contrib, lv.segs, axis=1)
        return D

    def longest_path(self, eff: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Longest weighted path with predecessor tracking, all replicates.

        ``eff`` is an (R, n_edges) per-edge cost matrix; returns
        ``(L, pred)`` of shapes (R, n_nodes): ``L[r, v]`` is the longest
        path cost into ``v`` under row r's costs and ``pred[r, v]`` the
        binding in-edge id (-1 for sources).  Ties break toward the
        *first* in-edge in ``graph.in_edge_ids`` order — the CSR arrays
        are built in exactly that order, so first-position-of-max here
        matches the scalar :func:`~repro.core.traversal.longest_weighted_path`
        bit-for-bit (both compare the same computed float values).
        """
        R = eff.shape[0]
        L = np.zeros((R, self.n_nodes), dtype=np.float64)
        pred = np.full((R, self.n_nodes), -1, dtype=np.int64)
        with obs.span("longest_path", engine="compiled", replicates=R):
            for lv in self.levels:
                contrib = L[:, lv.src] + eff[:, lv.eid]
                if lv.single:
                    L[:, lv.nodes] = contrib
                    pred[:, lv.nodes] = lv.eid[None, :]
                else:
                    M = np.maximum.reduceat(contrib, lv.segs, axis=1)
                    L[:, lv.nodes] = M
                    # First max per segment: mask non-max positions to a
                    # sentinel past the end, then min-reduce positions.
                    ncols = contrib.shape[1]
                    expanded = np.repeat(M, lv.sizes, axis=1)
                    pos = np.where(
                        contrib == expanded,
                        np.arange(ncols, dtype=np.int64)[None, :],
                        ncols,
                    )
                    first = np.minimum.reduceat(pos, lv.segs, axis=1)
                    pred[:, lv.nodes] = lv.eid[first]
        return L, pred

    def finals(self, D: np.ndarray) -> np.ndarray:
        """(R, nprocs) per-rank final delays from a node-delay matrix."""
        out = np.zeros((D.shape[0], self.nprocs), dtype=np.float64)
        have = self.final_node >= 0
        out[:, have] = D[:, self.final_node[have]]
        return out

    # -- high-level entry points --------------------------------------------------
    def _batch_size(self, replicates: int) -> int:
        """Bound (R, n_nodes)+(R, n_edges) scratch to ~100 MB per batch."""
        per_rep = max(1, self.n_nodes + 3 * self.n_edges)
        return max(1, min(replicates, 12_000_000 // per_rep))

    def propagate_batch(
        self,
        spec: PerturbationSpec,
        seeds: list[int] | None = None,
        mode: str = "additive",
    ) -> CompiledBatch:
        """Batched equivalent of ``propagate`` over per-replicate seeds.

        Row r uses ``PerturbationSpec(spec.signature, seed=seeds[r],
        scale=spec.scale)`` — the exact Monte-Carlo replicate schedule.
        ``seeds`` defaults to ``[spec.seed]``.
        """
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        seeds = [spec.seed] if seeds is None else list(seeds)
        R = len(seeds)
        delays = np.empty((R, self.nprocs), dtype=np.float64)
        clamped = np.empty(R, dtype=np.int64)
        step = self._batch_size(R)
        for lo in range(0, R, step):
            chunk = seeds[lo : lo + step]
            raw = self.sample_raw_batch(spec.signature, chunk, spec.scale)
            with obs.span("compiled.propagate", replicates=len(chunk), mode=mode):
                eff, nclamp = self.apply_mode(raw, mode)
                delays[lo : lo + step] = self.finals(self.kernel(eff))
                clamped[lo : lo + step] = nclamp
                obs.span_add("traversal.propagations", len(chunk))
                if nclamp.any():
                    obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
        return CompiledBatch(delays=delays, clamped=clamped, mode=mode)

    def propagate_presampled_batch(
        self, raw_base: np.ndarray, scales: list[float], mode: str = "additive"
    ) -> CompiledBatch:
        """Propagate one pre-sampled raw row at many scales (sweep fast
        path): row i of the result uses ``raw_base * scales[i]``."""
        raw = raw_base[None, :] * np.asarray(scales, dtype=np.float64)[:, None]
        with obs.span("compiled.propagate", replicates=len(scales), mode=mode):
            eff, nclamp = self.apply_mode(raw, mode)
            delays = self.finals(self.kernel(eff))
            obs.span_add("traversal.propagations", len(scales))
            if nclamp.any():
                obs.span_add("traversal.clamped_edges", int(nclamp.sum()))
        return CompiledBatch(delays=delays, clamped=nclamp, mode=mode)

    def propagate_one(self, spec: PerturbationSpec, mode: str = "additive") -> TraversalResult:
        """Drop-in ``propagate`` replacement (single spec/seed) with the
        in-core extras (node delays, edge deltas) populated."""
        raw = self.sample_raw_batch(spec.signature, [spec.seed], spec.scale)
        with obs.span("compiled.propagate", replicates=1, mode=mode):
            eff, nclamp = self.apply_mode(raw, mode)
            D = self.kernel(eff)
            delays = self.finals(D)[0]
            have = self.final_node >= 0
            times = np.where(have, self.final_t_local + delays, 0.0)
            obs.span_add("traversal.propagations")
            if nclamp[0]:
                obs.span_add("traversal.clamped_edges", int(nclamp[0]))
        return TraversalResult(
            final_delay=delays.tolist(),
            final_local_times=times.tolist(),
            mode=mode,
            clamped_edges=int(nclamp[0]),
            node_delay=D[0].tolist(),
            edge_delta=eff[0].tolist(),
        )


def compiled_plan(build: BuildResult) -> CompiledPlan:
    """The (cached) compiled plan for a build — compile once, reuse."""
    plan = build.__dict__.get("_compiled_plan")
    if plan is None:
        plan = CompiledPlan(build)
        build.__dict__["_compiled_plan"] = plan
    return plan
