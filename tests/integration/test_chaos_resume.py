"""The acceptance scenario, end to end through the real CLI:

a ``repro-sweep`` killed mid-flight (fault-injection hook
``REPRO_FAULT_KILL_AFTER_SHARDS``) and re-invoked with ``--resume``
produces stdout **bit-identical** to an uninterrupted serial run.

These tests shell out: the injected kill is ``os._exit``, which must
take down a real process, not the test runner.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main_trace
from repro.core.checkpoint import KILL_AFTER_SHARDS_ENV
from repro.testing import FAULT_EXIT_CODE

SRC = str(Path(__file__).resolve().parents[2] / "src")
SWEEP = "from repro.cli import main_sweep; import sys; sys.exit(main_sweep(sys.argv[1:]))"


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces")
    rc = main_trace(
        ["--app", "token_ring", "--nprocs", "4", "--out", str(out),
         "--stem", "ring", "--param", "traversals=2", "--seed", "1"]
    )
    assert rc == 0
    return out


def run_sweep(traced, extra, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env.pop(KILL_AFTER_SHARDS_ENV, None)
    if env_extra:
        env.update(env_extra)
    argv = [sys.executable, "-c", SWEEP,
            "--traces", str(traced), "--stem", "ring",
            "--measure", "quiet", "--seed", "1", "--engine", "incore",
            "--quiet"] + extra
    return subprocess.run(argv, capture_output=True, text=True, env=env, timeout=300)


class TestKillAndResume:
    def test_killed_sweep_resumes_bit_identical(self, traced, tmp_path):
        ckpt = str(tmp_path / "ckpt")

        clean = run_sweep(traced, [])
        assert clean.returncode == 0, clean.stderr

        killed = run_sweep(
            traced, ["--checkpoint", ckpt], env_extra={KILL_AFTER_SHARDS_ENV: "3"}
        )
        assert killed.returncode == FAULT_EXIT_CODE, killed.stderr
        shards = list(Path(ckpt).glob("*.json"))
        assert len(shards) == 3  # partial progress survived the kill

        resumed = run_sweep(traced, ["--checkpoint", ckpt, "--resume"])
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout

    def test_resume_after_clean_run_is_all_cache(self, traced, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        first = run_sweep(traced, ["--checkpoint", ckpt])
        assert first.returncode == 0, first.stderr
        again = run_sweep(traced, ["--checkpoint", ckpt, "--resume"])
        assert again.returncode == 0, again.stderr
        assert again.stdout == first.stdout

    def test_resume_requires_checkpoint(self, traced):
        res = run_sweep(traced, ["--resume"])
        assert res.returncode != 0
        assert "--resume requires --checkpoint" in res.stderr
