#!/usr/bin/env python
"""Probabilistic analysis: delay distributions and rank-to-rank influence.

Since §5 treats every perturbation parameter as a random variable, one
propagation is a single *sample* of the perturbed-runtime distribution.
This example

1. runs a Monte-Carlo study over a measured-style signature, reporting
   the makespan-delay distribution and the probability of blowing a
   runtime budget;
2. computes the rank-influence matrix — whose noise hurts whom — for
   two contrasting messaging patterns;
3. records everything in an experiment history (§7) and replays one
   stored experiment to demonstrate exact reproducibility.
"""

import tempfile
from pathlib import Path

from repro.apps import MasterWorkerParams, TokenRingParams, master_worker, token_ring
from repro.core import (
    ExperimentHistory,
    PerturbationSpec,
    build_graph,
    monte_carlo,
    propagate,
    rank_influence,
)
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature

P = 6


def main() -> None:
    sig = MachineSignature(
        os_noise=Exponential(250.0), latency=Exponential(100.0), name="mc-study"
    )
    spec = PerturbationSpec(sig, seed=0)

    # ---- 1. Monte-Carlo delay distribution --------------------------------
    print("1. Monte-Carlo delay distribution (token ring, 200 replicates)")
    res = run(token_ring(TokenRingParams(traversals=4)), nprocs=P, seed=1)
    build = build_graph(res.trace)
    dist = monte_carlo(build, spec, replicates=200)
    print(f"   {dist.summary()}")
    budget = 0.02 * res.makespan
    print(
        f"   P(delay > 2% of runtime = {budget:,.0f} cy) = "
        f"{dist.exceedance_probability(budget):.1%}"
    )

    # ---- 2. Influence matrices ---------------------------------------------
    print("\n2. rank-influence matrices (constant 10k cy noise on one rank)")
    noise = Constant(10_000.0)
    for name, prog in (
        ("token_ring", token_ring(TokenRingParams(traversals=3))),
        ("master_worker", master_worker(MasterWorkerParams(tasks=24))),
    ):
        trace = run(prog, nprocs=P, seed=1).trace
        matrix = rank_influence(build_graph(trace), noise, seed=0)
        spreads = [matrix.spread(r) for r in range(P)]
        totals = matrix.total_influence()
        worst = int(totals.argmax())
        print(
            f"   {name:>14}: blast radii per source rank {spreads}; "
            f"most dangerous rank: {worst} "
            f"(inflicts {totals[worst]:,.0f} cy total)"
        )

    # ---- 3. History + exact replay ------------------------------------------
    print("\n3. experiment history and exact replay")
    with tempfile.TemporaryDirectory() as tmp:
        history = ExperimentHistory(Path(tmp) / "history.jsonl")
        first = propagate(build, spec)
        rec = history.record("ring-study", spec, first, build.config)
        print(f"   recorded {rec.name!r}: max delay {rec.max_delay:,.0f} cy")
        # Cold start: reload and replay from the stored parameterization.
        stored = ExperimentHistory(history.path).latest("ring-study")
        replayed = propagate(build, history.replay_spec(stored))
        identical = list(replayed.final_delay) == list(stored.delays)
        print(f"   replayed from history: identical delays = {identical}")


if __name__ == "__main__":
    main()
