"""Tests for the run()/run_to_files() wrappers and Machine config."""

import pytest

from repro.mpisim import Compute, LocalClock, Machine, Recv, Send, run, run_to_files
from repro.noise import Constant, DistributionNoise
from repro.trace.reader import MemoryTrace, TraceSet
from repro.trace.validate import validate_traces


def simple(me):
    if me.rank == 0:
        yield Compute(1000.0)
        yield Send(dest=1, nbytes=32)
    else:
        yield Recv(source=0)


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            Machine(nprocs=0)
        with pytest.raises(ValueError):
            Machine(nprocs=2, clocks=(LocalClock(),))
        with pytest.raises(ValueError):
            Machine(nprocs=2, noise=(DistributionNoise(Constant(1.0)),))

    def test_resolved_clocks_default_perfect(self):
        m = Machine(nprocs=3)
        clocks = m.resolved_clocks()
        assert len(clocks) == 3
        assert all(c.offset == 0.0 for c in clocks)

    def test_with_skewed_clocks(self):
        m = Machine(nprocs=4).with_skewed_clocks(seed=5)
        assert len(m.clocks) == 4
        assert any(c.offset != 0.0 for c in m.clocks)
        assert m.with_skewed_clocks(seed=5).clocks == m.clocks  # deterministic


class TestRun:
    def test_returns_trace_and_times(self):
        res = run(simple, nprocs=2, seed=0)
        assert res.nprocs == 2
        assert len(res.finish_times) == 2
        assert res.makespan == max(res.finish_times)
        assert isinstance(res.trace, MemoryTrace)
        assert res.events_processed > 0

    def test_no_trace_mode(self):
        res = run(simple, nprocs=2, seed=0, trace=False)
        assert res.trace is None

    def test_requires_nprocs_or_machine(self):
        with pytest.raises(ValueError):
            run(simple)

    def test_nprocs_machine_consistency(self):
        with pytest.raises(ValueError):
            run(simple, nprocs=3, machine=Machine(nprocs=2))

    def test_skewed_clocks_affect_trace_not_times(self):
        quiet = run(simple, machine=Machine(nprocs=2), seed=0)
        skewed = run(simple, machine=Machine(nprocs=2).with_skewed_clocks(3), seed=0)
        assert quiet.finish_times == skewed.finish_times  # virtual time identical
        q0 = next(iter(quiet.trace.events_of(0)))
        s0 = next(iter(skewed.trace.events_of(0)))
        assert q0.t_start != s0.t_start  # local timestamps differ


class TestRunToFiles:
    @pytest.mark.parametrize("binary", [False, True])
    def test_writes_valid_trace_files(self, tmp_path, binary):
        res = run_to_files(
            simple, tmp_path, "s", nprocs=2, seed=0, binary=binary, program_name="simple"
        )
        assert isinstance(res.trace, TraceSet)
        report = validate_traces(res.trace)
        assert report.ok
        assert res.trace.meta(0).program == "simple"

    def test_file_trace_equals_memory_trace(self, tmp_path):
        mem = run(simple, nprocs=2, seed=4)
        fil = run_to_files(simple, tmp_path, "x", nprocs=2, seed=4)
        assert mem.finish_times == fil.finish_times
        for rank in range(2):
            assert list(mem.trace.events_of(rank)) == list(fil.trace.events_of(rank))

    def test_buffering_parameter(self, tmp_path):
        res = run_to_files(simple, tmp_path, "b", nprocs=2, seed=0, buffer_events=1)
        assert validate_traces(res.trace).ok
