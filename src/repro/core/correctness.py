"""Correctness guarantees of the perturbed graph (§4.3).

The paper's key invariant: modifying event timings must never cause an
event to occur *prematurely* relative to its counterparts — message
order must stay true to the trace-generating run.  With nonnegative
deltas this holds by construction (delays only push forward); this
module provides the machine checks:

* :func:`check_order_preserved` — verifies every rank's perturbed
  subevent times are monotone and every matched transfer still
  completes no earlier than its send started (the premature-event test);
* :func:`async_warnings` — detects the "worst case" of §4.3: a sender
  issuing nonblocking sends it never completes (and receivers that
  never complete their receives), for which the tool "cannot guarantee
  that an arbitrarily perturbed graph is correct and produces a
  warning";
* :func:`clamp_warnings` — reports negative-delta clamping (the §7
  reduced-noise exploration can push an edge's effective weight to its
  zero floor, at which point speedups stop propagating).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import BuildResult, _match_warnings
from repro.core.diagnostics import AnalysisWarning
from repro.core.graph import Phase
from repro.core.traversal import TraversalResult

__all__ = ["CorrectnessReport", "check_correctness", "check_order_preserved", "async_warnings"]

_TIME_EPS = 1e-6


@dataclass
class CorrectnessReport:
    """Outcome of all §4.3 checks for one perturbed traversal."""

    order_violations: list = field(default_factory=list)
    async_warnings: list = field(default_factory=list)
    clamp_warnings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.order_violations

    @property
    def warnings(self) -> list:
        return self.async_warnings + self.clamp_warnings

    def summary(self) -> str:
        return (
            f"{len(self.order_violations)} order violation(s), "
            f"{len(self.async_warnings)} async warning(s), "
            f"{len(self.clamp_warnings)} clamp warning(s)"
        )


def check_order_preserved(build: BuildResult, result: TraversalResult) -> list[str]:
    """Verify the perturbed schedule preserves the run's event order.

    Requires an in-core traversal result (``node_delay``).  Checks per
    rank that perturbed subevent times ``t_local + D`` are monotone in
    trace order, and per edge that the delay actually propagated
    (``D(dst) >= D(src) + δ_eff`` up to rounding) — violations indicate
    a builder or traversal bug, not a property of the input.
    """
    if result.node_delay is None:
        raise ValueError("order check requires an in-core traversal result")
    g = build.graph
    D = result.node_delay
    violations: list[str] = []
    for rank in range(g.nprocs):
        chain = g.rank_chain(rank)
        prev_t = float("-inf")
        prev_node = None
        for nid in chain:
            node = g.nodes[nid]
            t = node.t_local + D[nid]
            if t < prev_t - _TIME_EPS:
                violations.append(
                    f"rank {rank}: subevent #{node.seq}.{Phase(node.phase).name} at "
                    f"perturbed time {t:.3f} precedes predecessor "
                    f"({prev_node}) at {prev_t:.3f}"
                )
            prev_t = max(prev_t, t)
            prev_node = f"#{node.seq}.{Phase(node.phase).name}"
    if result.edge_delta is not None:
        for ei, edge in enumerate(g.edges):
            if D[edge.dst] < D[edge.src] + result.edge_delta[ei] - _TIME_EPS:
                violations.append(
                    f"edge {edge.src}->{edge.dst} ({edge.label or edge.kind.name}): "
                    f"delay not propagated"
                )
    return violations


def async_warnings(build: BuildResult) -> list[AnalysisWarning]:
    """§4.3 warnings: nonblocking operations whose completion was never
    checked, so perturbations through them cannot be anchored.

    Returns the structured warnings the builder recorded (recomputed
    here so hand-assembled :class:`BuildResult` objects work too).
    """
    if build.warnings:
        return list(build.warnings)
    return _match_warnings(build.match, build.events)


def clamp_warnings(result: TraversalResult) -> list[AnalysisWarning]:
    if result.clamped_edges:
        return [
            AnalysisWarning(
                f"{result.clamped_edges} edge delta(s) clamped at the zero-weight floor "
                f"(negative perturbations cannot shrink an interval below zero)",
                code="clamped-deltas",
                count=result.clamped_edges,
            )
        ]
    return []


def check_correctness(build: BuildResult, result: TraversalResult) -> CorrectnessReport:
    """Run every §4.3 check applicable to ``result``."""
    report = CorrectnessReport()
    report.async_warnings = async_warnings(build)
    report.clamp_warnings = clamp_warnings(result)
    if result.node_delay is not None:
        report.order_violations = check_order_preserved(build, result)
    return report
