"""Rank-to-rank noise influence analysis.

Beyond "how much slower does the run get" the graph answers *whose*
noise hurts *whom*: perturb one rank at a time and record every rank's
resulting delay.  The influence matrix exposes the communication
structure's sensitivity topology — in a lockstep ring every row is
dense (everyone delays everyone), in a master/worker farm only the
master's row matters.  This operationalizes §4.2's "regions where
perturbations are absorbed or fully propagated" at rank granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.checkpoint import (
    CheckpointStore,
    ShardKey,
    build_digest,
    resolve_rows,
    signature_digest,
)
from repro.core.parallel import FaultPolicy, map_replicates, resolve_backend
from repro.core.perturb import PerturbationSpec
from repro.noise.distributions import RandomVariable
from repro.noise.signature import MachineSignature

__all__ = ["InfluenceMatrix", "rank_influence"]


@dataclass(frozen=True)
class InfluenceMatrix:
    """``matrix[i, j]`` = rank j's delay when only rank i is noisy."""

    matrix: np.ndarray
    noise_mean: float

    @property
    def nprocs(self) -> int:
        return self.matrix.shape[0]

    def influence_of(self, rank: int) -> np.ndarray:
        """Delays caused on every rank by rank ``rank``'s noise."""
        return self.matrix[rank]

    def total_influence(self) -> np.ndarray:
        """Per source rank: summed delay it inflicts on all ranks —
        the 'most dangerous rank to put on a noisy node' ranking."""
        return self.matrix.sum(axis=1)

    def sensitivity(self) -> np.ndarray:
        """Per victim rank: summed delay it suffers across sources."""
        return self.matrix.sum(axis=0)

    def spread(self, rank: int, threshold_fraction: float = 0.05) -> int:
        """How many ranks receive at least ``threshold_fraction`` of the
        source's self-delay — the blast radius of one noisy node."""
        row = self.matrix[rank]
        self_delay = row[rank] if row[rank] > 0 else row.max()
        if self_delay <= 0:
            return 0
        return int(np.sum(row >= threshold_fraction * self_delay))

    def table(self) -> str:
        lines = ["victim:  " + " ".join(f"{j:>9}" for j in range(self.nprocs))]
        for i in range(self.nprocs):
            cells = " ".join(f"{v:>9,.0f}" for v in self.matrix[i])
            lines.append(f"src {i:>3}: {cells}")
        return "\n".join(lines)


def _compiled_influence_row(payload, item) -> np.ndarray:
    """Worker body: one source rank's row through the compiled kernel."""
    plan, mode = payload
    seed, spec = item
    with obs.span("replicate", seed=seed):
        obs.span_add("mc.replicates")
        return plan.propagate_batch(spec, seeds=[seed], mode=mode).delays[0]


def rank_influence(
    build: BuildResult,
    noise: RandomVariable,
    seed: int = 0,
    mode: str = "additive",
    jobs: int | None = 0,
    engine: str = "auto",
    policy: FaultPolicy | None = None,
    checkpoint: CheckpointStore | str | None = None,
    resume: bool = False,
    coarsen: str = "auto",
) -> InfluenceMatrix:
    """Compute the influence matrix: one propagation per source rank,
    with ``noise`` as that rank's (only) δ_os distribution.

    The per-source propagations are independent; ``jobs`` fans them out
    across worker processes (:mod:`repro.core.parallel`) with
    bit-identical results.  ``engine`` follows :func:`~repro.core.
    montecarlo.monte_carlo`: ``"auto"``/``"compiled"`` reuse one
    :class:`~repro.core.compiled.CompiledPlan` across all source rows
    (topology is signature-independent), ``"graph"`` is the reference
    per-propagation path; the matrices are bit-identical.

    ``policy`` is the pool's :class:`~repro.core.parallel.FaultPolicy`
    (a skipped row comes back NaN).  ``checkpoint``/``resume`` shard the
    matrix one row per source rank, keyed by that row's single-noisy-
    rank signature digest — a killed matrix computation resumes at the
    first missing row.

    ``coarsen`` controls phase coarsening in the compiled engine
    (``"auto"``/``"on"``/``"off"``); the influence matrix is identical
    under every setting.
    """
    if engine not in ("auto", "compiled", "graph"):
        raise ValueError(f"engine must be 'auto', 'compiled', or 'graph', got {engine!r}")
    resolved = "graph" if engine == "graph" else "compiled"
    store = CheckpointStore.coerce(checkpoint)
    p = build.graph.nprocs
    items = []
    for src in range(p):
        sig = MachineSignature(os_noise_by_rank={src: noise}, name=f"only-rank-{src}")
        items.append((seed, PerturbationSpec(sig, seed=seed)))

    def compute(indices) -> list:
        sub = [items[i] for i in indices]
        if resolved == "graph":
            return map_replicates(build, sub, mode=mode, jobs=jobs, policy=policy)
        from repro.core.compiled import compiled_plan

        plan = compiled_plan(build, coarsen=coarsen, checkpoint=store)
        backend = resolve_backend(jobs, policy=policy)
        return backend.map(_compiled_influence_row, sub, payload=(plan, mode))

    if store is None:
        rows = compute(range(p))
    else:
        context = build_digest(build)
        keys = [
            ShardKey(
                "influence",
                seed,
                signature_digest(items[src][1].signature),
                1.0,
                mode,
                resolved,
                context,
            )
            for src in range(p)
        ]
        rows = resolve_rows(store, keys, compute, resume=resume)
    rows = [row if row is not None else [np.nan] * p for row in rows]
    matrix = np.array(rows, dtype=float).reshape(p, p)
    return InfluenceMatrix(matrix=matrix, noise_mean=noise.mean())
