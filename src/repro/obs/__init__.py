"""Observability for the analyzer itself: spans, metrics, trace export.

The paper's method is trace-driven performance analysis; this package
applies the same idiom to our own pipeline.  A :class:`Session` records
nested phase **spans** (wall + CPU time, attributes, span-local
counters) and **metrics** (counters / gauges / timers), and exports
them as structured JSONL or Chrome trace-event JSON viewable in
Perfetto — so ``repro-analyze --profile out.json`` shows trace read,
graph build, matching, traversal, and per-replicate Monte-Carlo work on
a timeline.

Library code is instrumented through the module-level helpers below,
which are **near-zero-cost while disabled**: each one is a single
global load plus an ``is None`` test (and ``span()`` returns a shared
no-op context manager), so the default path stays hot-loop safe.
Instrumentation is phase-granular by design — nothing in this package
runs per edge or per sampled delta.

Typical use::

    from repro import obs

    with obs.observed() as session:
        build = build_graph(traces)          # instrumented internally
        dist = monte_carlo(build, spec, replicates=500, jobs=4)
    obs.write_chrome_trace(session, "profile.json")

Worker processes (``ProcessPoolBackend``) run their own session and
ship drained spans/metrics back with each result chunk; the backend
absorbs them into the active parent session, tagged by worker pid, so
parallel runs report merged metrics equal to serial totals.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.export import (
    chrome_trace_events,
    jsonl_records,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.session import Session, SpanRecord
from repro.obs.validate import validate_chrome_trace, validate_chrome_trace_file

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Session",
    "SpanRecord",
    "Timer",
    "active",
    "add",
    "chrome_trace_events",
    "enabled",
    "gauge",
    "gauge_max",
    "jsonl_records",
    "observed",
    "session_scope",
    "span",
    "span_add",
    "start",
    "stop",
    "time_phase",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]

# The process-wide session, guarded by _LOCK against concurrent
# installation (two threads racing start()/stop() must agree on one
# winner).  Reads on the hot path stay lock-free: helpers load the
# global once and test for None, same as before the daemon existed.
_ACTIVE: Session | None = None
_LOCK = threading.Lock()

# Per-task override: a request handler (repro-serve) installs its own
# session via session_scope() so concurrent requests in one process get
# separate span trees instead of interleaving in the global session.
# ContextVar.get is C-speed, so the disabled path stays near-zero-cost:
# one contextvar load + one global load + None tests.
_TASK: ContextVar[Session | None] = ContextVar("repro_obs_task_session", default=None)


def _current() -> Session | None:
    """The session instrumentation should record into: the per-task
    session when one is installed, else the process-wide one."""
    s = _TASK.get()
    return s if s is not None else _ACTIVE


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, name: str, n: int | float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


def enabled() -> bool:
    """True while a session (task-local or process-wide) is collecting."""
    return _current() is not None


def active() -> Session | None:
    """The session instrumentation currently records into (task-local
    session first, then the process-wide one)."""
    return _current()


def start(label: str = "repro", session: Session | None = None) -> Session:
    """Install (and return) the process-wide active session.

    Re-entrant starts return the already-active session — nested tools
    can call :func:`start` defensively without stealing ownership.
    Installation is lock-guarded: two threads racing :func:`start` agree
    on a single winner instead of clobbering each other's session.
    """
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is None:
            _ACTIVE = session if session is not None else Session(label)
        return _ACTIVE


def stop() -> Session | None:
    """Deactivate and return the process-wide session (open spans
    force-closed).  Lock-guarded like :func:`start`."""
    global _ACTIVE
    with _LOCK:
        session, _ACTIVE = _ACTIVE, None
    if session is not None:
        session.close_open_spans()
    return session


@contextmanager
def observed(label: str = "repro"):
    """``with obs.observed() as session:`` — scoped enable/disable.

    When a per-task session is already installed (:func:`session_scope`)
    this yields it unchanged, so nested tools inside a request join that
    request's span tree instead of stealing the process-wide slot.
    """
    task = _TASK.get()
    if task is not None:
        yield task
        return
    global _ACTIVE
    with _LOCK:
        owned = _ACTIVE is None
        if owned:
            _ACTIVE = Session(label)
        session = _ACTIVE
    try:
        yield session
    finally:
        if owned:
            stop()


@contextmanager
def session_scope(label: str = "repro", session: Session | None = None):
    """Install a **per-task** session for the duration of the block.

    Unlike :func:`start`, this never touches the process-wide slot: the
    session rides a :class:`~contextvars.ContextVar`, so concurrent
    asyncio tasks (and the worker threads they spawn via
    ``asyncio.to_thread``, which copies the context) each record into
    their own span tree.  This is what keeps one daemon request's spans
    from interleaving with another's.  Nesting restores the previous
    task session on exit; open spans are force-closed.
    """
    s = session if session is not None else Session(label)
    token = _TASK.set(s)
    try:
        yield s
    finally:
        _TASK.reset(token)
        s.close_open_spans()


def span(name: str, **attrs):
    """Context manager for one nested span (no-op while disabled)."""
    s = _current()
    if s is None:
        return _NULL_SPAN
    return s.span(name, **attrs)


def add(name: str, n: int | float = 1) -> None:
    """Increment a session counter (no-op while disabled)."""
    s = _current()
    if s is not None:
        s.metrics.counter(name).inc(n)


def span_add(name: str, n: int | float = 1) -> None:
    """Increment a session counter AND attach it to the active span."""
    s = _current()
    if s is not None:
        s.metrics.counter(name).inc(n)
        current = s.current_span()
        if current is not None:
            current.add(name, n)


def gauge(name: str, value: float, mode: str = "last") -> None:
    """Set a gauge (no-op while disabled)."""
    s = _current()
    if s is not None:
        s.metrics.gauge(name, mode).set(value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge (no-op while disabled)."""
    s = _current()
    if s is not None:
        s.metrics.gauge(name, "max").set(value)


@contextmanager
def time_phase(name: str):
    """Observe a duration into the timer metric ``name`` (and nothing
    else — lighter than a span for repeated small operations)."""
    s = _current()
    if s is None:
        yield
        return
    import time as _time

    t0 = _time.perf_counter()
    try:
        yield
    finally:
        s.metrics.timer(name).observe(_time.perf_counter() - t0)
