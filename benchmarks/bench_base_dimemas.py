"""BASE1 — graph perturbation vs Dimemas-style replay vs ground truth.

The paper's §1.1 positioning, made quantitative.  Two prediction tasks
on the same traced run:

1. **base-network change** (Dimemas's home turf): predict the runtime
   on a machine with different latency/bandwidth.  The replay baseline
   re-times communication and should track ground truth; the graph-
   perturbation framework models *perturbations on top of the traced
   timings* and by design cannot model a *faster* base network at all.
2. **OS noise** (the paper's home turf): predict the runtime under
   per-node interference.  The graph framework samples measured noise
   onto the graph; deterministic replay "does not have similar
   capabilities for analyzing the operating system's interference".

Together the two rows reproduce the complementarity argument of §1.1.
"""

import time

from benchmarks._common import emit, table
from repro.apps import TokenRingParams, token_ring
from repro.baselines import ReplayParams, replay
from repro.core import PerturbationSpec, build_graph, propagate
from repro.mpisim import Machine, NetworkModel, run
from repro.noise import Constant, DistributionNoise, MachineSignature

P = 8
BASE_NET = NetworkModel(
    latency=1000.0, bandwidth=2.0, send_overhead=200.0, recv_overhead=200.0, eager_threshold=8192
)
FAST_NET = NetworkModel(
    latency=200.0, bandwidth=8.0, send_overhead=100.0, recv_overhead=100.0, eager_threshold=8192
)
NOISE_MEAN = 800.0


def test_base1_dimemas_comparison(benchmark):
    prog = token_ring(TokenRingParams(traversals=5, token_bytes=4096, compute_cycles=20_000.0))
    base = run(prog, machine=Machine(nprocs=P, network=BASE_NET), seed=0)
    build = build_graph(base.trace)

    rows = []
    t0 = time.perf_counter()

    # ---- Task 1: faster base network ---------------------------------------
    truth_fast = run(prog, machine=Machine(nprocs=P, network=FAST_NET), seed=0).makespan
    replay_fast = replay(
        base.trace,
        ReplayParams(
            latency=200.0,
            bandwidth=8.0,
            send_overhead=100.0,
            recv_overhead=100.0,
            eager_threshold=8192,
        ),
    ).makespan
    # The graph framework cannot shrink timings (§6: "we do not currently
    # explore ... a system with lower noise"); its best answer is the
    # unperturbed makespan.
    graph_fast = base.makespan
    rows.append(
        [
            "faster network",
            f"{truth_fast:,.0f}",
            f"{replay_fast:,.0f} ({replay_fast / truth_fast:.2f}x)",
            f"{graph_fast:,.0f} ({graph_fast / truth_fast:.2f}x)",
        ]
    )
    assert abs(replay_fast / truth_fast - 1.0) < 0.05  # replay tracks truth
    assert graph_fast > truth_fast  # graph model cannot speed up the base run

    # ---- Task 2: OS noise ----------------------------------------------------
    noisy_machine = Machine(
        nprocs=P, network=BASE_NET, noise=DistributionNoise(Constant(NOISE_MEAN))
    )
    truth_noise = run(prog, machine=noisy_machine, seed=0).makespan
    graph_noise = base.makespan + propagate(
        build, PerturbationSpec(MachineSignature(os_noise=Constant(NOISE_MEAN)), seed=0)
    ).max_delay
    replay_noise = replay(
        base.trace,
        ReplayParams(
            latency=1000.0,
            bandwidth=2.0,
            send_overhead=200.0,
            recv_overhead=200.0,
            eager_threshold=8192,
        ),
    ).makespan  # replay has no noise model: it predicts the quiet timing
    rows.append(
        [
            "OS noise",
            f"{truth_noise:,.0f}",
            f"{replay_noise:,.0f} ({replay_noise / truth_noise:.2f}x)",
            f"{graph_noise:,.0f} ({graph_noise / truth_noise:.2f}x)",
        ]
    )
    graph_err = abs(graph_noise / truth_noise - 1.0)
    replay_err = abs(replay_noise / truth_noise - 1.0)
    assert graph_err < replay_err  # the paper's framework wins on noise
    assert graph_err < 0.25

    emit(
        "base_dimemas",
        table(
            ["prediction task", "ground truth", "dimemas replay", "graph perturbation"],
            rows,
            widths=[16, 14, 24, 24],
        ),
        params={"nprocs": P, "noise_mean": NOISE_MEAN},
        timings={"tasks_s": time.perf_counter() - t0},
        metrics={
            "fast_net": {"truth": truth_fast, "replay": replay_fast, "graph": graph_fast},
            "os_noise": {"truth": truth_noise, "replay": replay_noise, "graph": graph_noise},
            "graph_noise_rel_err": graph_err,
            "replay_noise_rel_err": replay_err,
        },
    )

    benchmark(replay, base.trace, ReplayParams())
