"""Trace-level rules (MPG0xx): defects visible in one rank's raw
event stream, before any cross-rank matching.

These are the §4.1 preconditions the paper assumes silently: local
timestamps move forward, event records are dense and complete, and
nonblocking requests follow the post/complete protocol.  All checks
use only per-rank information — never cross-rank timestamp comparison,
which the methodology forbids (the one cross-rank rule, MPG007,
compares durations, not clock readings).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

from repro.lint.model import Finding, LintConfig, Severity
from repro.lint.registry import rule
from repro.trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintContext

__all__: list[str] = []  # rules register themselves; nothing to re-export


@rule(
    id="MPG001",
    code="overlapping-events",
    severity=Severity.ERROR,
    category="trace",
    summary="per-rank local timestamps must be monotone (no overlapping events)",
    rationale=(
        "The compute-phase gap between consecutive events becomes a local edge "
        "weight; an event starting before its predecessor ended yields a negative "
        "weight and a meaningless perturbed completion time (§4.1)."
    ),
)
def overlapping_events(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        prev_end = -math.inf
        prev_seq = None
        for ev in events:
            if ev.t_start < prev_end:
                yield overlapping_events.finding(
                    f"event #{ev.seq} ({ev.kind.name}) starts at {ev.t_start:g} before "
                    f"event #{prev_seq} ended at {prev_end:g}",
                    rank=rank,
                    seq=ev.seq,
                )
            if ev.t_end >= prev_end:
                prev_end, prev_seq = ev.t_end, ev.seq


@rule(
    id="MPG002",
    code="negative-timestamp",
    severity=Severity.ERROR,
    category="trace",
    summary="timestamps must be finite and consistent with the declared clock",
    rationale=(
        "Local clocks are arbitrarily offset (§4.1), so negative local time is "
        "legitimate when the trace header declares a negative clock_offset — but "
        "a negative timestamp under a nonnegative declared offset, or any "
        "non-finite timestamp, means the clock source misbehaved or the record "
        "was corrupted in transit."
    ),
)
def negative_timestamp(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        meta = ctx.metas[rank]
        offset_explains_negative = meta is not None and meta.clock_offset < 0
        for ev in events:
            if not math.isfinite(ev.t_start) or not math.isfinite(ev.t_end):
                yield negative_timestamp.finding(
                    f"event #{ev.seq} ({ev.kind.name}) has non-finite timestamps "
                    f"[{ev.t_start!r}, {ev.t_end!r}]",
                    rank=rank,
                    seq=ev.seq,
                )
            elif ev.t_start < 0 and not offset_explains_negative:
                if meta is not None:
                    why = f"the trace header declares clock_offset {meta.clock_offset:g}"
                else:
                    why = "no clock offset is declared"
                yield negative_timestamp.finding(
                    f"event #{ev.seq} ({ev.kind.name}) has negative timestamps "
                    f"[{ev.t_start:g}, {ev.t_end:g}] but {why}",
                    rank=rank,
                    seq=ev.seq,
                )


@rule(
    id="MPG003",
    code="truncated-trace",
    severity=Severity.ERROR,
    category="trace",
    summary="per-rank sequence numbers must be dense from 0",
    rationale=(
        "A gap or repeat in the sequence numbering means event records were lost, "
        "truncated, or duplicated; order-based matching then pairs the wrong "
        "sends and receives silently (§4.1)."
    ),
)
def truncated_trace(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        if not events:
            yield truncated_trace.finding(f"rank {rank} trace holds no events", rank=rank)
            continue
        for i, ev in enumerate(events):
            if ev.seq != i:
                yield truncated_trace.finding(
                    f"record {i} carries seq {ev.seq} (expected {i}); trace is "
                    f"truncated or reordered",
                    rank=rank,
                    seq=ev.seq,
                )


@rule(
    id="MPG004",
    code="missing-framing",
    severity=Severity.WARNING,
    category="trace",
    summary="each rank's trace should be framed by INIT and FINALIZE",
    rationale=(
        "The analyzer measures the run from INIT to FINALIZE; a trace missing "
        "either end describes an incomplete run, so makespan deltas are lower "
        "bounds at best (§4.3 assumes the program ran to completion)."
    ),
)
def missing_framing(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        if not events:
            continue
        if events[0].kind != EventKind.INIT:
            yield missing_framing.finding(
                f"first event is {events[0].kind.name}, not INIT", rank=rank, seq=events[0].seq
            )
        if events[-1].kind != EventKind.FINALIZE:
            yield missing_framing.finding(
                f"last event is {events[-1].kind.name}, not FINALIZE",
                rank=rank,
                seq=events[-1].seq,
            )


@rule(
    id="MPG005",
    code="wait-without-request",
    severity=Severity.ERROR,
    category="trace",
    summary="completion events must reference live request ids",
    rationale=(
        "WAIT-family events are matched to the nonblocking operation that opened "
        "the request (Fig. 3); completing an unknown or already-retired id breaks "
        "the wait-pair linkage and the nonblocking subgraph templates."
    ),
)
def wait_without_request(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        open_reqs: set[int] = set()
        seen_reqs: set[int] = set()
        for ev in events:
            if ev.kind in (EventKind.ISEND, EventKind.IRECV):
                if ev.req < 0:
                    yield wait_without_request.finding(
                        f"{ev.kind.name} event #{ev.seq} carries no request id",
                        rank=rank,
                        seq=ev.seq,
                    )
                elif ev.req in seen_reqs:
                    yield wait_without_request.finding(
                        f"{ev.kind.name} event #{ev.seq} reuses request id {ev.req}",
                        rank=rank,
                        seq=ev.seq,
                    )
                else:
                    seen_reqs.add(ev.req)
                    open_reqs.add(ev.req)
            elif ev.kind.is_completion:
                for rid in ev.completed:
                    if rid not in seen_reqs:
                        yield wait_without_request.finding(
                            f"{ev.kind.name} event #{ev.seq} completes unknown request {rid}",
                            rank=rank,
                            seq=ev.seq,
                        )
                    elif rid not in open_reqs:
                        yield wait_without_request.finding(
                            f"{ev.kind.name} event #{ev.seq} completes already-retired "
                            f"request {rid}",
                            rank=rank,
                            seq=ev.seq,
                        )
                    else:
                        open_reqs.discard(rid)
                stray = [rid for rid in ev.completed if rid not in ev.reqs]
                if stray:
                    yield wait_without_request.finding(
                        f"{ev.kind.name} event #{ev.seq} reports completed ids {stray} "
                        f"not among its requests {list(ev.reqs)}",
                        rank=rank,
                        seq=ev.seq,
                    )


@rule(
    id="MPG006",
    code="uncompleted-request",
    severity=Severity.WARNING,
    category="trace",
    summary="nonblocking requests should be completed before FINALIZE",
    rationale=(
        "An ISEND/IRECV whose request is never retired leaves its transfer "
        "unanchored: delays through it are dropped and correctness of arbitrary "
        "perturbations cannot be guaranteed (§4.3)."
    ),
)
def uncompleted_request(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    for rank, events in enumerate(ctx.per_rank):
        open_reqs: dict[int, int] = {}  # req id -> seq that opened it
        for ev in events:
            if ev.kind in (EventKind.ISEND, EventKind.IRECV):
                if ev.req >= 0 and ev.req not in open_reqs:
                    open_reqs[ev.req] = ev.seq
            elif ev.kind.is_completion:
                for rid in ev.completed:
                    open_reqs.pop(rid, None)
        for rid, seq in sorted(open_reqs.items(), key=lambda kv: kv[1]):
            yield uncompleted_request.finding(
                f"request {rid} opened by event #{seq} was never completed",
                rank=rank,
                seq=seq,
            )


@rule(
    id="MPG007",
    code="clock-skew-outlier",
    severity=Severity.WARNING,
    category="trace",
    summary="per-rank trace spans should agree to within the skew tolerance",
    rationale=(
        "Local clocks may be offset, but every rank spans the same physical run; "
        "a rank whose INIT→FINALIZE duration deviates far from the cross-rank "
        "median indicates severe clock drift or a mixed-up trace set, which "
        "distorts every local edge weight on that rank."
    ),
)
def clock_skew_outlier(ctx: LintContext, config: LintConfig) -> Iterator[Finding]:
    spans: list[tuple[int, float]] = []
    for rank, events in enumerate(ctx.per_rank):
        if events:
            spans.append((rank, events[-1].t_end - events[0].t_start))
    if len(spans) < 3:  # an outlier needs a quorum to be an outlier of
        return
    ordered = sorted(s for _, s in spans)
    mid = len(ordered) // 2
    median = (
        ordered[mid] if len(ordered) % 2 else 0.5 * (ordered[mid - 1] + ordered[mid])
    )
    if median <= 0:
        return
    for rank, span in spans:
        deviation = abs(span - median) / median
        if deviation > config.skew_tolerance:
            yield clock_skew_outlier.finding(
                f"trace span {span:g} cy deviates {deviation:.0%} from the cross-rank "
                f"median {median:g} cy (tolerance {config.skew_tolerance:.0%})",
                rank=rank,
            )
