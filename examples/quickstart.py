#!/usr/bin/env python
"""Quickstart: trace a parallel program, perturb its message-passing
graph, and read off the noise sensitivity.

This is the paper's whole workflow in ~40 lines:

1. run an MPI-like program on the simulated machine (the tracing step
   a real deployment does with the PMPI wrapper);
2. build the message-passing graph from the per-rank traces;
3. attach perturbation distributions (a machine signature) to the
   edges and propagate the deltas;
4. inspect how much longer each rank would have run, where the delay
   came from, and where it was absorbed.
"""

from repro.apps import TokenRingParams, token_ring
from repro.core import (
    PerturbationSpec,
    absorption_map,
    build_graph,
    check_correctness,
    critical_path,
    propagate,
    runtime_impact,
)
from repro.mpisim import run
from repro.noise import Exponential, MachineSignature

# 1. Trace a 16-rank token ring (10k-cycle work units, 4 KiB tokens).
result = run(token_ring(TokenRingParams(traversals=5)), nprocs=16, seed=1)
print(f"traced run: {result.nprocs} ranks, makespan {result.makespan:,.0f} cycles")

# 2. Build the message-passing graph (order-based matching, no clocks).
build = build_graph(result.trace)
print(f"graph: {build.graph}")

# 3. Perturb: exponential OS noise (mean 200 cy per local edge) and
#    exponential message-latency noise (mean 80 cy per message edge).
signature = MachineSignature(
    os_noise=Exponential(200.0),
    latency=Exponential(80.0),
    name="hypothetical noisy platform",
)
res = propagate(build, PerturbationSpec(signature, seed=7))

# 4. Analyze.
print()
print(runtime_impact(build, res).table())
report = check_correctness(build, res)
print(f"\ncorrectness: {report.summary()}")

cp = critical_path(build, res)
print(
    f"critical path of rank {cp.rank}: {cp.total_delay:,.0f} cycles, "
    f"dominated by {cp.dominant_class()}"
)
for kind, amount in sorted(cp.by_delta_kind.items(), key=lambda kv: -kv[1]):
    print(f"  {kind:>12}: {amount:,.0f} cy")

am = absorption_map(build, res)
print(
    f"\nabsorption: {am.overall_ratio():.1%} of message-receiving events "
    f"absorbed their incoming delay (tolerant regions, §4.2)"
)
