"""The diagnosis engine and the MPG2xx rule pack: report shape,
severity policy, threshold gating, and the JSON/text renderings."""

from __future__ import annotations

import pytest

from repro.core import build_graph
from repro.diagnose import (
    DiagnoseConfig,
    diagnose_build,
    diagnose_run,
    diagnosis_to_dict,
    render_diagnosis_text,
)
from repro.lint import LintConfig, Severity, all_rules
from repro.lint.report import render_sarif
from repro.testing import slow_rank_memory
from repro.trace.events import EventKind
from tests.lint.helpers import ev, memory_trace

SLOW_FACTOR = 25.0


def finding_ids(report):
    return [f.rule_id for f in report.findings]


class TestConfigValidation:
    def test_defaults_valid(self):
        DiagnoseConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"engine": "gpu"},
            {"mode": "bogus"},
            {"replicates": -1},
            {"z_threshold": 0.0},
            {"rel_excess": 0.5},
            {"bottleneck_rank_share": 0.0},
            {"bottleneck_rank_share": 1.5},
            {"serialization_margin": 0.0},
            {"bottleneck_primitive_share": 2.0},
            {"imbalance_ratio": 0.5},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            DiagnoseConfig(**kw)


class TestRulePack:
    def test_catalog_registered(self):
        rules = all_rules("diagnosis")
        assert [r.id for r in rules] == [
            "MPG200", "MPG201", "MPG202", "MPG210", "MPG211", "MPG212",
        ]
        assert all(r.category == "diagnosis" for r in rules)

    def test_summary_always_emitted(self, ring_trace):
        report = diagnose_run(ring_trace)
        assert "MPG200" in finding_ids(report)
        assert report.graph_checked
        assert report.rules_run == tuple(r.id for r in all_rules("diagnosis"))

    def test_clean_symmetric_run_has_no_warnings(self, ring_trace, stencil_trace):
        for trace in (ring_trace, stencil_trace):
            report = diagnose_run(trace)
            assert report.warnings == [], finding_ids(report)
            assert report.errors == []

    def test_slow_rank_fires_mpg210_naming_culprit(self, ring_trace):
        report = diagnose_run(slow_rank_memory(ring_trace, 2, SLOW_FACTOR))
        hits = [f for f in report.findings if f.rule_id == "MPG210"]
        assert hits and hits[0].rank == 2
        assert len(report.warnings) >= 1
        assert "rank 2" in hits[0].message

    def test_mpg201_fires_on_serialized_run(self):
        """One long chain + one short chain: the whole path sits on the
        long rank and the runner-up trails far behind."""
        trace = memory_trace(
            [ev(0, 0, EventKind.INIT, 0.0, 1.0), ev(0, 1, EventKind.FINALIZE, 99.0, 100.0)],
            [ev(1, 0, EventKind.INIT, 0.0, 1.0), ev(1, 1, EventKind.FINALIZE, 9.0, 10.0)],
        )
        report = diagnose_run(trace)
        assert "MPG201" in finding_ids(report)
        hit = next(f for f in report.findings if f.rule_id == "MPG201")
        assert hit.rank == 0 and hit.severity == Severity.WARNING

    def test_mpg201_spares_balanced_ties(self, ring_trace):
        """A symmetric app whose path merely *stays* on one rank must
        not be called serialized (the runner-up margin gate)."""
        report = diagnose_run(ring_trace)
        assert "MPG201" not in finding_ids(report)

    def test_disable_and_severity_override(self, ring_trace):
        config = DiagnoseConfig(
            lint=LintConfig(
                disabled=("MPG202",), severity_overrides={"MPG200": Severity.WARNING}
            )
        )
        report = diagnose_run(ring_trace, config)
        ids = finding_ids(report)
        assert "MPG202" not in ids
        summary = next(f for f in report.findings if f.rule_id == "MPG200")
        assert summary.severity == Severity.WARNING

    def test_replicate_metric_via_pipeline(self, ring_trace, const_signature):
        config = DiagnoseConfig(replicates=4, seed=7)
        report = diagnose_run(ring_trace, config, signature=const_signature)
        assert report.replicates == 4
        assert "replicate-delay" in report.anomalies.metrics

    def test_replicates_without_signature_rejected(self, ring_trace):
        with pytest.raises(ValueError, match="machine signature"):
            diagnose_run(ring_trace, DiagnoseConfig(replicates=2))


class TestReportArtifacts:
    def test_report_carries_structured_artifacts(self, ring_trace):
        build = build_graph(ring_trace)
        report = diagnose_build(build)
        assert report.critical_path is not None
        assert report.attribution is not None
        assert report.attribution.makespan == report.critical_path.total_cost
        assert len(report.anomalies.profiles) == build.graph.nprocs

    def test_json_document_schema(self, ring_trace):
        doc = diagnosis_to_dict(diagnose_run(ring_trace))
        assert doc["schema"] == "repro-diagnosis-report/1"
        diag = doc["diagnosis"]
        assert set(diag) == {"critical_path", "attribution", "anomalies", "replicates"}
        assert diag["critical_path"]["engine"] == "compiled"

    def test_text_rendering(self, ring_trace):
        report = diagnose_run(ring_trace)
        out = render_diagnosis_text(report, verbose=True)
        assert "critical path:" in out
        assert "top path edges:" in out
        assert "MPG200" in out

    def test_sarif_rendering_reuses_lint_reporter(self, ring_trace):
        import json

        doc = json.loads(render_sarif(diagnose_run(ring_trace)))
        ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert "MPG200" in ids

    def test_findings_sorted_severity_first(self, ring_trace):
        report = diagnose_run(slow_rank_memory(ring_trace, 1, SLOW_FACTOR))
        sevs = [int(f.severity) for f in report.findings]
        assert sevs == sorted(sevs, reverse=True)

    def test_engine_choice_does_not_change_findings(self, ring_trace):
        reports = [
            diagnose_run(ring_trace, DiagnoseConfig(engine=e))
            for e in ("compiled", "incore", "graph")
        ]
        ref = [(f.rule_id, f.rank, f.message) for f in reports[0].findings]
        for rep in reports[1:]:
            assert [(f.rule_id, f.rank, f.message) for f in rep.findings] == ref
