"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (figure,
experiment, or a DESIGN.md ablation) and records its rows/series under
``benchmarks/results/<name>.txt`` (human-readable, quoted by
EXPERIMENTS.md) plus ``benchmarks/results/<name>.json`` (machine-
readable: name, params, timings, metrics — consumed by CI artifact
uploads and regression tooling); the pytest-benchmark fixture times the
analyzer operation under study.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._util import atomic_write_text

RESULTS_DIR = Path(__file__).parent / "results"

RESULT_SCHEMA = "repro-bench-result/1"


def _jsonable(value):
    """Coerce numpy scalars/arrays and other odd types for json.dump."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


def emit(
    name: str,
    text: str,
    *,
    params: dict | None = None,
    timings: dict | None = None,
    metrics: dict | None = None,
) -> Path:
    """Write an experiment's rows to the results directory (and stdout).

    Alongside the text artifact, every call records a structured
    ``<name>.json`` with the benchmark's parameters, wall-clock timings
    (seconds unless the key says otherwise), and result metrics.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    atomic_write_text(path, text if text.endswith("\n") else text + "\n")
    record = {
        "schema": RESULT_SCHEMA,
        "name": name,
        "params": params or {},
        "timings": timings or {},
        "metrics": metrics or {},
    }
    atomic_write_text(
        RESULTS_DIR / f"{name}.json",
        json.dumps(record, indent=2, sort_keys=True, default=_jsonable) + "\n",
    )
    print(f"\n===== {name} =====\n{text}")
    return path


def bench_timings(benchmark) -> dict:
    """Wall-clock stats from a pytest-benchmark fixture, for ``emit``.

    Returns an empty dict when the fixture has not run yet or
    benchmarking is disabled (``--benchmark-disable``).
    """
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", meta)
    if stats is None:
        return {}
    try:
        return {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "max_s": stats.max,
            "rounds": stats.rounds,
        }
    except AttributeError:
        return {}


def table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Fixed-width text table."""
    widths = widths or [max(len(str(h)), 12) for h in headers]
    fmt = " ".join(f"{{:>{w}}}" for w in widths)
    lines = [fmt.format(*headers)]
    for row in rows:
        lines.append(fmt.format(*[_fmt(v) for v in row]))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        return f"{v:.3g}"
    return str(v)
