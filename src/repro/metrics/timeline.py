"""Time-resolved POP metrics: efficiency per time window.

Whole-run numbers hide *when* a run goes bad — a perfectly balanced
run with one serial phase averages out to "mostly fine".  Following
Haldar (arXiv:2512.01764), this module slices the run into equal time
windows and computes the POP metrics per window, so efficiency
collapses become visible as dips in a timeline.

Clock handling (§4.1): trace timestamps are local per rank and must
never be compared across ranks.  Each rank's activity is therefore
shifted to its own origin (``t - first_start_r``) before windowing —
window *w* covers the same relative slice of every rank's run.  This
is the standard approximation for unsynchronized traces; with the
drift-free simulated clocks of ``repro.mpisim`` it is exact up to the
ranks' start skew.

The math is interval clipping, fully vectorized: per rank, activity is
a sorted list of disjoint ``[start, start+len)`` intervals (compute
gaps for *useful*, event spans for *comm*).  With ``prefix[j]`` the
total length of intervals before ``j``, the cumulative occupancy at
time ``t`` is::

    U(t) = prefix[j] + clip(t - start[j], 0, len[j]),
    j = searchsorted(start, t, 'right') - 1

and a window's occupancy is ``U(b1) - U(b0)`` — evaluated with one
``searchsorted`` over all window boundaries at once.  Because the
per-window values telescope, the window sums reproduce the whole-run
totals (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.metrics.frames import Frame
from repro.metrics.pop import RankActivity, _resolve_frame, rank_activity

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.reader import TraceSource

__all__ = ["PopTimeline", "pop_timeline", "window_occupancy"]


def window_occupancy(starts: np.ndarray, lengths: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Occupancy of each ``[bounds[i], bounds[i+1])`` window by the sorted
    disjoint intervals ``[starts, starts+lengths)`` (see module doc)."""
    bounds = np.asarray(bounds, dtype=np.float64)
    if len(starts) == 0:
        return np.zeros(max(len(bounds) - 1, 0))
    prefix = np.concatenate(([0.0], np.cumsum(lengths)))
    j = np.searchsorted(starts, bounds, side="right") - 1
    jc = np.maximum(j, 0)
    u = prefix[jc] + np.clip(bounds - starts[jc], 0.0, lengths[jc])
    u[j < 0] = 0.0
    return np.diff(u)


def _rank_slices(rank: np.ndarray, nprocs: int) -> list[slice]:
    """Contiguous row range of each rank in a rank-major frame."""
    counts = np.bincount(rank, minlength=nprocs)
    ends = np.cumsum(counts)
    starts = ends - counts
    return [slice(int(s), int(e)) for s, e in zip(starts, ends)]


@dataclass(frozen=True)
class PopTimeline:
    """Per-window POP metrics over a run (see :func:`pop_timeline`).

    ``useful``/``comm`` are ``(nprocs, n_windows)`` occupancy matrices;
    the efficiency arrays have one entry per window.  ``boundaries``
    are in normalized time (0 = each rank's own start).
    """

    activity: RankActivity  # whole-run totals (same trace)
    boundaries: np.ndarray  # (n_windows + 1,)
    useful: np.ndarray  # (nprocs, n_windows)
    comm: np.ndarray  # (nprocs, n_windows)
    parallel_efficiency: np.ndarray  # (n_windows,)
    load_balance: np.ndarray
    comm_efficiency: np.ndarray

    @property
    def n_windows(self) -> int:
        return len(self.boundaries) - 1

    @property
    def nprocs(self) -> int:
        return self.activity.nprocs

    def window_dicts(self) -> list[dict[str, Any]]:
        """One JSON-ready dict per window (the report/JSONL payload)."""
        out = []
        for w in range(self.n_windows):
            out.append(
                {
                    "index": w,
                    "t_start": float(self.boundaries[w]),
                    "t_end": float(self.boundaries[w + 1]),
                    "parallel_efficiency": float(self.parallel_efficiency[w]),
                    "load_balance": float(self.load_balance[w]),
                    "comm_efficiency": float(self.comm_efficiency[w]),
                    "rank_useful": [float(x) for x in self.useful[:, w]],
                }
            )
        return out

    def worst_window(self) -> int:
        """Index of the window with the lowest parallel efficiency."""
        if self.n_windows == 0:
            raise ValueError("timeline has no windows")
        return int(np.argmin(self.parallel_efficiency))


def pop_timeline(
    trace: "TraceSource | Frame",
    windows: int = 16,
    *,
    nprocs: int | None = None,
) -> PopTimeline:
    """Slice the run into ``windows`` equal time windows and compute POP
    metrics per window (vectorized; no per-event Python loop)."""
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    frame, n = _resolve_frame(trace, nprocs)
    rank = frame["rank"]
    if len(rank) and np.any(np.diff(rank) < 0):
        frame = frame.sort_by("rank", "seq")
        rank = frame["rank"]
    act = rank_activity(frame, n)
    T = act.run_length
    bounds = np.linspace(0.0, T, windows + 1) if T > 0 else np.zeros(windows + 1)

    useful = np.zeros((n, windows))
    comm = np.zeros((n, windows))
    t_start, t_end = frame["t_start"], frame["t_end"]
    for r, sl in enumerate(_rank_slices(rank, n)):
        cs = t_start[sl] - act.first_start[r]
        ce = t_end[sl] - act.first_start[r]
        comm[r] = window_occupancy(cs, np.maximum(ce - cs, 0.0), bounds)
        if len(cs) > 1:
            gap_start = ce[:-1]
            gap_len = np.maximum(cs[1:] - ce[:-1], 0.0)
            if np.any(np.diff(gap_start) < 0):  # overlapping events: re-sort
                order = np.argsort(gap_start, kind="stable")
                gap_start, gap_len = gap_start[order], gap_len[order]
            useful[r] = window_occupancy(gap_start, gap_len, bounds)

    lengths = np.diff(bounds)
    mean_u = useful.mean(axis=0) if n else np.zeros(windows)
    max_u = useful.max(axis=0) if n else np.zeros(windows)
    with np.errstate(divide="ignore", invalid="ignore"):
        lb = np.where(max_u > 0, mean_u / np.where(max_u > 0, max_u, 1.0), 1.0)
        pos = lengths > 0
        pe = np.where(pos, mean_u / np.where(pos, lengths, 1.0), 0.0)
        comm_e = np.where(pos, max_u / np.where(pos, lengths, 1.0), 0.0)

    return PopTimeline(
        activity=act,
        boundaries=bounds,
        useful=useful,
        comm=comm,
        parallel_efficiency=pe,
        load_balance=lb,
        comm_efficiency=comm_e,
    )
