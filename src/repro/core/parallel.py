"""Parallel execution backends for independent graph traversals.

Every expensive analysis in this package — :func:`~repro.core.montecarlo.
monte_carlo` replicates, :func:`~repro.core.sweep.sweep_scales` /
:func:`~repro.core.sweep.sweep_signatures` points, and
:func:`~repro.core.influence.rank_influence` rows — is a set of
*independent* propagations over one shared :class:`~repro.core.builder.
BuildResult`.  The paper's §5–§6 methodology makes them embarrassingly
parallel: deterministic per-edge sampling means replicate ``i`` depends
only on ``(base_seed + i, signature, scale)``, never on any other
replicate's state.

This module turns that independence into wall-clock speedup without
giving up reproducibility:

* :class:`SerialBackend` — the in-process reference executor.
* :class:`ProcessPoolBackend` — fans work items out over a
  ``concurrent.futures.ProcessPoolExecutor``.  The shared payload (the
  built graph) is shipped to each worker **once** via the pool
  initializer, and items are submitted in chunks so per-task pickling
  overhead is amortized.  If process pools are unavailable on the
  platform (restricted environments, missing ``_multiprocessing``,
  sandboxed interpreters), it degrades to serial execution with a
  :class:`RuntimeWarning` instead of failing.

**Determinism guarantee:** a backend only changes *where* each item
runs, never *what* it computes.  Each work item carries its own explicit
seed, so parallel results are bit-for-bit identical to serial results
for the same ``base_seed`` — verified by tests and by
``benchmarks/bench_perf_parallel_mc.py``.

The ``jobs`` convention (mirrored by the ``--jobs`` CLI flag):

``jobs=0`` (default)
    Serial, in-process — no pool is ever created.
``jobs=1``
    Also serial: a one-worker pool would add pickling cost for nothing.
``jobs=None``
    Auto: one worker per ``os.cpu_count()`` core.
``jobs >= 2``
    A pool with exactly that many workers.
"""

from __future__ import annotations

import math
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.builder import BuildResult
from repro.core.perturb import PerturbationSpec
from repro.core.traversal import propagate
from repro.noise.signature import MachineSignature

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "chunked",
    "default_chunk_size",
    "map_replicate_batches",
    "map_replicates",
    "replicate_items",
    "resolve_backend",
]

# Exceptions that mean "this platform cannot run a process pool" (as
# opposed to a bug in the mapped function, which must propagate).
_POOL_UNAVAILABLE = (NotImplementedError, ImportError, OSError, PermissionError)


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

# Per-worker shared payload, installed once by the pool initializer so the
# (potentially large) BuildResult is pickled once per worker instead of
# once per chunk.
_WORKER_PAYLOAD: dict = {}


def _worker_init(payload, observe: bool = False) -> None:
    _WORKER_PAYLOAD["payload"] = payload
    # A fork-started worker inherits the parent's observability session
    # (including its already-recorded spans); always discard that copy,
    # then open a fresh worker session when the parent is observing.
    obs.stop()
    if observe:
        obs.start("repro-worker")


def _worker_run_chunk(args: tuple) -> tuple[list, dict | None]:
    """Run one chunk; ship results plus any observability state.

    The second element is the worker session's :meth:`~repro.obs.
    session.Session.drain` blob (spans + metric snapshot accumulated by
    this chunk), or ``None`` when observability is off — the parent
    absorbs it so ``--jobs N`` metrics merge to the serial totals.
    """
    fn, chunk = args
    payload = _WORKER_PAYLOAD.get("payload")
    results = [fn(payload, item) for item in chunk]
    session = obs.active()
    return results, (session.drain() if session is not None else None)


# ---------------------------------------------------------------------------
# Chunking
# ---------------------------------------------------------------------------


def chunked(items: Sequence, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of at most ``size``.

    Order is preserved (concatenating the chunks reproduces ``items``),
    which is what lets backends return results in submission order.
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


def default_chunk_size(n_items: int, jobs: int) -> int:
    """Aim for ~4 chunks per worker: large enough to amortize pickling,
    small enough that a straggler chunk cannot idle the rest of the pool
    for long.  Degenerates to one-item chunks when ``n_items < jobs``."""
    if n_items <= 0:
        return 1
    return max(1, math.ceil(n_items / (4 * max(1, jobs))))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Maps a pure function over independent work items.

    ``fn`` must be a module-level callable (picklable by reference) of
    the form ``fn(payload, item) -> result``; ``payload`` is shared
    state (typically the :class:`BuildResult`) shipped to workers once.
    Results are returned in item order regardless of execution order.
    """

    jobs: int = 0

    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process reference executor (``jobs=0``/``jobs=1``)."""

    jobs = 0

    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        return [fn(payload, item) for item in items]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Chunked fan-out over a ``ProcessPoolExecutor``.

    Parameters
    ----------
    jobs:
        Worker count (>= 2; use :func:`resolve_backend` for the
        ``0/1/None`` conveniences).
    chunk_size:
        Items per submitted task; defaults to
        :func:`default_chunk_size`.
    """

    def __init__(self, jobs: int, chunk_size: int | None = None):
        if jobs < 2:
            raise ValueError(f"ProcessPoolBackend needs jobs >= 2, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = jobs
        self.chunk_size = chunk_size

    def map(self, fn: Callable, items: Iterable, payload=None) -> list:
        items = list(items)
        if not items:
            return []
        size = self.chunk_size or default_chunk_size(len(items), self.jobs)
        chunks = chunked(items, size)
        workers = min(self.jobs, len(chunks))
        session = obs.active()
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(payload, session is not None),
            ) as pool:
                parts = list(pool.map(_worker_run_chunk, [(fn, c) for c in chunks]))
        except (BrokenProcessPool,) + _POOL_UNAVAILABLE as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialBackend().map(fn, items, payload)
        if session is not None:
            for _, blob in parts:
                session.absorb(blob)
        return [result for part, _ in parts for result in part]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessPoolBackend(jobs={self.jobs}, chunk_size={self.chunk_size})"


def resolve_backend(jobs: int | None = 0, chunk_size: int | None = None) -> ExecutionBackend:
    """Select a backend from the ``jobs`` convention (module docstring)."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 or None, got {jobs}")
    if jobs <= 1:
        return SerialBackend()
    return ProcessPoolBackend(jobs, chunk_size)


# ---------------------------------------------------------------------------
# Replicate mapping (the Monte-Carlo / influence work-item shape)
# ---------------------------------------------------------------------------


def replicate_items(spec: PerturbationSpec, replicates: int) -> list[tuple[int, PerturbationSpec]]:
    """The §5 replicate schedule: item ``i`` is ``(spec.seed + i, spec)``."""
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    return [(spec.seed + i, spec) for i in range(replicates)]


def _propagate_item(payload, item: tuple[int, PerturbationSpec]) -> list[float]:
    """Worker body: one replicate's propagation, identified by its seed."""
    build, mode = payload
    seed, spec = item
    with obs.span("replicate", seed=seed):
        obs.span_add("mc.replicates")
        res = propagate(
            build, PerturbationSpec(spec.signature, seed=seed, scale=spec.scale), mode
        )
    return res.final_delay


def map_replicates(
    build: BuildResult,
    items: Sequence[tuple[int, PerturbationSpec]],
    mode: str = "additive",
    jobs: int | None = 0,
    chunk_size: int | None = None,
) -> list[list[float]]:
    """Propagate every ``(seed, spec)`` item over ``build``, returning
    per-item ``final_delay`` rows in item order.

    The workhorse behind ``monte_carlo(..., jobs=)`` and
    ``rank_influence(..., jobs=)``; results are independent of the
    backend choice (see module docstring).
    """
    backend = resolve_backend(jobs, chunk_size)
    return backend.map(_propagate_item, items, payload=(build, mode))


# ---------------------------------------------------------------------------
# Compiled-plan replicate mapping (batched seeds, compact worker payload)
# ---------------------------------------------------------------------------


def _compiled_batch_item(payload, seed_batch: list[int]) -> np.ndarray:
    """Worker body: one contiguous seed batch through the compiled kernel."""
    plan, signature, scale, mode = payload
    spec = PerturbationSpec(signature, seed=seed_batch[0], scale=scale)
    with obs.span("replicate_batch", first_seed=seed_batch[0], n=len(seed_batch)):
        obs.span_add("mc.replicates", len(seed_batch))
        return plan.propagate_batch(spec, seeds=seed_batch, mode=mode).delays


def map_replicate_batches(
    plan,
    signature: MachineSignature,
    seeds: Sequence[int],
    scale: float = 1.0,
    mode: str = "additive",
    jobs: int | None = 0,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Replicate ``seeds`` through a :class:`~repro.core.compiled.
    CompiledPlan`, returning the ``(len(seeds), nprocs)`` delay matrix.

    The compiled counterpart of :func:`map_replicates`: workers receive
    the plan's compact structure-of-arrays payload (never the Python
    object graph) plus a *batch* of seeds per task, so each task is one
    vectorized kernel invocation and the result rows come back as
    ndarray blocks that assemble with a single ``vstack`` — no per-row
    Python lists.  Row order follows ``seeds``; results are bit-identical
    across backends (each row is keyed by its own seed).
    """
    seeds = list(seeds)
    payload = (plan, signature, scale, mode)
    backend = resolve_backend(jobs, chunk_size)
    if backend.jobs < 2:
        return _compiled_batch_item(payload, seeds)
    size = chunk_size or default_chunk_size(len(seeds), backend.jobs)
    # Each work item is a whole seed batch (chunk_size=1 below: the
    # batches themselves are already the amortization unit).
    pool = ProcessPoolBackend(backend.jobs, chunk_size=1)
    parts = pool.map(_compiled_batch_item, chunked(seeds, size), payload=payload)
    return parts[0] if len(parts) == 1 else np.vstack(parts)
