"""Tests for noise sweeps and sensitivity curves (§6)."""

import pytest

from repro.core import PerturbationSpec, fit_slope, sweep_scales, sweep_signatures
from repro.noise import Constant, MachineSignature


def const_sig(os=100.0, lat=0.0):
    return MachineSignature(os_noise=Constant(os), latency=Constant(lat), name=f"os{os}")


class TestSweepScales:
    def test_linear_response_to_constant_noise(self, ring_trace):
        spec = PerturbationSpec(const_sig(), seed=0)
        sweep = sweep_scales(ring_trace, spec, [0.0, 1.0, 2.0, 3.0])
        ys = sweep.max_delays()
        assert ys[0] == 0.0
        # Constant deltas scale linearly, so max delay is exactly linear.
        assert ys[2] == pytest.approx(2 * ys[1])
        assert ys[3] == pytest.approx(3 * ys[1])
        assert sweep.slope() == pytest.approx(ys[1])

    def test_streaming_engine_matches(self, ring_trace):
        spec = PerturbationSpec(const_sig(), seed=0)
        a = sweep_scales(ring_trace, spec, [0.5, 1.5], engine="incore")
        b = sweep_scales(ring_trace, spec, [0.5, 1.5], engine="streaming")
        for pa, pb in zip(a.points, b.points):
            assert pa.delays == tuple(pytest.approx(d) for d in pb.delays)

    def test_bad_engine_rejected(self, ring_trace):
        spec = PerturbationSpec(const_sig(), seed=0)
        with pytest.raises(ValueError, match="engine"):
            sweep_scales(ring_trace, spec, [1.0], engine="quantum")

    def test_tolerance_threshold(self, ring_trace):
        spec = PerturbationSpec(const_sig(), seed=0)
        sweep = sweep_scales(ring_trace, spec, [0.0, 1.0, 2.0, 4.0])
        budget = sweep.points[1].max_delay * 1.5
        assert sweep.tolerance_threshold(budget) == 2.0
        assert sweep.tolerance_threshold(float("inf")) is None

    def test_table_renders(self, ring_trace):
        spec = PerturbationSpec(const_sig(), seed=0)
        sweep = sweep_scales(ring_trace, spec, [0.0, 1.0])
        assert "scale=1" in sweep.table()


class TestSweepSignatures:
    def test_platform_ladder(self, ring_trace):
        sigs = [const_sig(os=m) for m in (0.0, 100.0, 200.0)]
        sweep = sweep_signatures(ring_trace, sigs, xs=[0.0, 100.0, 200.0], seed=0)
        ys = sweep.max_delays()
        assert ys[0] == 0.0
        assert ys[2] == pytest.approx(2 * ys[1])
        assert [p.label for p in sweep.points] == ["os0.0", "os100.0", "os200.0"]

    def test_default_xs_are_indices(self, ring_trace):
        sweep = sweep_signatures(ring_trace, [const_sig(), const_sig()], seed=0)
        assert list(sweep.xs()) == [0.0, 1.0]

    def test_xs_length_validated(self, ring_trace):
        with pytest.raises(ValueError):
            sweep_signatures(ring_trace, [const_sig()], xs=[1.0, 2.0])


class TestFitSlope:
    def test_exact_line(self):
        assert fit_slope([0, 1, 2], [5.0, 7.0, 9.0]) == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_slope([1.0], [2.0])

    def test_needs_varying_x(self):
        with pytest.raises(ValueError):
            fit_slope([2.0, 2.0], [1.0, 5.0])
