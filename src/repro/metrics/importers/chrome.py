"""Chrome trace-event JSON → :class:`~repro.trace.reader.MemoryTrace`.

The Chrome trace-event format (Perfetto / ``chrome://tracing``) is the
lingua franca of tracing tools; OTF2 and many profilers export to it.
This importer reads the two common span encodings:

* complete events (``"ph": "X"`` with ``ts``/``dur``), and
* begin/end pairs (``"ph": "B"`` / ``"ph": "E"``), matched per track
  with a stack;

skips metadata (``"M"``) and everything else, and maps each
``(pid, tid)`` track to one MPI rank (sorted track order; for traces
written by :func:`repro.obs.export.write_events_chrome_trace`, where
``tid`` *is* the rank, this is the identity).

Field recovery prefers exact values from ``args`` (``t_start``,
``t_end``, ``peer``, ``nbytes``, …) and falls back to ``ts``/``dur``
— so our own exports round-trip bit-for-bit, while foreign traces
still import with sensible defaults.  Event names are mapped to
:class:`~repro.trace.events.EventKind` by stripping an ``MPI_`` prefix
and matching case-insensitively; unknown names become ``default_kind``
(an opaque non-compute span — :data:`EventKind.WAIT` by default),
which is all the POP metrics need: time inside spans is non-useful,
gaps between them are useful.

Timestamps are used as-is (Chrome nominally uses µs; all POP metrics
are ratios of durations, so the unit cancels).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace

__all__ = ["import_chrome_trace"]

_INT_ARGS = (
    ("peer", -1),
    ("tag", -1),
    ("nbytes", 0),
    ("req", -1),
    ("root", -1),
    ("coll_seq", -1),
    ("recv_peer", -1),
    ("recv_tag", -1),
    ("recv_nbytes", 0),
)


def _kind_for(
    name: str, kind_map: Mapping[str, EventKind] | None, default_kind: EventKind
) -> EventKind:
    if kind_map and name in kind_map:
        return kind_map[name]
    key = name.strip().upper()
    if key.startswith("MPI_"):
        key = key[4:]
    try:
        return EventKind[key]
    except KeyError:
        return default_kind


def _load(source: str | Path | dict | list) -> tuple[list[dict], dict]:
    """(trace events, otherData) from a path, trace object, or bare list."""
    if isinstance(source, (str, Path)):
        with open(source) as fh:
            obj: Any = json.load(fh)
    else:
        obj = source
    if isinstance(obj, list):  # the bare "JSON Array" flavour
        return obj, {}
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("Chrome trace object has no 'traceEvents' list")
        other = obj.get("otherData")
        return events, other if isinstance(other, dict) else {}
    raise ValueError(f"unsupported Chrome trace payload: {type(obj).__name__}")


def _collect_spans(raw: list[dict]) -> dict[tuple[Any, Any], list[dict]]:
    """Per-track lists of ``{name, ts, dur, args}`` spans (X + B/E)."""
    spans: dict[tuple[Any, Any], list[dict]] = {}
    open_stacks: dict[tuple[Any, Any], list[dict]] = {}
    for ev in raw:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        track = (ev.get("pid", 0), ev.get("tid", 0))
        if ph == "X":
            spans.setdefault(track, []).append(
                {
                    "name": str(ev.get("name", "")),
                    "ts": float(ev.get("ts", 0.0)),
                    "dur": float(ev.get("dur", 0.0)),
                    "args": ev.get("args") or {},
                }
            )
        elif ph == "B":
            open_stacks.setdefault(track, []).append(ev)
        elif ph == "E":
            stack = open_stacks.get(track)
            if not stack:
                raise ValueError(f"unmatched 'E' event on track {track}")
            begin = stack.pop()
            ts = float(begin.get("ts", 0.0))
            args = dict(begin.get("args") or {})
            args.update(ev.get("args") or {})
            spans.setdefault(track, []).append(
                {
                    "name": str(begin.get("name", "")),
                    "ts": ts,
                    "dur": float(ev.get("ts", ts)) - ts,
                    "args": args,
                }
            )
        # metadata ("M"), counters, flow events, … are not spans: skip
    unclosed = {t: len(s) for t, s in open_stacks.items() if s}
    if unclosed:
        raise ValueError(f"unclosed 'B' events: {unclosed}")
    return spans


def import_chrome_trace(
    source: str | Path | dict | list,
    *,
    kind_map: Mapping[str, EventKind] | None = None,
    default_kind: EventKind = EventKind.WAIT,
    program: str | None = None,
) -> MemoryTrace:
    """Read a Chrome trace-event file (or parsed object) as a trace set.

    ``kind_map`` overrides the name → :class:`EventKind` mapping for
    specific raw span names; anything unmapped and unrecognized becomes
    ``default_kind``.  Returns a :class:`MemoryTrace` usable anywhere a
    ``TraceSource`` is.
    """
    raw, other = _load(source)
    spans = _collect_spans(raw)
    try:
        tracks = sorted(spans)
    except TypeError:  # mixed str/int pids or tids
        tracks = sorted(spans, key=lambda t: (str(t[0]), str(t[1])))

    nprocs_hint = other.get("nprocs")
    nprocs = max(len(tracks), int(nprocs_hint) if isinstance(nprocs_hint, int) else 0)
    if nprocs == 0:
        raise ValueError("Chrome trace contains no spans")

    per_rank: list[list[EventRecord]] = [[] for _ in range(nprocs)]
    for rank, track in enumerate(tracks):
        track_spans = sorted(spans[track], key=lambda s: (s["ts"], -s["dur"]))
        records = []
        for i, span in enumerate(track_spans):
            args = span["args"]
            t_start = float(args.get("t_start", span["ts"]))
            t_end = float(args.get("t_end", span["ts"] + max(span["dur"], 0.0)))
            fields: dict[str, Any] = {
                name: int(args.get(name, default)) for name, default in _INT_ARGS
            }
            records.append(
                EventRecord(
                    rank=rank,
                    seq=int(args.get("seq", i)),
                    kind=_kind_for(span["name"], kind_map, default_kind),
                    t_start=t_start,
                    t_end=t_end,
                    reqs=tuple(args.get("reqs", ())),
                    completed=tuple(args.get("completed", ())),
                    **fields,
                )
            )
        records.sort(key=lambda ev: ev.seq)
        per_rank[rank] = records

    if program is None:
        prog = other.get("program")
        if not isinstance(prog, str) or not prog:
            prog = Path(source).stem if isinstance(source, (str, Path)) else "chrome-import"
        program = prog
    return MemoryTrace(per_rank, program=program)
