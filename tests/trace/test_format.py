"""Codec tests: text and binary trace formats."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import format as fmt
from repro.trace.events import EventKind, EventRecord, TraceMeta


def full_event():
    return EventRecord(
        rank=3,
        seq=17,
        kind=EventKind.WAITSOME,
        t_start=123.456,
        t_end=789.012,
        peer=5,
        tag=42,
        nbytes=4096,
        req=-1,
        reqs=(1, 2, 3),
        completed=(2,),
        root=1,
        coll_seq=9,
        recv_peer=2,
        recv_tag=7,
        recv_nbytes=64,
    )


class TestTextCodec:
    def test_round_trip_full(self):
        e = full_event()
        assert fmt.decode_event_text(fmt.encode_event_text(e)) == e

    def test_header_round_trip(self):
        meta = TraceMeta(rank=1, nprocs=4, program="p", clock_offset=2.5, clock_drift=1e-6)
        buf = io.StringIO()
        fmt.write_header_text(buf, meta)
        buf.seek(0)
        assert fmt.read_header_text(buf) == meta

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            fmt.decode_event_text("[1,2,3]")

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            fmt.read_header_text(io.StringIO(""))
        with pytest.raises(ValueError):
            fmt.read_header_text(io.StringIO('{"not_meta": 1}\n'))


class TestBinaryCodec:
    def test_round_trip_full(self):
        e = full_event()
        buf = io.BytesIO(fmt.encode_event_binary(e))
        decoded = list(fmt.decode_events_binary(buf))
        assert decoded == [e]

    def test_round_trip_many(self):
        events = [
            EventRecord(rank=0, seq=i, kind=EventKind(i % 19), t_start=float(i), t_end=float(i + 1))
            for i in range(50)
        ]
        blob = b"".join(fmt.encode_event_binary(e) for e in events)
        assert list(fmt.decode_events_binary(io.BytesIO(blob))) == events

    def test_header_round_trip(self):
        meta = TraceMeta(rank=0, nprocs=2, program="abc")
        buf = io.BytesIO()
        fmt.write_header_binary(buf, meta)
        buf.seek(0)
        assert fmt.read_header_binary(buf) == meta

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            fmt.read_header_binary(io.BytesIO(b"NOTMAGIC" + b"\0" * 10))

    def test_truncated_header_rejected(self):
        buf = io.BytesIO()
        fmt.write_header_binary(buf, TraceMeta(rank=0, nprocs=1))
        data = buf.getvalue()[:-4]
        with pytest.raises(ValueError, match="truncated"):
            fmt.read_header_binary(io.BytesIO(data))

    def test_truncated_record_rejected(self):
        blob = fmt.encode_event_binary(full_event())
        with pytest.raises(ValueError, match="truncated"):
            list(fmt.decode_events_binary(io.BytesIO(blob[:-4])))

    def test_truncated_fixed_part_rejected(self):
        blob = fmt.encode_event_binary(
            EventRecord(rank=0, seq=0, kind=EventKind.SEND, t_start=0, t_end=1)
        )
        with pytest.raises(ValueError, match="truncated"):
            list(fmt.decode_events_binary(io.BytesIO(blob[:10])))


class TestWildcardFlags:
    """The MPGT0002 wildcard-flags byte and MPGT0001 compatibility."""

    def wildcard_event(self):
        return EventRecord(
            rank=0, seq=1, kind=EventKind.RECV, t_start=1.0, t_end=2.0,
            peer=3, tag=7, nbytes=64, src_any=True, tag_any=True,
        )

    def test_text_round_trip(self):
        e = self.wildcard_event()
        decoded = fmt.decode_event_text(fmt.encode_event_text(e))
        assert decoded == e
        assert decoded.src_any and decoded.tag_any

    def test_binary_round_trip(self):
        e = self.wildcard_event()
        buf = io.BytesIO(fmt.encode_event_binary(e))
        (decoded,) = fmt.decode_events_binary(buf)
        assert decoded == e

    def test_legacy_text_line_defaults_to_no_wildcards(self):
        # Pre-flags lines have 16 elements; they must still decode,
        # with both wildcard flags False.
        line = fmt.encode_event_text(self.wildcard_event())
        legacy = line[: line.rindex(",")] + "]"
        decoded = fmt.decode_event_text(legacy)
        assert not decoded.src_any and not decoded.tag_any
        assert decoded.peer == 3 and decoded.tag == 7

    def test_legacy_binary_record_decodes_without_flags(self):
        e = self.wildcard_event()
        v1_head = fmt._FIXED_V1.pack(
            int(e.kind), e.rank, e.seq, e.t_start, e.t_end, e.peer, e.tag,
            e.nbytes, e.req, e.root, e.coll_seq, e.recv_peer, e.recv_tag,
            e.recv_nbytes, 0, 0,
        )
        (decoded,) = fmt.decode_events_binary(io.BytesIO(v1_head), with_flags=False)
        assert not decoded.src_any and not decoded.tag_any
        assert decoded.peer == 3

    def test_versioned_header_detects_v1(self):
        meta = TraceMeta(rank=0, nprocs=2, program="abc")
        buf = io.BytesIO()
        fmt.write_header_binary(buf, meta)
        buf.seek(0)
        _, with_flags = fmt.read_header_binary_versioned(buf)
        assert with_flags

        blob = buf.getvalue()
        v1 = fmt.BINARY_MAGIC_V1 + blob[len(fmt.BINARY_MAGIC):]
        got, with_flags = fmt.read_header_binary_versioned(io.BytesIO(v1))
        assert got == meta and not with_flags


_events = st.builds(
    EventRecord,
    rank=st.integers(0, 1000),
    seq=st.integers(0, 10**6),
    kind=st.sampled_from(list(EventKind)),
    t_start=st.floats(min_value=0, max_value=1e15, allow_nan=False),
    t_end=st.just(1e15),
    peer=st.integers(-1, 1000),
    tag=st.integers(-1, 2**30),
    nbytes=st.integers(0, 2**40),
    req=st.integers(-1, 2**40),
    reqs=st.lists(st.integers(0, 2**40), max_size=6).map(tuple),
    completed=st.lists(st.integers(0, 2**40), max_size=6).map(tuple),
    root=st.integers(-1, 1000),
    coll_seq=st.integers(-1, 2**30),
    recv_peer=st.integers(-1, 1000),
    recv_tag=st.integers(-1, 2**30),
    recv_nbytes=st.integers(0, 2**40),
    src_any=st.booleans(),
    tag_any=st.booleans(),
)


@given(event=_events)
@settings(max_examples=150, deadline=None)
def test_codecs_round_trip_property(event):
    """Any representable event survives both codecs bit-exactly."""
    assert fmt.decode_event_text(fmt.encode_event_text(event)) == event
    buf = io.BytesIO(fmt.encode_event_binary(event))
    assert list(fmt.decode_events_binary(buf)) == [event]
