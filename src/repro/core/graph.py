"""The message-passing graph (§2).

Nodes are *subevents*: the START and END of each traced event ("an event
is split into two subevents ... which correspond to entry and exit from
the message passing operation", §4.2), plus virtual nodes introduced by
collective subgraph templates (the hub of Fig. 4).

Edges are *local* (connecting subevents in the same trace, weighted with
the observed interval) or *message* (connecting subevents in different
traces, weighted zero originally — "the effects of latency and bandwidth
are already embedded in the timings of the actual events", §6).  Every
edge carries a :class:`DeltaSpec` describing which perturbation deltas
the analyzer samples onto it.

Timestamps stored on nodes are **local to the owning rank** and are only
ever compared along local edges; message edges are used exclusively for
delay (delta) propagation, never for cross-rank time arithmetic (§4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.diagnostics import DiagnosticError
from repro.trace.events import EventKind

__all__ = [
    "Phase",
    "EdgeKind",
    "DeltaKind",
    "DeltaSpec",
    "NO_DELTA",
    "Node",
    "Edge",
    "MessagePassingGraph",
]


class Phase(enum.IntEnum):
    """Which end of an event a subevent node represents."""

    START = 0
    END = 1
    VIRTUAL = 2  # collective hubs, butterfly round nodes


class EdgeKind(enum.IntEnum):
    LOCAL = 0
    MESSAGE = 1


class DeltaKind(enum.IntEnum):
    """What perturbation the analyzer samples for an edge (§3, §5).

    NONE            no perturbation (pure precedence edge)
    OS              one δ_os sample for the owning rank
    LATENCY         one δ_λ sample for the edge's (src_rank, dst_rank) link
    TRANSFER        δ_λ + δ_t(nbytes) (data-bearing message edge)
    TRANSFER_OS     δ_λ + δ_t(nbytes) + δ_os on the receiving rank — the
                    data-path bundle of Fig. 2 / Eq. (1) second line
    ROUNDTRIP       λ→ + δ_t(nbytes) + δ_os(dst) + λ← — rendezvous
                    completion against a posted nonblocking receive
    COLL_FANIN      l_δ of Fig. 4: ``rounds`` × (δ_os + δ_λ [+ δ_t])
    """

    NONE = 0
    OS = 1
    LATENCY = 2
    TRANSFER = 3
    TRANSFER_OS = 4
    ROUNDTRIP = 5
    COLL_FANIN = 6


@dataclass(frozen=True, slots=True)
class DeltaSpec:
    """Sampling instructions attached to an edge.

    ``rank`` is the rank whose OS-noise distribution applies;
    ``src``/``dst`` the link for latency terms; ``nbytes`` the payload
    for δ_t; ``rounds`` the sample count for COLL_FANIN; ``uid`` the
    edge's stable identity used for deterministic sampling (see
    :mod:`repro.core.perturb`).
    """

    kind: DeltaKind = DeltaKind.NONE
    rank: int = -1
    src: int = -1
    dst: int = -1
    nbytes: int = 0
    rounds: int = 0
    uid: tuple = ()


NO_DELTA = DeltaSpec()


@dataclass(frozen=True, slots=True)
class Node:
    """One subevent.

    ``t_local`` is the subevent's timestamp on its own rank's clock
    (NaN for virtual nodes, which have no observed time).
    """

    node_id: int
    rank: int
    seq: int
    phase: Phase
    kind: EventKind
    t_local: float
    label: str = ""

    @property
    def is_virtual(self) -> bool:
        return self.phase == Phase.VIRTUAL


@dataclass(frozen=True, slots=True)
class Edge:
    """A precedence constraint with base weight and perturbation spec.

    ``weight`` is the *observed* elapsed time along the edge (local
    edges) or 0.0 (message edges, §6); the traversal adds the sampled
    delta from ``delta`` on top.
    """

    src: int
    dst: int
    kind: EdgeKind
    weight: float
    delta: DeltaSpec = NO_DELTA
    label: str = ""


class MessagePassingGraph:
    """In-core message-passing graph with per-rank chains.

    The streaming analyzer (:mod:`repro.core.traversal`) never builds
    this object; it exists for exact verification, visualization
    (Fig. 5), critical-path and absorption analysis on traces that fit
    in memory.
    """

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.nodes: list[Node] = []
        self.edges: list[Edge] = []
        self._out: list[list[int]] = []  # node -> edge indices
        self._in: list[list[int]] = []
        self._by_key: dict[tuple[int, int, Phase], int] = {}
        self.final_nodes: list[int | None] = [None] * nprocs  # FINALIZE ENDs

    # -- construction ---------------------------------------------------------
    def add_node(
        self,
        rank: int,
        seq: int,
        phase: Phase,
        kind: EventKind,
        t_local: float,
        label: str = "",
    ) -> int:
        """Add a subevent node; returns its id.  Real (non-virtual)
        subevents are unique per (rank, seq, phase)."""
        node_id = len(self.nodes)
        if phase != Phase.VIRTUAL:
            key = (rank, seq, phase)
            if key in self._by_key:
                raise DiagnosticError(
                    f"duplicate subevent {key}", code="duplicate-subevent", rank=rank, seq=seq
                )
            self._by_key[key] = node_id
        self.nodes.append(Node(node_id, rank, seq, phase, kind, t_local, label))
        self._out.append([])
        self._in.append([])
        return node_id

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: EdgeKind,
        weight: float,
        delta: DeltaSpec = NO_DELTA,
        label: str = "",
    ) -> int:
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise DiagnosticError(
                f"edge endpoints out of range: {src}->{dst}", code="invalid-edge"
            )
        if src == dst:
            raise DiagnosticError(f"self-loop on node {src}", code="invalid-edge")
        if kind == EdgeKind.LOCAL and weight < 0:
            raise DiagnosticError(
                f"negative local edge weight {weight} ({src}->{dst})",
                code="invalid-edge-weight",
                rank=self.nodes[src].rank,
                seq=self.nodes[src].seq,
            )
        edge_id = len(self.edges)
        self.edges.append(Edge(src, dst, kind, weight, delta, label))
        self._out[src].append(edge_id)
        self._in[dst].append(edge_id)
        return edge_id

    # -- lookup -----------------------------------------------------------------
    def node_of(self, rank: int, seq: int, phase: Phase) -> int:
        """Node id of a real subevent."""
        return self._by_key[(rank, seq, phase)]

    def has_node(self, rank: int, seq: int, phase: Phase) -> bool:
        return (rank, seq, phase) in self._by_key

    def out_edges(self, node_id: int) -> Iterator[Edge]:
        return (self.edges[i] for i in self._out[node_id])

    def in_edges(self, node_id: int) -> Iterator[Edge]:
        return (self.edges[i] for i in self._in[node_id])

    def out_degree(self, node_id: int) -> int:
        return len(self._out[node_id])

    def in_degree(self, node_id: int) -> int:
        return len(self._in[node_id])

    def in_edge_ids(self, node_id: int) -> list[int]:
        """Indices into ``edges`` of this node's incoming edges."""
        return self._in[node_id]

    def out_edge_ids(self, node_id: int) -> list[int]:
        """Indices into ``edges`` of this node's outgoing edges."""
        return self._out[node_id]

    # -- traversal support --------------------------------------------------------
    def topological_order(self) -> list[int]:
        """Kahn topological order; raises on cycles.

        A cycle means the builder produced an inconsistent graph — §4.3
        guarantees a trace of a completed run yields a DAG.
        """
        indeg = [len(ins) for ins in self._in]
        stack = [n for n, d in enumerate(indeg) if d == 0]
        order: list[int] = []
        while stack:
            n = stack.pop()
            order.append(n)
            for ei in self._out[n]:
                dst = self.edges[ei].dst
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    stack.append(dst)
        if len(order) != len(self.nodes):
            raise DiagnosticError(
                f"message-passing graph has a cycle "
                f"({len(self.nodes) - len(order)} nodes unreached)",
                code="graph-cycle",
            )
        return order

    def final_node_of(self, rank: int) -> int | None:
        """The rank's FINALIZE END node, falling back to the last real
        subevent of its chain; ``None`` when the rank has no nodes.

        Every consumer that needs "where does rank r end" (final-delay
        extraction, critical-path backtracking, the compiled plan's
        final-node table, diagnosis sinks) goes through this accessor so
        the fallback semantics cannot drift between engines.
        """
        nid = self.final_nodes[rank]
        if nid is not None:
            return nid
        chain = self.rank_chain(rank)
        return chain[-1] if chain else None

    def rank_chain(self, rank: int) -> list[int]:
        """Real subevent nodes of one rank in trace order."""
        chain = [n.node_id for n in self.nodes if n.rank == rank and not n.is_virtual]
        chain.sort(key=lambda nid: (self.nodes[nid].seq, self.nodes[nid].phase))
        return chain

    def local_edges(self) -> Iterator[Edge]:
        return (e for e in self.edges if e.kind == EdgeKind.LOCAL)

    def message_edges(self) -> Iterator[Edge]:
        return (e for e in self.edges if e.kind == EdgeKind.MESSAGE)

    # -- interop ---------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.MultiDiGraph` for ad-hoc analysis.

        Node attributes: ``rank``, ``seq``, ``phase``, ``kind``,
        ``t_local``, ``label``, ``virtual``.  Edge attributes: ``kind``,
        ``weight``, ``delta_kind``, ``label``.  A MultiDiGraph is used
        because templates may legitimately emit parallel edges between
        the same subevent pair.
        """
        import networkx as nx

        g = nx.MultiDiGraph(nprocs=self.nprocs)
        for n in self.nodes:
            g.add_node(
                n.node_id,
                rank=n.rank,
                seq=n.seq,
                phase=Phase(n.phase).name,
                kind=n.kind.name,
                t_local=n.t_local,
                label=n.label,
                virtual=n.is_virtual,
            )
        for e in self.edges:
            g.add_edge(
                e.src,
                e.dst,
                kind=EdgeKind(e.kind).name,
                weight=e.weight,
                delta_kind=DeltaKind(e.delta.kind).name,
                label=e.label,
            )
        return g

    # -- stats ---------------------------------------------------------------------
    def stats(self) -> dict:
        n_local = sum(1 for e in self.edges if e.kind == EdgeKind.LOCAL)
        n_virtual = sum(1 for n in self.nodes if n.is_virtual)
        return {
            "nprocs": self.nprocs,
            "nodes": len(self.nodes),
            "virtual_nodes": n_virtual,
            "edges": len(self.edges),
            "local_edges": n_local,
            "message_edges": len(self.edges) - n_local,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"<MessagePassingGraph p={s['nprocs']} nodes={s['nodes']} "
            f"edges={s['edges']} (local={s['local_edges']}, msg={s['message_edges']})>"
        )
