"""VAL1 — graph-model prediction vs simulator ground truth.

Our reproduction can do what the paper could not cheaply do: check the
perturbation model against a machine.  Protocol per app: trace on a
quiet machine, predict the noisy runtime increase via graph
perturbation, re-run on the actually-noisy machine, compare.  The
deliverable is the *shape*: same direction, same ordering of apps, and
agreement within small factors (the delta model samples one δ_os per
local edge while the machine perturbs every processing segment).
"""

import time

from benchmarks._common import emit, table
from repro.apps import (
    AllreduceIterParams,
    StencilParams,
    TokenRingParams,
    allreduce_iter,
    stencil1d,
    token_ring,
)
from repro.core import (
    BuildConfig,
    PerturbationSpec,
    build_graph,
    propagate,
    propagate_absolute,
)
from repro.mpisim import Machine, NetworkModel, run
from repro.noise import Constant, DistributionNoise, MachineSignature

NET = NetworkModel(latency=800.0, bandwidth=4.0, send_overhead=100.0, recv_overhead=100.0)
NOISE_MEAN = 500.0
P = 16

APPS = [
    ("token_ring", token_ring(TokenRingParams(traversals=4))),
    ("stencil1d", stencil1d(StencilParams(iterations=5))),
    ("allreduce_iter", allreduce_iter(AllreduceIterParams(iterations=6))),
]


def test_val_ground_truth(benchmark):
    quiet = Machine(nprocs=P, network=NET, name="quiet")
    noisy = Machine(
        nprocs=P, network=NET, noise=DistributionNoise(Constant(NOISE_MEAN)), name="noisy"
    )
    sig = MachineSignature(os_noise=Constant(NOISE_MEAN))
    spec = PerturbationSpec(sig, seed=0)

    rows = []
    ratios = {}
    last_build = None
    t0 = time.perf_counter()
    for name, prog in APPS:
        base = run(prog, machine=quiet, seed=0)
        actual = run(prog, machine=noisy, seed=0).makespan - base.makespan
        build = build_graph(base.trace)
        last_build = build
        predicted = propagate(build, spec).max_delay
        # Absolute-mode recomputation (global simulator clocks + known
        # causal transfer times): the slack-absorbing upper validation.
        abs_build = build_graph(base.trace, BuildConfig(absolute_weights=True))
        estimate = lambda src, dst, nbytes: (
            NET.send_overhead + NET.latency + nbytes / NET.bandwidth + NET.recv_overhead
        )
        predicted_abs = propagate_absolute(
            abs_build, spec, transfer_estimate=estimate
        ).max_delay
        ratio = predicted / actual
        ratio_abs = predicted_abs / actual
        ratios[name] = (predicted, actual, ratio)
        rows.append(
            [
                name,
                f"{predicted:,.0f}",
                f"{predicted_abs:,.0f}",
                f"{actual:,.0f}",
                f"{ratio:.2f}",
                f"{ratio_abs:.2f}",
            ]
        )
        assert 0.2 < ratio < 6.0, f"{name}: off by more than small factors"
        # Slack absorption only removes over-prediction; it must not push
        # the estimate above the delta model's.
        assert predicted_abs <= predicted + 1e-6

    emit(
        "val_ground_truth",
        table(
            ["app", "delta pred", "absolute pred", "actual", "delta/act", "abs/act"],
            rows,
            widths=[16, 12, 14, 12, 10, 8],
        ),
        params={"nprocs": P, "noise_mean": NOISE_MEAN, "apps": [a for a, _ in APPS]},
        timings={"protocol_s": time.perf_counter() - t0},
        metrics={
            name: {"predicted": p_, "actual": a_, "ratio": r_}
            for name, (p_, a_, r_) in ratios.items()
        },
    )

    # Ordering preserved: model ranks sensitivity like the machine does.
    pred_order = sorted(ratios, key=lambda k: ratios[k][0])
    act_order = sorted(ratios, key=lambda k: ratios[k][1])
    assert pred_order == act_order

    benchmark(propagate, last_build, spec)
