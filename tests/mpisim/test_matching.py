"""Tests for the runtime message matcher."""


from repro.mpisim.api import ANY_SOURCE, ANY_TAG
from repro.mpisim.matching import Matcher, PostedRecv, SimMessage


def msg(src=0, dst=1, tag=0, nbytes=8, sync=False, ready=0.0):
    return SimMessage(src=src, dst=dst, tag=tag, nbytes=nbytes, sync=sync, ready=ready)


def recv(dst=1, source=0, tag=0, ready=0.0):
    return PostedRecv(dst=dst, source=source, tag=tag, ready=ready, on_complete=lambda *_: None)


class TestPairing:
    def test_message_then_recv(self):
        m = Matcher(2)
        assert m.add_message(msg()) is None
        pair = m.add_recv(recv())
        assert pair is not None
        assert pair[0].src == 0

    def test_recv_then_message(self):
        m = Matcher(2)
        assert m.add_recv(recv()) is None
        pair = m.add_message(msg())
        assert pair is not None

    def test_fifo_per_channel(self):
        m = Matcher(2)
        m.add_message(msg(nbytes=1))
        m.add_message(msg(nbytes=2))
        first = m.add_recv(recv())
        second = m.add_recv(recv())
        assert first[0].nbytes == 1
        assert second[0].nbytes == 2

    def test_posted_recvs_fifo(self):
        m = Matcher(2)
        m.add_recv(recv(ready=1.0))
        m.add_recv(recv(ready=2.0))
        pair = m.add_message(msg())
        assert pair[1].ready == 1.0

    def test_tag_selectivity(self):
        m = Matcher(2)
        m.add_message(msg(tag=7))
        assert m.add_recv(recv(tag=8)) is None
        pair = m.add_recv(recv(tag=7))
        assert pair is not None

    def test_source_selectivity(self):
        m = Matcher(3)
        m.add_message(msg(src=2, dst=1))
        assert m.add_recv(recv(dst=1, source=0)) is None
        assert m.add_recv(recv(dst=1, source=2)) is not None


class TestWildcards:
    def test_any_source(self):
        m = Matcher(3)
        m.add_message(msg(src=2, dst=1, tag=5))
        pair = m.add_recv(recv(dst=1, source=ANY_SOURCE, tag=5))
        assert pair is not None
        assert pair[0].src == 2

    def test_any_tag(self):
        m = Matcher(2)
        m.add_message(msg(tag=99))
        assert m.add_recv(recv(tag=ANY_TAG)) is not None

    def test_wildcard_takes_earliest_message(self):
        m = Matcher(3)
        m.add_message(msg(src=2, dst=1, tag=1))
        m.add_message(msg(src=0, dst=1, tag=2))
        pair = m.add_recv(recv(dst=1, source=ANY_SOURCE, tag=ANY_TAG))
        assert pair[0].src == 2  # first registered

    def test_wrong_destination_never_matches(self):
        m = Matcher(3)
        m.add_message(msg(src=0, dst=2))
        assert m.add_recv(recv(dst=1, source=ANY_SOURCE, tag=ANY_TAG)) is None


class TestDiagnostics:
    def test_counts(self):
        m = Matcher(2)
        assert (m.pending_count(), m.posted_count()) == (0, 0)
        m.add_message(msg())
        m.add_recv(recv(tag=42))
        assert (m.pending_count(), m.posted_count()) == (1, 1)

    def test_describe_stuck(self):
        m = Matcher(2)
        m.add_message(msg(tag=3))
        m.add_recv(recv(source=ANY_SOURCE, tag=9))
        lines = m.describe_stuck()
        assert any("tag=3" in line for line in lines)
        assert any("from ANY tag=9" in line for line in lines)
