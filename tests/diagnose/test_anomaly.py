"""Anomalous-rank detection: the acceptance fixture (an injected slow
rank must be ranked #1), peer-group discipline, and the robust score."""

from __future__ import annotations

import pytest

from repro.core import build_graph
from repro.diagnose import detect_anomalies, profile_ranks
from repro.diagnose.anomaly import robust_z
from repro.testing import slow_rank_memory, stretch_events
from tests.lint.helpers import ev, memory_trace
from repro.trace.events import EventKind

SLOW_FACTOR = 25.0


class TestRobustZ:
    def test_at_median_is_zero(self):
        assert robust_z(10.0, [8.0, 10.0, 12.0]) == 0.0

    def test_outlier_scores_high(self):
        assert robust_z(100.0, [9.0, 10.0, 11.0]) > 3.5

    def test_identical_peers_capped_not_inf(self):
        z = robust_z(1000.0, [10.0, 10.0, 10.0])
        assert z == 1000.0  # floored scale keeps it finite, cap bounds it

    def test_symmetric_below(self):
        assert robust_z(-100.0, [9.0, 10.0, 11.0]) < -3.5


class TestProfiles:
    def test_signatures_group_identical_roles(self, ring_trace):
        profiles = profile_ranks(build_graph(ring_trace))
        sigs = {p.signature for p in profiles}
        assert len(sigs) == 1  # every ring rank runs the same op multiset

    def test_compute_is_gap_sum(self):
        build = build_graph(
            memory_trace(
                [
                    ev(0, 0, EventKind.INIT, 0.0, 1.0),
                    ev(0, 1, EventKind.SEND, 5.0, 6.0, peer=1, tag=0, nbytes=8),
                    ev(0, 2, EventKind.FINALIZE, 10.0, 11.0),
                ],
                [
                    ev(1, 0, EventKind.INIT, 0.0, 1.0),
                    ev(1, 1, EventKind.RECV, 2.0, 8.0, peer=0, tag=0, nbytes=8),
                    ev(1, 2, EventKind.FINALIZE, 9.0, 10.0),
                ],
            )
        )
        p = profile_ranks(build)[0]
        assert p.compute == pytest.approx((5.0 - 1.0) + (10.0 - 6.0))
        assert p.comm == pytest.approx(1.0)  # only the SEND interval counts

    def test_metric_accessor(self, ring_trace):
        p = profile_ranks(build_graph(ring_trace))[0]
        assert p.metric("compute") == p.compute
        assert p.metric("comm") == p.comm
        with pytest.raises(KeyError):
            p.metric("walltime")


class TestSlowRankDetection:
    def test_clean_run_has_no_anomalies(self, ring_trace):
        report = detect_anomalies(build_graph(ring_trace))
        assert report.anomalies == ()

    @pytest.mark.parametrize("culprit", [0, 1, 3])
    def test_slow_rank_ranked_first(self, ring_trace, culprit):
        """The acceptance fixture: stretch one rank's compute gaps and
        the detector must rank exactly that rank #1."""
        slowed = slow_rank_memory(ring_trace, culprit, SLOW_FACTOR)
        report = detect_anomalies(build_graph(slowed))
        top = report.top()
        assert top is not None, "slow rank not detected"
        assert top.rank == culprit
        assert top.metric == "compute"
        assert top.excess > 1.2
        assert {a.rank for a in report.for_rank(culprit)} == {culprit}

    def test_slowing_preserves_signature(self, ring_trace):
        """The injection must not change the role grouping."""
        before = profile_ranks(build_graph(ring_trace))
        after = profile_ranks(build_graph(slow_rank_memory(ring_trace, 1, SLOW_FACTOR)))
        assert [p.signature for p in before] == [p.signature for p in after]

    def test_min_peers_floor_suppresses_small_groups(self, ring_trace):
        slowed = slow_rank_memory(ring_trace, 1, SLOW_FACTOR)
        report = detect_anomalies(build_graph(slowed), min_peers=5)
        assert report.anomalies == ()  # 4 ranks < 5 peers + 1

    def test_thresholds_gate_detection(self, ring_trace):
        slowed = slow_rank_memory(ring_trace, 1, 1.05)  # barely slower
        report = detect_anomalies(build_graph(slowed))
        assert all(a.rank != 1 or a.z >= 3.5 for a in report.anomalies)

    def test_replicate_delay_metric(self, ring_trace):
        build = build_graph(ring_trace)
        delays = [0.0] * build.graph.nprocs
        delays[2] = 1e6
        report = detect_anomalies(build, replicate_delays=delays)
        assert "replicate-delay" in report.metrics
        hits = [a for a in report.anomalies if a.metric == "replicate-delay"]
        assert [a.rank for a in hits] == [2]

    def test_replicate_delay_length_checked(self, ring_trace):
        with pytest.raises(ValueError, match="replicate_delays length"):
            detect_anomalies(build_graph(ring_trace), replicate_delays=[1.0])

    def test_report_as_dict(self, ring_trace):
        report = detect_anomalies(build_graph(slow_rank_memory(ring_trace, 1, SLOW_FACTOR)))
        d = report.as_dict()
        assert d["anomalies"][0]["rank"] == 1
        assert len(d["profiles"]) == 4


class TestStretchEvents:
    def test_durations_preserved_gaps_scaled(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 1, EventKind.SEND, 3.0, 4.0, peer=0, tag=0, nbytes=8),
            ev(0, 2, EventKind.FINALIZE, 6.0, 7.0),
        ]
        out = stretch_events(events, 10.0)
        assert [e.duration for e in out] == [e.duration for e in events]
        assert out[1].t_start - out[0].t_end == pytest.approx(20.0)  # 2.0 * 10
        assert out[2].t_start - out[1].t_end == pytest.approx(20.0)

    def test_factor_one_is_identity(self, ring_trace):
        events = list(ring_trace.events_of(0))
        out = stretch_events(events, 1.0)
        assert [(e.t_start, e.t_end) for e in out] == [
            (e.t_start, e.t_end) for e in events
        ]

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="factor must be >= 0"):
            stretch_events([], -1.0)
