"""Requests and statuses for nonblocking simulated operations.

A :class:`Request` is the handle returned by Isend/Irecv; the "status
flags that uniquely identify the send/receive transaction" of Fig. 3 are
its ``req_id``, which the tracing layer writes into both the ISEND/IRECV
event and the completing WAIT* event so the graph builder can match the
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "Request"]


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive (or send) — like MPI_Status."""

    source: int
    tag: int
    nbytes: int


class Request:
    """Handle for an in-flight nonblocking operation."""

    __slots__ = (
        "req_id",
        "rank",
        "is_send",
        "peer",
        "tag",
        "nbytes",
        "_done_at",
        "_status",
        "_waiters",
    )

    def __init__(self, req_id: int, rank: int, is_send: bool, peer: int, tag: int, nbytes: int):
        self.req_id = req_id
        self.rank = rank
        self.is_send = is_send
        self.peer = peer  # may stay ANY_SOURCE until a receive matches
        self.tag = tag
        self.nbytes = nbytes
        self._done_at: float | None = None
        self._status: Status | None = None
        self._waiters: list = []

    # -- engine-side mutation -------------------------------------------------
    def _complete(self, when: float, status: Status) -> None:
        if self._done_at is not None:
            raise RuntimeError(f"request {self.req_id} completed twice")
        self._done_at = when
        self._status = status
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(when)

    def add_waiter(self, cb) -> None:
        """Engine hook: call ``cb(done_at)`` once the request completes.

        Must only be used on incomplete requests (the engine checks
        ``done`` first and handles the completed case directly).
        """
        if self._done_at is not None:
            raise RuntimeError("add_waiter on a completed request; check done first")
        self._waiters.append(cb)

    # -- inspection -----------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done_at is not None

    @property
    def done_at(self) -> float:
        """Virtual time at which the operation completed."""
        if self._done_at is None:
            raise RuntimeError(f"request {self.req_id} is not complete")
        return self._done_at

    def done_by(self, when: float) -> bool:
        """Whether the op had completed at or before virtual time ``when``."""
        return self._done_at is not None and self._done_at <= when

    @property
    def status(self) -> Status:
        if self._status is None:
            raise RuntimeError(f"request {self.req_id} is not complete")
        return self._status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "isend" if self.is_send else "irecv"
        state = f"done@{self._done_at}" if self.done else "pending"
        return f"<Request {self.req_id} {kind} r{self.rank}<->{self.peer} tag={self.tag} {state}>"
