#!/usr/bin/env python
"""The paper's §6.1 experiment: n-body token ring noise sensitivity.

"For p processors, it is possible to divide up the n particles into
sets of n/p on each processor ... this is repeated p times until each
processor receives the token containing its local particle set."

We trace a 128-rank ring with 10 traversals and sweep per-message noise
from 0 to 700 cycles in 100-cycle increments.  The paper's expectation:
runtime increase ≈ traversals × noise × p per processor.
"""

import argparse

from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, fit_slope, propagate
from repro.mpisim import run
from repro.noise import Constant, MachineSignature


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nprocs", type=int, default=128)
    ap.add_argument("--traversals", type=int, default=10)
    ap.add_argument("--max-noise", type=int, default=700)
    ap.add_argument("--step", type=int, default=100)
    args = ap.parse_args()

    p, traversals = args.nprocs, args.traversals
    print(f"tracing token ring: p={p}, {traversals} traversals ...")
    result = run(
        token_ring(TokenRingParams(traversals=traversals, token_bytes=1024)),
        nprocs=p,
        seed=0,
    )
    build = build_graph(result.trace)
    print(f"  {build.graph}")

    print(f"\n{'noise (cy/msg)':>14} {'runtime increase':>18} {'T*p*noise':>12} {'ratio':>7}")
    means, deltas = [], []
    for mean in range(0, args.max_noise + 1, args.step):
        sig = MachineSignature(latency=Constant(float(mean)))
        res = propagate(build, PerturbationSpec(sig, seed=0))
        model = traversals * p * mean
        ratio = res.max_delay / model if model else float("nan")
        print(f"{mean:>14} {res.max_delay:>18,.0f} {model:>12,} {ratio:>7.3f}")
        means.append(float(mean))
        deltas.append(res.max_delay)

    slope = fit_slope(means, deltas)
    print(
        f"\nfitted slope: {slope:,.1f} cycles of runtime per cycle of per-message noise"
        f"\npaper's model (traversals x p): {traversals * p:,}"
    )
    print(
        "matches §6.1: 'if the ring was traversed 10 times with each processor\n"
        "injecting 100 cycles of noise for each message, the runtime of each\n"
        "processor increased by approximately 10*100*128 cycles.'"
    )


if __name__ == "__main__":
    main()
