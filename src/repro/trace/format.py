"""On-disk codecs for trace files.

Two interchangeable formats:

* **text** (JSONL) — a JSON header line (the :class:`TraceMeta`) followed
  by one JSON array per event.  Grep-able, diff-able, the debugging
  format.
* **binary** — a fixed magic + JSON header block followed by packed
  little-endian records.  Compact and fast; the format the windowed
  streaming reader is designed around (§4: the PMPI wrapper dumps its
  memory-resident buffer to a file when full — our writer does the same
  buffer-flush dance for either codec).

Both codecs stream: encoding/decoding is record-at-a-time so traces
larger than memory never need to be resident (§1 difference (3) from
Dimemas).
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Iterator, TextIO

from repro.trace.events import EventKind, EventRecord, TraceMeta

__all__ = [
    "TEXT_SUFFIX",
    "BINARY_SUFFIX",
    "BINARY_MAGIC",
    "BINARY_MAGIC_V1",
    "encode_event_text",
    "decode_event_text",
    "encode_event_binary",
    "decode_events_binary",
    "write_header_text",
    "read_header_text",
    "write_header_binary",
    "read_header_binary",
    "read_header_binary_versioned",
]

TEXT_SUFFIX = ".trace.jsonl"
BINARY_SUFFIX = ".trace.bin"
BINARY_MAGIC = b"MPGT0002"
#: Previous on-disk version, still readable (no wildcard-flags byte).
BINARY_MAGIC_V1 = b"MPGT0001"

# Fixed part of a binary record:
#   kind, rank, seq, t_start, t_end, peer, tag, nbytes, req, root,
#   coll_seq, recv_peer, recv_tag, recv_nbytes, n_reqs, n_completed,
#   flags (bit 0 = src_any, bit 1 = tag_any)
_FIXED = struct.Struct("<BiqddiiqqiqiiqHHB")
# V1 records lack the trailing flags byte.
_FIXED_V1 = struct.Struct("<BiqddiiqqiqiiqHH")


# ---------------------------------------------------------------------------
# Text codec
# ---------------------------------------------------------------------------

def write_header_text(fh: TextIO, meta: TraceMeta) -> None:
    fh.write(json.dumps({"__meta__": meta.to_dict()}) + "\n")


def read_header_text(fh: TextIO) -> TraceMeta:
    line = fh.readline()
    if not line:
        raise ValueError("empty trace file (missing header)")
    data = json.loads(line)
    if "__meta__" not in data:
        raise ValueError("trace file does not start with a meta header")
    return TraceMeta.from_dict(data["__meta__"])


def encode_event_text(ev: EventRecord) -> str:
    """One event as a compact JSON array line."""
    return json.dumps(
        [
            int(ev.kind),
            ev.rank,
            ev.seq,
            ev.t_start,
            ev.t_end,
            ev.peer,
            ev.tag,
            ev.nbytes,
            ev.req,
            list(ev.reqs),
            list(ev.completed),
            ev.root,
            ev.coll_seq,
            ev.recv_peer,
            ev.recv_tag,
            ev.recv_nbytes,
            (1 if ev.src_any else 0) | (2 if ev.tag_any else 0),
        ],
        separators=(",", ":"),
    )


def decode_event_text(line: str) -> EventRecord:
    v = json.loads(line)
    # 16-element lines are the pre-wildcard-flags format; still accepted.
    if not isinstance(v, list) or len(v) not in (16, 17):
        raise ValueError(f"malformed trace line: {line[:80]!r}")
    flags = v[16] if len(v) == 17 else 0
    return EventRecord(
        kind=EventKind(v[0]),
        rank=v[1],
        seq=v[2],
        t_start=v[3],
        t_end=v[4],
        peer=v[5],
        tag=v[6],
        nbytes=v[7],
        req=v[8],
        reqs=tuple(v[9]),
        completed=tuple(v[10]),
        root=v[11],
        coll_seq=v[12],
        recv_peer=v[13],
        recv_tag=v[14],
        recv_nbytes=v[15],
        src_any=bool(flags & 1),
        tag_any=bool(flags & 2),
    )


# ---------------------------------------------------------------------------
# Binary codec
# ---------------------------------------------------------------------------

def write_header_binary(fh: BinaryIO, meta: TraceMeta) -> None:
    blob = json.dumps(meta.to_dict()).encode("utf-8")
    fh.write(BINARY_MAGIC)
    fh.write(struct.pack("<I", len(blob)))
    fh.write(blob)


def read_header_binary(fh: BinaryIO) -> TraceMeta:
    meta, _ = read_header_binary_versioned(fh)
    return meta


def read_header_binary_versioned(fh: BinaryIO) -> tuple[TraceMeta, bool]:
    """Header plus whether records carry the wildcard-flags byte
    (``False`` for legacy ``MPGT0001`` files)."""
    magic = fh.read(len(BINARY_MAGIC))
    if magic not in (BINARY_MAGIC, BINARY_MAGIC_V1):
        raise ValueError(f"bad magic {magic!r}; not a {BINARY_MAGIC.decode()} trace")
    (length,) = struct.unpack("<I", fh.read(4))
    blob = fh.read(length)
    if len(blob) != length:
        raise ValueError("truncated binary trace header")
    return TraceMeta.from_dict(json.loads(blob.decode("utf-8"))), magic == BINARY_MAGIC


def encode_event_binary(ev: EventRecord) -> bytes:
    head = _FIXED.pack(
        int(ev.kind),
        ev.rank,
        ev.seq,
        ev.t_start,
        ev.t_end,
        ev.peer,
        ev.tag,
        ev.nbytes,
        ev.req,
        ev.root,
        ev.coll_seq,
        ev.recv_peer,
        ev.recv_tag,
        ev.recv_nbytes,
        len(ev.reqs),
        len(ev.completed),
        (1 if ev.src_any else 0) | (2 if ev.tag_any else 0),
    )
    tail = struct.pack(f"<{len(ev.reqs)}q{len(ev.completed)}q", *ev.reqs, *ev.completed)
    return head + tail


def decode_events_binary(fh: BinaryIO, with_flags: bool = True) -> Iterator[EventRecord]:
    """Stream records from ``fh`` positioned just past the header.

    ``with_flags=False`` reads the legacy ``MPGT0001`` record layout
    (no wildcard-flags byte); see :func:`read_header_binary_versioned`.
    """
    rec = _FIXED if with_flags else _FIXED_V1
    while True:
        head = fh.read(rec.size)
        if not head:
            return
        if len(head) < rec.size:
            raise ValueError("truncated binary trace record")
        fields = rec.unpack(head)
        flags = fields[16] if with_flags else 0
        (
            kind,
            rank,
            seq,
            t_start,
            t_end,
            peer,
            tag,
            nbytes,
            req,
            root,
            coll_seq,
            recv_peer,
            recv_tag,
            recv_nbytes,
            n_reqs,
            n_completed,
        ) = fields[:16]
        total = n_reqs + n_completed
        ids: tuple = ()
        if total:
            blob = fh.read(8 * total)
            if len(blob) < 8 * total:
                raise ValueError("truncated request-id block")
            ids = struct.unpack(f"<{total}q", blob)
        yield EventRecord(
            kind=EventKind(kind),
            rank=rank,
            seq=seq,
            t_start=t_start,
            t_end=t_end,
            peer=peer,
            tag=tag,
            nbytes=nbytes,
            req=req,
            reqs=ids[:n_reqs],
            completed=ids[n_reqs:],
            root=root,
            coll_seq=coll_seq,
            recv_peer=recv_peer,
            recv_tag=recv_tag,
            recv_nbytes=recv_nbytes,
            src_any=bool(flags & 1),
            tag_any=bool(flags & 2),
        )
