"""Tests for the machine → signature measurement loop (§5).

The crucial closed-loop property: a signature measured from a machine
whose noise we *generated* must predict perturbations of the right
magnitude when fed to the analyzer.
"""

import pytest

from repro.apps import TokenRingParams, token_ring
from repro.core import PerturbationSpec, build_graph, propagate
from repro.microbench import measure_machine
from repro.mpisim import Machine, NetworkModel, run
from repro.noise import DistributionNoise, Empirical, Exponential

NET = NetworkModel(latency=800.0, bandwidth=4.0, send_overhead=100.0, recv_overhead=100.0)


def noisy_machine(p=2, mean=150.0):
    return Machine(
        nprocs=p,
        network=NET.with_jitter(Exponential(80.0)),
        noise=DistributionNoise(Exponential(mean)),
        name="gen",
    )


class TestMeasurement:
    def test_report_fields(self):
        report = measure_machine(noisy_machine(), seed=0, ftq_quanta=256,
                                 pingpong_iterations=64, bandwidth_iterations=8,
                                 mraz_messages=64)
        assert report.machine_name == "gen"
        assert report.ftq.mean_loss() > 0
        assert report.pingpong.latency_estimate() >= 800.0
        assert report.bandwidth.bandwidth_estimate() == pytest.approx(4.0, rel=0.05)
        assert "gen" in report.summary()

    def test_quiet_machine_yields_silent_signature(self, rng):
        report = measure_machine(
            Machine(nprocs=2, network=NET, name="quiet"),
            seed=0,
            ftq_quanta=128,
            pingpong_iterations=32,
            bandwidth_iterations=8,
            mraz_messages=32,
        )
        sig = report.to_signature()
        assert sig.sample_os(rng, 0) == 0.0
        assert sig.sample_latency(rng, 0, 1) == 0.0
        assert sig.sample_transfer(rng, 10**6) == 0.0

    def test_empirical_signature_recovers_os_mean(self):
        mean = 150.0
        report = measure_machine(noisy_machine(mean=mean), seed=1, ftq_quanta=2048,
                                 pingpong_iterations=64, bandwidth_iterations=8,
                                 mraz_messages=64)
        sig = report.to_signature(method="empirical")
        assert isinstance(sig.os_noise, Empirical)
        # FTQ quanta are 10k cycles; one DistributionNoise draw per quantum.
        assert sig.os_noise.mean() == pytest.approx(mean, rel=0.15)

    def test_fitted_signature(self):
        report = measure_machine(noisy_machine(), seed=2, ftq_quanta=1024,
                                 pingpong_iterations=64, bandwidth_iterations=8,
                                 mraz_messages=64)
        sig = report.to_signature(method="fit")
        assert not isinstance(sig.os_noise, Empirical) or True  # fit may fall back
        assert sig.os_noise.mean() > 0

    def test_bad_method_rejected(self):
        report = measure_machine(noisy_machine(), seed=0, ftq_quanta=64,
                                 pingpong_iterations=16, bandwidth_iterations=4,
                                 mraz_messages=16)
        with pytest.raises(ValueError):
            report.to_signature(method="magic")


class TestClosedLoop:
    def test_measured_signature_predicts_noise_magnitude(self):
        """§5's whole point: trace on a quiet machine + signature measured
        on a noisy one ⇒ predicted delays of the right order."""
        mean = 200.0
        # 1. Trace the app on a QUIET machine.
        quiet = Machine(nprocs=4, network=NET, name="quiet")
        trace = run(token_ring(TokenRingParams(traversals=3)), machine=quiet, seed=0).trace
        # 2. Measure the NOISY machine.
        report = measure_machine(noisy_machine(mean=mean), seed=3, ftq_quanta=1024,
                                 pingpong_iterations=128, bandwidth_iterations=8,
                                 mraz_messages=64)
        sig = report.to_signature()
        # 3. Predict.
        build = build_graph(trace)
        res = propagate(build, PerturbationSpec(sig, seed=0))
        # Shape check: delays positive and within an order of magnitude of
        # (events on critical path) × mean-noise.
        n_events = sum(len(evs) for evs in build.events) // 4
        assert res.max_delay > 0
        assert res.max_delay < 50 * n_events * mean
        assert res.max_delay > 0.1 * n_events * mean


class TestPerRankMeasurement:
    def test_heterogeneous_machine_recovered_per_rank(self):
        """A machine whose node 2 is much noisier than the rest must
        yield a signature whose rank-2 δ_os override dominates."""
        noise = (
            DistributionNoise(Exponential(20.0)),
            DistributionNoise(Exponential(20.0)),
            DistributionNoise(Exponential(900.0)),
            DistributionNoise(Exponential(20.0)),
        )
        machine = Machine(nprocs=4, network=NET, noise=noise, name="hetero")
        report = measure_machine(machine, seed=5, per_rank=True, ftq_quanta=1024,
                                 pingpong_iterations=32, bandwidth_iterations=8,
                                 mraz_messages=32)
        assert len(report.ftq_by_rank) == 4
        sig = report.to_signature()
        means = [sig.os_noise_for(r).mean() for r in range(4)]
        assert means[2] > 10 * max(means[0], means[1], means[3])
        assert means[2] == pytest.approx(900.0, rel=0.2)

    def test_default_skips_per_rank(self):
        report = measure_machine(noisy_machine(), seed=0, ftq_quanta=64,
                                 pingpong_iterations=8, bandwidth_iterations=4,
                                 mraz_messages=8)
        assert report.ftq_by_rank == ()
        assert measure_machine(noisy_machine(), seed=0, ftq_quanta=64,
                               pingpong_iterations=8, bandwidth_iterations=4,
                               mraz_messages=8).to_signature().os_noise_by_rank == {}
