"""Deterministic test harnesses for the analyzer itself.

Currently: :mod:`repro.testing.faults`, the fault-injection harness
that proves the execution backends' retry / timeout / restart / resume
paths (used by ``tests/`` and the CI chaos job).
"""

from repro.testing.faults import (
    FAULT_EXIT_CODE,
    FailItem,
    FaultyFn,
    KillWorker,
    SlowItem,
    corrupt_checkpoints,
    item_key,
)

__all__ = [
    "FAULT_EXIT_CODE",
    "FailItem",
    "FaultyFn",
    "KillWorker",
    "SlowItem",
    "corrupt_checkpoints",
    "item_key",
]
