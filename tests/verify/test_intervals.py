"""Support intervals: every distribution family's enclosure actually
encloses its draws, quantile flags land on the right side, and the
combinators (shift / scale / clamp / hull) preserve soundness."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.noise import Constant, Empirical, Exponential, Normal, Uniform
from repro.noise.distributions import (
    BernoulliSpike,
    Gamma,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    TruncatedNormal,
    Weibull,
)
from repro.verify import DEFAULT_QUANTILE, Interval, support_interval

N_DRAWS = 2_000

BOUNDED = [
    Constant(42.0),
    Uniform(3.0, 9.0),
    Empirical([1.0, 5.0, 2.5]),
    BernoulliSpike(p=0.3, spike=Uniform(10.0, 20.0)),
    Mixture(components=(Uniform(0.0, 1.0), Constant(5.0)), weights=(0.5, 0.5)),
    Shifted(Uniform(0.0, 1.0), 100.0),
    Scaled(Uniform(1.0, 2.0), 3.0),
]

UNBOUNDED = [
    Exponential(80.0),
    Normal(50.0, 10.0),
    TruncatedNormal(50.0, 10.0, lower=0.0),
    LogNormal(2.0, 0.5),
    Gamma(2.0, 30.0),
    Weibull(1.5, 40.0),
    Pareto(3.0, 10.0),
]


def _dist_id(dist):
    return type(dist).__name__


@pytest.mark.parametrize("dist", BOUNDED + UNBOUNDED, ids=_dist_id)
def test_draws_fall_inside_interval(dist, rng):
    iv = support_interval(dist)
    draws = dist.sample_n(rng, N_DRAWS)
    assert iv.lo <= draws.min() + 1e-12
    assert draws.max() <= iv.hi + 1e-12


@pytest.mark.parametrize("dist", BOUNDED, ids=_dist_id)
def test_bounded_families_are_absolute(dist):
    iv = support_interval(dist)
    assert not iv.quantile_bounded


@pytest.mark.parametrize("dist", UNBOUNDED, ids=_dist_id)
def test_unbounded_families_are_flagged(dist):
    iv = support_interval(dist)
    assert iv.hi_q  # the upper tail is always the cut side
    assert math.isfinite(iv.hi)


def test_exponential_quantile_formula():
    iv = support_interval(Exponential(100.0), q=0.99)
    assert iv.lo == 0.0 and not iv.lo_q
    assert iv.hi == pytest.approx(-100.0 * math.log(0.01))


def test_normal_is_two_sided():
    iv = support_interval(Normal(0.0, 1.0), q=0.999)
    assert iv.lo_q and iv.hi_q
    assert iv.lo == pytest.approx(-iv.hi)


def test_degenerate_normal_is_exact():
    iv = support_interval(Normal(7.0, 0.0))
    assert iv == Interval(7.0, 7.0)


def test_tighter_quantile_narrows_the_cut():
    loose = support_interval(Exponential(50.0), q=0.9)
    tight = support_interval(Exponential(50.0), q=0.999)
    assert loose.hi < tight.hi


def test_bad_quantile_rejected():
    with pytest.raises(ValueError):
        support_interval(Exponential(1.0), q=0.2)
    with pytest.raises(ValueError):
        support_interval(Exponential(1.0), q=1.0)


def test_unknown_family_refused():
    class Mystery:
        def sample(self, rng):
            return 0.0

    with pytest.raises(TypeError, match="no support interval"):
        support_interval(Mystery())


class TestCombinators:
    def test_shift(self):
        iv = Interval(1.0, 2.0, hi_q=True).shift(10.0)
        assert iv == Interval(11.0, 12.0, hi_q=True)

    def test_positive_scale_keeps_flags(self):
        iv = Interval(1.0, 2.0, hi_q=True).scale(3.0)
        assert iv == Interval(3.0, 6.0, hi_q=True)

    def test_negative_scale_flips_interval_and_flags(self):
        iv = Interval(1.0, 2.0, hi_q=True).scale(-1.0)
        assert iv == Interval(-2.0, -1.0, lo_q=True, hi_q=False)

    def test_clamp_min_makes_clamped_side_exact(self):
        iv = Interval(-5.0, 3.0, lo_q=True, hi_q=True).clamp_min(0.0)
        assert iv == Interval(0.0, 3.0, lo_q=False, hi_q=True)

    def test_clamp_min_can_collapse(self):
        assert Interval(-5.0, -1.0).clamp_min(0.0) == Interval(0.0, 0.0)

    def test_hull_takes_widest_flags(self):
        a = Interval(0.0, 5.0, hi_q=True)
        b = Interval(-1.0, 3.0)
        h = a.hull(b)
        assert h == Interval(-1.0, 5.0, lo_q=False, hi_q=True)

    def test_hull_ties_need_both_flags(self):
        a = Interval(0.0, 5.0, hi_q=True)
        b = Interval(0.0, 5.0, hi_q=False)
        assert not a.hull(b).hi_q
        assert a.hull(a).hi_q

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)


def test_default_quantile_is_near_one():
    assert 0.5 <= DEFAULT_QUANTILE < 1.0
    assert DEFAULT_QUANTILE > 1.0 - 1e-9
