"""Fixed-time-quantum (FTQ) microbenchmark (§5.1; Sottile & Minnich 2004).

FTQ divides time into fixed quanta and counts how much work fits in
each; work lost to the OS shows up as per-quantum deficits, and periodic
daemons appear as periodic dips.  Our simulated version probes a
:class:`repro.noise.models.NoiseModel` directly — the microbenchmark
does *not* know the generator's parameters, exactly like running FTQ on
real hardware — and returns the per-quantum interference samples from
which an empirical δ_os distribution is built.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng
from repro.noise.empirical import Empirical
from repro.noise.models import NoiseModel

__all__ = ["FTQResult", "run_ftq"]


@dataclass(frozen=True)
class FTQResult:
    """Per-quantum measurements of one FTQ run.

    ``loss[i]`` is the interference (cycles lost) in quantum ``i``;
    ``work[i] = quantum - loss[i]`` (floored at 0) is the classic FTQ
    work-per-quantum series.
    """

    quantum: float
    loss: tuple
    start_time: float

    @property
    def work(self) -> np.ndarray:
        return np.maximum(self.quantum - np.asarray(self.loss), 0.0)

    def noise_distribution(self, interpolate: bool = False) -> Empirical:
        """Empirical per-quantum δ_os distribution (§5's second method)."""
        return Empirical(self.loss, interpolate=interpolate)

    def mean_loss(self) -> float:
        return float(np.mean(self.loss))

    def periodicity_estimate(self) -> float | None:
        """Dominant interference period in quanta via the FFT of the
        loss series (None when no clear periodic component exists).

        This is how FTQ exposes periodic daemons: a spike in the
        spectrum of work-per-quantum.
        """
        loss = np.asarray(self.loss)
        if loss.size < 8 or np.allclose(loss, loss[0]):
            return None
        centered = loss - loss.mean()
        power = np.abs(np.fft.rfft(centered)) ** 2
        power[0] = 0.0
        peak = int(np.argmax(power))
        total = float(power.sum())
        # Periodic interference concentrates variance at the fundamental
        # (an impulse train still puts ~10%+ of the total there, the rest
        # going to its harmonics); white noise spreads variance so evenly
        # that the largest of n/2 bins holds only ~log(n)/n ≈ 1-2% of the
        # total.  6% cleanly separates the two regimes.
        if peak == 0 or total <= 0.0 or power[peak] < 0.06 * total:
            return None
        return loss.size / peak


def run_ftq(
    noise: NoiseModel,
    quanta: int = 1024,
    quantum: float = 10_000.0,
    start_time: float = 0.0,
    seed: int | np.random.Generator | None = 0,
) -> FTQResult:
    """Probe ``noise`` with ``quanta`` fixed quanta of ``quantum`` cycles."""
    if quanta < 1:
        raise ValueError("quanta must be >= 1")
    if quantum <= 0:
        raise ValueError("quantum must be > 0")
    rng = as_rng(seed)
    t = start_time
    losses = []
    for _ in range(quanta):
        loss = max(noise.delay(rng, t, quantum), 0.0)
        losses.append(loss)
        # Real FTQ quanta are wall-clock-fixed; the probe advances by the
        # quantum plus the interference it absorbed.
        t += quantum + loss
    return FTQResult(quantum=quantum, loss=tuple(losses), start_time=start_time)
