"""2-D halo-exchange stencil on a process grid.

The structured-mesh workhorse: ranks are arranged in a ``px × py`` grid
(chosen as close to square as p allows), and each time step exchanges
north/south/east/west halos with nonblocking operations before the
interior update.  Compared to the 1-D stencil this doubles the
neighbor count and creates the row/column channel structure whose
perturbation behaviour differs from a line (a noisy rank's delay front
spreads as a diamond across the grid, one hop per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.mpisim.api import Compute, Irecv, Isend, Op, RankInfo, Waitall

__all__ = ["Stencil2DParams", "stencil2d", "grid_shape"]

_N, _S, _E, _W = 21, 22, 23, 24  # halo direction tags


def grid_shape(p: int) -> tuple[int, int]:
    """Most-square ``(px, py)`` factorization with ``px * py == p``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    best = (1, p)
    for px in range(1, int(p**0.5) + 1):
        if p % px == 0:
            best = (px, p // px)
    return best


@dataclass(frozen=True)
class Stencil2DParams:
    """Configuration of the 2-D halo exchange.

    iterations:
        Time steps.
    halo_bytes:
        Bytes per halo face per step.
    interior_cycles:
        Overlappable interior computation per step.
    boundary_cycles:
        Post-exchange boundary computation per step.
    periodic:
        Torus (True) or open grid (False).
    """

    iterations: int = 8
    halo_bytes: int = 2048
    interior_cycles: float = 50_000.0
    boundary_cycles: float = 5_000.0
    periodic: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.halo_bytes < 0 or self.interior_cycles < 0 or self.boundary_cycles < 0:
            raise ValueError("sizes and cycle counts must be >= 0")


def stencil2d(params: Stencil2DParams = Stencil2DParams()):
    """Rank program factory for the 2-D stencil."""

    def program(me: RankInfo) -> Iterator[Op]:
        px, py = grid_shape(me.size)
        x, y = me.rank % px, me.rank // px

        def at(gx: int, gy: int) -> int | None:
            if params.periodic:
                gx, gy = gx % px, gy % py
            elif not (0 <= gx < px and 0 <= gy < py):
                return None
            nbr = gy * px + gx
            return None if nbr == me.rank else nbr

        north, south = at(x, y - 1), at(x, y + 1)
        west, east = at(x - 1, y), at(x + 1, y)
        # (recv_from, recv_tag, send_to, send_tag) per face: a north halo
        # arrives from the north neighbor tagged "southbound" etc.
        faces = [
            (north, _S, north, _N),
            (south, _N, south, _S),
            (west, _E, west, _W),
            (east, _W, east, _E),
        ]
        for _ in range(params.iterations):
            requests = []
            for nbr, rtag, _, _ in faces:
                if nbr is not None:
                    requests.append((yield Irecv(source=nbr, tag=rtag)))
            for _, _, nbr, stag in faces:
                if nbr is not None:
                    requests.append(
                        (yield Isend(dest=nbr, nbytes=params.halo_bytes, tag=stag))
                    )
            yield Compute(params.interior_cycles)
            if requests:
                yield Waitall(requests)
            yield Compute(params.boundary_cycles)

    return program
