"""JSON (de)serialization for distributions and noise models.

Machine signatures travel: the CLI writes them to disk, the experiment
history (:mod:`repro.core.history`) stores the exact parameterization of
every run, and tests round-trip them.  The representation is a plain
JSON-able dict with a ``"kind"`` tag.
"""

from __future__ import annotations

from typing import Any

from repro.noise import distributions as d
from repro.noise import models as m
from repro.noise.empirical import Empirical

__all__ = ["to_jsonable", "from_jsonable"]


def to_jsonable(obj: Any) -> dict:
    """Encode a distribution or noise model as a JSON-able dict."""
    t = type(obj)
    if t is d.Constant:
        return {"kind": "constant", "value": obj.value}
    if t is d.Uniform:
        return {"kind": "uniform", "low": obj.low, "high": obj.high}
    if t is d.Exponential:
        return {"kind": "exponential", "mean": obj.mean_value}
    if t is d.Normal:
        return {"kind": "normal", "mu": obj.mu, "sigma": obj.sigma}
    if t is d.TruncatedNormal:
        return {"kind": "truncated_normal", "mu": obj.mu, "sigma": obj.sigma, "lower": obj.lower}
    if t is d.LogNormal:
        return {"kind": "lognormal", "mu": obj.mu, "sigma": obj.sigma}
    if t is d.Gamma:
        return {"kind": "gamma", "shape": obj.shape, "scale": obj.scale}
    if t is d.Pareto:
        return {"kind": "pareto", "alpha": obj.alpha, "minimum": obj.minimum}
    if t is d.Weibull:
        return {"kind": "weibull", "shape": obj.shape, "scale": obj.scale}
    if t is d.BernoulliSpike:
        return {"kind": "bernoulli_spike", "p": obj.p, "spike": to_jsonable(obj.spike)}
    if t is d.Mixture:
        return {
            "kind": "mixture",
            "components": [to_jsonable(c) for c in obj.components],
            "weights": list(obj.weights),
        }
    if t is d.Shifted:
        return {"kind": "shifted", "base": to_jsonable(obj.base), "offset": obj.offset}
    if t is d.Scaled:
        return {"kind": "scaled", "base": to_jsonable(obj.base), "factor": obj.factor}
    if t is Empirical:
        return {"kind": "empirical", "samples": list(obj.samples), "interpolate": obj.interpolate}
    if t is m.NoNoise:
        return {"kind": "no_noise"}
    if t is m.RandomPreemption:
        return {"kind": "random_preemption", "rate": obj.rate, "cost": to_jsonable(obj.cost)}
    if t is m.PeriodicDaemon:
        return {
            "kind": "periodic_daemon",
            "period": obj.period,
            "cost": to_jsonable(obj.cost),
            "phase": obj.phase,
        }
    if t is m.DistributionNoise:
        return {
            "kind": "distribution_noise",
            "dist": to_jsonable(obj.dist),
            "per_cycle": obj.per_cycle,
        }
    if t is m.CompositeNoise:
        return {"kind": "composite_noise", "parts": [to_jsonable(p) for p in obj.parts]}
    raise TypeError(f"cannot serialize object of type {t.__name__}")


def from_jsonable(data: dict) -> Any:
    """Decode a dict produced by :func:`to_jsonable`."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ValueError(f"not a serialized distribution/model: {data!r}")
    kind = data["kind"]
    if kind == "constant":
        return d.Constant(data["value"])
    if kind == "uniform":
        return d.Uniform(data["low"], data["high"])
    if kind == "exponential":
        return d.Exponential(data["mean"])
    if kind == "normal":
        return d.Normal(data["mu"], data["sigma"])
    if kind == "truncated_normal":
        return d.TruncatedNormal(data["mu"], data["sigma"], data.get("lower", 0.0))
    if kind == "lognormal":
        return d.LogNormal(data["mu"], data["sigma"])
    if kind == "gamma":
        return d.Gamma(data["shape"], data["scale"])
    if kind == "pareto":
        return d.Pareto(data["alpha"], data["minimum"])
    if kind == "weibull":
        return d.Weibull(data["shape"], data["scale"])
    if kind == "bernoulli_spike":
        return d.BernoulliSpike(data["p"], from_jsonable(data["spike"]))
    if kind == "mixture":
        return d.Mixture([from_jsonable(c) for c in data["components"]], data["weights"])
    if kind == "shifted":
        return d.Shifted(from_jsonable(data["base"]), data["offset"])
    if kind == "scaled":
        return d.Scaled(from_jsonable(data["base"]), data["factor"])
    if kind == "empirical":
        return Empirical(data["samples"], interpolate=data.get("interpolate", False))
    if kind == "no_noise":
        return m.NO_NOISE
    if kind == "random_preemption":
        return m.RandomPreemption(data["rate"], from_jsonable(data["cost"]))
    if kind == "periodic_daemon":
        return m.PeriodicDaemon(data["period"], from_jsonable(data["cost"]), data.get("phase", 0.0))
    if kind == "distribution_noise":
        return m.DistributionNoise(from_jsonable(data["dist"]), data.get("per_cycle", False))
    if kind == "composite_noise":
        return m.CompositeNoise([from_jsonable(p) for p in data["parts"]])
    raise ValueError(f"unknown kind {kind!r}")
