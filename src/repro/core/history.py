"""Experiment history (§7 future work, implemented).

"The second area of work is to provide a mechanism to provide a richer
set of parameters to the simulation, and maintain a history of analysis
experiments that are performed using our tools."

:class:`ExperimentHistory` is a small append-only JSON registry: each
record stores the experiment name, the *complete* parameterization
(machine signature, seed, scale, mode, build config — everything needed
to reproduce the run exactly, thanks to deterministic sampling) and the
resulting per-rank delays.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.perturb import PerturbationSpec
from repro.core.primitives import BuildConfig
from repro.core.traversal import TraversalResult
from repro.noise.signature import MachineSignature

__all__ = ["ExperimentRecord", "ExperimentHistory"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One stored analysis experiment."""

    name: str
    timestamp: float
    params: dict
    delays: tuple
    mode: str
    warnings: tuple

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "params": self.params,
            "delays": list(self.delays),
            "mode": self.mode,
            "warnings": list(self.warnings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        return cls(
            name=data["name"],
            timestamp=data["timestamp"],
            params=data["params"],
            delays=tuple(data["delays"]),
            mode=data["mode"],
            warnings=tuple(data.get("warnings", ())),
        )


class ExperimentHistory:
    """Append-only JSONL store of analysis experiments."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(
        self,
        name: str,
        spec: PerturbationSpec,
        result: TraversalResult,
        config: BuildConfig | None = None,
        extra: dict | None = None,
    ) -> ExperimentRecord:
        """Store one experiment; returns the stored record."""
        params = {
            "signature": spec.signature.to_dict(),
            "seed": spec.seed,
            "scale": spec.scale,
        }
        if config is not None:
            params["build_config"] = {
                "collective_mode": config.collective_mode,
                "eager_threshold": config.eager_threshold,
                "absolute_weights": config.absolute_weights,
                "reduce_transfer_deltas": config.reduce_transfer_deltas,
            }
        if extra:
            params["extra"] = extra
        rec = ExperimentRecord(
            name=name,
            timestamp=time.time(),
            params=params,
            delays=tuple(result.final_delay),
            mode=result.mode,
            warnings=tuple(result.warnings),
        )
        with open(self.path, "a") as fh:
            fh.write(json.dumps(rec.to_dict()) + "\n")
        return rec

    def __iter__(self) -> Iterator[ExperimentRecord]:
        if not self.path.exists():
            return
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield ExperimentRecord.from_dict(json.loads(line))

    def find(self, name: str) -> list[ExperimentRecord]:
        """All records with the given experiment name, oldest first."""
        return [rec for rec in self if rec.name == name]

    def latest(self, name: str) -> ExperimentRecord | None:
        records = self.find(name)
        return records[-1] if records else None

    def replay_spec(self, rec: ExperimentRecord) -> PerturbationSpec:
        """Reconstruct the exact sampling spec of a stored experiment."""
        return PerturbationSpec(
            MachineSignature.from_dict(rec.params["signature"]),
            seed=rec.params["seed"],
            scale=rec.params["scale"],
        )

    def __len__(self) -> int:
        return sum(1 for _ in self)
