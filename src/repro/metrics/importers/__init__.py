"""External-trace importers: real-world trace files as `TraceSource`s.

Importers turn foreign trace formats into
:class:`~repro.trace.reader.MemoryTrace` objects that satisfy the
:class:`~repro.trace.reader.TraceSource` protocol, so every consumer
in the pipeline — ``repro.metrics``, ``trace_stats``, the lint engine
— works on them unchanged.

Currently supported:

* :func:`~repro.metrics.importers.chrome.import_chrome_trace` —
  Chrome trace-event JSON (the format Perfetto, ``chrome://tracing``,
  and many OTF2→JSON converters emit).
"""

from repro.metrics.importers.chrome import import_chrome_trace

__all__ = ["import_chrome_trace"]
