"""Ping-pong latency microbenchmark (§5.2).

"Given the lack of an accurate, high-precision global clock across
communicating processors, the latency benchmark uses a traditional
ping-style message exchange between two processors" — round-trip time
on the pinger's own clock, halved.  Run on the simulated machine; the
RTT samples come out of the *trace* (local timestamps of the ping
rank), exactly as a real benchmark would measure them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpisim.api import Compute, RankInfo, Recv, Send
from repro.mpisim.runtime import Machine, run
from repro.noise.empirical import Empirical
from repro.trace.events import EventKind

__all__ = ["PingPongResult", "run_pingpong"]

_PING_TAG = 71
_PONG_TAG = 72


@dataclass(frozen=True)
class PingPongResult:
    """One-way latency estimates from a ping-pong run."""

    rtt: tuple  # per-iteration round trip, pinger's clock
    nbytes: int

    @property
    def half_rtt(self) -> np.ndarray:
        return np.asarray(self.rtt) / 2.0

    def latency_estimate(self) -> float:
        """Best (minimum) one-way latency — the machine's base latency."""
        return float(np.min(self.half_rtt))

    def jitter_samples(self) -> np.ndarray:
        """Per-message latency *variation*: half-RTT minus the minimum.

        This is the δ_λ perturbation the signature wants: deviations
        from the best case, not the base latency itself (which the trace
        timings already embed, §6).
        """
        h = self.half_rtt
        return h - h.min()

    def jitter_distribution(self, interpolate: bool = False) -> Empirical:
        return Empirical(self.jitter_samples(), interpolate=interpolate)


def _pingpong_program(iterations: int, nbytes: int, gap_cycles: float):
    def program(me: RankInfo):
        if me.rank == 0:
            for _ in range(iterations):
                yield Compute(gap_cycles)
                yield Send(dest=1, nbytes=nbytes, tag=_PING_TAG)
                yield Recv(source=1, tag=_PONG_TAG)
        elif me.rank == 1:
            for _ in range(iterations):
                yield Recv(source=0, tag=_PING_TAG)
                yield Send(dest=0, nbytes=nbytes, tag=_PONG_TAG)

    return program


def run_pingpong(
    machine: Machine,
    iterations: int = 256,
    nbytes: int = 8,
    gap_cycles: float = 1_000.0,
    seed: int = 0,
    ranks: tuple[int, int] = (0, 1),
) -> PingPongResult:
    """Ping between two ranks of ``machine``; RTTs read from the trace.

    ``machine`` must have at least 2 ranks; the benchmark itself runs a
    dedicated 2-rank machine with the same network/noise configuration
    (per-rank noise overrides are mapped through ``ranks``).
    """
    if machine.nprocs < 2:
        raise ValueError("ping-pong needs a machine with >= 2 ranks")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    noise = machine.noise
    if isinstance(noise, tuple):
        noise = (noise[ranks[0]], noise[ranks[1]])
    bench_machine = Machine(nprocs=2, network=machine.network, noise=noise, name="pingpong")
    result = run(
        _pingpong_program(iterations, nbytes, gap_cycles),
        machine=bench_machine,
        seed=seed,
        program_name="pingpong",
    )
    events = list(result.trace.events_of(0))
    rtts = []
    send_start = None
    for ev in events:
        if ev.kind == EventKind.SEND and ev.tag == _PING_TAG:
            send_start = ev.t_start
        elif ev.kind == EventKind.RECV and ev.tag == _PONG_TAG and send_start is not None:
            rtts.append(ev.t_end - send_start)
            send_start = None
    if len(rtts) != iterations:
        raise RuntimeError(f"expected {iterations} RTT samples, extracted {len(rtts)}")
    return PingPongResult(rtt=tuple(rtts), nbytes=nbytes)
