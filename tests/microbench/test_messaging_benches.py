"""Tests for the ping-pong, bandwidth and Mraz messaging benchmarks (§5.2)."""

import numpy as np
import pytest

from repro.microbench.bandwidth import run_bandwidth
from repro.microbench.mraz import run_mraz
from repro.microbench.pingpong import run_pingpong
from repro.mpisim import Machine, NetworkModel
from repro.noise import Constant, DistributionNoise, Exponential

NET = NetworkModel(
    latency=1000.0, bandwidth=2.0, send_overhead=50.0, recv_overhead=50.0, eager_threshold=8192
)


def quiet(p=2):
    return Machine(nprocs=p, network=NET, name="quiet")


def noisy(p=2):
    return Machine(
        nprocs=p,
        network=NET.with_jitter(Exponential(200.0)),
        noise=DistributionNoise(Exponential(100.0)),
        name="noisy",
    )


class TestPingPong:
    def test_latency_estimate_close_to_configured(self):
        res = run_pingpong(quiet(), iterations=32, nbytes=8)
        # Half-RTT = latency + overheads + payload; must bracket the base
        # latency from above and stay within the overhead budget.
        est = res.latency_estimate()
        assert 1000.0 <= est <= 1000.0 + 200.0

    def test_quiet_machine_no_jitter(self):
        res = run_pingpong(quiet(), iterations=64)
        assert np.all(res.jitter_samples() == 0.0)

    def test_noisy_machine_jitter_positive(self):
        res = run_pingpong(noisy(), iterations=128, seed=3)
        j = res.jitter_samples()
        assert j.min() == 0.0  # by construction (deviation from best)
        assert j.max() > 0.0
        assert res.jitter_distribution().mean() > 0.0

    def test_iteration_count_respected(self):
        res = run_pingpong(quiet(), iterations=17)
        assert len(res.rtt) == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            run_pingpong(Machine(nprocs=1), iterations=4)
        with pytest.raises(ValueError):
            run_pingpong(quiet(), iterations=0)

    def test_per_rank_noise_mapped_through(self):
        m = Machine(
            nprocs=4,
            network=NET,
            noise=(
                DistributionNoise(Constant(0.0)),
                DistributionNoise(Constant(0.0)),
                DistributionNoise(Constant(777.0)),
                DistributionNoise(Constant(0.0)),
            ),
        )
        quiet_pair = run_pingpong(m, iterations=8, ranks=(0, 1))
        noisy_pair = run_pingpong(m, iterations=8, ranks=(0, 2))
        assert noisy_pair.latency_estimate() > quiet_pair.latency_estimate()


class TestBandwidth:
    def test_bandwidth_estimate_close(self):
        res = run_bandwidth(quiet(), iterations=8, nbytes=1_000_000)
        # One-way time dominated by payload (500k cycles); latency and
        # overheads contribute <1%.
        assert res.bandwidth_estimate() == pytest.approx(2.0, rel=0.02)

    def test_per_byte_samples_zero_on_quiet(self):
        res = run_bandwidth(quiet(), iterations=16, nbytes=500_000)
        assert np.all(res.per_byte_samples() == 0.0)

    def test_noisy_per_byte_positive(self):
        res = run_bandwidth(noisy(), iterations=32, nbytes=500_000, seed=1)
        assert res.per_byte_samples().max() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_bandwidth(quiet(), nbytes=0)
        with pytest.raises(ValueError):
            run_bandwidth(Machine(nprocs=1))


class TestMraz:
    def test_quiet_intervals_regular(self):
        res = run_mraz(quiet(), messages=32, send_gap=5_000.0)
        assert len(res.intervals) == 31
        assert np.all(res.jitter_samples() == pytest.approx(0.0))
        assert res.variance() == pytest.approx(0.0, abs=1e-9)

    def test_noise_raises_variance(self):
        q = run_mraz(quiet(), messages=128, seed=0)
        n = run_mraz(noisy(), messages=128, seed=0)
        assert n.variance() > q.variance()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_mraz(quiet(), messages=1)
        with pytest.raises(ValueError):
            run_mraz(Machine(nprocs=1))
