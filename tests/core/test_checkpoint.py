"""Tests for the on-disk checkpoint store and analysis resume paths.

The property under test everywhere: a resumed analysis is **bit-
identical** to an uninterrupted one, because each shard is a pure
function of its key and JSON round-trips floats exactly.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core import (
    PerturbationSpec,
    build_graph,
    monte_carlo,
    rank_influence,
    sweep_scales,
    sweep_signatures,
)
from repro.core.checkpoint import (
    CheckpointStore,
    ShardKey,
    build_digest,
    digest_of,
    resolve_rows,
    signature_digest,
    trace_digest,
)
from repro.noise import Exponential, MachineSignature
from repro.testing import corrupt_checkpoints

pytestmark = pytest.mark.usefixtures("no_obs_session")


@pytest.fixture
def no_obs_session():
    obs.stop()
    yield
    obs.stop()


@pytest.fixture(scope="module")
def ring_build(ring_trace):
    return build_graph(ring_trace)


def spec(seed=0, scale=1.0, mean=100.0):
    return PerturbationSpec(
        MachineSignature(os_noise=Exponential(mean), latency=Exponential(40.0)),
        seed=seed,
        scale=scale,
    )


def key(seed=0, **kw):
    base = dict(kind="mc", seed=seed, signature="sig0", scale=1.0, mode="additive",
                engine="compiled", context="ctx0")
    base.update(kw)
    return ShardKey(**base)


class TestDigests:
    def test_digest_is_stable_and_order_free(self):
        assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})
        assert digest_of([1.5]) != digest_of([1.25])

    def test_signature_digest_distinguishes_signatures(self):
        a = MachineSignature(os_noise=Exponential(100.0))
        b = MachineSignature(os_noise=Exponential(101.0))
        assert signature_digest(a) != signature_digest(b)
        assert signature_digest(a) == signature_digest(MachineSignature(os_noise=Exponential(100.0)))

    def test_build_digest_cached_on_build(self, ring_build):
        d = build_digest(ring_build)
        assert d == build_digest(ring_build)
        assert ring_build.__dict__["_checkpoint_digest"] == d

    def test_trace_digest(self, ring_trace):
        assert trace_digest(ring_trace) == trace_digest(ring_trace)


class TestShardKey:
    def test_every_field_changes_the_filename(self):
        base = key()
        for change in (
            dict(kind="sweep_scales"), dict(seed=1), dict(signature="sigX"),
            dict(scale=2.0), dict(mode="threshold"), dict(engine="graph"),
            dict(context="ctxX"),
        ):
            assert key(**change).filename != base.filename

    def test_filename_is_a_valid_shard_name(self):
        assert key(seed=17).filename.startswith("mc-17-")
        assert key().filename.endswith(".json")


class TestStore:
    def test_roundtrip_is_exact(self, tmp_path):
        store = CheckpointStore(tmp_path)
        row = [0.1 + 0.2, 1e-308, 12345678.875, 0.0]
        store.put(key(), row)
        assert store.get(key()) == row  # bit-exact float round-trip

    def test_missing_counts_as_miss(self, tmp_path):
        with obs.observed("t") as session:
            assert CheckpointStore(tmp_path).get(key()) is None
        assert session.metrics.counter("checkpoint.misses").value == 1

    def test_coerce(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert CheckpointStore.coerce(None) is None
        assert CheckpointStore.coerce(store) is store
        assert CheckpointStore.coerce(str(tmp_path)).root == store.root

    def test_corrupt_shard_reads_as_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.put(key(), [1.0, 2.0])
        assert corrupt_checkpoints(tmp_path) != []
        with obs.observed("t") as session:
            assert store.get(key()) is None
        assert session.metrics.counter("checkpoint.corrupt").value == 1

    def test_key_mismatch_reads_as_missing(self, tmp_path):
        # A shard whose embedded key disagrees with the requested key
        # (e.g. a renamed file) must not satisfy the request.
        store = CheckpointStore(tmp_path)
        path = store.put(key(seed=1), [1.0])
        path.rename(store.path_for(key(seed=2)))
        assert store.get(key(seed=2)) is None

    def test_tampered_result_fails_digest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.put(key(), [1.0, 2.0])
        record = json.loads(path.read_text())
        record["result"] = [9.0, 9.0]
        path.write_text(json.dumps(record))
        assert store.get(key()) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(5):
            store.put(key(seed=i), [float(i)])
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            key(seed=i).filename for i in range(5)
        )


class TestResolveRows:
    def test_no_store_computes_everything(self):
        calls = []

        def compute(missing):
            calls.append(list(missing))
            return [[float(i)] for i in missing]

        rows = resolve_rows(None, [key(seed=i) for i in range(3)], compute)
        assert rows == [[0.0], [1.0], [2.0]]
        assert calls == [[0, 1, 2]]

    def test_resume_computes_only_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [key(seed=i) for i in range(4)]
        store.put(keys[1], [10.0])
        store.put(keys[3], [30.0])
        calls = []

        def compute(missing):
            calls.append(list(missing))
            return [[float(i)] for i in missing]

        with obs.observed("t") as session:
            rows = resolve_rows(store, keys, compute, resume=True)
        assert rows == [[0.0], [10.0], [2.0], [30.0]]
        assert calls == [[0, 2]]
        assert session.metrics.counter("checkpoint.hits").value == 2
        assert session.metrics.counter("checkpoint.misses").value == 2

    def test_without_resume_nothing_is_read(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [key(seed=i) for i in range(2)]
        store.put(keys[0], [99.0])  # stale-looking shard must be ignored

        rows = resolve_rows(store, keys, lambda m: [[float(i)] for i in m], resume=False)
        assert rows == [[0.0], [1.0]]
        assert store.get(keys[0]) == [0.0]  # and overwritten

    def test_generator_compute_checkpoints_incrementally(self, tmp_path):
        """A kill mid-compute must not erase rows already produced —
        the CLI chaos scenario relies on this."""
        store = CheckpointStore(tmp_path)
        keys = [key(seed=i) for i in range(4)]

        def compute(missing):
            for i in missing:
                if i == 2:
                    raise RuntimeError("killed mid-flight")
                yield [float(i)]

        with pytest.raises(RuntimeError):
            resolve_rows(store, keys, compute, resume=False)
        assert store.get(keys[0]) == [0.0]
        assert store.get(keys[1]) == [1.0]
        assert store.get(keys[2]) is None

    def test_unstorable_rows_not_persisted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        keys = [key(seed=i) for i in range(3)]
        rows = resolve_rows(
            store, keys, lambda m: [[1.0], None, [float("nan")]], resume=False
        )
        assert rows[1] is None
        assert store.get(keys[0]) == [1.0]
        assert store.get(keys[1]) is None  # None row: nothing written
        assert store.get(keys[2]) is None  # NaN row: nothing written


class TestAnalysisResume:
    """End-to-end: every checkpointed analysis resumes bit-identically."""

    def test_monte_carlo_resume_bit_identical(self, ring_build, tmp_path):
        s = spec(seed=42)
        clean = monte_carlo(ring_build, s, replicates=6)
        first = monte_carlo(ring_build, s, replicates=6, checkpoint=tmp_path)
        with obs.observed("t") as session:
            resumed = monte_carlo(
                ring_build, s, replicates=6, checkpoint=tmp_path, resume=True
            )
        assert np.array_equal(clean.samples, first.samples)
        assert np.array_equal(clean.samples, resumed.samples)
        # Fully cached: the resumed run recomputed nothing.
        assert session.metrics.counter("checkpoint.hits").value == 6
        assert session.metrics.counter("mc.replicates").value == 0

    def test_monte_carlo_engines_share_no_shards(self, ring_build, tmp_path):
        s = spec(seed=7)
        compiled = monte_carlo(ring_build, s, replicates=3, checkpoint=tmp_path)
        graph = monte_carlo(
            ring_build, s, replicates=3, engine="graph", checkpoint=tmp_path, resume=True
        )
        # Same bits, but keyed separately (engine is part of the key).
        assert np.array_equal(compiled.samples, graph.samples)
        assert len(list(tmp_path.glob("mc-*.json"))) == 6

    def test_corrupt_shard_recomputed_on_resume(self, ring_build, tmp_path):
        s = spec(seed=11)
        clean = monte_carlo(ring_build, s, replicates=4, checkpoint=tmp_path)
        corrupt_checkpoints(tmp_path, n=2)
        with obs.observed("t") as session:
            resumed = monte_carlo(
                ring_build, s, replicates=4, checkpoint=tmp_path, resume=True
            )
        assert np.array_equal(clean.samples, resumed.samples)
        assert session.metrics.counter("checkpoint.corrupt").value == 2
        assert session.metrics.counter("checkpoint.hits").value == 2
        # The damaged shards were rewritten; a second resume is all hits.
        with obs.observed("t2") as session2:
            monte_carlo(ring_build, s, replicates=4, checkpoint=tmp_path, resume=True)
        assert session2.metrics.counter("checkpoint.hits").value == 4

    @pytest.mark.parametrize("engine", ["auto", "incore", "streaming"])
    def test_sweep_scales_resume_bit_identical(self, ring_trace, tmp_path, engine):
        scales = [0.5, 1.0, 2.0]
        clean = sweep_scales(ring_trace, spec(seed=9), scales, engine=engine)
        sweep_scales(ring_trace, spec(seed=9), scales, engine=engine, checkpoint=tmp_path)
        resumed = sweep_scales(
            ring_trace, spec(seed=9), scales, engine=engine,
            checkpoint=tmp_path, resume=True,
        )
        for a, b in zip(clean.points, resumed.points):
            assert a.delays == b.delays

    def test_sweep_signatures_resume_bit_identical(self, ring_trace, tmp_path):
        sigs = [
            MachineSignature(os_noise=Exponential(50.0), name="quiet"),
            MachineSignature(os_noise=Exponential(200.0), name="noisy"),
        ]
        clean = sweep_signatures(ring_trace, sigs, seed=3)
        sweep_signatures(ring_trace, sigs, seed=3, checkpoint=tmp_path)
        resumed = sweep_signatures(ring_trace, sigs, seed=3, checkpoint=tmp_path, resume=True)
        for a, b in zip(clean.points, resumed.points):
            assert a.delays == b.delays

    def test_rank_influence_resume_bit_identical(self, ring_build, tmp_path):
        clean = rank_influence(ring_build, Exponential(100.0), seed=1)
        rank_influence(ring_build, Exponential(100.0), seed=1, checkpoint=tmp_path)
        resumed = rank_influence(
            ring_build, Exponential(100.0), seed=1, checkpoint=tmp_path, resume=True
        )
        assert np.array_equal(clean.matrix, resumed.matrix)
        assert len(list(tmp_path.glob("influence-*.json"))) == ring_build.graph.nprocs

    def test_parallel_resume_matches_serial(self, ring_build, tmp_path):
        """Checkpointing composes with the pool backend: shards written
        by a parallel run satisfy a serial resume, bit for bit."""
        s = spec(seed=21)
        clean = monte_carlo(ring_build, s, replicates=8, jobs=0)
        monte_carlo(ring_build, s, replicates=8, jobs=2, checkpoint=tmp_path)
        resumed = monte_carlo(
            ring_build, s, replicates=8, jobs=0, checkpoint=tmp_path, resume=True
        )
        assert np.array_equal(clean.samples, resumed.samples)
