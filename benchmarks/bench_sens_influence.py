"""SENS2 — rank-influence matrices and Monte-Carlo delay distributions.

Extends the §4.2 sensitivity analysis two ways the paper's framework
makes natural: (a) *whose* noise hurts *whom* (one-noisy-rank influence
matrices across messaging patterns), and (b) the full distribution of
the perturbed runtime (the §5 random-variable view taken seriously —
200 independent propagations instead of one).
"""

import time

from benchmarks._common import bench_timings, emit, table
from repro.apps import (
    MasterWorkerParams,
    PipelineParams,
    TokenRingParams,
    master_worker,
    pipeline,
    token_ring,
)
from repro.core import PerturbationSpec, build_graph, monte_carlo, rank_influence
from repro.mpisim import run
from repro.noise import Constant, Exponential, MachineSignature

P = 6


def test_sens2_influence_matrices(benchmark):
    noise = Constant(10_000.0)
    apps = [
        ("token_ring", token_ring(TokenRingParams(traversals=3))),
        ("pipeline", pipeline(PipelineParams(items=10))),
        ("master_worker", master_worker(MasterWorkerParams(tasks=24))),
    ]
    out_parts = []
    builds = {}
    total_by_app = {}
    t0 = time.perf_counter()
    for name, prog in apps:
        build = build_graph(run(prog, nprocs=P, seed=0).trace)
        builds[name] = build
        m = rank_influence(build, noise, seed=0)
        out_parts.append(f"{name}:\n{m.table()}")
        totals = m.total_influence()
        total_by_app[name] = float(totals.sum())
        if name == "master_worker":
            assert totals.argmax() == 0  # the master dominates
        if name == "pipeline":
            # Upstream stages out-influence downstream ones.
            assert m.matrix[0, P - 1] > m.matrix[P - 1, 0]
    emit(
        "sens2_influence",
        "\n\n".join(out_parts),
        params={"nprocs": P, "noise_cycles": 10_000.0, "apps": [a for a, _ in apps]},
        timings={"matrices_s": time.perf_counter() - t0},
        metrics={"total_influence": total_by_app},
    )

    benchmark(rank_influence, builds["token_ring"], noise, 0)


def test_sens2_monte_carlo(benchmark):
    sig = MachineSignature(os_noise=Exponential(250.0), latency=Exponential(100.0))
    spec = PerturbationSpec(sig, seed=0)
    build = build_graph(run(token_ring(TokenRingParams(traversals=4)), nprocs=P, seed=1).trace)

    dist = benchmark.pedantic(monte_carlo, args=(build, spec), kwargs={"replicates": 200},
                              rounds=1, iterations=1)
    q = dist.quantile([0.05, 0.5, 0.95])
    rows = [
        ["replicates", dist.replicates],
        ["mean", f"{dist.mean():,.0f}"],
        ["std", f"{dist.std():,.0f}"],
        ["p5", f"{q[0]:,.0f}"],
        ["p50", f"{q[1]:,.0f}"],
        ["p95", f"{q[2]:,.0f}"],
    ]
    emit(
        "sens2_monte_carlo",
        table(["statistic", "makespan delay (cy)"], rows, widths=[12, 20]),
        params={"nprocs": P, "replicates": dist.replicates, "app": "token_ring"},
        timings=bench_timings(benchmark),
        metrics={
            "mean": dist.mean(),
            "std": dist.std(),
            "p5": q[0],
            "p50": q[1],
            "p95": q[2],
        },
    )
    # Exponential deltas: spread is real but bounded; distribution is
    # right-shifted (mean > 0) and p95/p5 within a small factor.
    assert dist.mean() > 0
    assert q[2] / q[0] < 3.0
