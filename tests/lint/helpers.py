"""Fixture helpers for the static-analyzer tests.

``ev``/``wrap`` mirror the trace-validator test helpers; the
``corrupt_*`` builders each seed exactly one defect class so the
per-rule tests can assert a fixture trips its rule and nothing else.
"""

from __future__ import annotations

from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace


def ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


def wrap(rank, inner, t0=0.0):
    """INIT ... FINALIZE around a list of (kind, t0, t1, kwargs)."""
    events = [ev(rank, 0, EventKind.INIT, t0, t0 + 1)]
    for i, (kind, a, b, kw) in enumerate(inner, start=1):
        events.append(ev(rank, i, kind, a, b, **kw))
    last = events[-1]
    events.append(ev(rank, len(events), EventKind.FINALIZE, last.t_end, last.t_end + 1))
    return events


def compute_only(rank, span=100.0):
    """A rank that computes between INIT and FINALIZE (no messaging)."""
    return [
        ev(rank, 0, EventKind.INIT, 0.0, 1.0),
        ev(rank, 1, EventKind.FINALIZE, span - 1.0, span),
    ]


def memory_trace(*per_rank):
    return MemoryTrace(list(per_rank))
