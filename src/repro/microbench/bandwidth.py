"""Bandwidth microbenchmark (§5.2).

"A bandwidth benchmark is similar [to the latency benchmark], except
with messages of a significant size in one direction, with an
acknowledgment returned to the sender.  The size of the large message
must be sufficiently large so as to make the latency component
negligible."  Per-iteration transfer times yield bandwidth estimates
and, after subtracting the best case, per-byte perturbation samples
(the δ_t(d) rate distribution of the machine signature).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpisim.api import Compute, RankInfo, Recv, Send
from repro.mpisim.runtime import Machine, run
from repro.noise.empirical import Empirical
from repro.trace.events import EventKind

__all__ = ["BandwidthResult", "run_bandwidth"]

_DATA_TAG = 81
_ACK_TAG = 82


@dataclass(frozen=True)
class BandwidthResult:
    """Per-iteration transfer measurements."""

    transfer_times: tuple  # send-start to ack-received, sender's clock
    nbytes: int

    def bandwidth_estimate(self) -> float:
        """Best observed bytes/cycle (one-way payload over best time)."""
        return self.nbytes / float(np.min(self.transfer_times))

    def per_byte_samples(self) -> np.ndarray:
        """Per-byte perturbation rate samples: (time - best) / nbytes."""
        t = np.asarray(self.transfer_times)
        return (t - t.min()) / self.nbytes

    def per_byte_distribution(self, interpolate: bool = False) -> Empirical:
        return Empirical(self.per_byte_samples(), interpolate=interpolate)


def _bandwidth_program(iterations: int, nbytes: int, gap_cycles: float):
    def program(me: RankInfo):
        if me.rank == 0:
            for _ in range(iterations):
                yield Compute(gap_cycles)
                yield Send(dest=1, nbytes=nbytes, tag=_DATA_TAG)
                yield Recv(source=1, tag=_ACK_TAG)
        elif me.rank == 1:
            for _ in range(iterations):
                yield Recv(source=0, tag=_DATA_TAG)
                yield Send(dest=0, nbytes=0, tag=_ACK_TAG)

    return program


def run_bandwidth(
    machine: Machine,
    iterations: int = 64,
    nbytes: int = 1_048_576,
    gap_cycles: float = 1_000.0,
    seed: int = 0,
    ranks: tuple[int, int] = (0, 1),
) -> BandwidthResult:
    """Stream large messages between two ranks; times from the trace."""
    if machine.nprocs < 2:
        raise ValueError("bandwidth benchmark needs a machine with >= 2 ranks")
    if nbytes < 1:
        raise ValueError("nbytes must be >= 1")
    noise = machine.noise
    if isinstance(noise, tuple):
        noise = (noise[ranks[0]], noise[ranks[1]])
    bench_machine = Machine(nprocs=2, network=machine.network, noise=noise, name="bandwidth")
    result = run(
        _bandwidth_program(iterations, nbytes, gap_cycles),
        machine=bench_machine,
        seed=seed,
        program_name="bandwidth",
    )
    events = list(result.trace.events_of(0))
    times = []
    send_start = None
    for ev in events:
        if ev.kind == EventKind.SEND and ev.tag == _DATA_TAG:
            send_start = ev.t_start
        elif ev.kind == EventKind.RECV and ev.tag == _ACK_TAG and send_start is not None:
            times.append(ev.t_end - send_start)
            send_start = None
    if len(times) != iterations:
        raise RuntimeError(f"expected {iterations} samples, extracted {len(times)}")
    return BandwidthResult(transfer_times=tuple(times), nbytes=nbytes)
