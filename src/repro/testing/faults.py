"""Deterministic fault injection for the execution backends.

Chaos that can be asserted on: every fault here is **deterministic**
(keyed to a specific work item) and **picklable** (plain dataclasses of
simple fields), so it crosses the process-pool boundary and reproduces
identically on every run.  The harness proves the
:class:`~repro.core.parallel.FaultPolicy` paths — worker death, chunk
retry, straggler timeout, checkpoint corruption, kill-and-resume — in
tests and in the CI chaos job.

Building blocks
---------------

:class:`FaultyFn`
    Wraps a backend work function ``fn(payload, item)``; before
    delegating, it offers the item to each configured fault.
:class:`KillWorker` / :class:`FailItem` / :class:`SlowItem`
    The faults: die via ``os._exit`` (→ ``BrokenProcessPool``), raise a
    chosen exception, or sleep past the chunk deadline.

"Exactly once" across retries needs state that survives the worker
process being replaced, so one-shot faults are armed with a **flag
file**: the first process to atomically create it fires the fault;
every retry finds the flag and proceeds cleanly.  That is what makes
"kill the worker on chunk N, then the retry succeeds" a reproducible
scenario instead of a crash loop.

CLI-level chaos rides an environment hook instead:
``REPRO_FAULT_KILL_AFTER_SHARDS=N`` makes the
:class:`~repro.core.checkpoint.CheckpointStore` call
:func:`checkpoint_write_hook`'s closure after every shard write and
``os._exit(73)`` once N shards are on disk — the "sweep killed
mid-flight, resumed with ``--resume``" acceptance scenario.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

__all__ = [
    "FAULT_EXIT_CODE",
    "FailItem",
    "FaultyFn",
    "KillWorker",
    "SlowItem",
    "checkpoint_write_hook",
    "corrupt_checkpoints",
    "item_key",
]

#: Exit status used by injected kills, distinguishable from ordinary
#: crashes (1) and signal deaths (>= 128).
FAULT_EXIT_CODE = 73

_EXCEPTIONS = {
    "OSError": OSError,
    "ImportError": ImportError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}


def item_key(item) -> object:
    """The addressable identity of a backend work item.

    Replicate items are ``(seed, spec)`` tuples and compiled batches are
    seed lists — both key on the first seed; scalar items key on
    themselves.  Faults match on this key.
    """
    if isinstance(item, (tuple, list)) and item:
        return item[0]
    return item


def _claim(flag: str | None) -> bool:
    """Atomically claim a one-shot flag file; None = fire every time.

    ``O_CREAT | O_EXCL`` makes exactly one claimant win across any
    number of concurrent worker processes and retries.
    """
    if flag is None:
        return True
    try:
        fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class KillWorker:
    """``os._exit`` the worker processing item ``on`` — once.

    The pool observes a vanished worker as ``BrokenProcessPool``; the
    backend must restart the pool, keep completed chunks, and re-run
    only the remainder (where this fault, now disarmed via ``flag``,
    lets the item through).
    """

    on: object
    flag: str
    exit_code: int = FAULT_EXIT_CODE

    def fire(self, key) -> None:
        if key == self.on and _claim(self.flag):
            os._exit(self.exit_code)


@dataclass(frozen=True)
class FailItem:
    """Raise ``exc`` while processing item ``on``.

    ``flag=None`` fires on every attempt (exercises retry exhaustion and
    the ``on_failure`` policies); a flag path fires once (exercises
    retry-then-succeed).  ``worker_only=True`` fires only outside the
    pid that constructed the fault, so ``on_failure="degrade"``'s
    in-parent re-run succeeds.
    """

    on: object
    exc: str = "OSError"
    message: str = "injected fault"
    flag: str | None = None
    worker_only: bool = False
    parent_pid: int = field(default_factory=os.getpid)

    def fire(self, key) -> None:
        if key != self.on:
            return
        if self.worker_only and os.getpid() == self.parent_pid:
            return
        if _claim(self.flag):
            raise _EXCEPTIONS[self.exc](f"{self.message} (item {key!r})")


@dataclass(frozen=True)
class SlowItem:
    """Sleep ``seconds`` while processing item ``on`` (a straggler).

    With a per-chunk timeout below ``seconds``, the scheduler must
    speculatively resubmit; ``flag`` makes only the first attempt slow,
    so the twin wins the race.
    """

    on: object
    seconds: float
    flag: str | None = None

    def fire(self, key) -> None:
        if key == self.on and _claim(self.flag):
            time.sleep(self.seconds)


@dataclass(frozen=True)
class FaultyFn:
    """A backend work function with faults spliced in front.

    Picklable as long as ``fn`` is a module-level callable and every
    fault is one of the dataclasses above — exactly the contract
    :class:`~repro.core.parallel.ExecutionBackend` already imposes.
    """

    fn: Callable
    faults: tuple

    def __call__(self, payload, item):
        key = item_key(item)
        for fault in self.faults:
            fault.fire(key)
        return self.fn(payload, item)


def corrupt_checkpoints(root: str | Path, n: int | None = None) -> list[Path]:
    """Overwrite the first ``n`` checkpoint shards (all, if None) with
    garbage, deliberately *without* an atomic write — the reader must
    detect the damage via its digest check and recompute."""
    shards = sorted(Path(root).glob("*.json"))
    victims = shards if n is None else shards[:n]
    for path in victims:
        path.write_text('{"schema": "repro-checkpoint-shard/1", "result": [corrupt')
    return list(victims)


def checkpoint_write_hook() -> Callable[[int], None]:
    """The ``REPRO_FAULT_KILL_AFTER_SHARDS`` closure (module docstring).

    Reads the limit once at arm time; the returned hook kills the
    process with :data:`FAULT_EXIT_CODE` when the store's write count
    reaches it.
    """
    from repro.core.checkpoint import KILL_AFTER_SHARDS_ENV

    limit = int(os.environ[KILL_AFTER_SHARDS_ENV])

    def hook(writes: int) -> None:
        if writes >= limit:
            sys.stderr.write(
                f"repro.testing.faults: injected kill after {writes} checkpoint shard(s)\n"
            )
            sys.stderr.flush()
            os._exit(FAULT_EXIT_CODE)

    return hook
