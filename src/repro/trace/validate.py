"""Structural validation of trace sets.

The builder assumes (§4.3) "the program did run correctly in the first
place"; these checks verify that the files we were handed are actually
consistent with a completed run *before* any graph is built, producing
precise diagnostics instead of mysterious matching failures:

* per-rank: dense sequence numbers, monotone local timestamps, INIT
  first / FINALIZE last, request ids unique and referenced correctly;
* cross-rank: every send channel ``(src, dst, tag)`` has equal send and
  receive counts; every rank performs the same ordered list of
  collective operations with consistent roots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.trace.events import (
    COLLECTIVE_KINDS,
    EventKind,
    EventRecord,
    ROOTED_COLLECTIVES,
)

__all__ = ["ValidationIssue", "ValidationReport", "validate_traces"]


@dataclass(frozen=True)
class ValidationIssue:
    """One detected inconsistency."""

    severity: str  # "error" | "warning"
    rank: int  # -1 for cross-rank issues
    message: str

    def __str__(self) -> str:
        where = f"rank {self.rank}" if self.rank >= 0 else "cross-rank"
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class ValidationReport:
    """All issues found in a trace set."""

    issues: list = field(default_factory=list)
    nprocs: int = 0
    event_count: int = 0

    @property
    def errors(self) -> list:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if not self.ok:
            lines = "\n".join(str(e) for e in self.errors[:20])
            more = f"\n... and {len(self.errors) - 20} more" if len(self.errors) > 20 else ""
            raise ValueError(f"invalid trace set:\n{lines}{more}")

    def summary(self) -> str:
        return (
            f"{self.nprocs} ranks, {self.event_count} events, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings"
        )


def _validate_rank(rank: int, events: list[EventRecord], report: ValidationReport) -> None:
    err = lambda msg: report.issues.append(ValidationIssue("error", rank, msg))
    warn = lambda msg: report.issues.append(ValidationIssue("warning", rank, msg))

    prev_end = float("-inf")
    open_reqs: set[int] = set()
    seen_reqs: set[int] = set()
    for i, ev in enumerate(events):
        if ev.rank != rank:
            err(f"event #{i} claims rank {ev.rank}")
        if ev.seq != i:
            err(f"event #{i} has seq {ev.seq} (expected dense numbering)")
        if ev.t_start < prev_end:
            err(
                f"event #{i} ({ev.kind.name}) starts at {ev.t_start} "
                f"before previous event ended at {prev_end}"
            )
        prev_end = max(prev_end, ev.t_end)

        if ev.kind in (EventKind.ISEND, EventKind.IRECV):
            if ev.req < 0:
                err(f"event #{i} {ev.kind.name} lacks a request id")
            elif ev.req in seen_reqs:
                err(f"event #{i} reuses request id {ev.req}")
            else:
                seen_reqs.add(ev.req)
                open_reqs.add(ev.req)
        elif ev.kind.is_completion:
            for rid in ev.completed:
                if rid not in seen_reqs:
                    err(f"event #{i} {ev.kind.name} completes unknown request {rid}")
                elif rid not in open_reqs:
                    err(f"event #{i} {ev.kind.name} completes already-completed request {rid}")
                else:
                    open_reqs.discard(rid)
            unknown = [rid for rid in ev.completed if rid not in ev.reqs]
            if unknown:
                err(f"event #{i} completed ids {unknown} not among its reqs")

    if events:
        if events[0].kind != EventKind.INIT:
            warn(f"first event is {events[0].kind.name}, not INIT")
        if events[-1].kind != EventKind.FINALIZE:
            warn(f"last event is {events[-1].kind.name}, not FINALIZE")
    if open_reqs:
        warn(f"{len(open_reqs)} request(s) never completed: {sorted(open_reqs)[:8]}")


def _send_channels(events: list[EventRecord]) -> Counter:
    """Count sends per (src, dst, tag) including SENDRECV send-halves."""
    c: Counter = Counter()
    for ev in events:
        if ev.kind in (EventKind.SEND, EventKind.ISEND):
            c[(ev.rank, ev.peer, ev.tag)] += 1
        elif ev.kind == EventKind.SENDRECV:
            c[(ev.rank, ev.peer, ev.tag)] += 1
    return c


def _recv_channels(events: list[EventRecord]) -> Counter:
    c: Counter = Counter()
    for ev in events:
        if ev.kind in (EventKind.RECV, EventKind.IRECV):
            c[(ev.peer, ev.rank, ev.tag)] += 1
        elif ev.kind == EventKind.SENDRECV:
            c[(ev.recv_peer, ev.rank, ev.recv_tag)] += 1
    return c


def validate_traces(trace_set) -> ValidationReport:
    """Validate a :class:`TraceSet` / :class:`MemoryTrace`.

    Loads each rank once, streaming rank-by-rank (cross-rank checks only
    need aggregate counters, not resident events).
    """
    report = ValidationReport(nprocs=trace_set.nprocs)
    sends: Counter = Counter()
    recvs: Counter = Counter()
    collective_seqs: dict[int, list[tuple[EventKind, int]]] = {}

    for rank in range(trace_set.nprocs):
        events = list(trace_set.events_of(rank))
        report.event_count += len(events)
        _validate_rank(rank, events, report)
        sends += _send_channels(events)
        recvs += _recv_channels(events)
        collective_seqs[rank] = [
            (ev.kind, ev.root) for ev in events if ev.kind in COLLECTIVE_KINDS
        ]

    for channel in sorted(set(sends) | set(recvs)):
        ns, nr = sends.get(channel, 0), recvs.get(channel, 0)
        if ns != nr:
            src, dst, tag = channel
            report.issues.append(
                ValidationIssue(
                    "error",
                    -1,
                    f"channel {src}->{dst} tag {tag}: {ns} send(s) but {nr} receive(s)",
                )
            )

    reference = collective_seqs.get(0, [])
    for rank in range(1, trace_set.nprocs):
        seq = collective_seqs[rank]
        if len(seq) != len(reference):
            report.issues.append(
                ValidationIssue(
                    "error",
                    -1,
                    f"rank {rank} performed {len(seq)} collectives, rank 0 performed "
                    f"{len(reference)}",
                )
            )
            continue
        for i, ((k0, r0), (k1, r1)) in enumerate(zip(reference, seq)):
            if k0 != k1:
                report.issues.append(
                    ValidationIssue(
                        "error",
                        -1,
                        f"collective #{i}: rank 0 did {k0.name}, rank {rank} did {k1.name}",
                    )
                )
            elif k0 in ROOTED_COLLECTIVES and r0 != r1:
                report.issues.append(
                    ValidationIssue(
                        "error",
                        -1,
                        f"collective #{i} ({k0.name}): root disagreement "
                        f"(rank 0 says {r0}, rank {rank} says {r1})",
                    )
                )
    return report
