"""Tests for the structural trace validator."""

import pytest

from repro.trace.events import EventKind, EventRecord
from repro.trace.reader import MemoryTrace
from repro.trace.validate import validate_traces


def ev(rank, seq, kind, t0, t1, **kw):
    return EventRecord(rank=rank, seq=seq, kind=kind, t_start=t0, t_end=t1, **kw)


def wrap(rank, inner):
    """INIT ... FINALIZE around a list of (kind, t0, t1, kwargs)."""
    events = [ev(rank, 0, EventKind.INIT, 0.0, 1.0)]
    for i, (kind, t0, t1, kw) in enumerate(inner, start=1):
        events.append(ev(rank, i, kind, t0, t1, **kw))
    last = events[-1]
    events.append(ev(rank, len(events), EventKind.FINALIZE, last.t_end, last.t_end + 1))
    return events


class TestValidRuns:
    def test_simulator_output_is_valid(self, ring_trace):
        report = validate_traces(ring_trace)
        assert report.ok
        assert not report.warnings
        assert report.event_count > 0
        report.raise_if_invalid()  # must not raise

    def test_blocking_pair(self):
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8))])
        t1 = wrap(1, [(EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0, nbytes=8))])
        report = validate_traces(MemoryTrace([t0, t1]))
        assert report.ok


class TestPerRankErrors:
    def test_non_dense_seq(self):
        events = [
            ev(0, 0, EventKind.INIT, 0.0, 1.0),
            ev(0, 2, EventKind.FINALIZE, 1.0, 2.0),
        ]
        report = validate_traces(MemoryTrace([events]))
        assert any("seq" in str(e) for e in report.errors)

    def test_time_backwards(self):
        events = [
            ev(0, 0, EventKind.INIT, 5.0, 6.0),
            ev(0, 1, EventKind.FINALIZE, 2.0, 7.0),
        ]
        report = validate_traces(MemoryTrace([events]))
        assert any("starts at" in str(e) for e in report.errors)

    def test_unknown_request_completed(self):
        inner = [(EventKind.WAIT, 2.0, 3.0, dict(reqs=(9,), completed=(9,)))]
        report = validate_traces(MemoryTrace([wrap(0, inner)]))
        assert any("unknown request" in str(e) for e in report.errors)

    def test_duplicate_request_id(self):
        inner = [
            (EventKind.ISEND, 2.0, 3.0, dict(peer=1, tag=0, req=1)),
            (EventKind.ISEND, 3.0, 4.0, dict(peer=1, tag=0, req=1)),
        ]
        report = validate_traces(MemoryTrace([wrap(0, inner), wrap(1, [
            (EventKind.RECV, 2.0, 3.0, dict(peer=0, tag=0)),
            (EventKind.RECV, 3.0, 4.0, dict(peer=0, tag=0)),
        ])]))
        assert any("reuses request" in str(e) for e in report.errors)

    def test_double_completion(self):
        inner = [
            (EventKind.IRECV, 2.0, 3.0, dict(peer=1, tag=0, req=0)),
            (EventKind.WAIT, 3.0, 4.0, dict(reqs=(0,), completed=(0,))),
            (EventKind.WAIT, 4.0, 5.0, dict(reqs=(0,), completed=(0,))),
        ]
        other = wrap(1, [(EventKind.SEND, 2.0, 3.0, dict(peer=0, tag=0))])
        report = validate_traces(MemoryTrace([wrap(0, inner), other]))
        assert any("already-completed" in str(e) for e in report.errors)

    def test_never_completed_warns(self):
        inner = [(EventKind.IRECV, 2.0, 3.0, dict(peer=1, tag=0, req=0))]
        other = wrap(1, [(EventKind.SEND, 2.0, 3.0, dict(peer=0, tag=0))])
        report = validate_traces(MemoryTrace([wrap(0, inner), other]))
        assert report.ok  # warning, not error
        assert any("never completed" in str(w) for w in report.warnings)

    def test_missing_init_finalize_warns(self):
        events = [ev(0, 0, EventKind.BARRIER, 0.0, 1.0, coll_seq=0)]
        report = validate_traces(MemoryTrace([events]))
        assert any("not INIT" in str(w) for w in report.warnings)
        assert any("not FINALIZE" in str(w) for w in report.warnings)


class TestCrossRankErrors:
    def test_channel_count_mismatch(self):
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0, nbytes=8))])
        t1 = wrap(1, [])
        report = validate_traces(MemoryTrace([t0, t1]))
        assert any("1 send(s) but 0 receive(s)" in str(e) for e in report.errors)

    def test_collective_count_mismatch(self):
        t0 = wrap(0, [(EventKind.BARRIER, 2.0, 3.0, dict(coll_seq=0))])
        t1 = wrap(1, [])
        report = validate_traces(MemoryTrace([t0, t1]))
        assert any("collectives" in str(e) for e in report.errors)

    def test_collective_kind_mismatch(self):
        t0 = wrap(0, [(EventKind.BARRIER, 2.0, 3.0, dict(coll_seq=0))])
        t1 = wrap(1, [(EventKind.ALLREDUCE, 2.0, 3.0, dict(coll_seq=0))])
        report = validate_traces(MemoryTrace([t0, t1]))
        assert any("rank 0 did BARRIER" in str(e) for e in report.errors)

    def test_collective_root_mismatch(self):
        t0 = wrap(0, [(EventKind.BCAST, 2.0, 3.0, dict(coll_seq=0, root=0))])
        t1 = wrap(1, [(EventKind.BCAST, 2.0, 3.0, dict(coll_seq=0, root=1))])
        report = validate_traces(MemoryTrace([t0, t1]))
        assert any("root disagreement" in str(e) for e in report.errors)

    def test_sendrecv_counted_on_both_channels(self):
        t0 = wrap(
            0,
            [
                (
                    EventKind.SENDRECV,
                    2.0,
                    3.0,
                    dict(peer=1, tag=0, nbytes=8, recv_peer=1, recv_tag=0, recv_nbytes=8),
                )
            ],
        )
        t1 = wrap(
            1,
            [
                (
                    EventKind.SENDRECV,
                    2.0,
                    3.0,
                    dict(peer=0, tag=0, nbytes=8, recv_peer=0, recv_tag=0, recv_nbytes=8),
                )
            ],
        )
        report = validate_traces(MemoryTrace([t0, t1]))
        assert report.ok


class TestReport:
    def test_raise_if_invalid(self):
        t0 = wrap(0, [(EventKind.SEND, 2.0, 3.0, dict(peer=1, tag=0))])
        t1 = wrap(1, [])
        report = validate_traces(MemoryTrace([t0, t1]))
        with pytest.raises(ValueError, match="invalid trace set"):
            report.raise_if_invalid()

    def test_summary_counts(self, ring_trace):
        report = validate_traces(ring_trace)
        assert "4 ranks" in report.summary()
        assert "0 errors" in report.summary()
