"""Makespan attribution along the critical path.

Every edge on the extracted path carries observed time; summing those
costs per rank and per primitive decomposes the end-to-end makespan
into "where the time went" buckets:

* **rank** — the rank whose local clock the edge's interval was
  observed on (the real destination endpoint; virtual collective hubs
  attribute to the nearest real endpoint);
* **primitive** — the operation class of the interval: the message-
  passing call itself (``send``, ``recv``, ``allreduce``, …) for the
  START→END edge of one event, ``compute`` for the gap between
  consecutive events, and delta-kind buckets (``transfer``,
  ``rendezvous``, ``collective``, …) for message and hub edges, which
  have zero base weight in the delta model (§6) but show up once
  sampled deltas are added to the costs.

The shares are exact: they sum to the path's total cost by
construction, so the attribution is an audit of the makespan, not an
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.builder import BuildResult
from repro.core.graph import DeltaKind, Edge, EdgeKind, MessagePassingGraph, Phase
from repro.diagnose.path import CriticalPathExtract

__all__ = ["Attribution", "attribute_path", "classify_edge"]

# Primitive bucket for message/hub edges, by the delta the analyzer
# would sample there (the edge's role in the §3 perturbation model).
_DELTA_PRIMITIVE = {
    DeltaKind.NONE: "sync",
    DeltaKind.OS: "os-noise",
    DeltaKind.LATENCY: "ack",
    DeltaKind.TRANSFER: "transfer",
    DeltaKind.TRANSFER_OS: "transfer",
    DeltaKind.ROUNDTRIP: "rendezvous",
    DeltaKind.COLL_FANIN: "collective",
}


def classify_edge(g: MessagePassingGraph, e: Edge) -> tuple[str, int]:
    """``(primitive, rank)`` bucket of one edge's cost.

    Local edges between real subevents are either an operation interval
    (START→END of the same event → the event kind) or a compute gap
    (between consecutive events).  Message edges and edges touching
    virtual hub nodes bucket by their delta kind.
    """
    src, dst = g.nodes[e.src], g.nodes[e.dst]
    if dst.is_virtual:
        rank = src.rank if not src.is_virtual else -1
    else:
        rank = dst.rank
    if e.kind == EdgeKind.LOCAL and not src.is_virtual and not dst.is_virtual:
        if src.seq == dst.seq and src.phase == Phase.START and dst.phase == Phase.END:
            return dst.kind.name.lower(), rank
        return "compute", rank
    return _DELTA_PRIMITIVE[DeltaKind(e.delta.kind)], rank


@dataclass(frozen=True)
class Attribution:
    """Makespan decomposition along one critical path.

    ``by_rank`` / ``by_primitive`` map to summed cost (cycles); both
    sum to ``makespan`` exactly.  ``top_edges`` holds the
    ``(edge_id, cost, primitive, rank)`` of the costliest path edges,
    cost-descending (ties toward path order).
    """

    makespan: float
    by_rank: dict
    by_primitive: dict
    top_edges: tuple

    def rank_share(self, rank: int) -> float:
        """Fraction of the makespan observed on ``rank``."""
        if self.makespan <= 0:
            return 0.0
        return self.by_rank.get(rank, 0.0) / self.makespan

    def primitive_share(self, primitive: str) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.by_primitive.get(primitive, 0.0) / self.makespan

    def dominant_rank(self) -> tuple[int, float]:
        """``(rank, share)`` of the rank carrying the most path time."""
        if not self.by_rank:
            return (-1, 0.0)
        rank = max(sorted(self.by_rank), key=lambda r: self.by_rank[r])
        return rank, self.rank_share(rank)

    def dominant_primitive(self, exclude: tuple = ("compute",)) -> tuple[str, float]:
        """``(primitive, share)`` of the largest non-excluded bucket."""
        names = [p for p in sorted(self.by_primitive) if p not in exclude]
        if not names:
            return ("", 0.0)
        prim = max(names, key=lambda p: self.by_primitive[p])
        return prim, self.primitive_share(prim)

    def table(self) -> str:
        """Two aligned share tables for the text reporter."""
        lines = [f"{'rank':>6} {'on-path (cy)':>14} {'share':>7}"]
        for rank in sorted(self.by_rank):
            c = self.by_rank[rank]
            lines.append(f"{rank:>6} {c:>14,.1f} {self.rank_share(rank):>6.1%}")
        lines.append(f"{'primitive':>12} {'on-path (cy)':>14} {'share':>7}")
        for prim in sorted(self.by_primitive, key=lambda p: -self.by_primitive[p]):
            c = self.by_primitive[prim]
            lines.append(f"{prim:>12} {c:>14,.1f} {self.primitive_share(prim):>6.1%}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "by_rank": {str(r): c for r, c in sorted(self.by_rank.items())},
            "by_primitive": dict(sorted(self.by_primitive.items())),
            "top_edges": [
                {"edge": ei, "cost": c, "primitive": p, "rank": r}
                for ei, c, p, r in self.top_edges
            ],
        }


def attribute_path(
    build: BuildResult, cp: CriticalPathExtract, top_edges: int = 10
) -> Attribution:
    """Decompose a critical path's cost per rank / primitive / edge."""
    g = build.graph
    by_rank: dict[int, float] = {}
    by_primitive: dict[str, float] = {}
    rows = []
    with obs.span("diagnose.attribution", edges=len(cp.edges)):
        for ei, cost in zip(cp.edges, cp.costs):
            primitive, rank = classify_edge(g, g.edges[ei])
            by_rank[rank] = by_rank.get(rank, 0.0) + cost
            by_primitive[primitive] = by_primitive.get(primitive, 0.0) + cost
            rows.append((ei, cost, primitive, rank))
        rows.sort(key=lambda r: -r[1])
    return Attribution(
        makespan=cp.total_cost,
        by_rank=by_rank,
        by_primitive=by_primitive,
        top_edges=tuple(rows[: max(0, top_edges)]),
    )
